#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hopdb {

namespace {
/// Display width in terminal cells; counts UTF-8 code points (the em dash
/// used for DNF is 3 bytes but 1 column).
size_t DisplayWidth(const std::string& s) {
  size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;  // count non-continuation bytes
  }
  return w;
}

std::string Pad(const std::string& s, size_t width, bool left_align) {
  size_t w = DisplayWidth(s);
  if (w >= width) return s;
  std::string pad(width - w, ' ');
  return left_align ? s + pad : pad + s;
}
}  // namespace

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  HOPDB_CHECK_EQ(cells.size(), headers_.size())
      << "row width does not match header";
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = DisplayWidth(headers_[c]);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += Pad(row[c], widths[c], /*left_align=*/c == 0);
    }
    out += "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void AsciiTable::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace hopdb
