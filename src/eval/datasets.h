// Dataset registry for the experiment harness.
//
// The paper evaluates on SNAP/KONECT graphs plus GLP synthetics. The
// benchmark machines here are offline, so each real dataset is replaced
// by a GLP-generated stand-in that matches its directedness, weightedness
// and |E|/|V| density, with |V| scaled down to laptop scale (DESIGN.md §4
// records the substitution). When a real edge-list file is available it
// can be dropped into --data_dir under "<name>.txt" and will be used
// instead of the generator.

#ifndef HOPDB_EVAL_DATASETS_H_
#define HOPDB_EVAL_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace hopdb {

struct DatasetSpec {
  std::string name;        // paper's dataset name (e.g. "Enron")
  std::string group;       // "undirected unweighted", "directed", ...
  bool directed = false;
  bool weighted = false;
  /// Paper-scale sizes (for the substitution record).
  uint64_t paper_vertices = 0;
  uint64_t paper_edges = 0;
  /// Stand-in sizes at scale 1.0.
  VertexId sim_vertices = 0;
  double sim_avg_degree = 0;
  /// Tier 0 datasets run by default; higher tiers need --full.
  int tier = 0;
  uint64_t seed = 0;
};

/// The Table 6 dataset list (every row of the paper's table, annotated
/// with its stand-in parameters).
const std::vector<DatasetSpec>& Table6Datasets();

/// Looks a dataset up by name (case-sensitive); nullptr if unknown.
const DatasetSpec* FindDataset(const std::string& name);

struct LoadOptions {
  /// Multiplies sim_vertices (0.05 for smoke tests, >1 for bigger runs).
  double scale = 1.0;
  /// Directory searched for "<name>.txt" real edge lists first.
  std::string data_dir;
};

/// Materializes a dataset: real file if present, GLP stand-in otherwise.
Result<CsrGraph> LoadDataset(const DatasetSpec& spec,
                             const LoadOptions& options = {});

}  // namespace hopdb

#endif  // HOPDB_EVAL_DATASETS_H_
