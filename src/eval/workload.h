// Query workload generation and timing helpers shared by Table 6 and the
// microbenchmarks.

#ifndef HOPDB_EVAL_WORKLOAD_H_
#define HOPDB_EVAL_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"

namespace hopdb {

struct QueryPair {
  VertexId s;
  VertexId t;
};

/// Uniform random (s, t) pairs over [0, n) (the paper's query workload).
std::vector<QueryPair> RandomPairs(VertexId n, size_t count, uint64_t seed);

/// Timing summary of one query workload.
struct QueryTiming {
  double total_seconds = 0;
  double avg_micros = 0;
  uint64_t queries = 0;
  /// Sum of returned distances (defeats dead-code elimination and gives a
  /// cheap cross-method consistency check).
  uint64_t checksum = 0;
};

/// Runs `query` over all pairs and measures aggregate wall time.
QueryTiming TimeQueries(const std::vector<QueryPair>& pairs,
                        const std::function<Distance(VertexId, VertexId)>& query);

}  // namespace hopdb

#endif  // HOPDB_EVAL_WORKLOAD_H_
