// Fixed-width ASCII table rendering for the benchmark binaries, so the
// harness output reads like the paper's tables (with "—" for DNF).

#ifndef HOPDB_EVAL_TABLE_H_
#define HOPDB_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace hopdb {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column-wise alignment (first column left, rest right).
  std::string Render() const;

  /// Convenience: renders straight to stdout.
  void Print() const;

  /// The paper's DNF marker.
  static const char* Dash() { return "—"; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hopdb

#endif  // HOPDB_EVAL_TABLE_H_
