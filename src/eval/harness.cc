#include "eval/harness.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "eval/datasets.h"
#include "eval/verify.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "hopdb.h"
#include "labeling/compressed_index.h"
#include "labeling/mapped_index.h"
#include "query/batch.h"
#include "query/knn.h"
#include "query/path.h"
#include "search/dijkstra.h"
#include "util/build_info.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {

namespace {

// Hostile-spec ceilings (the parser is fuzzed; RunEval work must stay
// bounded by what the spec can ask for).
constexpr size_t kMaxDatasets = 32;
constexpr size_t kMaxWorkloads = 32;
constexpr uint64_t kMaxVertices = 2'000'000;
constexpr uint64_t kMaxQueries = 1'000'000;
constexpr uint32_t kMaxVerifySources = 256;

Status SpecError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument("eval spec line " + std::to_string(line_no) +
                                 ": " + message);
}

/// Splits "key=value" (returns false when there is no '='). Keys are
/// matched case-sensitively by the caller.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Result<uint64_t> ParseSpecUint(size_t line_no, const std::string& key,
                               const std::string& value, uint64_t max) {
  uint64_t parsed = 0;
  if (!ParseUint64(value, &parsed)) {
    return SpecError(line_no, "'" + key + "' wants an unsigned integer, got '" +
                                  value + "'");
  }
  if (parsed > max) {
    return SpecError(line_no, "'" + key + "' is capped at " +
                                  std::to_string(max) + ", got " + value);
  }
  return parsed;
}

Result<bool> ParseSpecBool(size_t line_no, const std::string& key,
                           const std::string& value) {
  if (value == "0" || value == "false") return false;
  if (value == "1" || value == "true") return true;
  return SpecError(line_no,
                   "'" + key + "' wants 0/1/true/false, got '" + value + "'");
}

bool KnownVariant(const std::string& name) {
  for (const char* variant : kEvalVariants) {
    if (name == variant) return true;
  }
  return false;
}

/// Workload answers fold into one u64 so cross-variant agreement is a
/// single comparison. Plain wrapping addition; identical label content
/// must produce identical sums.
struct Checksum {
  uint64_t value = 0;
  void Add(uint64_t v) { value += v; }
};

std::string SafeFileName(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "graph" : out;
}

/// All query-side forms of one built dataset. The heap index owns the
/// labels; hli2/blocked are mmap views over files written into
/// work_dir; compressed re-encodes the same labels.
struct VariantSet {
  const HopDbIndex* heap = nullptr;
  MappedIndex hli2;     // v1 packed
  MappedIndex blocked;  // v2 blocked
  CompressedIndex compressed;
  bool has_hli2 = false;
  bool has_blocked = false;
  bool has_compressed = false;
};

bool WantVariant(const EvalSpec& spec, const std::string& name) {
  if (spec.variants.empty()) return true;
  return std::find(spec.variants.begin(), spec.variants.end(), name) !=
         spec.variants.end();
}

Status PrepareVariants(const EvalSpec& spec, const EvalOptions& options,
                       const std::string& dataset_name,
                       const HopDbIndex& index, VariantSet* variants) {
  variants->heap = &index;
  const std::string stem =
      (std::filesystem::path(options.work_dir) / SafeFileName(dataset_name))
          .string();
  if (WantVariant(spec, "hli2")) {
    const std::string path = stem + ".v1.hli2";
    HOPDB_RETURN_NOT_OK(MappedIndex::WriteVersion(
        index.label_index(), index.ranking(), path, /*version=*/1));
    HOPDB_ASSIGN_OR_RETURN(variants->hli2, MappedIndex::Open(path));
    variants->has_hli2 = true;
  }
  if (WantVariant(spec, "blocked")) {
    const std::string path = stem + ".v2.hli2";
    HOPDB_RETURN_NOT_OK(MappedIndex::WriteVersion(
        index.label_index(), index.ranking(), path, /*version=*/2));
    HOPDB_ASSIGN_OR_RETURN(variants->blocked, MappedIndex::Open(path));
    variants->has_blocked = true;
  }
  if (WantVariant(spec, "compressed")) {
    HOPDB_ASSIGN_OR_RETURN(variants->compressed,
                           CompressedIndex::FromIndex(index.label_index()));
    variants->has_compressed = true;
  }
  return Status::OK();
}

/// Point query in ORIGINAL ids for a variant; null when the variant is
/// not prepared.
std::function<Distance(VertexId, VertexId)> PointQuery(
    const VariantSet& variants, const std::string& variant) {
  if (variant == "heap") {
    const HopDbIndex* index = variants.heap;
    return [index](VertexId s, VertexId t) { return index->Query(s, t); };
  }
  if (variant == "hli2" && variants.has_hli2) {
    const MappedIndex* mapped = &variants.hli2;
    return [mapped](VertexId s, VertexId t) { return mapped->Query(s, t); };
  }
  if (variant == "blocked" && variants.has_blocked) {
    const MappedIndex* mapped = &variants.blocked;
    return [mapped](VertexId s, VertexId t) { return mapped->Query(s, t); };
  }
  if (variant == "compressed" && variants.has_compressed) {
    const CompressedIndex* comp = &variants.compressed;
    const RankMapping* ranking = &variants.heap->ranking();
    return [comp, ranking](VertexId s, VertexId t) {
      return comp->Query(ranking->ToInternal(s), ranking->ToInternal(t));
    };
  }
  return nullptr;
}

/// Internal-id translation for a variant's flat label view (batch/knn/
/// within engines run in internal ids).
std::function<VertexId(VertexId)> ToInternalFn(const VariantSet& variants,
                                               const std::string& variant) {
  if (variant == "heap") {
    const RankMapping* ranking = &variants.heap->ranking();
    return [ranking](VertexId v) { return ranking->ToInternal(v); };
  }
  const MappedIndex* mapped =
      variant == "hli2" ? &variants.hli2 : &variants.blocked;
  return [mapped](VertexId v) { return mapped->ToInternal(v); };
}

bool HasLabelView(const VariantSet& variants, const std::string& variant) {
  if (variant == "heap") return true;
  if (variant == "hli2") return variants.has_hli2;
  if (variant == "blocked") return variants.has_blocked;
  return false;  // compressed exposes no flat view
}

EvalWorkloadResult RunDistLike(const EvalWorkload& workload,
                               const std::string& variant,
                               const VariantSet& variants,
                               const std::vector<QueryPair>& pairs) {
  EvalWorkloadResult result;
  result.workload = EvalWorkloadName(workload.kind);
  result.variant = variant;
  const auto query = PointQuery(variants, variant);
  if (query == nullptr) {
    result.supported = false;
    return result;
  }
  const bool reach = workload.kind == EvalWorkload::Kind::kReach;
  const Distance bound = workload.bound;
  Checksum checksum;
  Stopwatch watch;
  for (const QueryPair& pair : pairs) {
    const Distance d = query(pair.s, pair.t);
    if (reach) {
      checksum.Add(d != kInfDistance && d <= bound ? 1 : 0);
    } else {
      checksum.Add(d);
    }
  }
  const double seconds = watch.Seconds();
  result.queries = pairs.size();
  result.avg_us = pairs.empty() ? 0 : seconds * 1e6 / pairs.size();
  result.checksum = checksum.value;
  return result;
}

EvalWorkloadResult RunBatch(const EvalWorkload& workload,
                            const std::string& variant,
                            const VariantSet& variants,
                            const std::vector<QueryPair>& pairs) {
  EvalWorkloadResult result;
  result.workload = EvalWorkloadName(workload.kind);
  result.variant = variant;
  if (!HasLabelView(variants, variant)) {
    result.supported = false;
    return result;
  }
  const auto to_internal = ToInternalFn(variants, variant);
  const uint32_t batch = std::max<uint32_t>(1, workload.batch_size);
  Checksum checksum;
  uint64_t queries = 0;
  Stopwatch watch;
  for (size_t i = 0; i < pairs.size(); i += batch) {
    const size_t end = std::min(pairs.size(), i + batch);
    std::vector<VertexId> targets;
    targets.reserve(end - i);
    for (size_t j = i; j < end; ++j) {
      targets.push_back(to_internal(pairs[j].t));
    }
    // One engine per request mirrors the serving path: BATCH builds its
    // pivot buckets per call.
    std::vector<Distance> dists;
    if (variant == "heap") {
      OneToManyEngine engine(variants.heap->label_index(),
                             std::move(targets));
      dists = engine.Query(to_internal(pairs[i].s));
    } else {
      const MappedIndex& mapped =
          variant == "hli2" ? variants.hli2 : variants.blocked;
      OneToManyEngine engine(mapped.labels(), std::move(targets));
      dists = engine.Query(to_internal(pairs[i].s));
    }
    for (const Distance d : dists) checksum.Add(d);
    queries += dists.size();
  }
  const double seconds = watch.Seconds();
  result.queries = queries;
  result.avg_us = queries == 0 ? 0 : seconds * 1e6 / queries;
  result.checksum = checksum.value;
  return result;
}

EvalWorkloadResult RunKnnOrWithin(const EvalWorkload& workload,
                                  const std::string& variant,
                                  const VariantSet& variants,
                                  const std::vector<QueryPair>& pairs) {
  EvalWorkloadResult result;
  result.workload = EvalWorkloadName(workload.kind);
  result.variant = variant;
  if (!HasLabelView(variants, variant)) {
    result.supported = false;
    return result;
  }
  const auto to_internal = ToInternalFn(variants, variant);
  // Engine construction (one inverted-list build) happens outside the
  // timed loop, like the serving snapshot's lazily built engine.
  std::unique_ptr<KnnEngine> engine;
  if (variant == "heap") {
    engine = std::make_unique<KnnEngine>(variants.heap->label_index(),
                                         KnnEngine::Direction::kForward);
  } else {
    const MappedIndex& mapped =
        variant == "hli2" ? variants.hli2 : variants.blocked;
    engine = std::make_unique<KnnEngine>(mapped.labels(),
                                         KnnEngine::Direction::kForward);
  }
  const bool within = workload.kind == EvalWorkload::Kind::kWithin;
  Checksum checksum;
  Stopwatch watch;
  for (const QueryPair& pair : pairs) {
    const VertexId s = to_internal(pair.s);
    const std::vector<KnnEngine::Neighbor> neighbors =
        within ? engine->QueryWithin(s, workload.radius)
               : engine->Query(s, workload.k);
    // Sum over (vertex, dist): internal ids differ per variant only if
    // the rank permutations differ, and all variants share one build.
    for (const KnnEngine::Neighbor& nb : neighbors) {
      checksum.Add(nb.vertex);
      checksum.Add(nb.dist);
    }
  }
  const double seconds = watch.Seconds();
  result.queries = pairs.size();
  result.avg_us = pairs.empty() ? 0 : seconds * 1e6 / pairs.size();
  result.checksum = checksum.value;
  return result;
}

EvalWorkloadResult RunPath(const std::string& variant,
                           const VariantSet& variants, const CsrGraph& graph,
                           const std::vector<QueryPair>& pairs,
                           std::string* verify_error) {
  EvalWorkloadResult result;
  result.workload = EvalWorkloadName(EvalWorkload::Kind::kPath);
  result.variant = variant;
  if (variant != "heap") {
    // Path unfolding needs the heap index + build graph (the serving
    // layer has the same restriction).
    result.supported = false;
    return result;
  }
  Result<HopDbPathQuerier> querier =
      HopDbPathQuerier::Create(*variants.heap, graph);
  if (!querier.ok()) {
    result.supported = false;
    return result;
  }
  Checksum checksum;
  Stopwatch watch;
  for (const QueryPair& pair : pairs) {
    Result<std::vector<VertexId>> path =
        querier.value().ShortestPath(pair.s, pair.t);
    const Distance d = variants.heap->Query(pair.s, pair.t);
    if (!path.ok()) {
      if (!path.status().IsNotFound() && verify_error->empty()) {
        *verify_error = "path(" + std::to_string(pair.s) + "," +
                        std::to_string(pair.t) +
                        "): " + path.status().ToString();
      }
      if (path.status().IsNotFound() && d != kInfDistance &&
          verify_error->empty()) {
        *verify_error = "path says unreachable but dist(" +
                        std::to_string(pair.s) + "," +
                        std::to_string(pair.t) +
                        ")=" + std::to_string(d);
      }
      continue;
    }
    // Every returned path must be real (each hop an arc) and tight
    // (weight sum == the index distance).
    const Distance length = PathLength(graph, path.value());
    if (length != d && verify_error->empty()) {
      *verify_error = "path(" + std::to_string(pair.s) + "," +
                      std::to_string(pair.t) + ") has length " +
                      std::to_string(length) + " but dist is " +
                      std::to_string(d);
    }
    checksum.Add(length);
    checksum.Add(path.value().size());
  }
  const double seconds = watch.Seconds();
  result.queries = pairs.size();
  result.avg_us = pairs.empty() ? 0 : seconds * 1e6 / pairs.size();
  result.checksum = checksum.value;
  return result;
}

/// WITHIN / REACH oracle legs over sampled sources: compares the heap
/// engines against single-source BFS/Dijkstra ground truth. Returns the
/// first mismatch description, or "".
std::string OracleSpotCheck(const EvalSpec& spec, const CsrGraph& graph,
                            const HopDbIndex& index) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return "";
  KnnEngine engine(index.label_index(), KnnEngine::Direction::kForward);
  const RankMapping& ranking = index.ranking();
  Distance radius = 3;
  Distance bound = 4;
  for (const EvalWorkload& w : spec.workloads) {
    if (w.kind == EvalWorkload::Kind::kWithin) radius = w.radius;
    if (w.kind == EvalWorkload::Kind::kReach) bound = w.bound;
  }
  // Oracle stream, decorrelated from the workload query pairs.
  SplitMix64 rng(DeriveSeed(spec.query_seed, 0x07A1));
  const uint32_t sources = std::min<uint32_t>(spec.verify_sources, n);
  for (uint32_t i = 0; i < sources; ++i) {
    const VertexId src = static_cast<VertexId>(rng.Next() % n);
    const std::vector<Distance> exact = ExactDistances(graph, src);
    // WITHIN: the engine's answer set must equal the exact in-radius
    // set, distances included.
    std::vector<KnnEngine::Neighbor> within =
        engine.QueryWithin(ranking.ToInternal(src), radius);
    std::map<VertexId, Distance> got;
    for (const KnnEngine::Neighbor& nb : within) {
      got[ranking.ToOriginal(nb.vertex)] = nb.dist;
    }
    for (VertexId v = 0; v < n; ++v) {
      const bool in_radius = v != src && exact[v] <= radius;
      const auto it = got.find(v);
      if (in_radius != (it != got.end())) {
        return "within(" + std::to_string(src) + ", r=" +
               std::to_string(radius) + ") " +
               (in_radius ? "misses " : "includes ") + std::to_string(v);
      }
      if (it != got.end() && it->second != exact[v]) {
        return "within(" + std::to_string(src) + ") has dist " +
               std::to_string(it->second) + " for " + std::to_string(v) +
               ", exact " + std::to_string(exact[v]);
      }
    }
    // REACH: bounded reachability from the label distance must match
    // the exact distance's verdict for sampled targets.
    for (uint32_t j = 0; j < 32; ++j) {
      const VertexId t = static_cast<VertexId>(rng.Next() % n);
      const Distance d = index.Query(src, t);
      const bool got_reach = d != kInfDistance && d <= bound;
      const bool exact_reach = exact[t] != kInfDistance && exact[t] <= bound;
      if (got_reach != exact_reach) {
        return "reach(" + std::to_string(src) + "," + std::to_string(t) +
               ", k=" + std::to_string(bound) + ") = " +
               (got_reach ? "1" : "0") + ", oracle says " +
               (exact_reach ? "1" : "0");
      }
    }
  }
  return "";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* EvalWorkloadName(EvalWorkload::Kind kind) {
  switch (kind) {
    case EvalWorkload::Kind::kDist: return "dist";
    case EvalWorkload::Kind::kBatch: return "batch";
    case EvalWorkload::Kind::kKnn: return "knn";
    case EvalWorkload::Kind::kWithin: return "within";
    case EvalWorkload::Kind::kReach: return "reach";
    case EvalWorkload::Kind::kPath: return "path";
  }
  return "unknown";
}

Result<EvalSpec> ParseEvalSpec(const std::string& text) {
  EvalSpec spec;
  const std::vector<std::string> lines = SplitString(text, '\n',
                                                     /*skip_empty=*/false);
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    std::string line = lines[i];
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = TrimString(line);
    if (line.empty()) continue;
    std::vector<std::string> tokens;
    for (const std::string& raw : SplitString(line, ' ')) {
      const std::string token = TrimString(raw);
      if (!token.empty()) tokens.push_back(token);
    }
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "dataset") {
      if (tokens.size() < 2) {
        return SpecError(line_no, "dataset wants a registry name");
      }
      if (spec.datasets.size() >= kMaxDatasets) {
        return SpecError(line_no, "too many datasets (max " +
                                      std::to_string(kMaxDatasets) + ")");
      }
      EvalDataset dataset;
      dataset.name = tokens[1];
      if (FindDataset(dataset.name) == nullptr) {
        return SpecError(line_no,
                         "unknown dataset '" + dataset.name + "'");
      }
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return SpecError(line_no, "expected key=value, got '" + tokens[t] +
                                        "'");
        }
        if (key == "scale") {
          double scale = 0;
          if (!ParseDouble(value, &scale) || !(scale > 0) || scale > 100) {
            return SpecError(line_no,
                             "scale wants a number in (0, 100], got '" +
                                 value + "'");
          }
          dataset.scale = scale;
        } else {
          return SpecError(line_no, "unknown dataset option '" + key + "'");
        }
      }
      spec.datasets.push_back(std::move(dataset));
    } else if (directive == "graph") {
      if (spec.datasets.size() >= kMaxDatasets) {
        return SpecError(line_no, "too many datasets (max " +
                                      std::to_string(kMaxDatasets) + ")");
      }
      EvalDataset dataset;
      dataset.ad_hoc = true;
      dataset.name = "glp";
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return SpecError(line_no, "expected key=value, got '" + tokens[t] +
                                        "'");
        }
        if (key == "n") {
          HOPDB_ASSIGN_OR_RETURN(
              uint64_t n, ParseSpecUint(line_no, key, value, kMaxVertices));
          if (n == 0) return SpecError(line_no, "n must be positive");
          dataset.n = static_cast<VertexId>(n);
        } else if (key == "avg-degree") {
          double deg = 0;
          if (!ParseDouble(value, &deg) || !(deg > 0) || deg > 512) {
            return SpecError(line_no,
                             "avg-degree wants a number in (0, 512], got '" +
                                 value + "'");
          }
          dataset.avg_degree = deg;
        } else if (key == "directed") {
          HOPDB_ASSIGN_OR_RETURN(dataset.directed,
                                 ParseSpecBool(line_no, key, value));
        } else if (key == "weighted") {
          HOPDB_ASSIGN_OR_RETURN(dataset.weighted,
                                 ParseSpecBool(line_no, key, value));
        } else if (key == "seed") {
          HOPDB_ASSIGN_OR_RETURN(
              dataset.seed, ParseSpecUint(line_no, key, value,
                                          std::numeric_limits<uint64_t>::max()));
        } else {
          return SpecError(line_no, "unknown graph option '" + key + "'");
        }
      }
      // Distinct names keep report rows and work files apart.
      dataset.name = "glp-" + std::to_string(spec.datasets.size() + 1);
      spec.datasets.push_back(std::move(dataset));
    } else if (directive == "variants") {
      if (tokens.size() != 2) {
        return SpecError(line_no, "variants wants one comma-separated list");
      }
      spec.variants.clear();
      for (const std::string& name : SplitString(tokens[1], ',')) {
        if (!KnownVariant(name)) {
          return SpecError(line_no, "unknown variant '" + name +
                                        "' (heap | hli2 | blocked | "
                                        "compressed)");
        }
        spec.variants.push_back(name);
      }
      if (spec.variants.empty()) {
        return SpecError(line_no, "variants list is empty");
      }
    } else if (directive == "queries") {
      if (tokens.size() < 2) {
        return SpecError(line_no, "queries wants a count");
      }
      HOPDB_ASSIGN_OR_RETURN(
          spec.num_queries,
          ParseSpecUint(line_no, "queries", tokens[1], kMaxQueries));
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key, value;
        if (!SplitKeyValue(tokens[t], &key, &value) || key != "seed") {
          return SpecError(line_no, "unknown queries option '" + tokens[t] +
                                        "'");
        }
        HOPDB_ASSIGN_OR_RETURN(
            spec.query_seed,
            ParseSpecUint(line_no, key, value,
                          std::numeric_limits<uint64_t>::max()));
      }
    } else if (directive == "workload") {
      if (tokens.size() < 2) {
        return SpecError(line_no, "workload wants a kind");
      }
      if (spec.workloads.size() >= kMaxWorkloads) {
        return SpecError(line_no, "too many workloads (max " +
                                      std::to_string(kMaxWorkloads) + ")");
      }
      EvalWorkload workload;
      const std::string& kind = tokens[1];
      if (kind == "dist") {
        workload.kind = EvalWorkload::Kind::kDist;
      } else if (kind == "batch") {
        workload.kind = EvalWorkload::Kind::kBatch;
      } else if (kind == "knn") {
        workload.kind = EvalWorkload::Kind::kKnn;
      } else if (kind == "within") {
        workload.kind = EvalWorkload::Kind::kWithin;
      } else if (kind == "reach") {
        workload.kind = EvalWorkload::Kind::kReach;
      } else if (kind == "path") {
        workload.kind = EvalWorkload::Kind::kPath;
      } else {
        return SpecError(line_no, "unknown workload '" + kind +
                                      "' (dist | batch | knn | within | "
                                      "reach | path)");
      }
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return SpecError(line_no, "expected key=value, got '" + tokens[t] +
                                        "'");
        }
        HOPDB_ASSIGN_OR_RETURN(
            uint64_t parsed,
            ParseSpecUint(line_no, key, value,
                          std::numeric_limits<uint32_t>::max()));
        if (key == "k") {
          workload.k = static_cast<uint32_t>(parsed);
        } else if (key == "radius") {
          workload.radius = static_cast<Distance>(parsed);
        } else if (key == "bound") {
          workload.bound = static_cast<Distance>(parsed);
        } else if (key == "size") {
          if (parsed == 0) return SpecError(line_no, "size must be positive");
          workload.batch_size = static_cast<uint32_t>(parsed);
        } else {
          return SpecError(line_no, "unknown workload option '" + key + "'");
        }
      }
      spec.workloads.push_back(workload);
    } else if (directive == "verify") {
      if (tokens.size() != 2) {
        return SpecError(line_no, "verify wants a source count");
      }
      HOPDB_ASSIGN_OR_RETURN(
          uint64_t sources,
          ParseSpecUint(line_no, "verify", tokens[1], kMaxVerifySources));
      spec.verify_sources = static_cast<uint32_t>(sources);
    } else {
      return SpecError(line_no, "unknown directive '" + directive +
                                    "' (dataset | graph | variants | "
                                    "queries | workload | verify)");
    }
  }
  if (spec.datasets.empty()) {
    return Status::InvalidArgument(
        "eval spec names no datasets (add 'dataset <name>' or 'graph ...' "
        "lines)");
  }
  if (spec.workloads.empty()) {
    for (const EvalWorkload::Kind kind :
         {EvalWorkload::Kind::kDist, EvalWorkload::Kind::kBatch,
          EvalWorkload::Kind::kKnn, EvalWorkload::Kind::kWithin,
          EvalWorkload::Kind::kReach, EvalWorkload::Kind::kPath}) {
      EvalWorkload workload;
      workload.kind = kind;
      spec.workloads.push_back(workload);
    }
  }
  return spec;
}

std::string DefaultEvalSpecText(bool ci) {
  // The four graph-family corners the paper's tables sweep, at a scale
  // the harness finishes in seconds (CI) or a couple of minutes (dev).
  const char* n = ci ? "1500" : "8000";
  std::string text;
  text += "# hopdb eval: default graph-family sweep\n";
  text += std::string("graph n=") + n + " avg-degree=8 seed=11\n";
  text += std::string("graph n=") + n +
          " avg-degree=8 directed=1 seed=12\n";
  text += std::string("graph n=") + n +
          " avg-degree=6 weighted=1 seed=13\n";
  text += std::string("graph n=") + n +
          " avg-degree=6 directed=1 weighted=1 seed=14\n";
  text += ci ? "queries 400 seed=7\n" : "queries 4000 seed=7\n";
  text += "workload dist\n";
  text += "workload batch size=16\n";
  text += "workload knn k=8\n";
  text += "workload within radius=3\n";
  text += "workload reach bound=4\n";
  text += "workload path\n";
  text += ci ? "verify 3\n" : "verify 8\n";
  return text;
}

bool EvalReport::AllPass() const {
  for (const EvalExpectation& e : expectations) {
    if (!e.pass) return false;
  }
  return true;
}

Result<EvalReport> RunEval(const EvalSpec& spec, const EvalOptions& options) {
  EvalReport report;
  std::error_code ec;
  std::filesystem::create_directories(options.work_dir, ec);
  if (ec) {
    return Status::IOError("cannot create eval work dir '" +
                           options.work_dir + "': " + ec.message());
  }

  double max_build_seconds = 0;
  double max_avg_label = 0;
  double max_dist_avg_us = 0;
  bool variants_agree = true;
  bool verified = true;

  for (const EvalDataset& dataset : spec.datasets) {
    // 1. Materialize the graph.
    CsrGraph graph;
    if (dataset.ad_hoc) {
      GlpOptions glp;
      glp.num_vertices = std::max<VertexId>(
          16, static_cast<VertexId>(dataset.n * options.scale));
      glp.target_avg_degree = dataset.avg_degree;
      glp.seed = dataset.seed;
      HOPDB_ASSIGN_OR_RETURN(EdgeList edges,
                             dataset.directed ? GenerateDirectedGlp(glp)
                                              : GenerateGlp(glp));
      if (dataset.weighted) {
        AssignUniformWeights(&edges, 1, 9, DeriveSeed(dataset.seed, 97));
      }
      edges.Normalize();
      HOPDB_ASSIGN_OR_RETURN(graph, CsrGraph::FromEdgeList(edges));
    } else {
      const DatasetSpec* registry = FindDataset(dataset.name);
      if (registry == nullptr) {
        return Status::InvalidArgument("unknown dataset '" + dataset.name +
                                       "'");
      }
      LoadOptions load;
      load.scale = dataset.scale * options.scale;
      load.data_dir = options.data_dir;
      HOPDB_ASSIGN_OR_RETURN(graph, LoadDataset(*registry, load));
    }

    EvalDatasetResult row;
    row.name = dataset.name;
    row.vertices = graph.num_vertices();
    row.edges = graph.num_edges();
    row.directed = graph.directed();
    row.weighted = graph.weighted();

    // 2. One build; every variant re-expresses these labels.
    Stopwatch build_watch;
    HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Build(graph));
    row.build_seconds = build_watch.Seconds();
    row.label_entries = index.label_index().TotalEntries();
    row.avg_label = index.AvgLabelSize();
    row.index_bytes = index.PaperSizeBytes();
    max_build_seconds = std::max(max_build_seconds, row.build_seconds);
    max_avg_label = std::max(max_avg_label, row.avg_label);

    VariantSet variants;
    HOPDB_RETURN_NOT_OK(
        PrepareVariants(spec, options, dataset.name, index, &variants));

    // 3. Workloads x variants.
    const std::vector<QueryPair> pairs =
        RandomPairs(graph.num_vertices(), spec.num_queries, spec.query_seed);
    std::string verify_error;
    for (const EvalWorkload& workload : spec.workloads) {
      bool have_reference = false;
      uint64_t reference_checksum = 0;  // variant agreement
      for (const char* variant : kEvalVariants) {
        if (!WantVariant(spec, variant)) continue;
        EvalWorkloadResult result;
        switch (workload.kind) {
          case EvalWorkload::Kind::kDist:
          case EvalWorkload::Kind::kReach:
            result = RunDistLike(workload, variant, variants, pairs);
            break;
          case EvalWorkload::Kind::kBatch:
            result = RunBatch(workload, variant, variants, pairs);
            break;
          case EvalWorkload::Kind::kKnn:
          case EvalWorkload::Kind::kWithin:
            result = RunKnnOrWithin(workload, variant, variants, pairs);
            break;
          case EvalWorkload::Kind::kPath:
            result = RunPath(variant, variants, graph, pairs, &verify_error);
            break;
        }
        if (result.supported) {
          if (!have_reference) {
            have_reference = true;
            reference_checksum = result.checksum;
          } else if (result.checksum != reference_checksum) {
            variants_agree = false;
          }
          if (workload.kind == EvalWorkload::Kind::kDist &&
              std::string(variant) == "heap") {
            max_dist_avg_us = std::max(max_dist_avg_us, result.avg_us);
          }
        }
        row.workloads.push_back(std::move(result));
      }
    }

    // 4. Oracle verification: exact distances + WITHIN/REACH/PATH legs.
    if (spec.verify_sources > 0) {
      VerifyOptions verify;
      verify.sample_sources = spec.verify_sources;
      verify.seed = DeriveSeed(spec.query_seed, 1);
      const Status exact = VerifyExactDistances(
          graph,
          [&index](VertexId s, VertexId t) { return index.Query(s, t); },
          verify);
      if (!exact.ok() && verify_error.empty()) {
        verify_error = exact.ToString();
      }
      if (verify_error.empty()) {
        verify_error = OracleSpotCheck(spec, graph, index);
      }
      row.verify = verify_error.empty() ? "pass" : verify_error;
    } else if (!verify_error.empty()) {
      // The PATH workload validates its answers even with verification
      // off; a mismatch there must still fail the gate.
      row.verify = verify_error;
    }
    if (!verify_error.empty()) verified = false;
    report.datasets.push_back(std::move(row));
  }

  // 5. Order-of-magnitude expectations. Bounds are deliberately loose —
  // they catch regressions of 10x, not 10%; bench/ carries the tight
  // numbers.
  const auto expect = [&report](const std::string& name, double value,
                                double min_value, double max_value) {
    EvalExpectation e;
    e.name = name;
    e.value = value;
    e.min_value = min_value;
    e.max_value = max_value;
    e.pass = value >= min_value && value <= max_value;
    report.expectations.push_back(e);
  };
  // Paper order of magnitude: microsecond point queries, label sizes in
  // the tens-to-hundreds, builds in seconds at harness scale.
  expect("dist_avg_us_max", max_dist_avg_us, 0, 2000);
  expect("avg_label_size_max", max_avg_label, 1, 1024);
  expect("build_seconds_max", max_build_seconds, 0, 300);
  expect("variant_checksums_agree", variants_agree ? 1 : 0, 1, 1);
  expect("oracle_verified", verified ? 1 : 0, 1, 1);
  return report;
}

std::string RenderEvalMarkdown(const EvalReport& report) {
  std::string md = "# hopdb eval report\n\n";

  md += std::string(kEvalReportSections[0]) + "\n\n";  // ## Environment
  md += std::string("- build: ") + BuildVersion() + " (" + BuildGitSha() +
        ")\n";
  md += "- variants: heap (in-memory, blocked flat mirror), hli2 (mmap v1 "
        "packed), blocked (mmap v2 blocked arenas), compressed (HLC1 "
        "delta-varint)\n\n";

  md += std::string(kEvalReportSections[1]) + "\n\n";  // ## Datasets
  md += "| dataset | vertices | edges | directed | weighted |\n";
  md += "|---|---:|---:|---|---|\n";
  for (const EvalDatasetResult& d : report.datasets) {
    md += "| " + d.name + " | " + std::to_string(d.vertices) + " | " +
          std::to_string(d.edges) + " | " + (d.directed ? "yes" : "no") +
          " | " + (d.weighted ? "yes" : "no") + " |\n";
  }
  md += "\n";

  md += std::string(kEvalReportSections[2]) + "\n\n";  // ## Build
  md += "| dataset | build s | label entries | avg label | index bytes |\n";
  md += "|---|---:|---:|---:|---:|\n";
  for (const EvalDatasetResult& d : report.datasets) {
    md += "| " + d.name + " | " + FormatDouble(d.build_seconds, 2) + " | " +
          std::to_string(d.label_entries) + " | " +
          FormatDouble(d.avg_label, 1) + " | " +
          std::to_string(d.index_bytes) + " |\n";
  }
  md += "\n";

  md += std::string(kEvalReportSections[3]) + "\n\n";  // ## Query workloads
  md += "| dataset | workload | variant | queries | avg us | checksum |\n";
  md += "|---|---|---|---:|---:|---:|\n";
  for (const EvalDatasetResult& d : report.datasets) {
    for (const EvalWorkloadResult& w : d.workloads) {
      md += "| " + d.name + " | " + w.workload + " | " + w.variant + " | ";
      if (w.supported) {
        md += std::to_string(w.queries) + " | " + FormatDouble(w.avg_us, 2) +
              " | " + std::to_string(w.checksum) + " |\n";
      } else {
        md += "— | — | — |\n";
      }
    }
  }
  md += "\n";

  md += std::string(kEvalReportSections[4]) + "\n\n";  // ## Verification
  md += "| dataset | oracle |\n|---|---|\n";
  for (const EvalDatasetResult& d : report.datasets) {
    md += "| " + d.name + " | " + d.verify + " |\n";
  }
  md += "\n";

  md += std::string(kEvalReportSections[5]) + "\n\n";  // ## Expectations
  md += "| expectation | value | range | pass |\n|---|---:|---|---|\n";
  for (const EvalExpectation& e : report.expectations) {
    md += "| " + e.name + " | " + FormatDouble(e.value, 2) + " | [" +
          FormatDouble(e.min_value, 0) + ", " + FormatDouble(e.max_value, 0) +
          "] | " + (e.pass ? "yes" : "**NO**") + " |\n";
  }
  md += "\n";
  md += report.AllPass() ? "All expectations passed.\n"
                         : "EXPECTATION FAILURES — see above.\n";
  return md;
}

std::string RenderEvalJson(const EvalReport& report) {
  std::string json = "{\n  \"datasets\": [\n";
  for (size_t i = 0; i < report.datasets.size(); ++i) {
    const EvalDatasetResult& d = report.datasets[i];
    json += "    {\"name\": \"" + JsonEscape(d.name) + "\", \"vertices\": " +
            std::to_string(d.vertices) + ", \"edges\": " +
            std::to_string(d.edges) + ", \"directed\": " +
            (d.directed ? "true" : "false") + ", \"weighted\": " +
            (d.weighted ? "true" : "false") + ",\n     \"build\": {" +
            "\"seconds\": " + FormatDouble(d.build_seconds, 4) +
            ", \"label_entries\": " + std::to_string(d.label_entries) +
            ", \"avg_label\": " + FormatDouble(d.avg_label, 2) +
            ", \"index_bytes\": " + std::to_string(d.index_bytes) +
            "},\n     \"verify\": \"" + JsonEscape(d.verify) +
            "\",\n     \"workloads\": [\n";
    for (size_t j = 0; j < d.workloads.size(); ++j) {
      const EvalWorkloadResult& w = d.workloads[j];
      json += "      {\"workload\": \"" + w.workload + "\", \"variant\": \"" +
              w.variant + "\", \"supported\": " +
              (w.supported ? "true" : "false") + ", \"queries\": " +
              std::to_string(w.queries) + ", \"avg_us\": " +
              FormatDouble(w.avg_us, 3) + ", \"checksum\": " +
              std::to_string(w.checksum) + "}";
      json += j + 1 < d.workloads.size() ? ",\n" : "\n";
    }
    json += "    ]}";
    json += i + 1 < report.datasets.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"expectations\": [\n";
  for (size_t i = 0; i < report.expectations.size(); ++i) {
    const EvalExpectation& e = report.expectations[i];
    json += "    {\"name\": \"" + e.name + "\", \"value\": " +
            FormatDouble(e.value, 4) + ", \"min\": " +
            FormatDouble(e.min_value, 4) + ", \"max\": " +
            FormatDouble(e.max_value, 4) + ", \"pass\": " +
            (e.pass ? "true" : "false") + "}";
    json += i + 1 < report.expectations.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"all_pass\": ";
  json += report.AllPass() ? "true" : "false";
  json += "\n}\n";
  return json;
}

}  // namespace hopdb
