// Unified evaluation harness behind `hopdb_cli eval`: one entry point
// that materializes the paper's graph families (src/gen stand-ins, or
// real edge lists from --data-dir), builds every index variant, runs
// the query workloads — the paper's DIST plus the richer serving verbs
// (BATCH / KNN / WITHIN / REACH / PATH) — and renders one Markdown +
// JSON report whose numbers are held to order-of-magnitude
// expectations (the CI gate re-asserts them from the JSON).
//
// Index variants (one build, four query-side forms):
//   heap        in-memory HopDbIndex: blocked flat mirror + SIMD kernel
//   hli2        HLI2 v1 file, mmap-served (packed legacy arena layout)
//   blocked     HLI2 v2 file, mmap-served (blocked arenas + skip
//               sidecars — the cache-conscious microarchitecture)
//   compressed  HLC1 delta-varint form queried without expansion
// Every variant answers from the same labels, so checksum agreement
// across variants is itself one of the report's expectations.
//
// The workload spec is a tiny line-oriented text format (ParseEvalSpec;
// fuzzed under tests/fuzz/) so CI and operators can pin custom runs:
//
//   # one directive per line; '#' starts a comment
//   dataset Enron scale=0.5        # Table 6 registry entry
//   graph n=2000 avg-degree=8 directed=1 weighted=1 seed=13
//   variants heap,blocked          # default: all four
//   queries 512 seed=7
//   workload dist
//   workload batch size=16
//   workload knn k=8
//   workload within radius=3
//   workload reach bound=4
//   workload path
//   verify 4                       # oracle sources per dataset

#ifndef HOPDB_EVAL_HARNESS_H_
#define HOPDB_EVAL_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

/// One query workload over a built dataset.
struct EvalWorkload {
  enum class Kind : uint8_t { kDist, kBatch, kKnn, kWithin, kReach, kPath };
  Kind kind = Kind::kDist;
  uint32_t k = 8;            // KNN neighbor count
  Distance radius = 3;       // WITHIN radius
  Distance bound = 4;        // REACH distance bound
  uint32_t batch_size = 16;  // BATCH targets per request
};

/// Lowercase workload name ("dist", "batch", ...), mirroring the wire
/// verb it exercises.
const char* EvalWorkloadName(EvalWorkload::Kind kind);

/// One graph to evaluate: a Table 6 registry dataset by name, or an
/// ad-hoc GLP family member ("graph" directive).
struct EvalDataset {
  std::string name;      // registry name; "glp" for ad-hoc graphs
  double scale = 1.0;    // registry stand-in |V| multiplier
  bool ad_hoc = false;
  VertexId n = 2000;     // ad-hoc parameters
  double avg_degree = 8.0;
  bool directed = false;
  bool weighted = false;
  uint64_t seed = 1;
};

/// Index variant names, in report order (see the file comment).
inline constexpr const char* kEvalVariants[] = {"heap", "hli2", "blocked",
                                                "compressed"};

struct EvalSpec {
  std::vector<EvalDataset> datasets;
  /// Subset of kEvalVariants; empty means all.
  std::vector<std::string> variants;
  uint64_t num_queries = 512;
  uint64_t query_seed = 7;
  std::vector<EvalWorkload> workloads;
  /// Oracle sources per dataset (BFS/Dijkstra ground truth); 0 skips
  /// verification.
  uint32_t verify_sources = 4;
};

/// Parses the workload-spec text above. Client-safe InvalidArgument
/// (with a line number) on malformed input; never crashes — this is a
/// fuzz target. Directive counts and sizes are capped so a hostile
/// spec cannot request unbounded work.
Result<EvalSpec> ParseEvalSpec(const std::string& text);

/// The built-in spec `hopdb_cli eval` runs without --spec: a small
/// graph-family sweep (undirected/directed x unweighted/weighted) over
/// every workload. `ci` shrinks it to CI scale.
std::string DefaultEvalSpecText(bool ci);

struct EvalOptions {
  /// Scratch directory for the on-disk variants (HLI2 files).
  std::string work_dir = ".hopdb_eval";
  /// Directory searched for real "<name>.txt" edge lists first.
  std::string data_dir;
  /// Extra |V| multiplier applied on top of each dataset's scale.
  double scale = 1.0;
};

/// One (workload, variant) measurement.
struct EvalWorkloadResult {
  std::string workload;
  std::string variant;
  /// False when the variant cannot run this workload (e.g. PATH needs
  /// the heap index, compressed has no batch/knn engine) — rendered as
  /// a dash, not an error.
  bool supported = true;
  uint64_t queries = 0;
  double avg_us = 0;
  /// Answer checksum; equal across variants when answers agree.
  uint64_t checksum = 0;
};

struct EvalDatasetResult {
  std::string name;
  VertexId vertices = 0;
  uint64_t edges = 0;
  bool directed = false;
  bool weighted = false;
  double build_seconds = 0;
  uint64_t label_entries = 0;
  double avg_label = 0;
  uint64_t index_bytes = 0;  // paper accounting
  std::vector<EvalWorkloadResult> workloads;
  /// "pass", "skipped", or the first oracle mismatch.
  std::string verify = "skipped";
};

/// One order-of-magnitude gate over the whole run. `value` must land in
/// [min_value, max_value] to pass; the CI gate re-checks these from the
/// JSON so a harness bug cannot silently pass itself.
struct EvalExpectation {
  std::string name;
  double value = 0;
  double min_value = 0;
  double max_value = 0;
  bool pass = false;
};

struct EvalReport {
  std::vector<EvalDatasetResult> datasets;
  std::vector<EvalExpectation> expectations;

  bool AllPass() const;
};

/// Markdown section headers of RenderEvalMarkdown, in order. Stable:
/// tools/check_docs.py drift-checks the OPERATIONS.md eval runbook
/// against this list, and the CI gate locates sections by them.
inline constexpr const char* kEvalReportSections[] = {
    "## Environment", "## Datasets",     "## Build",
    "## Query workloads", "## Verification", "## Expectations"};

/// Runs the whole spec. Errors are per-run (bad dataset name, work_dir
/// not writable, ...); per-variant oracle mismatches land in the
/// report's verification column and expectations instead, so one bad
/// number fails the gate, not the run.
Result<EvalReport> RunEval(const EvalSpec& spec, const EvalOptions& options);

std::string RenderEvalMarkdown(const EvalReport& report);
std::string RenderEvalJson(const EvalReport& report);

}  // namespace hopdb

#endif  // HOPDB_EVAL_HARNESS_H_
