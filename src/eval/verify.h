// Exactness verification against BFS/Dijkstra ground truth — the safety
// net every index implementation is held to in tests and (sampled) in the
// benchmark harness.

#ifndef HOPDB_EVAL_VERIFY_H_
#define HOPDB_EVAL_VERIFY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace hopdb {

struct VerifyOptions {
  /// Sources checked exhaustively against all targets; graphs with fewer
  /// vertices are checked from every source.
  uint32_t sample_sources = 16;
  uint64_t seed = 7;
};

/// Compares `query` (over ORIGINAL vertex ids of `graph`) against exact
/// single-source distances from sampled sources. Returns the first
/// mismatch as an error status.
Status VerifyExactDistances(
    const CsrGraph& graph,
    const std::function<Distance(VertexId, VertexId)>& query,
    const VerifyOptions& options = {});

}  // namespace hopdb

#endif  // HOPDB_EVAL_VERIFY_H_
