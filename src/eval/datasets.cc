#include "eval/datasets.h"

#include <algorithm>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/graph_io.h"
#include "util/logging.h"
#include "util/random.h"

namespace hopdb {

namespace {

std::vector<DatasetSpec> MakeTable6Datasets() {
  // name, group, directed, weighted, paper |V|, paper |E|,
  // stand-in |V| (scale 1.0), stand-in |E|/|V|, tier, seed.
  // Stand-in sizes keep the paper's |V| whenever that is laptop-feasible
  // and otherwise shrink |V| (and for the two rating/social graphs with
  // |E|/|V| > 100, the density) while preserving the density ordering of
  // the paper's table. Tier 0 runs by default; tiers 1-3 opt in via
  // flags (--tier). See DESIGN.md §4 for the substitution rationale.
  return {
      // --- undirected unweighted -------------------------------------
      {"Delicious", "undirected unweighted", false, false, 5300000,
       602000000, 100000, 50.0, 3, 101},
      {"BTC", "undirected unweighted", false, false, 168000000, 361000000,
       400000, 2.1, 2, 102},
      {"FlickrLink", "undirected unweighted", false, false, 1700000,
       31000000, 300000, 18.0, 2, 103},
      {"Skitter", "undirected unweighted", false, false, 1700000, 22000000,
       300000, 13.0, 2, 104},
      {"CatDog", "undirected unweighted", false, false, 624000, 16000000,
       200000, 26.0, 2, 105},
      {"Cat", "undirected unweighted", false, false, 150000, 5000000,
       150000, 20.0, 2, 106},
      {"Flickr", "undirected unweighted", false, false, 106000, 2000000,
       106000, 19.0, 1, 107},
      {"Enron", "undirected unweighted", false, false, 37000, 368000,
       37000, 10.0, 0, 108},
      // --- directed unweighted ---------------------------------------
      {"wikiEng", "directed unweighted", true, false, 17000000, 240000000,
       300000, 14.0, 2, 201},
      {"wikiFr", "directed unweighted", true, false, 5100000, 113000000,
       150000, 22.0, 2, 202},
      {"wikiItaly", "directed unweighted", true, false, 2900000, 105000000,
       100000, 36.0, 3, 203},
      {"Baidu", "directed unweighted", true, false, 2100000, 18000000,
       150000, 8.6, 1, 204},
      {"gplus", "directed unweighted", true, false, 102000, 14000000,
       50000, 30.0, 2, 205},
      {"wikiTalk", "directed unweighted", true, false, 2400000, 5000000,
       150000, 2.1, 1, 206},
      {"slashdot", "directed unweighted", true, false, 77000, 517000,
       77000, 6.7, 0, 207},
      {"epinions", "directed unweighted", true, false, 76000, 509000,
       76000, 6.7, 0, 208},
      {"EuAll", "directed unweighted", true, false, 265000, 420000, 265000,
       1.6, 0, 209},
      // --- synthetic (GLP; the paper's own generator) ----------------
      {"syn1", "synthetic", false, false, 10000000, 700000000, 100000,
       70.0, 3, 301},
      {"syn2", "synthetic", false, false, 20000000, 600000000, 150000,
       30.0, 3, 302},
      {"syn3", "synthetic", false, false, 15000000, 450000000, 120000,
       30.0, 3, 303},
      {"syn4", "synthetic", false, false, 10000000, 200000000, 150000,
       20.0, 3, 304},
      {"syn5", "synthetic", false, false, 1000000, 5000000, 300000, 5.0, 1,
       305},
      {"syn6", "synthetic", false, false, 100000, 1000000, 100000, 10.0, 0,
       306},
      // --- undirected weighted ---------------------------------------
      {"amaRating", "undirected weighted", false, true, 3300000, 11000000,
       150000, 3.3, 1, 401},
      {"epinRating", "undirected weighted", false, true, 876000, 27000000,
       80000, 31.0, 2, 402},
      {"movRating", "undirected weighted", false, true, 9746, 2000000,
       9746, 40.0, 1, 403},
      {"bookRating", "undirected weighted", false, true, 264000, 867000,
       100000, 3.3, 0, 404},
  };
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const std::vector<DatasetSpec>& Table6Datasets() {
  static const std::vector<DatasetSpec>* datasets =
      new std::vector<DatasetSpec>(MakeTable6Datasets());
  return *datasets;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : Table6Datasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

Result<CsrGraph> LoadDataset(const DatasetSpec& spec,
                             const LoadOptions& options) {
  // Real data, if provided.
  if (!options.data_dir.empty()) {
    std::string path = options.data_dir + "/" + spec.name + ".txt";
    if (FileExists(path)) {
      TextGraphOptions topt;
      topt.directed = spec.directed;
      topt.read_weights = spec.weighted;
      HOPDB_ASSIGN_OR_RETURN(EdgeList edges, ReadTextEdgeList(path, topt));
      return CsrGraph::FromEdgeList(edges);
    }
  }

  // GLP stand-in.
  double scale = options.scale > 0 ? options.scale : 1.0;
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(
      std::max<double>(100.0, spec.sim_vertices * scale));
  glp.target_avg_degree = spec.sim_avg_degree;
  glp.seed = spec.seed;

  EdgeList edges;
  if (spec.directed) {
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateDirectedGlp(glp));
  } else {
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateGlp(glp));
  }
  if (spec.weighted) {
    AssignRatingWeights(&edges, /*max_w=*/10, DeriveSeed(spec.seed, 5));
  }
  return CsrGraph::FromEdgeList(edges);
}

}  // namespace hopdb
