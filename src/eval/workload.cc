#include "eval/workload.h"

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/timer.h"

namespace hopdb {

std::vector<QueryPair> RandomPairs(VertexId n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back({static_cast<VertexId>(rng.Below(n)),
                     static_cast<VertexId>(rng.Below(n))});
  }
  return pairs;
}

QueryTiming TimeQueries(
    const std::vector<QueryPair>& pairs,
    const std::function<Distance(VertexId, VertexId)>& query) {
  QueryTiming timing;
  timing.queries = pairs.size();
  Stopwatch watch;
  uint64_t checksum = 0;
  for (const QueryPair& p : pairs) {
    Distance d = query(p.s, p.t);
    if (d != kInfDistance) checksum += d;
  }
  timing.total_seconds = watch.Seconds();
  timing.checksum = checksum;
  timing.avg_micros =
      pairs.empty() ? 0 : timing.total_seconds * 1e6 / pairs.size();
  return timing;
}

}  // namespace hopdb
