#include "eval/verify.h"

#include <cstdint>
#include <string>
#include <vector>

#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {

Status VerifyExactDistances(
    const CsrGraph& graph,
    const std::function<Distance(VertexId, VertexId)>& query,
    const VerifyOptions& options) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::OK();
  Rng rng(options.seed);
  const bool exhaustive = n <= options.sample_sources;
  const uint32_t sources = exhaustive ? n : options.sample_sources;
  for (uint32_t i = 0; i < sources; ++i) {
    VertexId s = exhaustive ? i : static_cast<VertexId>(rng.Below(n));
    std::vector<Distance> truth = ExactDistances(graph, s);
    for (VertexId t = 0; t < n; ++t) {
      Distance got = query(s, t);
      if (got != truth[t]) {
        return Status::Internal(
            "distance mismatch for (" + std::to_string(s) + ", " +
            std::to_string(t) + "): got " +
            (got == kInfDistance ? "inf" : std::to_string(got)) +
            ", want " +
            (truth[t] == kInfDistance ? "inf" : std::to_string(truth[t])));
      }
    }
  }
  return Status::OK();
}

}  // namespace hopdb
