#include "util/random.h"

#include <cstdint>

namespace hopdb {

uint64_t DeriveSeed(uint64_t base_seed, uint64_t stream) {
  SplitMix64 sm(base_seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.Next();
  return sm.Next();
}

}  // namespace hopdb
