// Build provenance, surfaced by STATS (build_git_sha=...) and the
// Prometheus hopdb_build_info gauge so dashboards can correlate a
// latency change with the exact binary that caused it.

#ifndef HOPDB_UTIL_BUILD_INFO_H_
#define HOPDB_UTIL_BUILD_INFO_H_

namespace hopdb {

/// Short git commit sha the binary was configured from, or "unknown"
/// when the source tree was not a git checkout at configure time.
const char* BuildGitSha();

/// Project version (CMake PROJECT_VERSION).
const char* BuildVersion();

}  // namespace hopdb

#endif  // HOPDB_UTIL_BUILD_INFO_H_
