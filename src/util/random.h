// Deterministic, fast pseudo-random number generation.
//
// All randomized components in hopdb (generators, workloads, tie-breaking)
// take an explicit 64-bit seed and use these engines, so every experiment
// is reproducible bit-for-bit across runs and platforms. We do not use
// std::mt19937 because its distribution adapters are not portable across
// standard library implementations.

#ifndef HOPDB_UTIL_RANDOM_H_
#define HOPDB_UTIL_RANDOM_H_

#include <cstdint>

namespace hopdb {

/// SplitMix64: used to seed Xoshiro and for cheap hashing of seeds.
struct SplitMix64 {
  uint64_t state;

  explicit SplitMix64(uint64_t seed) : state(seed) {}

  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** by Blackman & Vigna: the main engine.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    // 128-bit multiply; rejection loop terminates quickly in practice.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Derives a stream-specific seed from a base seed and a stream index, so
/// independent components of one experiment use decorrelated streams.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t stream);

}  // namespace hopdb

#endif  // HOPDB_UTIL_RANDOM_H_
