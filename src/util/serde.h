// Little-endian binary encoding helpers for the on-disk formats (graphs,
// label indexes, external-sort runs). All hopdb disk formats are explicitly
// little-endian and fixed-width so files are portable across machines.

#ifndef HOPDB_UTIL_SERDE_H_
#define HOPDB_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace hopdb {

// ---------------------------------------------------------------------------
// Raw little-endian primitives. x86-64 and aarch64 are little-endian; the
// memcpy form is endian-correct everywhere and optimizes to a single load.
// ---------------------------------------------------------------------------

inline void EncodeU32(uint32_t v, uint8_t* out) { std::memcpy(out, &v, 4); }
inline void EncodeU64(uint64_t v, uint8_t* out) { std::memcpy(out, &v, 8); }

inline uint32_t DecodeU32(const uint8_t* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}

inline uint64_t DecodeU64(const uint8_t* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

// ---------------------------------------------------------------------------
// Append-style encoders used when building headers.
// ---------------------------------------------------------------------------

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

/// LEB128 variable-length encoding: 7 value bits per byte, high bit set on
/// all but the last byte. Values < 128 cost one byte — the common case for
/// label distances and delta-encoded pivot gaps in the compressed index
/// format.
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Decodes a varint from `data`; advances *pos past it. Returns false on
/// truncation or a value exceeding 64 bits.
inline bool GetVarint64(const uint8_t* data, size_t size, size_t* pos,
                        uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    const uint8_t byte = data[*pos];
    ++*pos;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// FNV-1a 64-bit hash; the integrity checksum of hopdb disk formats.
inline uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Sequential reader over a byte buffer with bounds checking.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadVarint64(uint64_t* out);
  Status ReadBytes(void* out, size_t n);
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Whole-file helpers.
// ---------------------------------------------------------------------------

/// Reads an entire file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically-ish writes `data` to `path` (write then rename is overkill for
/// this project; we write directly but fsync before close).
Status WriteStringToFile(const std::string& path, const std::string& data);

/// Removes a file if it exists; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// Returns the size of a file in bytes.
Result<uint64_t> FileSizeBytes(const std::string& path);

}  // namespace hopdb

#endif  // HOPDB_UTIL_SERDE_H_
