// Minimal fork-join parallelism for the label builder's data-parallel
// phases (candidate generation, dedup, pruning, label merge). Deliberately
// tiny: no work stealing, no task queue — each invocation splits [0, n)
// into one contiguous chunk per thread, which preserves chunk-order
// determinism for callers that concatenate per-thread outputs.
//
// ParallelChunks is a header template (not a std::function sink) so the
// builder's tight per-iteration loops pay no type-erasure allocation per
// call: the callable is inlined into each worker's loop.

#ifndef HOPDB_UTIL_PARALLEL_H_
#define HOPDB_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace hopdb {

/// Number of hardware threads (>= 1).
uint32_t HardwareThreads();

/// Runs fn(begin, end, chunk_index) over a partition of [0, n) into
/// min(num_threads, n) contiguous chunks, one per thread (the caller's
/// thread runs the last chunk). Returns after all chunks complete. With
/// num_threads <= 1 or n == 0 the call degenerates to fn(0, n, 0) on the
/// caller's thread. fn must be safe to run concurrently on disjoint
/// ranges.
template <typename Fn>
void ParallelChunks(uint32_t num_threads, size_t n, Fn&& fn) {
  const size_t chunks = std::max<size_t>(1, std::min<size_t>(num_threads, n));
  if (chunks == 1) {
    fn(size_t{0}, n, uint32_t{0});
    return;
  }
  // Even split; the first (n % chunks) chunks carry one extra element.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks - 1);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    if (c + 1 == chunks) {
      fn(begin, end, static_cast<uint32_t>(c));  // caller runs final chunk
    } else {
      workers.emplace_back(
          [&fn, begin, end, c] { fn(begin, end, static_cast<uint32_t>(c)); });
    }
    begin = end;
  }
  for (auto& w : workers) w.join();
}

}  // namespace hopdb

#endif  // HOPDB_UTIL_PARALLEL_H_
