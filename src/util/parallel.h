// Minimal fork-join parallelism for the label builder's embarrassingly
// parallel phases (candidate generation, pruning). Deliberately tiny: no
// work stealing, no task queue — each invocation splits [0, n) into one
// contiguous chunk per thread, which preserves chunk-order determinism for
// callers that concatenate per-thread outputs.

#ifndef HOPDB_UTIL_PARALLEL_H_
#define HOPDB_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace hopdb {

/// Number of hardware threads (>= 1).
uint32_t HardwareThreads();

/// Runs fn(begin, end, chunk_index) over a partition of [0, n) into
/// min(num_threads, n) contiguous chunks, one per thread (the caller's
/// thread runs the last chunk). Returns after all chunks complete. With
/// num_threads <= 1 or n == 0 the call degenerates to fn(0, n, 0) on the
/// caller's thread. fn must be safe to run concurrently on disjoint
/// ranges.
void ParallelChunks(
    uint32_t num_threads, size_t n,
    const std::function<void(size_t begin, size_t end, uint32_t chunk)>& fn);

}  // namespace hopdb

#endif  // HOPDB_UTIL_PARALLEL_H_
