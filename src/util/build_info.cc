#include "util/build_info.h"

// HOPDB_GIT_SHA / HOPDB_VERSION are injected as compile definitions on
// this one translation unit by CMakeLists.txt, so touching the sha only
// recompiles this file.

namespace hopdb {

const char* BuildGitSha() {
#ifdef HOPDB_GIT_SHA
  return HOPDB_GIT_SHA;
#else
  return "unknown";
#endif
}

const char* BuildVersion() {
#ifdef HOPDB_VERSION
  return HOPDB_VERSION;
#else
  return "0.0.0";
#endif
}

}  // namespace hopdb
