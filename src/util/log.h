// Structured JSON event log: one self-describing JSON object per line on
// stderr, machine-parseable by log shippers and greppable by humans.
// Used server-wide for operational events (start/stop, index lifecycle,
// slow queries) instead of ad-hoc stderr prints.
//
// Usage:
//   JsonLogLine(JsonLogLevel::kWarning, "slow_query")
//       .Num("total_us", total)
//       .Str("verb", "dist");
// emits (atomically, on destruction):
//   {"ts":1723111845.123,"level":"warning","event":"slow_query",
//    "total_us":1234,"verb":"dist"}
//
// Lines below the process-wide minimum level are dropped at construction
// time, so a disabled line costs one relaxed atomic load and builds no
// string. The default minimum is kWarning: a library user sees nothing
// unless something is wrong; `hopdb_cli serve` raises verbosity to kInfo
// so operators get lifecycle events.

#ifndef HOPDB_UTIL_LOG_H_
#define HOPDB_UTIL_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace hopdb {

enum class JsonLogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Process-wide minimum level; lines below it are dropped.
void SetJsonLogMinLevel(JsonLogLevel level);
JsonLogLevel GetJsonLogMinLevel();

/// Test hook: redirect emitted lines (without the trailing newline) to
/// `sink` instead of stderr. Pass nullptr to restore stderr. Not
/// thread-safe against concurrent emission; install before starting the
/// server under test.
void SetJsonLogSink(std::function<void(const std::string&)> sink);

/// One JSON log line, built field by field and emitted on destruction.
class JsonLogLine {
 public:
  JsonLogLine(JsonLogLevel level, std::string_view event);
  ~JsonLogLine();

  JsonLogLine(const JsonLogLine&) = delete;
  JsonLogLine& operator=(const JsonLogLine&) = delete;

  JsonLogLine& Str(std::string_view key, std::string_view value);
  JsonLogLine& Num(std::string_view key, uint64_t value);
  /// Fixed-point double (FormatDouble semantics), e.g. ratios/seconds.
  JsonLogLine& Fixed(std::string_view key, double value, int decimals);
  JsonLogLine& Bool(std::string_view key, bool value);

 private:
  void AppendKey(std::string_view key);

  bool enabled_;
  std::string line_;
};

}  // namespace hopdb

#endif  // HOPDB_UTIL_LOG_H_
