// Wall-clock stopwatch and deadline helpers used by builders and benches.

#ifndef HOPDB_UTIL_TIMER_H_
#define HOPDB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hopdb {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft wall-clock budget. `seconds <= 0` means "no deadline".
/// Builders poll Exceeded() at iteration boundaries and return
/// Status::DeadlineExceeded, which benchmark tables render as "—"
/// (the paper's DNF marker).
class Deadline {
 public:
  explicit Deadline(double seconds = 0.0) : budget_seconds_(seconds) {}

  bool enabled() const { return budget_seconds_ > 0.0; }

  bool Exceeded() const {
    return enabled() && watch_.Seconds() > budget_seconds_;
  }

  double RemainingSeconds() const {
    if (!enabled()) return 1e18;
    return budget_seconds_ - watch_.Seconds();
  }

 private:
  double budget_seconds_;
  Stopwatch watch_;
};

}  // namespace hopdb

#endif  // HOPDB_UTIL_TIMER_H_
