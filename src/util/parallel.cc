#include "util/parallel.h"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace hopdb {

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelChunks(
    uint32_t num_threads, size_t n,
    const std::function<void(size_t begin, size_t end, uint32_t chunk)>& fn) {
  const size_t chunks =
      std::max<size_t>(1, std::min<size_t>(num_threads, n));
  if (chunks == 1) {
    fn(0, n, 0);
    return;
  }
  // Even split; the first (n % chunks) chunks carry one extra element.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks - 1);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    if (c + 1 == chunks) {
      fn(begin, end, static_cast<uint32_t>(c));  // caller runs final chunk
    } else {
      workers.emplace_back(
          [&fn, begin, end, c] { fn(begin, end, static_cast<uint32_t>(c)); });
    }
    begin = end;
  }
  for (auto& w : workers) w.join();
}

}  // namespace hopdb
