#include "util/parallel.h"

#include <algorithm>
#include <thread>

namespace hopdb {

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace hopdb
