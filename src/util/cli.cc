#include "util/cli.h"

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/logging.h"
#include "util/string_util.h"

namespace hopdb {

void CliFlags::Define(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  Flag f;
  f.value = default_value;
  f.default_value = default_value;
  f.help = help;
  flags_[name] = f;
}

void CliFlags::DefineRepeatable(const std::string& name,
                                const std::string& help) {
  Flag f;
  f.help = help;
  f.repeatable = true;
  flags_[name] = f;
}

Status CliFlags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      // Boolean flags may omit the value ("--full"). Other flags take the
      // next argv entry.
      const std::string& dflt = it->second.default_value;
      if (dflt == "true" || dflt == "false") {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " needs a value");
        }
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    it->second.value = value;
    if (it->second.repeatable) it->second.values.push_back(value);
  }
  return Status::OK();
}

std::string CliFlags::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  HOPDB_CHECK(it != flags_.end()) << "undefined flag " << name;
  return it->second.value;
}

int64_t CliFlags::GetInt(const std::string& name) const {
  return static_cast<int64_t>(std::strtoll(GetString(name).c_str(), nullptr, 10));
}

uint64_t CliFlags::GetUint(const std::string& name) const {
  uint64_t v = 0;
  HOPDB_CHECK(ParseUint64(GetString(name), &v))
      << "flag --" << name << " is not a non-negative integer";
  return v;
}

double CliFlags::GetDouble(const std::string& name) const {
  double v = 0;
  HOPDB_CHECK(ParseDouble(GetString(name), &v))
      << "flag --" << name << " is not a number";
  return v;
}

const std::vector<std::string>& CliFlags::GetStrings(
    const std::string& name) const {
  auto it = flags_.find(name);
  HOPDB_CHECK(it != flags_.end()) << "undefined flag " << name;
  HOPDB_CHECK(it->second.repeatable) << "flag --" << name
                                     << " is not repeatable";
  return it->second.values;
}

bool CliFlags::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  HOPDB_LOG(Fatal) << "flag --" << name << " is not a boolean: " << v;
  return false;
}

std::string CliFlags::Usage(const std::string& program_description) const {
  std::string out = program_description + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name +
           (flag.repeatable
                ? " (repeatable)"
                : " (default: " +
                      (flag.default_value.empty() ? "\"\""
                                                  : flag.default_value) +
                      ")") +
           "\n";
    out += "      " + flag.help + "\n";
  }
  return out;
}

}  // namespace hopdb
