// Small string formatting helpers shared by benches, tables, and logs.

#ifndef HOPDB_UTIL_STRING_UTIL_H_
#define HOPDB_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hopdb {

/// "1.2K", "3.4M", "5.6G" style counts (powers of 1000).
std::string HumanCount(uint64_t n);

/// "1.2 KB", "3.4 MB", "5.6 GB" style byte sizes (powers of 1024).
std::string HumanBytes(uint64_t bytes);

/// Fixed-point formatting: FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int decimals);

/// Seconds rendered adaptively: "853us", "12.3ms", "4.56s", "2m03s".
std::string HumanDuration(double seconds);

/// Splits on a delimiter, dropping empty pieces when `skip_empty`.
std::vector<std::string> SplitString(const std::string& s, char delim,
                                     bool skip_empty = true);

/// Removes leading and trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

/// Parses a non-negative integer; returns false on any non-digit content.
bool ParseUint64(const std::string& s, uint64_t* out);

/// Parses a double via strtod; returns false on trailing garbage.
bool ParseDouble(const std::string& s, double* out);

}  // namespace hopdb

#endif  // HOPDB_UTIL_STRING_UTIL_H_
