// Status and Result<T>: exception-free error handling in the style of
// Apache Arrow / RocksDB. Every fallible operation in hopdb returns a
// Status (or a Result<T> when it also produces a value); callers either
// handle the error or propagate it with HOPDB_RETURN_NOT_OK /
// HOPDB_ASSIGN_OR_RETURN.

#ifndef HOPDB_UTIL_STATUS_H_
#define HOPDB_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace hopdb {

/// Machine-readable error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kDeadlineExceeded = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
};

/// Returns a short human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if not OK. Use only where an
  /// error indicates a programming bug (e.g. in tests and examples).
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return value_.has_value() ? kOk : status_;
  }

  /// Returns the contained value. Undefined if !ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, aborting with a diagnostic on error.
  T ValueOrDie() && {
    status().CheckOK();
    return std::move(*value_);
  }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized Result");
};

}  // namespace hopdb

#define HOPDB_CONCAT_IMPL(x, y) x##y
#define HOPDB_CONCAT(x, y) HOPDB_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status to the caller. The temporary gets a
/// line-unique name so nested expansions don't shadow each other.
#define HOPDB_RETURN_NOT_OK(expr)                                 \
  do {                                                            \
    ::hopdb::Status HOPDB_CONCAT(_st_, __LINE__) = (expr);        \
    if (!HOPDB_CONCAT(_st_, __LINE__).ok())                       \
      return HOPDB_CONCAT(_st_, __LINE__);                        \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the Status to the caller.
#define HOPDB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto HOPDB_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!HOPDB_CONCAT(_res_, __LINE__).ok())                        \
    return HOPDB_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(HOPDB_CONCAT(_res_, __LINE__)).value()

#endif  // HOPDB_UTIL_STATUS_H_
