// Minimal leveled logger plus CHECK macros, in the spirit of
// glog-without-glog used by Arrow and RocksDB internals.
//
//   HOPDB_LOG(INFO) << "built " << n << " labels";
//   HOPDB_CHECK(x > 0) << "x must be positive, got " << x;
//   HOPDB_DCHECK_LE(a, b);   // compiled out in NDEBUG builds
//
// The default minimum level is WARNING so that library code stays quiet in
// tests and benchmarks; callers (benches, examples) raise verbosity via
// SetLogLevel.

#ifndef HOPDB_UTIL_LOGGING_H_
#define HOPDB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace hopdb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace hopdb

#define HOPDB_LOG_INTERNAL(level)                                       \
  ::hopdb::internal::LogMessage(::hopdb::LogLevel::level, __FILE__, __LINE__) \
      .stream()

#define HOPDB_LOG(severity) HOPDB_LOG_INTERNAL(k##severity)

#define HOPDB_CHECK(cond)                                          \
  if (!(cond))                                                     \
  HOPDB_LOG(Fatal) << "Check failed: " #cond " "

#define HOPDB_CHECK_OP(op, a, b) HOPDB_CHECK((a)op(b))
#define HOPDB_CHECK_EQ(a, b) HOPDB_CHECK_OP(==, a, b)
#define HOPDB_CHECK_NE(a, b) HOPDB_CHECK_OP(!=, a, b)
#define HOPDB_CHECK_LT(a, b) HOPDB_CHECK_OP(<, a, b)
#define HOPDB_CHECK_LE(a, b) HOPDB_CHECK_OP(<=, a, b)
#define HOPDB_CHECK_GT(a, b) HOPDB_CHECK_OP(>, a, b)
#define HOPDB_CHECK_GE(a, b) HOPDB_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define HOPDB_DCHECK(cond) \
  while (false) HOPDB_CHECK(cond)
#else
#define HOPDB_DCHECK(cond) HOPDB_CHECK(cond)
#endif

#define HOPDB_DCHECK_EQ(a, b) HOPDB_DCHECK((a) == (b))
#define HOPDB_DCHECK_NE(a, b) HOPDB_DCHECK((a) != (b))
#define HOPDB_DCHECK_LT(a, b) HOPDB_DCHECK((a) < (b))
#define HOPDB_DCHECK_LE(a, b) HOPDB_DCHECK((a) <= (b))
#define HOPDB_DCHECK_GT(a, b) HOPDB_DCHECK((a) > (b))
#define HOPDB_DCHECK_GE(a, b) HOPDB_DCHECK((a) >= (b))

#endif  // HOPDB_UTIL_LOGGING_H_
