#include "util/status.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hopdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Status::CheckOK failed: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hopdb
