#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace hopdb {

namespace {
std::string FormatScaled(double v, const char* suffix) {
  char buf[64];
  if (v >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", v, suffix);
  } else if (v >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
  }
  return buf;
}
}  // namespace

std::string HumanCount(uint64_t n) {
  if (n < 1000) return std::to_string(n);
  double v = static_cast<double>(n);
  if (n < 1000ULL * 1000) return FormatScaled(v / 1e3, "K");
  if (n < 1000ULL * 1000 * 1000) return FormatScaled(v / 1e6, "M");
  return FormatScaled(v / 1e9, "G");
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes < 1024) return std::to_string(bytes) + " B";
  double v = static_cast<double>(bytes);
  if (bytes < 1024ULL * 1024) return FormatScaled(v / 1024, " KB");
  if (bytes < 1024ULL * 1024 * 1024) return FormatScaled(v / (1024.0 * 1024), " MB");
  return FormatScaled(v / (1024.0 * 1024 * 1024), " GB");
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string HumanDuration(double seconds) {
  char buf[64];
  if (seconds < 0) return "-";
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    int mins = static_cast<int>(seconds / 60);
    int secs = static_cast<int>(seconds) % 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", mins, secs);
  }
  return buf;
}

std::vector<std::string> SplitString(const std::string& s, char delim,
                                     bool skip_empty) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      if (!cur.empty() || !skip_empty) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty() || !skip_empty) out.push_back(cur);
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         std::memcmp(s.data() + s.size() - suffix.size(), suffix.data(),
                     suffix.size()) == 0;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t next = v * 10 + static_cast<uint64_t>(c - '0');
    if (next < v) return false;  // overflow
    v = next;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace hopdb
