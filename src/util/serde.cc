#include "util/serde.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

namespace hopdb {

Status ByteReader::ReadU8(uint8_t* out) {
  if (remaining() < 1) return Status::OutOfRange("ReadU8 past end of buffer");
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  if (remaining() < 4) return Status::OutOfRange("ReadU32 past end of buffer");
  *out = DecodeU32(data_ + pos_);
  pos_ += 4;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  if (remaining() < 8) return Status::OutOfRange("ReadU64 past end of buffer");
  *out = DecodeU64(data_ + pos_);
  pos_ += 8;
  return Status::OK();
}

Status ByteReader::ReadVarint64(uint64_t* out) {
  if (!GetVarint64(data_, size_, &pos_, out)) {
    return Status::OutOfRange("ReadVarint64: truncated or oversized varint");
  }
  return Status::OK();
}

Status ByteReader::ReadBytes(void* out, size_t n) {
  if (remaining() < n) {
    return Status::OutOfRange("ReadBytes past end of buffer");
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::OutOfRange("Skip past end of buffer");
  pos_ += n;
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("ftell failed for " + path);
  }
  out->resize(static_cast<size_t>(size));
  size_t got = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  size_t put = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int rc = std::fclose(f);
  if (put != data.size() || rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink failed for " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat failed for " + path + ": " +
                           std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace hopdb
