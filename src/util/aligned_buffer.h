// Cache-line-aligned flat arrays. The flat label store keeps its pivot
// and distance arenas 64-byte aligned so a label's first SIMD block never
// straddles an extra cache line and streaming scans start on a line
// boundary.

#ifndef HOPDB_UTIL_ALIGNED_BUFFER_H_
#define HOPDB_UTIL_ALIGNED_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

namespace hopdb {

/// Fixed-size uint32 array whose storage is aligned to kAlignment bytes.
/// Unlike std::vector there is no incremental growth path — callers size
/// the array up front — which keeps the invariant "data() is 64-byte
/// aligned for the buffer's whole lifetime" trivially true. Deep-copyable
/// and movable; a moved-from buffer is empty.
///
/// ResetDiscard supports arena reuse: repeated fill cycles (the builder's
/// per-iteration witness snapshots) resize without reallocating once the
/// high-water capacity is reached, so steady-state rebuilds touch no
/// allocator and no fresh pages.
class AlignedU32Array {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedU32Array() = default;
  explicit AlignedU32Array(size_t size) { Allocate(size); }

  AlignedU32Array(const AlignedU32Array& other) {
    Allocate(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(uint32_t));
  }
  AlignedU32Array& operator=(const AlignedU32Array& other) {
    if (this != &other) {
      AlignedU32Array copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  AlignedU32Array(AlignedU32Array&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedU32Array& operator=(AlignedU32Array&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedU32Array() { Free(); }

  uint32_t* data() { return data_; }
  const uint32_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint32_t& operator[](size_t i) { return data_[i]; }
  uint32_t operator[](size_t i) const { return data_[i]; }

  uint64_t SizeBytes() const { return size_ * sizeof(uint32_t); }

  /// Resizes to `size` without preserving contents, reallocating only
  /// when `size` exceeds the high-water capacity — with 1.5x growth
  /// headroom, so a sequence of slowly growing resets (the builder's
  /// per-iteration snapshots during the label growth phase) amortizes to
  /// O(log) reallocations instead of one per call. Existing pointers are
  /// invalidated only on reallocation; contents are indeterminate either
  /// way.
  void ResetDiscard(size_t size) {
    if (size > capacity_) {
      const size_t grown = std::max(size, capacity_ + capacity_ / 2);
      Free();
      Allocate(grown);
    }
    size_ = size;
  }

  size_t capacity() const { return capacity_; }

 private:
  void Allocate(size_t size) {
    size_ = size;
    capacity_ = size;
    data_ = size == 0 ? nullptr
                      : static_cast<uint32_t*>(::operator new(
                            size * sizeof(uint32_t),
                            std::align_val_t(kAlignment)));
  }
  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kAlignment));
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  uint32_t* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace hopdb

#endif  // HOPDB_UTIL_ALIGNED_BUFFER_H_
