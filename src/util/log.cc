#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/string_util.h"

namespace hopdb {

namespace {

std::atomic<int> g_min_level{static_cast<int>(JsonLogLevel::kWarning)};

// Guards emission (one write per line keeps lines whole anyway, but the
// sink override makes the mutex the simple correct choice) and the sink.
std::mutex g_emit_mu;
std::function<void(const std::string&)>& Sink() {
  static std::function<void(const std::string&)> sink;
  return sink;
}

const char* LevelName(JsonLogLevel level) {
  switch (level) {
    case JsonLogLevel::kDebug:
      return "debug";
    case JsonLogLevel::kInfo:
      return "info";
    case JsonLogLevel::kWarning:
      return "warning";
    case JsonLogLevel::kError:
      return "error";
  }
  return "unknown";
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void SetJsonLogMinLevel(JsonLogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

JsonLogLevel GetJsonLogMinLevel() {
  return static_cast<JsonLogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetJsonLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_emit_mu);
  Sink() = std::move(sink);
}

JsonLogLine::JsonLogLine(JsonLogLevel level, std::string_view event)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  const double ts =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count() /
      1000.0;
  line_ = "{\"ts\":" + FormatDouble(ts, 3) + ",\"level\":\"";
  line_ += LevelName(level);
  line_ += "\",\"event\":\"";
  AppendJsonEscaped(&line_, event);
  line_ += '"';
}

JsonLogLine::~JsonLogLine() {
  if (!enabled_) return;
  line_ += '}';
  std::lock_guard<std::mutex> lock(g_emit_mu);
  if (Sink()) {
    Sink()(line_);
  } else {
    std::fprintf(stderr, "%s\n", line_.c_str());
  }
}

void JsonLogLine::AppendKey(std::string_view key) {
  line_ += ",\"";
  AppendJsonEscaped(&line_, key);
  line_ += "\":";
}

JsonLogLine& JsonLogLine::Str(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += '"';
  AppendJsonEscaped(&line_, value);
  line_ += '"';
  return *this;
}

JsonLogLine& JsonLogLine::Num(std::string_view key, uint64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += std::to_string(value);
  return *this;
}

JsonLogLine& JsonLogLine::Fixed(std::string_view key, double value,
                                int decimals) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += FormatDouble(value, decimals);
  return *this;
}

JsonLogLine& JsonLogLine::Bool(std::string_view key, bool value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace hopdb
