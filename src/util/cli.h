// A tiny --flag=value / --flag value command-line parser for the bench and
// example binaries. Deliberately minimal: no subcommands, no config files.
//
//   CliFlags flags;
//   flags.Define("scale", "1", "dataset scale factor");
//   flags.Define("full", "false", "run the full (slow) dataset set");
//   HOPDB_CHECK(flags.Parse(argc, argv).ok());
//   double scale = flags.GetDouble("scale");

#ifndef HOPDB_UTIL_CLI_H_
#define HOPDB_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace hopdb {

class CliFlags {
 public:
  /// Registers a flag with a default value and a help string.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Registers a flag that may be given multiple times; every occurrence
  /// is collected in order and read back with GetStrings. GetString on a
  /// repeatable flag returns the last occurrence (or "" when unset).
  void DefineRepeatable(const std::string& name, const std::string& help);

  /// Parses argv. Unknown flags are errors; positional args are collected.
  /// "--help" sets help_requested() and is not an error.
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  uint64_t GetUint(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  /// true/1/yes/on are true; false/0/no/off are false.
  bool GetBool(const std::string& name) const;
  /// All occurrences of a repeatable flag, in command-line order (empty
  /// when the flag was never given).
  const std::vector<std::string>& GetStrings(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  /// Renders "--name (default: v)  help" usage text.
  std::string Usage(const std::string& program_description) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool repeatable = false;
    std::vector<std::string> values;  // repeatable flags only
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace hopdb

#endif  // HOPDB_UTIL_CLI_H_
