#include "tools/commands.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/graph_io.h"
#include "graph/ordering.h"
#include "hopdb.h"
#include "labeling/compressed_index.h"
#include "labeling/incremental.h"
#include "labeling/mapped_index.h"
#include "server/client.h"
#include "server/index_registry.h"
#include "server/server.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {

namespace {

bool IsBinaryGraphPath(const std::string& path) {
  return EndsWith(path, ".hgr") || EndsWith(path, ".bin");
}

Result<BuildMode> ParseMode(const std::string& name) {
  if (name == "hybrid") return BuildMode::kHybrid;
  if (name == "stepping" || name == "step") return BuildMode::kHopStepping;
  if (name == "doubling" || name == "double") return BuildMode::kHopDoubling;
  return Status::InvalidArgument("unknown --mode '" + name +
                                 "' (hybrid | stepping | doubling)");
}

Result<OrderStrategy> ParseOrder(const std::string& name) {
  if (name == "degree") return OrderStrategy::kDegree;
  if (name == "inout") return OrderStrategy::kInOutProduct;
  if (name == "neighborhood") return OrderStrategy::kNeighborhoodDegree;
  if (name == "degeneracy") return OrderStrategy::kDegeneracy;
  if (name == "betweenness") return OrderStrategy::kSampledBetweenness;
  if (name == "separator") return OrderStrategy::kSeparator;
  if (name == "random") return OrderStrategy::kRandom;
  return Status::InvalidArgument(
      "unknown --order '" + name +
      "' (auto | degree | inout | neighborhood | degeneracy | betweenness "
      "| separator | random)");
}

// ---------------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------------

Status CmdGen(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("type", "glp", "generator: glp | ba | er");
  flags->Define("n", "10000", "number of vertices");
  flags->Define("avg-degree", "8", "average degree (|E|/|V|)");
  flags->Define("directed", "false", "generate a directed graph");
  flags->Define("weighted", "false", "assign uniform random weights");
  flags->Define("wmin", "1", "minimum edge weight (with --weighted)");
  flags->Define("wmax", "9", "maximum edge weight (with --weighted)");
  flags->Define("seed", "1", "generator seed");
  flags->Define("out", "", "output path (.hgr/.bin binary, else text)");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::string type = flags->GetString("type");
  const std::string out_path = flags->GetString("out");
  if (out_path.empty()) {
    return Status::InvalidArgument("gen requires --out <path>");
  }
  const VertexId n = static_cast<VertexId>(flags->GetUint("n"));
  const double avg_degree = flags->GetDouble("avg-degree");
  const bool directed = flags->GetBool("directed");
  const uint64_t seed = flags->GetUint("seed");

  EdgeList edges;
  if (type == "glp") {
    GlpOptions glp;
    glp.num_vertices = n;
    glp.target_avg_degree = avg_degree;
    glp.seed = seed;
    HOPDB_ASSIGN_OR_RETURN(edges, directed ? GenerateDirectedGlp(glp)
                                           : GenerateGlp(glp));
  } else if (type == "ba") {
    BaOptions ba;
    ba.num_vertices = n;
    ba.edges_per_vertex =
        std::max<uint32_t>(1, static_cast<uint32_t>(avg_degree / 2));
    ba.seed = seed;
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateBarabasiAlbert(ba));
    if (directed) {
      EdgeList dir_edges(edges.num_vertices(), true);
      for (const Edge& e : edges.edges()) dir_edges.Add(e.src, e.dst);
      dir_edges.Normalize();
      edges = std::move(dir_edges);
    }
  } else if (type == "er") {
    ErOptions er;
    er.num_vertices = n;
    er.num_edges = static_cast<uint64_t>(avg_degree * n);
    er.directed = directed;
    er.seed = seed;
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateErdosRenyi(er));
  } else {
    return Status::InvalidArgument("unknown --type '" + type +
                                   "' (glp | ba | er)");
  }
  if (flags->GetBool("weighted")) {
    AssignUniformWeights(&edges,
                         static_cast<Distance>(flags->GetUint("wmin")),
                         static_cast<Distance>(flags->GetUint("wmax")),
                         DeriveSeed(seed, 97));
  }

  HOPDB_RETURN_NOT_OK(IsBinaryGraphPath(out_path)
                          ? WriteBinaryGraph(edges, out_path)
                          : WriteTextEdgeList(edges, out_path));
  out << "generated " << type << " graph: |V|=" << edges.num_vertices()
      << " |E|=" << edges.edges().size()
      << (edges.directed() ? " directed" : " undirected")
      << (edges.weighted() ? " weighted" : "") << " -> " << out_path
      << "\n";
  return Status::OK();
}

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

Status CmdBuild(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("graph", "", "input edge-list file (text or .hgr binary)");
  flags->Define("directed", "false", "treat the text edge list as directed");
  flags->Define("weighted", "false", "read weights from the text edge list");
  flags->Define("mode", "hybrid", "hybrid | stepping | doubling");
  flags->Define("switch", "10", "hybrid switch iteration");
  flags->Define("threads", "0", "worker threads (0 = all cores)");
  flags->Define("order", "auto",
                "vertex order: auto | degree | inout | neighborhood | "
                "degeneracy | betweenness | separator | random");
  flags->Define("budget", "0", "time budget in seconds (0 = none)");
  flags->Define("out", "", "output index path");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::string graph_path = flags->GetString("graph");
  const std::string out_path = flags->GetString("out");
  if (graph_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("build requires --graph and --out");
  }

  HOPDB_ASSIGN_OR_RETURN(EdgeList edges,
                         LoadGraphFile(graph_path, flags->GetBool("directed"),
                                       flags->GetBool("weighted")));
  edges.Normalize();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, CsrGraph::FromEdgeList(edges));

  HopDbOptions options;
  HOPDB_ASSIGN_OR_RETURN(options.build.mode,
                         ParseMode(flags->GetString("mode")));
  options.build.hybrid_switch_iteration =
      static_cast<uint32_t>(flags->GetUint("switch"));
  options.build.num_threads = static_cast<uint32_t>(flags->GetUint("threads"));
  options.build.time_budget_seconds = flags->GetDouble("budget");
  const std::string order_name = flags->GetString("order");
  if (order_name != "auto") {
    HOPDB_ASSIGN_OR_RETURN(OrderStrategy strategy, ParseOrder(order_name));
    options.ranking = HopDbOptions::Ranking::kCustom;
    HOPDB_ASSIGN_OR_RETURN(options.custom_order,
                           ComputeOrder(graph, strategy));
  }

  Stopwatch watch;
  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Build(graph, options));
  const double seconds = watch.Seconds();
  HOPDB_RETURN_NOT_OK(index.Save(out_path));

  const BuildStats& stats = index.build_stats();
  out << "built index over |V|=" << graph.num_vertices()
      << " |E|=" << graph.num_edges() << "\n"
      << "  mode            " << flags->GetString("mode") << " (order "
      << order_name << ", threads "
      << (flags->GetUint("threads") == 0
              ? std::string("auto")
              : std::to_string(flags->GetUint("threads")))
      << ")\n"
      << "  iterations      " << stats.num_rule_iterations << "\n"
      << "  label entries   " << index.label_index().TotalEntries() << "\n"
      << "  avg |label|     " << index.AvgLabelSize() << "\n"
      << "  index size      " << index.PaperSizeBytes() << " bytes (paper "
      << "accounting)\n"
      << "  build time      " << seconds << " s\n"
      << "  saved to        " << out_path << " (+ .perm)\n";
  return Status::OK();
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

Status CmdQuery(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("index", "", "index path (from hopdb_cli build)");
  flags->Define("src", "", "query source (with --dst)");
  flags->Define("dst", "", "query destination");
  flags->Define("random", "0", "run N random queries instead");
  flags->Define("seed", "7", "random query seed");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::string index_path = flags->GetString("index");
  if (index_path.empty()) {
    return Status::InvalidArgument("query requires --index");
  }
  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Load(index_path));

  auto print_one = [&](VertexId s, VertexId t) {
    const Distance d = index.Query(s, t);
    out << "dist(" << s << ", " << t << ") = ";
    if (d == kInfDistance) {
      out << "INF\n";
    } else {
      out << d << "\n";
    }
  };

  const uint64_t random_n = flags->GetUint("random");
  if (random_n > 0) {
    Rng rng(flags->GetUint("seed"));
    const VertexId n = index.num_vertices();
    Stopwatch watch;
    uint64_t reachable = 0;
    for (uint64_t i = 0; i < random_n; ++i) {
      const VertexId s = static_cast<VertexId>(rng.Below(n));
      const VertexId t = static_cast<VertexId>(rng.Below(n));
      if (index.Query(s, t) != kInfDistance) ++reachable;
    }
    const double micros = watch.Seconds() * 1e6 / random_n;
    out << random_n << " random queries: " << micros << " us/query, "
        << reachable << " reachable\n";
    return Status::OK();
  }

  if (flags->GetString("src").empty() || flags->GetString("dst").empty()) {
    return Status::InvalidArgument(
        "query requires --src and --dst (or --random N)");
  }
  const VertexId s = static_cast<VertexId>(flags->GetUint("src"));
  const VertexId t = static_cast<VertexId>(flags->GetUint("dst"));
  if (s >= index.num_vertices() || t >= index.num_vertices()) {
    return Status::InvalidArgument("vertex id out of range");
  }
  print_one(s, t);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

Status CmdStats(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("index", "", "index path (from hopdb_cli build)");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();
  const std::string index_path = flags->GetString("index");
  if (index_path.empty()) {
    return Status::InvalidArgument("stats requires --index");
  }
  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Load(index_path));
  const TwoHopIndex& labels = index.label_index();

  HOPDB_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         CompressedIndex::FromIndex(labels));

  out << "index " << index_path << "\n"
      << "  vertices        " << labels.num_vertices() << "\n"
      << "  directed        " << (labels.directed() ? "yes" : "no") << "\n"
      << "  label entries   " << labels.TotalEntries() << "\n"
      << "  avg |label|     " << labels.AvgLabelSize() << "\n"
      << "  memory size     " << labels.SizeBytes() << " bytes\n"
      << "  paper size      " << labels.PaperSizeBytes() << " bytes\n"
      << "  compressed      " << compressed.SizeBytes() << " bytes\n";

  // Table 7's "top vertices coverage": the smallest pivot prefix (by
  // rank) covering 70 / 80 / 90% of all entries.
  const std::vector<uint64_t> per_pivot = labels.EntriesPerPivot();
  const uint64_t total = labels.TotalEntries();
  if (total > 0) {
    uint64_t covered = 0;
    size_t next_threshold = 0;
    const double thresholds[] = {0.7, 0.8, 0.9};
    for (size_t p = 0; p < per_pivot.size() && next_threshold < 3; ++p) {
      covered += per_pivot[p];
      while (next_threshold < 3 &&
             static_cast<double>(covered) >=
                 thresholds[next_threshold] * static_cast<double>(total)) {
        out << "  top " << thresholds[next_threshold] * 100
            << "% coverage  " << (100.0 * (p + 1)) / per_pivot.size()
            << "% of vertices\n";
        ++next_threshold;
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// convert
// ---------------------------------------------------------------------------

Status CmdConvert(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("in", "", "input index (HLI1/HLC1, from hopdb_cli build)");
  flags->Define("out", "", "output HLI2 (memory-mappable) index path");
  flags->Define("verify", "true",
                "re-open the output, checksum the label arenas, and "
                "cross-check sample queries against the input");
  flags->Define("samples", "1000",
                "random query pairs cross-checked with --verify");
  flags->Define("seed", "7", "verification sampling seed");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::string in_path = flags->GetString("in");
  const std::string out_path = flags->GetString("out");
  if (in_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("convert requires --in and --out");
  }
  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Load(in_path));
  HOPDB_RETURN_NOT_OK(
      MappedIndex::Write(index.label_index(), index.ranking(), out_path));
  HOPDB_ASSIGN_OR_RETURN(const uint64_t in_bytes, FileSizeBytes(in_path));
  HOPDB_ASSIGN_OR_RETURN(const uint64_t out_bytes, FileSizeBytes(out_path));

  if (flags->GetBool("verify")) {
    MappedIndex::OpenOptions options;
    options.verify_arenas = true;
    HOPDB_ASSIGN_OR_RETURN(MappedIndex mapped,
                           MappedIndex::Open(out_path, options));
    Rng rng(flags->GetUint("seed"));
    const uint64_t samples = flags->GetUint("samples");
    const VertexId n = index.num_vertices();
    for (uint64_t i = 0; i < samples && n > 0; ++i) {
      const VertexId s = static_cast<VertexId>(rng.Below(n));
      const VertexId t = static_cast<VertexId>(rng.Below(n));
      if (mapped.Query(s, t) != index.Query(s, t)) {
        return Status::Internal(
            "converted index disagrees with input on dist(" +
            std::to_string(s) + ", " + std::to_string(t) + ")");
      }
    }
    out << "verified arena checksum + " << samples
        << " sampled queries against " << in_path << "\n";
  }
  out << "converted " << in_path << " -> " << out_path << " (HLI2)\n"
      << "  vertices        " << index.num_vertices() << "\n"
      << "  label entries   " << index.label_index().TotalEntries() << "\n"
      << "  input size      " << in_bytes << " bytes (+ .perm sidecar)\n"
      << "  output size     " << out_bytes
      << " bytes (self-contained, mmap-servable)\n";
  return Status::OK();
}

// ---------------------------------------------------------------------------
// update
// ---------------------------------------------------------------------------

Status CmdUpdate(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("index", "", "index path (from hopdb_cli build)");
  flags->Define("graph", "",
                "edge-list file the index was built from (text or .hgr)");
  flags->Define("ops", "",
                "update script: one 'ADDEDGE u v [w]' / 'DELEDGE u v' per "
                "line ('#' comments), ids in the graph's original space");
  flags->Define("out", "",
                "output index path (default: overwrite --index)");
  flags->Define("out-graph", "",
                "also write the updated graph here (so the next update "
                "run starts from matching inputs)");
  flags->Define("frontier-fraction", "0.5",
                "fall back to a full rebuild when one op's affected "
                "frontier exceeds this fraction of |V| (0 disables)");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::string index_path = flags->GetString("index");
  const std::string graph_path = flags->GetString("graph");
  const std::string ops_path = flags->GetString("ops");
  if (index_path.empty() || graph_path.empty() || ops_path.empty()) {
    return Status::InvalidArgument(
        "update requires --index, --graph, and --ops");
  }
  const std::string out_path =
      flags->GetString("out").empty() ? index_path : flags->GetString("out");

  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Load(index_path));
  HOPDB_ASSIGN_OR_RETURN(
      EdgeList edges,
      LoadGraphFile(graph_path, index.directed(), /*read_weights=*/true));
  edges.Normalize();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, CsrGraph::FromEdgeList(edges));
  if (graph.num_vertices() > index.num_vertices()) {
    return Status::InvalidArgument(
        "graph has " + std::to_string(graph.num_vertices()) +
        " vertices but the index serves " +
        std::to_string(index.num_vertices()) +
        " (vertex additions need a rebuild)");
  }
  const RankMapping& ranking = index.ranking();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph ranked, RelabelByRank(graph, ranking));
  DynamicGraph dynamic = DynamicGraph::FromGraph(ranked);

  // Parse the whole script up front (all-or-nothing on syntax errors),
  // translating original ids into the index's internal rank space.
  std::string script;
  HOPDB_RETURN_NOT_OK(ReadFileToString(ops_path, &script));
  std::vector<UpdateOp> ops;
  size_t pos = 0, line_no = 0;
  while (pos < script.size()) {
    size_t end = script.find('\n', pos);
    if (end == std::string::npos) end = script.size();
    const std::string line = script.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    Result<UpdateOp> parsed = ParseUpdateOpLine(line);
    if (parsed.status().code() == StatusCode::kNotFound) continue;
    if (!parsed.ok()) {
      return Status::InvalidArgument("ops line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    UpdateOp op = std::move(parsed).value();
    if (op.u >= ranking.size() || op.v >= ranking.size()) {
      return Status::InvalidArgument(
          "ops line " + std::to_string(line_no) + ": vertex id out of "
          "range (|V|=" + std::to_string(ranking.size()) + ")");
    }
    op.u = ranking.ToInternal(op.u);
    op.v = ranking.ToInternal(op.v);
    ops.push_back(op);
  }

  UpdateOptions options;
  options.rebuild_frontier_fraction = flags->GetDouble("frontier-fraction");
  Stopwatch watch;
  IncrementalUpdater updater(&dynamic, &index.mutable_label_index(),
                             options);
  HOPDB_RETURN_NOT_OK(updater.ApplyBatch(ops));
  const double seconds = watch.Seconds();
  HOPDB_RETURN_NOT_OK(index.Save(out_path));

  const std::string out_graph = flags->GetString("out-graph");
  if (!out_graph.empty()) {
    // ToEdgeList speaks internal ids; translate back before writing.
    const EdgeList internal = dynamic.ToEdgeList();
    EdgeList updated(internal.num_vertices(), internal.directed());
    updated.set_weighted(internal.weighted());
    for (const Edge& e : internal.edges()) {
      updated.Add(ranking.ToOriginal(e.src), ranking.ToOriginal(e.dst),
                  e.weight);
    }
    updated.Normalize();
    HOPDB_RETURN_NOT_OK(IsBinaryGraphPath(out_graph)
                            ? WriteBinaryGraph(updated, out_graph)
                            : WriteTextEdgeList(updated, out_graph));
  }

  const UpdateStats& stats = updater.stats();
  out << "applied " << stats.ops_applied << " updates ("
      << stats.inserts << " inserts, " << stats.deletes << " deletes, "
      << stats.reweights << " reweights, " << stats.ops_noop
      << " no-ops)\n"
      << "  repairs         " << stats.repairs << " (+"
      << stats.full_rebuilds << " rebuild fallbacks)\n"
      << "  entries         +" << stats.entries_added << " ~"
      << stats.entries_updated << " -" << stats.entries_removed << "\n"
      << "  label entries   " << index.label_index().TotalEntries() << "\n"
      << "  update time     " << seconds << " s\n"
      << "  saved to        " << out_path << " (+ .perm)\n";
  if (!out_graph.empty()) {
    out << "  updated graph   " << out_graph << "\n";
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// One "--index" occurrence: "PATH" (the default index) or "NAME=PATH"
/// (attached under NAME, servable via USE/ATTACH-style routing).
struct IndexSpec {
  std::string name;  // empty = default index
  std::string path;
};

Result<std::vector<IndexSpec>> ParseIndexSpecs(
    const std::vector<std::string>& values) {
  std::vector<IndexSpec> specs;
  size_t defaults = 0;
  for (const std::string& value : values) {
    IndexSpec spec;
    const size_t eq = value.find('=');
    if (eq == std::string::npos) {
      spec.path = value;
    } else {
      spec.name = value.substr(0, eq);
      spec.path = value.substr(eq + 1);
      if (spec.name == kDefaultIndexName) spec.name.clear();
      if (!spec.name.empty()) {
        HOPDB_RETURN_NOT_OK(ValidateIndexName(spec.name));
      }
    }
    if (spec.path.empty()) {
      return Status::InvalidArgument("--index '" + value +
                                     "' has an empty path");
    }
    // Fail duplicates here, before the server binds its port — the
    // registry would reject the second attach anyway, but mid-startup
    // and with a runtime-verb-flavored message.
    for (const IndexSpec& prior : specs) {
      if (!spec.name.empty() && prior.name == spec.name) {
        return Status::InvalidArgument("--index name '" + spec.name +
                                       "' given more than once");
      }
    }
    if (spec.name.empty()) ++defaults;
    specs.push_back(std::move(spec));
  }
  if (defaults != 1) {
    return Status::InvalidArgument(
        "serve requires exactly one default --index PATH (plus any number "
        "of --index NAME=PATH), got " + std::to_string(defaults) +
        " defaults");
  }
  // Serve the default first so Start() sees it before any attachment.
  std::stable_partition(specs.begin(), specs.end(),
                        [](const IndexSpec& s) { return s.name.empty(); });
  return specs;
}

Status CmdServe(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->DefineRepeatable(
      "index",
      "index to serve: PATH (the default index) or NAME=PATH (additional "
      "named index; repeat for more). HLI2 files are mmap-served");
  flags->DefineRepeatable(
      "graph",
      "edge-list file backing an index for online updates: PATH (the "
      "default index) or NAME=PATH; repeat per index. Enables "
      "ADDEDGE/DELEDGE/COMMIT on heap-served indexes");
  flags->Define("host", "127.0.0.1", "numeric IPv4 listen address");
  flags->Define("port", "0", "listen port (0 = pick an ephemeral port)");
  flags->Define("threads", "0", "query worker threads (0 = all cores)");
  flags->Define("io-threads", "0",
                "epoll I/O threads (0 = min(4, cores))");
  flags->Define("cache-capacity", "65536",
                "result cache entries per snapshot (0 disables)");
  flags->Define("hot-hub-k", "64",
                "dense hot-hub distance table over the top-k ranked "
                "pivots, built per published snapshot (0 disables)");
  flags->Define("queue-capacity", "1024",
                "bounded request queue length (requests beyond it are "
                "shed with ERR BUSY)");
  flags->Define("backlog", "1024", "listen(2) pending-connection backlog");
  flags->Define("max-inflight", "128",
                "max unanswered pipelined requests per connection before "
                "its socket pauses");
  flags->Define("batch", "32", "max requests per worker wakeup (micro-batch)");
  flags->Define("trace-sample-rate", "0.01",
                "fraction of requests recorded into the TRACE LAST ring "
                "(0 disables sampling; per-stage metrics are always on)");
  flags->Define("trace-ring", "1024",
                "capacity of the sampled-trace ring TRACE LAST reads");
  flags->Define("slow-query-us", "0",
                "emit a JSON slow_query log line for requests at or above "
                "this accepted-to-written latency in microseconds (0 off)");
  flags->Define("duration", "0",
                "seconds to serve before exiting (0 = until killed)");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const std::vector<std::string>& index_values = flags->GetStrings("index");
  if (index_values.empty()) {
    return Status::InvalidArgument(
        "serve requires --index PATH (or --index NAME=PATH, repeatable)");
  }
  HOPDB_ASSIGN_OR_RETURN(std::vector<IndexSpec> specs,
                         ParseIndexSpecs(index_values));

  ServerOptions options;
  options.host = flags->GetString("host");
  options.port = static_cast<uint16_t>(flags->GetUint("port"));
  options.num_workers = static_cast<uint32_t>(flags->GetUint("threads"));
  options.num_io_threads = static_cast<uint32_t>(flags->GetUint("io-threads"));
  options.cache_capacity = flags->GetUint("cache-capacity");
  options.hot_hub_k = static_cast<uint32_t>(flags->GetUint("hot-hub-k"));
  options.queue_capacity = flags->GetUint("queue-capacity");
  options.listen_backlog = static_cast<int>(flags->GetUint("backlog"));
  options.max_inflight_per_conn =
      static_cast<uint32_t>(flags->GetUint("max-inflight"));
  options.max_micro_batch = static_cast<uint32_t>(flags->GetUint("batch"));
  options.trace_sample_rate = flags->GetDouble("trace-sample-rate");
  options.trace_ring_capacity = flags->GetUint("trace-ring");
  options.slow_query_us = flags->GetUint("slow-query-us");
  options.source_path = specs[0].path;

  // A foreground server wants its lifecycle events (start/stop,
  // attach/detach/reload) on stderr, not just warnings.
  SetJsonLogMinLevel(JsonLogLevel::kInfo);

  // --graph values are parsed up front: the startup snapshot loads need
  // to know their build graphs so heap-backed indexes answer PATH from
  // the first request, not only after a RELOAD.
  std::vector<std::pair<std::string, std::string>> graphs;
  std::string default_graph;
  for (const std::string& value : flags->GetStrings("graph")) {
    const size_t eq = value.find('=');
    const std::string name =
        eq == std::string::npos ? std::string() : value.substr(0, eq);
    const std::string path =
        eq == std::string::npos ? value : value.substr(eq + 1);
    if (path.empty()) {
      return Status::InvalidArgument("--graph '" + value +
                                     "' has an empty path");
    }
    if (name.empty() || name == kDefaultIndexName) default_graph = path;
    graphs.emplace_back(name, path);
  }

  // The default index loads by file magic: HLI2 maps zero-copy, HLI1 /
  // HLC1 deserialize onto the heap.
  HOPDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingSnapshot> snapshot,
      LoadServingSnapshot(specs[0].path, options.cache_capacity,
                          options.hot_hub_k, default_graph));
  HOPDB_ASSIGN_OR_RETURN(std::unique_ptr<DistanceServer> server,
                         DistanceServer::Start(std::move(snapshot), options));
  // Graphs register before the secondary attaches so those snapshots
  // pick up their path graphs too.
  for (const auto& [name, path] : graphs) {
    HOPDB_RETURN_NOT_OK(server->RegisterUpdateGraph(name, path));
  }
  for (size_t i = 1; i < specs.size(); ++i) {
    HOPDB_RETURN_NOT_OK(server->AttachIndex(specs[i].name, specs[i].path));
  }

  const std::shared_ptr<const ServingSnapshot> def = server->snapshot();
  out << "serving " << specs[0].path << " on " << options.host << ":"
      << server->port() << " (|V|=" << def->num_vertices() << ", mode="
      << def->map_mode()
      << ", workers=" << (options.num_workers == 0 ? std::string("auto")
                                                   : std::to_string(
                                                         options.num_workers))
      << ", cache=" << options.cache_capacity << ")\n";
  for (size_t i = 1; i < specs.size(); ++i) {
    const std::shared_ptr<const ServingSnapshot> snap =
        server->registry().Find(specs[i].name);
    // The server is already accepting: a fast client can DETACH between
    // the attach above and this announcement lookup.
    if (snap == nullptr) continue;
    out << "  attached " << specs[i].name << " = " << specs[i].path
        << " (|V|=" << snap->num_vertices() << ", mode=" << snap->map_mode()
        << ")\n";
  }
  out.flush();

  const double duration = flags->GetDouble("duration");
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(duration));
    server->Stop();
    out << "served " << server->metrics().requests() << " requests ("
        << server->metrics().errors() << " errors) over "
        << server->connections_accepted() << " connections\n";
    return Status::OK();
  }
  // Serve until the process is killed.
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

// ---------------------------------------------------------------------------
// client
// ---------------------------------------------------------------------------

Status CmdClient(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("host", "127.0.0.1", "server address (numeric IPv4)");
  flags->Define("port", "0", "server port");
  flags->Define("cmd", "",
                "single protocol line to send (default: read lines from "
                "stdin until EOF)");
  flags->Define("protocol", "v1",
                "wire protocol: v1 (ASCII lines) or v2 (binary frames; "
                "requests are still typed as v1 lines, responses printed "
                "in v1 form)");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const uint16_t port = static_cast<uint16_t>(flags->GetUint("port"));
  if (port == 0) {
    return Status::InvalidArgument("client requires --port");
  }
  const std::string protocol = flags->GetString("protocol");
  if (protocol != "v1" && protocol != "v2") {
    return Status::InvalidArgument("--protocol must be v1 or v2");
  }
  const bool v2 = protocol == "v2";
  HOPDB_ASSIGN_OR_RETURN(
      DistanceClient client,
      DistanceClient::Connect(flags->GetString("host"), port,
                              v2 ? DistanceClient::Protocol::kV2
                                 : DistanceClient::Protocol::kV1));

  // One line in, one line out, on either framing: v2 round-trips the
  // parsed request as a binary frame and renders the response in the v1
  // form, so the two protocols are interchangeable at this prompt.
  auto round_trip = [&](const std::string& line) -> Result<std::string> {
    if (!v2) return client.RoundTrip(line);
    HOPDB_ASSIGN_OR_RETURN(Request request, ParseRequest(line));
    HOPDB_ASSIGN_OR_RETURN(WireResponse response, client.Call(request));
    // Blob payloads (METRICS, TRACE) print as their body, matching what
    // RoundTrip returns on a v1 connection.
    if (response.status == WireStatus::kOk &&
        response.payload == WirePayload::kBlob) {
      return response.text;
    }
    return EncodeResponseV1(response);
  };
  auto print_response = [&](std::string response) {
    // Blob bodies end in their own newline; avoid printing a blank line.
    while (!response.empty() && response.back() == '\n') response.pop_back();
    out << response << "\n";
  };

  const std::string cmd = flags->GetString("cmd");
  if (!cmd.empty()) {
    HOPDB_ASSIGN_OR_RETURN(std::string response, round_trip(cmd));
    print_response(std::move(response));
    return Status::OK();
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (TrimString(line).empty()) continue;
    HOPDB_ASSIGN_OR_RETURN(std::string response, round_trip(line));
    print_response(std::move(response));
    out.flush();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// eval
// ---------------------------------------------------------------------------

Status CmdEval(CliFlags* flags, int argc, char** argv, std::ostream& out) {
  flags->Define("spec", "",
                "workload spec file (see src/eval/harness.h for the "
                "grammar); default: built-in graph-family sweep");
  flags->Define("ci", "false",
                "CI mode: shrink the built-in spec, and exit non-zero "
                "when an expectation fails");
  flags->Define("report", "", "write the Markdown report to this path");
  flags->Define("json", "", "write the JSON report to this path");
  flags->Define("work-dir", ".hopdb_eval",
                "scratch directory for on-disk index variants");
  flags->Define("data-dir", "",
                "directory searched for real '<name>.txt' edge lists");
  flags->Define("scale", "1", "extra |V| multiplier over the spec");
  flags->Define("print-spec", "false",
                "print the effective spec text and exit");
  HOPDB_RETURN_NOT_OK(flags->Parse(argc, argv));
  if (flags->help_requested()) return Status::OK();

  const bool ci = flags->GetBool("ci");
  std::string spec_text;
  const std::string spec_path = flags->GetString("spec");
  if (spec_path.empty()) {
    spec_text = DefaultEvalSpecText(ci);
  } else {
    HOPDB_RETURN_NOT_OK(ReadFileToString(spec_path, &spec_text));
  }
  if (flags->GetBool("print-spec")) {
    out << spec_text;
    return Status::OK();
  }
  HOPDB_ASSIGN_OR_RETURN(EvalSpec spec, ParseEvalSpec(spec_text));

  EvalOptions options;
  options.work_dir = flags->GetString("work-dir");
  options.data_dir = flags->GetString("data-dir");
  options.scale = flags->GetDouble("scale");
  if (!(options.scale > 0)) {
    return Status::InvalidArgument("--scale must be positive");
  }

  HOPDB_ASSIGN_OR_RETURN(EvalReport report, RunEval(spec, options));

  const std::string markdown = RenderEvalMarkdown(report);
  const std::string report_path = flags->GetString("report");
  if (!report_path.empty()) {
    HOPDB_RETURN_NOT_OK(WriteStringToFile(report_path, markdown));
    out << "report -> " << report_path << "\n";
  } else {
    out << markdown;
  }
  const std::string json_path = flags->GetString("json");
  if (!json_path.empty()) {
    HOPDB_RETURN_NOT_OK(WriteStringToFile(json_path, RenderEvalJson(report)));
    out << "json -> " << json_path << "\n";
  }
  for (const EvalExpectation& e : report.expectations) {
    out << (e.pass ? "PASS " : "FAIL ") << e.name << " = "
        << FormatDouble(e.value, 2) << " (expect [" +
               FormatDouble(e.min_value, 0) + ", " +
               FormatDouble(e.max_value, 0) + "])\n";
  }
  if (!report.AllPass()) {
    // --ci turns an out-of-band number into a hard failure; interactive
    // runs still see the FAIL lines but keep their report.
    if (ci) return Status::FailedPrecondition("eval expectations failed");
    out << "warning: expectations failed (use --ci to make this fatal)\n";
  }
  return Status::OK();
}

void PrintUsage(std::ostream& out) {
  out << "hopdb_cli — hop-doubling 2-hop distance index tool\n"
         "\n"
         "usage: hopdb_cli <command> [flags]\n"
         "\n"
         "commands:\n"
         "  gen     generate a synthetic graph (--type glp|ba|er --n N\n"
         "          --avg-degree D --directed --weighted --seed S --out F)\n"
         "  build   build an index (--graph F --directed --weighted\n"
         "          --mode hybrid|stepping|doubling --order auto|degree|...\n"
         "          --threads T (0 = all cores, the default) --out F)\n"
         "  convert convert an index to the mmap-servable HLI2 format\n"
         "          (--in F --out F.hli2 [--verify true|false])\n"
         "  query   query an index (--index F --src S --dst T | --random N)\n"
         "  update  apply edge updates to an index offline (--index F\n"
         "          --graph F --ops F [--out F] [--out-graph F]); the ops\n"
         "          file holds ADDEDGE u v [w] / DELEDGE u v lines\n"
         "  stats   label statistics of an index (--index F)\n"
         "  serve   serve indexes over TCP (--index F | --index NAME=F,\n"
         "          repeatable; --graph F | --graph NAME=F enables online\n"
         "          updates; --port P --threads T (0 = all cores, the\n"
         "          default) --io-threads I --cache-capacity C --backlog B\n"
         "          --max-inflight M --trace-sample-rate R --slow-query-us\n"
         "          U); HLI2 files are served zero-copy from the page cache;\n"
         "          protocol: DIST/BATCH/KNN/STATS/METRICS/TRACE/RELOAD/\n"
         "          ATTACH/DETACH/USE/ADDEDGE/DELEDGE/COMMIT (ASCII lines,\n"
         "          or the v2 binary framing after the magic)\n"
         "  client  connect to a server (--host H --port P [--cmd LINE]\n"
         "          [--protocol v1|v2])\n"
         "  eval    run the unified eval harness: build every index\n"
         "          variant (heap/hli2/blocked/compressed) over the spec's\n"
         "          graphs, time the query workloads (dist/batch/knn/\n"
         "          within/reach/path), oracle-verify, and report\n"
         "          ([--spec F] [--ci] [--report F.md] [--json F.json]\n"
         "          [--work-dir D] [--data-dir D] [--scale X])\n"
         "  help    this text\n"
         "\n"
         "Run 'hopdb_cli <command> --help' for the full flag list.\n";
}

}  // namespace

int RunCli(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    PrintUsage(err);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    PrintUsage(out);
    return 0;
  }

  // Shift argv so the subcommand's flags parse from its own name.
  CliFlags flags;
  Status status;
  const int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "gen") {
    status = CmdGen(&flags, sub_argc, sub_argv, out);
  } else if (command == "build") {
    status = CmdBuild(&flags, sub_argc, sub_argv, out);
  } else if (command == "convert") {
    status = CmdConvert(&flags, sub_argc, sub_argv, out);
  } else if (command == "query") {
    status = CmdQuery(&flags, sub_argc, sub_argv, out);
  } else if (command == "update") {
    status = CmdUpdate(&flags, sub_argc, sub_argv, out);
  } else if (command == "stats") {
    status = CmdStats(&flags, sub_argc, sub_argv, out);
  } else if (command == "serve") {
    status = CmdServe(&flags, sub_argc, sub_argv, out);
  } else if (command == "client") {
    status = CmdClient(&flags, sub_argc, sub_argv, out);
  } else if (command == "eval") {
    status = CmdEval(&flags, sub_argc, sub_argv, out);
  } else {
    err << "unknown command '" << command << "'\n";
    PrintUsage(err);
    return 1;
  }
  if (flags.help_requested()) {
    out << flags.Usage("hopdb_cli " + command);
    return 0;
  }
  if (!status.ok()) {
    // Single usage-printing error path: every subcommand failure reports
    // the status, and argument mistakes additionally get the relevant
    // flag table so the fix is visible without a second invocation.
    err << "hopdb_cli " << command << ": " << status.ToString() << "\n";
    if (status.code() == StatusCode::kInvalidArgument) {
      err << "\n" << flags.Usage("usage: hopdb_cli " + command + " [flags]");
    }
    return 1;
  }
  return 0;
}

}  // namespace hopdb
