// Implementation of the hopdb_cli subcommands, kept in the library so
// tests can drive them directly. The binary in tools/hopdb_cli.cc is a
// two-line main().
//
// Subcommands:
//   gen     generate a synthetic graph (GLP / BA / ER) to an edge-list file
//   build   build a HopDb index from an edge-list file and save it
//   convert rewrite an HLI1/HLC1 index as a memory-mappable HLI2 file
//   query   answer distance queries against a saved index
//   stats   print label statistics of a saved index (Table 7-style)
//   serve   serve one or more indexes over TCP
//           (DIST/BATCH/KNN/STATS/RELOAD/ATTACH/DETACH/USE protocol)
//   client  send protocol lines to a running server
//   help    usage
//
// All argument errors funnel through one usage-printing path in RunCli:
// the status message plus the subcommand's flag table go to `err` and the
// exit code is 1.

#ifndef HOPDB_TOOLS_COMMANDS_H_
#define HOPDB_TOOLS_COMMANDS_H_

#include <ostream>

namespace hopdb {

/// Runs `hopdb_cli argv[1] ...`; normal output goes to `out`, diagnostics
/// to `err`. Returns the process exit code (0 on success, 1 on usage or
/// runtime errors).
int RunCli(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace hopdb

#endif  // HOPDB_TOOLS_COMMANDS_H_
