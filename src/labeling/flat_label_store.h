// FlatLabelStore: contiguous structure-of-arrays label storage — the
// serving-side mirror of TwoHopIndex's per-vertex label vectors.
//
// The builder-facing representation (vector<LabelVector>) is ideal for
// incremental merging but poor for querying: every label lookup chases a
// heap pointer, and the interleaved (pivot, dist) pairs waste half of each
// cache line during the pivot-comparison phase of a merge-join. The flat
// store packs all label entries into two parallel 64-byte-aligned arenas
// (all pivots, all distances) in slot order with one offset table, so a
// query touches exactly two contiguous runs and the SIMD kernels
// (labeling/query_kernel.h) can stream 8 pivots per compare.
//
// BLOCKED LAYOUT (cache-conscious microarchitecture): every slot starts
// on a kLabelBlockEntries (= 16 entries = 64 bytes) boundary and is
// padded up to a block multiple, with padding lanes holding 0xFFFFFFFF
// in both arenas. Two sidecar arrays carry, per block, the minimum and
// maximum real pivot in that block, so the merge-join kernels skip
// whole non-overlapping blocks from the sidecars alone and process
// overlapping blocks with full-width SIMD and no scalar tail. Padding
// is provably inert to the kernels (see label_entry.h). Because a
// slot's real entries stay contiguous from its aligned start, the raw
// (pivots, dists, size) view of a slot is unchanged — unblocked
// consumers keep working and simply never read the padding.
//
// Slot layout: out-labels of vertices 0..n-1 occupy slots [0, n); for
// directed indexes the in-labels follow in slots [n, 2n) — each
// direction's entries are one contiguous range of the arenas. Within a
// slot, entries stay strictly sorted by pivot (the TwoHopIndex invariant).
//
// Serialized form ("HFS1" section, little-endian) is UNCHANGED by the
// blocked layout — padding and sidecars are an in-memory property,
// rebuilt on Parse:
//   magic "HFS1" | flags u8 (bit0 directed, bit1 delta-encoded pivots) |
//   num_vertices u32 | total_entries u64 |
//   per-slot entry count (varint) x num_slots |
//   pivot stream | distance stream
// In raw mode both streams are fixed u32. In delta mode each label's
// pivots are gap-encoded as varints (first gap relative to -1, so every
// gap is >= 1) and distances are plain varints — scale-free labels
// concentrate on top-ranked pivots, so gaps are small and most values fit
// one byte. Save()/Load() wrap the section with an FNV-1a checksum;
// AppendTo/Parse leave integrity to the embedding container.

#ifndef HOPDB_LABELING_FLAT_LABEL_STORE_H_
#define HOPDB_LABELING_FLAT_LABEL_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "labeling/label_entry.h"
#include "util/aligned_buffer.h"
#include "util/serde.h"
#include "util/status.h"

namespace hopdb {

class FlatLabelStore {
 public:
  /// Non-owning view of one vertex's label in SoA form: pivots[i] pairs
  /// with dists[i]; pivots are strictly ascending. Valid as long as the
  /// store it came from is alive and unmodified. When the backing store
  /// is blocked, block_min/block_max point at this slot's per-block
  /// pivot sidecars (entry g covers label entries [g*16, (g+1)*16)) and
  /// the pivot/dist arrays are readable through the padded end of the
  /// last block; both are null for unblocked views (mapped v1 files,
  /// builder arenas) and the kernels fall back to unblocked scans.
  struct View {
    const uint32_t* pivots = nullptr;
    const uint32_t* dists = nullptr;
    uint32_t size = 0;
    const uint32_t* block_min = nullptr;
    const uint32_t* block_max = nullptr;
  };

  /// Non-owning view over a COMPLETE label set in the flat slot layout
  /// (offset table + pivot arena + distance arena). This is the common
  /// denominator between a heap-resident FlatLabelStore and a
  /// memory-mapped HLI2 index (labeling/mapped_index.h): query engines
  /// (query/batch.h, query/knn.h) built from a LabelSetView run
  /// identically over either backing store. Trivially copyable; the
  /// pointed-to arrays must outlive every engine built from the view.
  ///
  /// `sizes` carries per-slot real entry counts for blocked layouts
  /// (where offsets are padded block starts); when null the layout is
  /// packed and sizes derive from adjacent offsets. `block_min` /
  /// `block_max` are the global block sidecars (indexed by
  /// arena_entry / kLabelBlockEntries), null when unblocked.
  struct LabelSetView {
    VertexId num_vertices = 0;
    bool directed = false;
    const uint64_t* offsets = nullptr;  // num_slots() + 1 entries
    const uint32_t* pivots = nullptr;
    const uint32_t* dists = nullptr;
    const uint32_t* sizes = nullptr;      // per-slot counts; null = packed
    const uint32_t* block_min = nullptr;  // per-block sidecars; null =
    const uint32_t* block_max = nullptr;  //   unblocked layout

    size_t num_slots() const {
      return directed ? 2 * static_cast<size_t>(num_vertices) : num_vertices;
    }
    View Slot(size_t slot) const {
      const uint64_t begin = offsets[slot];
      const uint32_t size =
          sizes != nullptr ? sizes[slot]
                           : static_cast<uint32_t>(offsets[slot + 1] - begin);
      const uint64_t block = begin / kLabelBlockEntries;
      return View{pivots + begin, dists + begin, size,
                  block_min == nullptr ? nullptr : block_min + block,
                  block_max == nullptr ? nullptr : block_max + block};
    }
    /// Per-vertex label views, mirroring TwoHopIndex::OutLabel/InLabel:
    /// undirected sets alias In(v) to Out(v).
    View Out(VertexId v) const { return Slot(v); }
    View In(VertexId v) const {
      return Slot(directed ? static_cast<size_t>(num_vertices) + v : v);
    }
  };

  FlatLabelStore() = default;

  /// Flattens per-vertex label vectors (the TwoHopIndex representation)
  /// into the blocked SoA arenas. For undirected indexes pass an empty
  /// `in`. O(total entries) time, one allocation per arena.
  static FlatLabelStore Build(const std::vector<LabelVector>& out,
                              const std::vector<LabelVector>& in,
                              bool directed);

  /// True once Build/Parse has populated the arenas. A default-constructed
  /// store is not built; queries must fall back to the vector path.
  bool built() const { return built_; }

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  /// Real label entries (excluding block padding).
  uint64_t TotalEntries() const { return total_entries_; }
  /// Arena entries including block padding; PaddedEntries() / 16 blocks.
  uint64_t PaddedEntries() const { return pivots_.size(); }

  /// Label views; v must be < num_vertices(). For undirected stores
  /// In(v) aliases Out(v), mirroring TwoHopIndex::InLabel.
  View Out(VertexId v) const { return Slot(v); }
  View In(VertexId v) const {
    return Slot(directed_ ? static_cast<size_t>(num_vertices_) + v : v);
  }

  /// In-memory footprint: arenas, sidecars, and the offset/size tables.
  uint64_t SizeBytes() const;

  /// The whole store as a LabelSetView (for engines that also accept
  /// mapped indexes). Requires built(); valid until the store is
  /// destroyed or reassigned.
  LabelSetView view() const {
    return LabelSetView{num_vertices_,  directed_,        offsets_.data(),
                        pivots_.data(), dists_.data(),    sizes_.data(),
                        block_min_.data(), block_max_.data()};
  }

  /// True iff this store is an exact mirror of the given label vectors
  /// (shape and every entry). O(total entries), no allocation — used by
  /// TwoHopIndex::Load to admit a deserialized mirror only when it
  /// matches the canonical vectors it rides with.
  bool MirrorsVectors(const std::vector<LabelVector>& out,
                      const std::vector<LabelVector>& in,
                      bool directed) const;

  /// Appends the HFS1 section to `dst` (see the format comment above).
  /// `delta_pivots` selects the gap/varint encoding; raw is faster to
  /// decode, delta is typically 2-3x smaller on scale-free labels.
  void AppendTo(std::string* dst, bool delta_pivots) const;

  /// Parses one HFS1 section from the reader's current position. The
  /// in-memory layout is identical regardless of the on-disk encoding.
  static Result<FlatLabelStore> Parse(ByteReader* reader);

  /// Standalone file: HFS1 section followed by an FNV-1a-64 checksum of
  /// the section bytes. Load verifies the checksum before parsing.
  Status Save(const std::string& path, bool delta_pivots = true) const;
  static Result<FlatLabelStore> Load(const std::string& path);

 private:
  size_t num_slots() const {
    return directed_ ? 2 * static_cast<size_t>(num_vertices_)
                     : num_vertices_;
  }
  View Slot(size_t slot) const {
    const uint64_t begin = offsets_[slot];
    const uint64_t block = begin / kLabelBlockEntries;
    return View{pivots_.data() + begin, dists_.data() + begin, sizes_[slot],
                block_min_.data() + block, block_max_.data() + block};
  }

  /// Sets sizes_/offsets_/total_entries_ from per-slot counts and
  /// allocates the padded arenas (contents uninitialized).
  void InitBlockedLayout(std::vector<uint32_t> sizes);
  /// After the real entries are written: fills every slot's padding
  /// lanes with 0xFFFFFFFF and derives the block_min_/block_max_
  /// sidecars.
  void FinalizeBlocks();

  bool built_ = false;
  bool directed_ = false;
  VertexId num_vertices_ = 0;
  uint64_t total_entries_ = 0;
  std::vector<uint64_t> offsets_;  // num_slots + 1 padded block starts
  std::vector<uint32_t> sizes_;    // num_slots real entry counts
  AlignedU32Array pivots_;
  AlignedU32Array dists_;
  AlignedU32Array block_min_;  // PaddedEntries()/16 per-block pivot minima
  AlignedU32Array block_max_;  // ... and maxima (real pivots only)
};

/// Namespace-level shorthand: the view type is used far from the store
/// (query engines, the server) where the qualified name is noise.
using LabelSetView = FlatLabelStore::LabelSetView;

/// Reusable SoA label arena for iteration-scoped frozen snapshots — the
/// builder's witness store for SIMD rule-(ii) pruning. Same slot layout
/// as FlatLabelStore (packed pivot/dist arenas plus an offset table) but
/// built for repeated rebuild cycles: Reset keeps the high-water arena
/// capacity, so steady-state per-iteration rebuilds allocate nothing.
/// The caller fills slots through the mutable pointers after Reset; views
/// are valid until the next Reset. Arena views are unblocked (no
/// sidecars): the builder's witness scans are short prefix scans that
/// gain nothing from block skipping.
class FlatLabelArena {
 public:
  /// Starts a fresh snapshot with `num_slots` slots whose entry counts
  /// are `sizes[0..num_slots)`. Discards previous contents; slot storage
  /// is uninitialized until the caller writes it.
  void Reset(size_t num_slots, const uint64_t* sizes) {
    offsets_.resize(num_slots + 1);
    uint64_t total = 0;
    offsets_[0] = 0;
    for (size_t s = 0; s < num_slots; ++s) {
      total += sizes[s];
      offsets_[s + 1] = total;
    }
    pivots_.ResetDiscard(total);
    dists_.ResetDiscard(total);
  }

  size_t num_slots() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  uint64_t TotalEntries() const { return pivots_.size(); }
  uint64_t CapacityBytes() const {
    return (pivots_.capacity() + dists_.capacity()) * sizeof(uint32_t);
  }

  uint32_t* slot_pivots(size_t slot) { return pivots_.data() + offsets_[slot]; }
  uint32_t* slot_dists(size_t slot) { return dists_.data() + offsets_[slot]; }
  uint32_t slot_size(size_t slot) const {
    return static_cast<uint32_t>(offsets_[slot + 1] - offsets_[slot]);
  }

  FlatLabelStore::View View(size_t slot) const {
    const uint64_t begin = offsets_[slot];
    return FlatLabelStore::View{pivots_.data() + begin, dists_.data() + begin,
                                static_cast<uint32_t>(offsets_[slot + 1] -
                                                      begin)};
  }

 private:
  std::vector<uint64_t> offsets_;
  AlignedU32Array pivots_;
  AlignedU32Array dists_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_FLAT_LABEL_STORE_H_
