// DiskIndex: the disk-resident query path ("Disk query time" column of
// Table 6).
//
// File layout (HDI1, little-endian):
//   magic "HDI1" | u32 flags (bit0 directed, bit1 8-bit distances) |
//   u32 num_vertices |
//   out offset table: (n+1) x u64 entry indices |
//   in offset table:  (n+1) x u64 (directed only) |
//   out entries | in entries        entry = u32 pivot + (u8|u32) dist
//
// Only the offset tables live in memory (8(n+1) bytes per side — the
// analogue of the paper's in-memory vertex directory); every query
// performs exactly two positional label reads, Lout(s) and Lin(t),
// mirroring the two random disk accesses behind the paper's ~ms HDD
// query times. Block transfer counts are reported so the result is
// hardware-independent.

#ifndef HOPDB_LABELING_DISK_INDEX_H_
#define HOPDB_LABELING_DISK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/block_file.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

class DiskIndex {
 public:
  /// Serializes an in-memory index to the HDI1 layout above. Distances
  /// are narrowed to 8 bits when every value fits (the paper's storage
  /// choice for unweighted graphs). O(total entries) sequential write;
  /// IOError on filesystem failure. The written file is immutable —
  /// rebuild and rewrite to change labels (byte-exact spec in
  /// docs/FORMATS.md).
  static Status Write(const TwoHopIndex& index, const std::string& path);

  /// Opens an HDI1 file for positional label reads, loading only the
  /// offset tables into memory — 8(n+1) bytes per side, the analogue of
  /// the paper's in-memory vertex directory. `block_size` is the I/O
  /// transfer unit the stats count. InvalidArgument on bad magic or a
  /// malformed/truncated header; IOError on filesystem failure.
  static Result<DiskIndex> Open(const std::string& path,
                                uint64_t block_size = kDefaultBlockSize);

  /// Exact distance by two positional label reads — Lout(s) then Lin(t)
  /// (internal/ranked ids; both must be < num_vertices()). kInfDistance
  /// when unreachable. This is the paper's "disk query" cost model:
  /// exactly two random accesses plus a merged scan, with transfer
  /// counts recorded in stats().
  ///
  /// Thread safety: NOT safe for concurrent callers — each query reuses
  /// the per-instance read buffers and file cursor (the disk analogue
  /// of one paper query thread). Open one DiskIndex per thread, or use
  /// MappedIndex (labeling/mapped_index.h) for lock-free shared
  /// serving.
  Distance Query(VertexId s, VertexId t);

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  uint64_t file_size_bytes() const { return file_.size(); }

  /// Cumulative I/O accounting (reads, bytes, block transfers) since
  /// Open or the last ResetStats — what Table 6's block-transfer
  /// columns report. Hardware-independent by design.
  const IoStats& stats() const { return file_.stats(); }
  void ResetStats() { file_.mutable_stats()->Reset(); }

  /// Loads everything back into an in-memory index (round-trip
  /// testing). O(total entries); the result is equal entry-for-entry to
  /// the index passed to Write.
  Result<TwoHopIndex> ToMemory();

 private:
  /// Reads one label vector into `out`.
  Status ReadLabel(bool out_side, VertexId v, LabelVector* out);

  BlockFile file_;
  std::vector<uint64_t> out_offsets_;  // entry indices, size n+1
  std::vector<uint64_t> in_offsets_;   // directed only
  uint64_t out_base_ = 0;              // byte offset of the out entry area
  uint64_t in_base_ = 0;
  VertexId num_vertices_ = 0;
  bool directed_ = false;
  bool dist8_ = false;
  size_t entry_bytes_ = 8;
  LabelVector scratch_s_, scratch_t_;
  std::vector<uint8_t> io_buf_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_DISK_INDEX_H_
