// HotHubCache: a dense distance table for the top-k highest-rank pivots.
//
// Scale-free 2-hop labels concentrate overwhelmingly on the highest-rank
// pivots (the paper's hub property is why label sizes stay small at
// all), so on internal/rank ids almost every label starts with a run of
// entries whose pivot is a tiny integer. The merge-join still pays a
// pointer-chasing binary rendezvous for those entries on every query.
// This cache materializes that hot prefix as a dense table instead:
//
//   table[slot * k + h] = stored distance of pivot h in label `slot`,
//                         kInfDistance when the label lacks pivot h
//
// for the k top-ranked pivots h in [0, k). A query then answers the
// hub-covered portion with one branch-free dense loop over 2k
// contiguous distances (two cache lines when k = 16) and hands only the
// non-hub suffix of each label to the general blocked merge-join:
// because labels are sorted by pivot and rank ids make "hot" mean
// "small", the hub-covered entries are exactly a prefix, so the suffix
// starts at a precomputed per-slot skip count. Exactness: common pivots
// < k are covered by the dense fold, common pivots >= k by the suffix
// merge, and the two trivial pivots by the same direct lookups the
// general path does; min over all of them is the 2-hop answer.
//
// The cache is an acceleration structure, not a source of truth — it is
// built from (and checked against) a LabelSetView in O(total entries),
// costs 8k bytes per vertex side, and is rebuilt whenever a new
// snapshot is published (server/index_snapshot.h).

#ifndef HOPDB_LABELING_HOT_HUB_H_
#define HOPDB_LABELING_HOT_HUB_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "labeling/flat_label_store.h"
#include "labeling/query_kernel.h"

namespace hopdb {

class HotHubCache {
 public:
  /// An empty cache: enabled() is false and Query must not be called.
  HotHubCache() = default;

  /// Builds the dense table + per-slot skip counts from a label set
  /// (internal ids). `k` is clamped to num_vertices; k == 0 yields a
  /// disabled cache. O(total entries) scan, 4 * k bytes per slot plus
  /// one u32 skip per slot.
  static HotHubCache Build(const LabelSetView& labels, uint32_t k);

  bool enabled() const { return k_ > 0; }
  /// Number of hub pivots covered (internal ids [0, k)).
  uint32_t k() const { return k_; }
  /// Heap footprint of the table + skip counts, for STATS.
  uint64_t SizeBytes() const {
    return table_.size() * sizeof(Distance) + skip_.size() * sizeof(uint32_t);
  }

  /// Exact distance s -> t over INTERNAL ids: dense hub fold, then the
  /// non-hub label suffixes through `kernel` (blocked when the view
  /// carries sidecars), plus trivial pivots and s == t. Bit-identical
  /// to QueryFlatHalves over the same view. `labels` must be the view
  /// this cache was built from. Const and lock-free for concurrent
  /// callers.
  Distance Query(const LabelSetView& labels, VertexId s, VertexId t,
                 const QueryKernel& kernel) const;
  Distance Query(const LabelSetView& labels, VertexId s, VertexId t) const {
    return Query(labels, s, t, ActiveQueryKernel());
  }

 private:
  uint32_t k_ = 0;
  VertexId num_vertices_ = 0;
  bool directed_ = false;
  /// num_slots x k_ dense distances, slot-major (slot order matches
  /// LabelSetView: out labels first, then in labels when directed).
  std::vector<Distance> table_;
  /// Per-slot count of label entries with pivot < k_ — the hub-covered
  /// prefix length, where the suffix merge starts.
  std::vector<uint32_t> skip_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_HOT_HUB_H_
