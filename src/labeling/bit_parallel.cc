#include "labeling/bit_parallel.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hopdb {

namespace {
struct SrSlot {
  uint8_t root = 255;  // root index, 255 = unassigned
  uint8_t bit = 0;
};
}  // namespace

Result<BitParallelIndex> BitParallelIndex::Transform(
    TwoHopIndex base, const CsrGraph& ranked_graph,
    const BitParallelOptions& options) {
  if (base.directed() || ranked_graph.directed()) {
    return Status::Unimplemented(
        "bit-parallel labels require an undirected graph");
  }
  if (ranked_graph.weighted()) {
    return Status::Unimplemented(
        "bit-parallel labels require an unweighted graph");
  }
  if (base.num_vertices() != ranked_graph.num_vertices()) {
    return Status::InvalidArgument("index/graph size mismatch");
  }
  if (options.num_roots == 0 || options.num_roots > 64) {
    return Status::InvalidArgument("num_roots must be in [1, 64]");
  }

  BitParallelIndex out;
  const VertexId n = base.num_vertices();
  const uint32_t R = std::min<uint32_t>(options.num_roots, n);
  out.num_roots_ = R;

  // --- assign S_r: up to 64 non-root neighbors per root, disjoint.
  std::vector<SrSlot> in_sr(n);
  const uint32_t max_nb = std::min<uint32_t>(options.max_neighbors_per_root,
                                             64);
  for (uint32_t r = 0; r < R; ++r) {
    uint32_t bit = 0;
    for (const Arc& a : ranked_graph.OutArcs(r)) {
      if (bit >= max_nb) break;
      const VertexId u = a.to;
      if (u < R) continue;                  // roots are never in any S_r
      if (in_sr[u].root != 255) continue;   // S_r sets are disjoint
      in_sr[u] = {static_cast<uint8_t>(r), static_cast<uint8_t>(bit++)};
    }
  }

  // --- fold labels.
  out.marker_.assign(n, 0);
  out.bp_.assign(n, {});
  std::vector<LabelVector> normal(n);
  std::vector<Distance> root_d(R);

  auto labels = *base.mutable_out();
  for (VertexId v = 0; v < n; ++v) {
    std::fill(root_d.begin(), root_d.end(), kInfDistance);

    // Pass A: the tuple distance per root — the label's own (r, d) entry
    // when present, otherwise the best d_uv + 1 over folded neighbors
    // (a real path via u), plus the implicit self entries.
    for (const LabelEntry& e : labels[v]) {
      if (e.pivot < R) {
        root_d[e.pivot] = std::min(root_d[e.pivot], e.dist);
      } else if (in_sr[e.pivot].root != 255) {
        const uint8_t r = in_sr[e.pivot].root;
        root_d[r] = std::min(root_d[r], SaturatingAdd(e.dist, 1));
      }
    }
    if (v < R) root_d[v] = 0;
    if (in_sr[v].root != 255) {
      root_d[in_sr[v].root] = std::min<Distance>(root_d[in_sr[v].root], 1);
    }

    // Pass B: build tuples and distribute entries.
    std::vector<BpTuple> tuples(R, BpTuple{0, 0, 0, 0});
    std::vector<uint8_t> has_tuple(R, 0);
    auto ensure_tuple = [&](uint8_t r) {
      if (!has_tuple[r]) {
        has_tuple[r] = 1;
        tuples[r] = {r, root_d[r], 0, 0};
      }
    };
    for (const LabelEntry& e : labels[v]) {
      if (e.pivot < R) {
        ensure_tuple(static_cast<uint8_t>(e.pivot));
        continue;  // folded into the tuple's distance
      }
      if (in_sr[e.pivot].root != 255) {
        const SrSlot slot = in_sr[e.pivot];
        ensure_tuple(slot.root);
        const int64_t diff = static_cast<int64_t>(e.dist) -
                             static_cast<int64_t>(root_d[slot.root]);
        if (diff == -1) {
          tuples[slot.root].s_m1 |= 1ull << slot.bit;
        } else if (diff == 0) {
          tuples[slot.root].s_0 |= 1ull << slot.bit;
        }
        // diff >= +1: discard — the path via r is never longer.
        continue;
      }
      normal[v].push_back(e);
    }
    // Implicit self entries.
    if (v < R) ensure_tuple(static_cast<uint8_t>(v));
    if (in_sr[v].root != 255) {
      const SrSlot slot = in_sr[v];
      ensure_tuple(slot.root);
      // d_vv - d_rv = 0 - 1 = -1.
      tuples[slot.root].s_m1 |= 1ull << slot.bit;
    }

    for (uint32_t r = 0; r < R; ++r) {
      if (has_tuple[r]) {
        out.marker_[v] |= 1ull << r;
        out.bp_[v].push_back(tuples[r]);
      }
    }
  }

  out.normal_ = TwoHopIndex(std::move(normal), {}, /*directed=*/false);
  return out;
}

Distance BitParallelIndex::Query(VertexId s, VertexId t) const {
  if (s == t) return 0;
  Distance best = kInfDistance;

  uint64_t common = marker_[s] & marker_[t];
  while (common != 0) {
    const int i = __builtin_ctzll(common);
    common &= common - 1;
    const uint64_t below = (1ull << i) - 1;
    const BpTuple& ts = bp_[s][__builtin_popcountll(marker_[s] & below)];
    const BpTuple& tt = bp_[t][__builtin_popcountll(marker_[t] & below)];
    Distance d = static_cast<Distance>(ts.dist) + tt.dist;
    if ((ts.s_m1 & tt.s_m1) != 0) {
      d -= 2;
    } else if (((ts.s_m1 & tt.s_0) | (ts.s_0 & tt.s_m1)) != 0) {
      d -= 1;
    }
    if (d < best) best = d;
  }

  // normal_ is undirected, so this is exactly the flat-kernel label join
  // over Lout(s) and Lout(t).
  const Distance dn = normal_.Query(s, t);
  return std::min(best, dn);
}

uint64_t BitParallelIndex::BpTuples() const {
  uint64_t total = 0;
  for (const auto& v : bp_) total += v.size();
  return total;
}

uint64_t BitParallelIndex::PaperSizeBytes() const {
  return NormalEntries() * 5ull + BpTuples() * 18ull +
         marker_.size() * 8ull;
}

}  // namespace hopdb
