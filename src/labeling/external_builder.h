// External-memory label construction (Section 4 of the paper).
//
// The label sets never need to fit in memory: labels live in sorted
// record files and every iteration is a pipeline of streaming merge
// joins, external sorts, and blocked nested-loop joins:
//
//   generation  — prev entries (sorted by owner) merge-join either the
//                 graph's adjacency (Hop-Stepping) or the label files
//                 (Hop-Doubling; Rules 2/5 join the pivot-sorted copies,
//                 exactly Algorithm 2's "old (u2 -> u) sorted by u2");
//   dedup       — candidates are externally sorted by (owner, pivot,
//                 dist) and collapsed, then merge-scanned against the old
//                 labels to drop dominated entries;
//   pruning     — Section 4.2's blocked nested loop: the outer loop loads
//                 memory-budget-sized blocks of source labels together
//                 with this iteration's candidates, the inner loop
//                 streams the destination labels once per outer block;
//   apply       — survivors merge into the owner-sorted and pivot-sorted
//                 label files and become the next iteration's prev.
//
// Semantics are bit-identical to the in-memory builder (same rules, same
// dedup, same witness definition), which the test suite verifies by
// comparing complete label sets. The input graph itself is kept in memory
// (CSR adjacency is only consulted during Hop-Stepping unit-hop joins);
// label storage — the term that actually grows — is what the memory
// budget governs.

#ifndef HOPDB_LABELING_EXTERNAL_BUILDER_H_
#define HOPDB_LABELING_EXTERNAL_BUILDER_H_

#include <cstdint>
#include <string>

#include "graph/csr_graph.h"
#include "io/io_stats.h"
#include "labeling/builder.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct ExternalBuildOptions {
  /// Generation/pruning semantics (mode, hybrid switch, caps) — shared
  /// with the in-memory builder.
  BuildOptions build;
  /// Memory budget M for candidate sorting and pruning blocks.
  uint64_t memory_budget_bytes = 64ull << 20;
  /// Disk block size B used for I/O accounting.
  uint64_t block_size = kDefaultBlockSize;
  /// Directory for scratch and result files (must exist).
  std::string scratch_dir;
};

struct ExternalBuildResult {
  /// Final label files: LabelRec records sorted by (owner, pivot).
  std::string out_labels_path;
  std::string in_labels_path;  // empty for undirected graphs
  BuildStats stats;
  IoStats io;
  uint64_t total_entries = 0;

  /// Materializes the label files as an in-memory index (tests, query
  /// benchmarking); prefer WriteDiskIndex for the disk query path.
  Result<TwoHopIndex> ToMemory(const CsrGraph& ranked_graph) const;
};

/// On-disk label record: (key_major, key_minor, dist). Owner-sorted files
/// use (owner, pivot); pivot-sorted files use (pivot, owner).
struct LabelRec {
  VertexId a;
  VertexId b;
  Distance dist;
};

/// Runs the external construction for `ranked_graph` (internal id ==
/// rank).
Result<ExternalBuildResult> BuildHopLabelingExternal(
    const CsrGraph& ranked_graph, const ExternalBuildOptions& options);

}  // namespace hopdb

#endif  // HOPDB_LABELING_EXTERNAL_BUILDER_H_
