// Label entry primitives shared by the in-memory index, the builders, and
// the disk format.

#ifndef HOPDB_LABELING_LABEL_ENTRY_H_
#define HOPDB_LABELING_LABEL_ENTRY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace hopdb {

/// One 2-hop label entry: a pivot vertex and the distance of the trough
/// path the entry covers. Label vectors are kept sorted by pivot id so
/// queries are sorted-merge intersections and pruning scans are prefix
/// scans (every witness pivot outranks — has smaller id than — the entry's
/// own pivot).
struct LabelEntry {
  VertexId pivot;
  Distance dist;

  bool operator==(const LabelEntry& o) const {
    return pivot == o.pivot && dist == o.dist;
  }
};

/// Sorted-by-pivot label vector.
using LabelVector = std::vector<LabelEntry>;

/// Entries per cacheline block in blocked label arenas: 16 u32 pivots
/// fill one 64-byte cache line. Blocked stores pad every slot to a
/// multiple of this, keep per-block pivot minima/maxima sidecars, and
/// fill padding lanes with kInfDistance in both arenas (a padding
/// "match" sums to a wrapping value the kernels' overflow mask kills,
/// and a padding pivot can never equal a real pivot, which is always
/// < num_vertices <= 0xFFFFFFFE).
inline constexpr uint32_t kLabelBlockEntries = 16;

/// Binary-searches `label` (sorted by pivot) for `pivot`; returns the
/// stored distance or kInfDistance when absent.
inline Distance LookupPivot(std::span<const LabelEntry> label,
                            VertexId pivot) {
  size_t lo = 0, hi = label.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (label[mid].pivot < pivot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < label.size() && label[lo].pivot == pivot) return label[lo].dist;
  return kInfDistance;
}

/// Index of the first entry with pivot > `pivot` (upper bound).
inline size_t UpperBoundPivot(std::span<const LabelEntry> label,
                              VertexId pivot) {
  size_t lo = 0, hi = label.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (label[mid].pivot <= pivot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Sorted-merge intersection: minimum d1+d2 over common pivots of two
/// label vectors. This is the core query primitive (Section 2: look up
/// Lout(s) and Lin(t) for the pivot with the smallest d1+d2).
inline Distance IntersectLabels(std::span<const LabelEntry> a,
                                std::span<const LabelEntry> b) {
  Distance best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].pivot == b[j].pivot) {
      Distance d = SaturatingAdd(a[i].dist, b[j].dist);
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (a[i].pivot < b[j].pivot) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

}  // namespace hopdb

#endif  // HOPDB_LABELING_LABEL_ENTRY_H_
