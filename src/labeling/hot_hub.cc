#include "labeling/hot_hub.h"

namespace hopdb {

HotHubCache HotHubCache::Build(const LabelSetView& labels, uint32_t k) {
  HotHubCache cache;
  if (k == 0 || labels.num_vertices == 0) return cache;
  if (k > labels.num_vertices) k = labels.num_vertices;
  cache.k_ = k;
  cache.num_vertices_ = labels.num_vertices;
  cache.directed_ = labels.directed;
  const size_t num_slots = labels.num_slots();
  cache.table_.assign(num_slots * k, kInfDistance);
  cache.skip_.assign(num_slots, 0);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    const FlatLabelStore::View view = labels.Slot(slot);
    Distance* row = cache.table_.data() + slot * k;
    // Labels are sorted by pivot and hub pivots are the smallest
    // internal ids, so the hub-covered entries are exactly a prefix.
    uint32_t i = 0;
    while (i < view.size && view.pivots[i] < k) {
      row[view.pivots[i]] = view.dists[i];
      ++i;
    }
    cache.skip_[slot] = i;
  }
  return cache;
}

Distance HotHubCache::Query(const LabelSetView& labels, VertexId s, VertexId t,
                            const QueryKernel& kernel) const {
  if (s >= num_vertices_ || t >= num_vertices_) return kInfDistance;
  if (s == t) return 0;
  const size_t out_slot = s;
  const size_t in_slot =
      directed_ ? static_cast<size_t>(num_vertices_) + t : t;

  // Hub-covered pivots: one dense fold over 2k contiguous distances.
  // Absent pivots hold kInfDistance; the branchless wraparound check
  // keeps them infinite (inf + x wraps below inf for any real dist x,
  // and inf + 0 never occurs — label distances are nonzero), letting
  // the compiler turn the fold into straight-line cmov/SIMD code.
  const Distance* ho = table_.data() + out_slot * k_;
  const Distance* hi = table_.data() + in_slot * k_;
  Distance best = kInfDistance;
  for (uint32_t h = 0; h < k_; ++h) {
    const Distance sum = ho[h] + hi[h];
    const Distance d = sum < ho[h] ? kInfDistance : sum;
    best = d < best ? d : best;
  }

  const FlatLabelStore::View out_s = labels.Out(s);
  const FlatLabelStore::View in_t = labels.In(t);

  // Trivial pivots over the FULL labels (t itself may be a hub pivot,
  // in which case its entry lives inside the skipped prefix).
  const Distance direct_out = LookupPivotFlat(out_s, t);
  if (direct_out < best) best = direct_out;
  const Distance direct_in = LookupPivotFlat(in_t, s);
  if (direct_in < best) best = direct_in;

  // Non-hub suffixes through the general merge-join. A common pivot
  // >= k needs an entry past the skip prefix on BOTH sides, so if
  // either suffix is empty the hub fold already covered everything.
  const uint32_t skip_a = skip_[out_slot];
  const uint32_t skip_b = skip_[in_slot];
  if (skip_a < out_s.size && skip_b < in_t.size) {
    Distance merged;
    if (out_s.block_min != nullptr && in_t.block_min != nullptr) {
      // Blocked arenas: start at each suffix's block floor so the
      // sub-views stay 64-byte aligned with valid sidecars. Partial
      // boundary blocks re-cover a few hub entries; the duplicates
      // fold to the same minimum (idempotent), never a different one.
      const uint32_t ba = skip_a / kLabelBlockEntries;
      const uint32_t bb = skip_b / kLabelBlockEntries;
      merged = kernel.intersect_blocked(
          out_s.pivots + ba * kLabelBlockEntries,
          out_s.dists + ba * kLabelBlockEntries, out_s.block_min + ba,
          out_s.block_max + ba, out_s.size - ba * kLabelBlockEntries,
          in_t.pivots + bb * kLabelBlockEntries,
          in_t.dists + bb * kLabelBlockEntries, in_t.block_min + bb,
          in_t.block_max + bb, in_t.size - bb * kLabelBlockEntries);
    } else {
      merged = kernel.intersect_flat(
          out_s.pivots + skip_a, out_s.dists + skip_a, out_s.size - skip_a,
          in_t.pivots + skip_b, in_t.dists + skip_b, in_t.size - skip_b);
    }
    if (merged < best) best = merged;
  }
  return best;
}

}  // namespace hopdb
