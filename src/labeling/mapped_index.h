// MappedIndex: the zero-copy, memory-mapped serving form of a hopdb
// label index — the HLI2 on-disk format.
//
// HLI1 deserializes into heap vectors on every load, so server startup
// and RELOAD cost O(total label entries). HLI2 instead lays the
// FlatLabelStore arenas, the per-slot offset table, and both rank
// permutations out on disk exactly as the query kernels want them in
// memory: little-endian, fixed-width, every section 64-byte aligned.
// Open() mmaps the file and validates only the metadata (header + offset
// table + permutations — O(|V|), independent of the label count), after
// which queries run through the standard QueryKernel dispatch directly
// over the page cache. Startup and hot-swap latency no longer scale with
// index size, and N processes serving the same file share one physical
// copy of the label pages.
//
// Version 2 additionally persists the BLOCKED arena layout
// (flat_label_store.h): every slot's arena range starts on a 16-entry
// (64-byte) block boundary and is padded up to a block multiple with
// 0xFFFFFFFF lanes, and two sidecar sections carry each block's
// minimum/maximum real pivot — so the skip-scan kernels run over the
// mapping exactly as they do over a heap store, with no load-time
// reshaping. Version 1 files (packed arenas, no sidecars) stay
// readable: Open() is version-gated and serves v1 through the
// unblocked kernel paths.
//
// File layout ("HLI2" version 2, little-endian; byte-exact spec in
// docs/FORMATS.md):
//
//   header (128 bytes):
//     off   0  magic "HLI2"
//     off   4  u32 version = 2
//     off   8  u64 flags                  bit0 = directed
//     off  16  u32 num_vertices
//     off  20  u32 reserved (zero)
//     off  24  u64 total_entries          real label entries
//     off  32  u64 padded_entries         arena entries incl. block
//                                         padding (multiple of 16)
//     off  40  u64 file_size              total bytes (truncation check)
//     off  48  u64 meta_checksum          fnv1a-64 of offsets + sizes +
//                                         both permutation sections
//     off  56  u64 arena_checksum         fnv1a-64 of pivot + dist
//                                         arenas + both sidecars
//     off  64  u64 header_checksum        fnv1a-64 of header bytes [0,64)
//     off  72  zero padding to 128
//   sections, in canonical order, each 64-byte aligned, with offsets
//   derived from num_vertices/padded_entries (not stored):
//     offsets:      (num_slots + 1) x u64 padded arena entry indices,
//                   num_slots = 2 * |V| directed, |V| undirected; every
//                   value a multiple of 16, offsets[num_slots] ==
//                   padded_entries
//     sizes:        num_slots x u32 real entry counts
//     pivots:       padded_entries x u32
//     dists:        padded_entries x u32
//     block_min:    padded_entries / 16 x u32 per-block pivot minima
//     block_max:    padded_entries / 16 x u32 per-block pivot maxima
//     rank_to_orig: |V| x u32   (rank -> original id)
//     orig_to_rank: |V| x u32   (original id -> rank)
//
// (Version 1 stored packed arenas — offsets were cumulative real entry
// counts, no sizes/sidecar sections — and kept explicit section offsets
// in the header with the header checksum at offset 96.)
//
// Integrity model: Open() always verifies the header checksum, the
// metadata checksum, section bounds against file_size (with explicit
// total_entries/padded_entries overflow rejection), offset-table
// monotonicity and block alignment (v2: offsets[s+1] must equal
// offsets[s] + sizes[s] rounded up to a block), and that the two
// permutations are inverse bijections — so a truncated or
// metadata-corrupt file fails with a clean Status and a malformed
// offset table can never send a query out of bounds. The label arenas
// and block sidecars are NOT hashed on open (that would re-read the
// whole file and defeat the O(1) load); their corruption is
// bounds-safe — the merge-join kernels only compare pivots, a corrupt
// sidecar can only mis-steer block skipping within the mapped arenas,
// and the batch/KNN engines skip out-of-range pivots when building
// from a LabelSetView — so a corrupt arena can mis-answer but never
// crash, and is detectable via VerifyArenas() (used by `hopdb_cli
// convert --verify` and the corruption tests) or an explicit
// OpenOptions::verify_arenas.

#ifndef HOPDB_LABELING_MAPPED_INDEX_H_
#define HOPDB_LABELING_MAPPED_INDEX_H_

#include <cstdint>
#include <string>

#include "graph/ranking.h"
#include "graph/types.h"
#include "io/mmap_file.h"
#include "labeling/flat_label_store.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

class MappedIndex {
 public:
  struct OpenOptions {
    /// Also verify the label-arena checksum during Open (one sequential
    /// read of the whole file — O(total entries), defeating the O(1)
    /// load). Off by default; serving paths rely on the always-on
    /// metadata validation for memory safety instead.
    bool verify_arenas = false;
    /// Ask the kernel to start readahead for the whole mapping right
    /// after validation (MADV_WILLNEED). Trades eager I/O for faster
    /// first queries on a cold file.
    bool prefault = false;
  };

  MappedIndex() = default;

  /// Serializes `labels` + `mapping` into a new HLI2 file at `path`
  /// (current version: 2, blocked arenas + sidecars). Uses the index's
  /// flat mirror when built, otherwise flattens the label vectors
  /// first. O(total entries) time and one file write; the written file
  /// round-trips bit-exactly through Open(). Peak memory is the heap
  /// index plus one full file image (the sections are checksummed
  /// before the header is sealed) — convert on a machine that fits
  /// both; serving needs neither.
  static Status Write(const TwoHopIndex& labels, const RankMapping& mapping,
                      const std::string& path);

  /// Version-parameterized writer, for compatibility coverage: emits
  /// the requested on-disk version (1 = packed legacy layout, 2 =
  /// blocked). InvalidArgument outside the readable version range.
  static Status WriteVersion(const TwoHopIndex& labels,
                             const RankMapping& mapping,
                             const std::string& path, uint32_t version);

  /// Maps an HLI2 file and validates its metadata (see the integrity
  /// model above). O(|V|) work regardless of label count. Fails with
  /// InvalidArgument on bad magic/version/structure or checksum
  /// mismatch and IOError when the file cannot be mapped; never crashes
  /// on truncated or corrupt input. The returned index serves queries
  /// immediately; no rehydration step exists.
  static Result<MappedIndex> Open(const std::string& path,
                                  const OpenOptions& options);
  static Result<MappedIndex> Open(const std::string& path) {
    return Open(path, OpenOptions{});
  }

  /// True between a successful Open and destruction/move-out.
  bool mapped() const { return file_.mapped(); }

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  uint64_t TotalEntries() const { return total_entries_; }
  /// Arena entries including block padding; == TotalEntries() on v1.
  uint64_t PaddedEntries() const { return padded_entries_; }
  /// On-disk format version of the opened file (1 or 2).
  uint32_t format_version() const { return version_; }
  const std::string& path() const { return file_.path(); }

  /// Exact distance between ORIGINAL vertex ids (the embedded
  /// permutation translates internally); kInfDistance when unreachable.
  /// Routed through the active SIMD query kernel over the mapped arenas
  /// — same cost and same results as HopDbIndex::Query on the
  /// equivalent heap index.
  ///
  /// Thread safety: const over an immutable read-only mapping — safe for
  /// any number of concurrent callers, like the heap read path.
  Distance Query(VertexId src, VertexId dst) const;

  /// Id translation over the mapped permutation sections (O(1) array
  /// reads; ids must be < num_vertices()).
  VertexId ToInternal(VertexId orig) const { return orig_to_rank_[orig]; }
  VertexId ToOriginal(VertexId internal) const {
    return rank_to_orig_[internal];
  }

  /// The mapped label set (INTERNAL/rank ids) for engines that consume
  /// LabelSetView (query/batch.h, query/knn.h). Valid while this index
  /// is alive and unmoved. v2 views carry the per-slot sizes and block
  /// sidecars, routing queries through the skip-scan kernels; v1 views
  /// leave them null and take the unblocked paths.
  LabelSetView labels() const {
    return LabelSetView{num_vertices_, directed_, offsets_,   pivots_,
                        dists_,        sizes_,    block_min_, block_max_};
  }

  /// Size of the whole mapping in bytes (== file size).
  uint64_t MappedBytes() const { return file_.size(); }

  /// Bytes of the mapping currently resident in physical memory (see
  /// MmapFile::ResidentBytes). The honest "how much RAM does this index
  /// use" number for an mmap-served index: near 0 right after a cold
  /// open, growing as queries touch pages.
  uint64_t ResidentBytes() const { return file_.ResidentBytes(); }

  /// Re-hashes the pivot/dist arenas against the header's
  /// arena_checksum. O(total entries) sequential read; InvalidArgument
  /// on mismatch. The mutation-shaped integrity check for a format that
  /// has no mutation path.
  Status VerifyArenas() const;

  /// HLI2 is an immutable serving format: every mutation-shaped
  /// operation answers with this error (callers that need to edit labels
  /// must convert back to the heap HLI1 representation). Kept as a
  /// method so call sites read as intent, not as a stray status string.
  static Status MutationNotSupported(const char* operation) {
    return Status::Unimplemented(
        std::string("HLI2 mapped indexes are read-only: ") + operation +
        " is not supported (convert to HLI1 and rebuild to modify labels)");
  }

 private:
  MmapFile file_;
  bool directed_ = false;
  uint32_t version_ = 0;
  VertexId num_vertices_ = 0;
  uint64_t total_entries_ = 0;
  uint64_t padded_entries_ = 0;
  uint64_t arena_checksum_ = 0;
  // Typed section pointers into the mapping; sizes_/block_min_/
  // block_max_ stay null for v1 files.
  const uint64_t* offsets_ = nullptr;
  const uint32_t* pivots_ = nullptr;
  const uint32_t* dists_ = nullptr;
  const uint32_t* sizes_ = nullptr;
  const uint32_t* block_min_ = nullptr;
  const uint32_t* block_max_ = nullptr;
  const uint32_t* rank_to_orig_ = nullptr;
  const uint32_t* orig_to_rank_ = nullptr;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_MAPPED_INDEX_H_
