// MappedIndex: the zero-copy, memory-mapped serving form of a hopdb
// label index — the HLI2 on-disk format.
//
// HLI1 deserializes into heap vectors on every load, so server startup
// and RELOAD cost O(total label entries). HLI2 instead lays the
// FlatLabelStore arenas, the per-slot offset table, and both rank
// permutations out on disk exactly as the query kernels want them in
// memory: little-endian, fixed-width, every section 64-byte aligned.
// Open() mmaps the file and validates only the metadata (header + offset
// table + permutations — O(|V|), independent of the label count), after
// which queries run through the standard QueryKernel dispatch directly
// over the page cache. Startup and hot-swap latency no longer scale with
// index size, and N processes serving the same file share one physical
// copy of the label pages.
//
// File layout ("HLI2", little-endian; byte-exact spec in
// docs/FORMATS.md):
//
//   header (128 bytes):
//     off   0  magic "HLI2"
//     off   4  u32 version = 1
//     off   8  u64 flags                  bit0 = directed
//     off  16  u32 num_vertices
//     off  20  u32 reserved (zero)
//     off  24  u64 total_entries
//     off  32  u64 offsets_off            byte offset of each section,
//     off  40  u64 pivots_off             all 64-byte aligned
//     off  48  u64 dists_off
//     off  56  u64 rank_to_orig_off
//     off  64  u64 orig_to_rank_off
//     off  72  u64 file_size              total bytes (truncation check)
//     off  80  u64 meta_checksum          fnv1a-64 of offsets + both
//                                         permutation sections
//     off  88  u64 arena_checksum         fnv1a-64 of pivot + dist arenas
//     off  96  u64 header_checksum        fnv1a-64 of header bytes [0,96)
//     off 104  zero padding to 128
//   offsets section:      (num_slots + 1) x u64 entry indices, where
//                         num_slots = 2 * |V| directed, |V| undirected
//   pivots section:       total_entries x u32
//   dists section:        total_entries x u32
//   rank_to_orig section: |V| x u32   (rank -> original id)
//   orig_to_rank section: |V| x u32   (original id -> rank)
//
// Integrity model: Open() always verifies the header checksum, the
// metadata checksum, section bounds against file_size (with explicit
// total_entries overflow rejection), offset-table monotonicity, and
// that the two permutations are inverse bijections — so a truncated or
// metadata-corrupt file fails with a clean Status and a malformed
// offset table can never send a query out of bounds. The label arenas
// are NOT hashed on open (that would re-read the whole file and defeat
// the O(1) load); arena corruption is bounds-safe — the merge-join
// kernels only compare pivots, and the batch/KNN engines skip
// out-of-range pivots when building from a LabelSetView — so a corrupt
// arena can mis-answer but never crash, and is detectable via
// VerifyArenas() (used by `hopdb_cli convert --verify` and the
// corruption tests) or an explicit OpenOptions::verify_arenas.

#ifndef HOPDB_LABELING_MAPPED_INDEX_H_
#define HOPDB_LABELING_MAPPED_INDEX_H_

#include <cstdint>
#include <string>

#include "graph/ranking.h"
#include "graph/types.h"
#include "io/mmap_file.h"
#include "labeling/flat_label_store.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

class MappedIndex {
 public:
  struct OpenOptions {
    /// Also verify the label-arena checksum during Open (one sequential
    /// read of the whole file — O(total entries), defeating the O(1)
    /// load). Off by default; serving paths rely on the always-on
    /// metadata validation for memory safety instead.
    bool verify_arenas = false;
    /// Ask the kernel to start readahead for the whole mapping right
    /// after validation (MADV_WILLNEED). Trades eager I/O for faster
    /// first queries on a cold file.
    bool prefault = false;
  };

  MappedIndex() = default;

  /// Serializes `labels` + `mapping` into a new HLI2 file at `path`.
  /// Uses the index's flat mirror when built, otherwise flattens the
  /// label vectors first. O(total entries) time and one file write; the
  /// written file round-trips bit-exactly through Open(). Peak memory
  /// is the heap index plus one full file image (the sections are
  /// checksummed before the header is sealed) — convert on a machine
  /// that fits both; serving needs neither.
  static Status Write(const TwoHopIndex& labels, const RankMapping& mapping,
                      const std::string& path);

  /// Maps an HLI2 file and validates its metadata (see the integrity
  /// model above). O(|V|) work regardless of label count. Fails with
  /// InvalidArgument on bad magic/version/structure or checksum
  /// mismatch and IOError when the file cannot be mapped; never crashes
  /// on truncated or corrupt input. The returned index serves queries
  /// immediately; no rehydration step exists.
  static Result<MappedIndex> Open(const std::string& path,
                                  const OpenOptions& options);
  static Result<MappedIndex> Open(const std::string& path) {
    return Open(path, OpenOptions{});
  }

  /// True between a successful Open and destruction/move-out.
  bool mapped() const { return file_.mapped(); }

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  uint64_t TotalEntries() const { return total_entries_; }
  const std::string& path() const { return file_.path(); }

  /// Exact distance between ORIGINAL vertex ids (the embedded
  /// permutation translates internally); kInfDistance when unreachable.
  /// Routed through the active SIMD query kernel over the mapped arenas
  /// — same cost and same results as HopDbIndex::Query on the
  /// equivalent heap index.
  ///
  /// Thread safety: const over an immutable read-only mapping — safe for
  /// any number of concurrent callers, like the heap read path.
  Distance Query(VertexId src, VertexId dst) const;

  /// Id translation over the mapped permutation sections (O(1) array
  /// reads; ids must be < num_vertices()).
  VertexId ToInternal(VertexId orig) const { return orig_to_rank_[orig]; }
  VertexId ToOriginal(VertexId internal) const {
    return rank_to_orig_[internal];
  }

  /// The mapped label set (INTERNAL/rank ids) for engines that consume
  /// LabelSetView (query/batch.h, query/knn.h). Valid while this index
  /// is alive and unmoved.
  LabelSetView labels() const {
    return LabelSetView{num_vertices_, directed_, offsets_, pivots_, dists_};
  }

  /// Size of the whole mapping in bytes (== file size).
  uint64_t MappedBytes() const { return file_.size(); }

  /// Bytes of the mapping currently resident in physical memory (see
  /// MmapFile::ResidentBytes). The honest "how much RAM does this index
  /// use" number for an mmap-served index: near 0 right after a cold
  /// open, growing as queries touch pages.
  uint64_t ResidentBytes() const { return file_.ResidentBytes(); }

  /// Re-hashes the pivot/dist arenas against the header's
  /// arena_checksum. O(total entries) sequential read; InvalidArgument
  /// on mismatch. The mutation-shaped integrity check for a format that
  /// has no mutation path.
  Status VerifyArenas() const;

  /// HLI2 is an immutable serving format: every mutation-shaped
  /// operation answers with this error (callers that need to edit labels
  /// must convert back to the heap HLI1 representation). Kept as a
  /// method so call sites read as intent, not as a stray status string.
  static Status MutationNotSupported(const char* operation) {
    return Status::Unimplemented(
        std::string("HLI2 mapped indexes are read-only: ") + operation +
        " is not supported (convert to HLI1 and rebuild to modify labels)");
  }

 private:
  MmapFile file_;
  bool directed_ = false;
  VertexId num_vertices_ = 0;
  uint64_t total_entries_ = 0;
  uint64_t arena_checksum_ = 0;
  // Typed section pointers into the mapping.
  const uint64_t* offsets_ = nullptr;
  const uint32_t* pivots_ = nullptr;
  const uint32_t* dists_ = nullptr;
  const uint32_t* rank_to_orig_ = nullptr;
  const uint32_t* orig_to_rank_ = nullptr;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_MAPPED_INDEX_H_
