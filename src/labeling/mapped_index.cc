#include "labeling/mapped_index.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "labeling/query_kernel.h"
#include "util/serde.h"

namespace hopdb {

namespace {

constexpr char kMagic[4] = {'H', 'L', 'I', '2'};
constexpr uint32_t kHli2Version = 1;
constexpr uint64_t kFlagDirected = 1ull << 0;
constexpr size_t kHeaderBytes = 128;
constexpr size_t kHeaderChecksumOff = 96;
constexpr size_t kSectionAlign = 64;

uint64_t AlignUp(uint64_t off) {
  return (off + kSectionAlign - 1) & ~static_cast<uint64_t>(kSectionAlign - 1);
}

/// Appends zero bytes until `buf` is kSectionAlign-aligned.
void PadToAlignment(std::string* buf) {
  buf->resize(AlignUp(buf->size()), '\0');
}

struct Header {
  uint64_t flags = 0;
  uint32_t num_vertices = 0;
  uint64_t total_entries = 0;
  uint64_t offsets_off = 0;
  uint64_t pivots_off = 0;
  uint64_t dists_off = 0;
  uint64_t rank_to_orig_off = 0;
  uint64_t orig_to_rank_off = 0;
  uint64_t file_size = 0;
  uint64_t meta_checksum = 0;
  uint64_t arena_checksum = 0;
  uint64_t header_checksum = 0;
};

Status ParseHeader(const uint8_t* data, size_t size, const std::string& path,
                   Header* h) {
  if (size < kHeaderBytes) {
    return Status::InvalidArgument("truncated HLI2 header: " + path);
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an HLI2 index file: " + path);
  }
  if (DecodeU32(data + 4) != kHli2Version) {
    return Status::InvalidArgument(
        "unsupported HLI2 version " + std::to_string(DecodeU32(data + 4)) +
        " (this build reads version " + std::to_string(kHli2Version) +
        "): " + path);
  }
  h->flags = DecodeU64(data + 8);
  h->num_vertices = DecodeU32(data + 16);
  h->total_entries = DecodeU64(data + 24);
  h->offsets_off = DecodeU64(data + 32);
  h->pivots_off = DecodeU64(data + 40);
  h->dists_off = DecodeU64(data + 48);
  h->rank_to_orig_off = DecodeU64(data + 56);
  h->orig_to_rank_off = DecodeU64(data + 64);
  h->file_size = DecodeU64(data + 72);
  h->meta_checksum = DecodeU64(data + 80);
  h->arena_checksum = DecodeU64(data + 88);
  h->header_checksum = DecodeU64(data + kHeaderChecksumOff);
  if (Fnv1a64(data, kHeaderChecksumOff) != h->header_checksum) {
    return Status::InvalidArgument("HLI2 header checksum mismatch: " + path);
  }
  return Status::OK();
}

}  // namespace

Status MappedIndex::Write(const TwoHopIndex& labels,
                          const RankMapping& mapping,
                          const std::string& path) {
  const VertexId n = labels.num_vertices();
  if (mapping.size() != n) {
    return Status::InvalidArgument(
        "rank mapping covers " + std::to_string(mapping.size()) +
        " vertices but the index has " + std::to_string(n));
  }
  // Serialize from the flat mirror; flatten on the fly when the caller
  // mutated labels without rebuilding it.
  FlatLabelStore rebuilt;
  const FlatLabelStore* flat = &labels.flat_store();
  if (!flat->built()) {
    std::vector<LabelVector> out(n), in;
    if (labels.directed()) in.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      const auto out_label = labels.OutLabel(v);
      out[v].assign(out_label.begin(), out_label.end());
      if (labels.directed()) {
        const auto in_label = labels.InLabel(v);
        in[v].assign(in_label.begin(), in_label.end());
      }
    }
    rebuilt = FlatLabelStore::Build(out, in, labels.directed());
    flat = &rebuilt;
  }
  const LabelSetView view = flat->view();
  const size_t num_slots = view.num_slots();
  const uint64_t total = labels.TotalEntries();

  Header h;
  h.flags = labels.directed() ? kFlagDirected : 0;
  h.num_vertices = n;
  h.total_entries = total;
  h.offsets_off = AlignUp(kHeaderBytes);
  h.pivots_off = AlignUp(h.offsets_off + (num_slots + 1) * sizeof(uint64_t));
  h.dists_off = AlignUp(h.pivots_off + total * sizeof(uint32_t));
  h.rank_to_orig_off = AlignUp(h.dists_off + total * sizeof(uint32_t));
  h.orig_to_rank_off =
      AlignUp(h.rank_to_orig_off + static_cast<uint64_t>(n) * sizeof(uint32_t));
  h.file_size =
      h.orig_to_rank_off + static_cast<uint64_t>(n) * sizeof(uint32_t);

  std::string buf;
  buf.reserve(h.file_size);
  buf.resize(kHeaderBytes, '\0');

  PadToAlignment(&buf);  // no-op (header is already aligned); documents intent
  const size_t offsets_begin = buf.size();
  for (size_t s = 0; s <= num_slots; ++s) PutU64(&buf, view.offsets[s]);
  PadToAlignment(&buf);
  const size_t pivots_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.pivots),
             total * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t dists_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.dists),
             total * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t rank_to_orig_begin = buf.size();
  for (VertexId r = 0; r < n; ++r) PutU32(&buf, mapping.rank_to_orig[r]);
  PadToAlignment(&buf);
  const size_t orig_to_rank_begin = buf.size();
  for (VertexId v = 0; v < n; ++v) PutU32(&buf, mapping.orig_to_rank[v]);

  // The layout math above and the append cursor must agree exactly.
  if (offsets_begin != h.offsets_off || pivots_begin != h.pivots_off ||
      dists_begin != h.dists_off || rank_to_orig_begin != h.rank_to_orig_off ||
      orig_to_rank_begin != h.orig_to_rank_off || buf.size() != h.file_size) {
    return Status::Internal("HLI2 writer layout mismatch");
  }

  // The metadata checksum folds the permutation sections in with the
  // offset table so a corrupt id translation is caught at open time, not
  // query time.
  h.meta_checksum =
      Fnv1a64(buf.data() + h.offsets_off, h.pivots_off - h.offsets_off) ^
      Fnv1a64(buf.data() + h.rank_to_orig_off,
              h.file_size - h.rank_to_orig_off);
  h.arena_checksum = Fnv1a64(buf.data() + h.pivots_off,
                             h.rank_to_orig_off - h.pivots_off);

  // Fill in the header in place.
  uint8_t* hd = reinterpret_cast<uint8_t*>(buf.data());
  std::memcpy(hd, kMagic, 4);
  EncodeU32(kHli2Version, hd + 4);
  EncodeU64(h.flags, hd + 8);
  EncodeU32(h.num_vertices, hd + 16);
  EncodeU32(0, hd + 20);
  EncodeU64(h.total_entries, hd + 24);
  EncodeU64(h.offsets_off, hd + 32);
  EncodeU64(h.pivots_off, hd + 40);
  EncodeU64(h.dists_off, hd + 48);
  EncodeU64(h.rank_to_orig_off, hd + 56);
  EncodeU64(h.orig_to_rank_off, hd + 64);
  EncodeU64(h.file_size, hd + 72);
  EncodeU64(h.meta_checksum, hd + 80);
  EncodeU64(h.arena_checksum, hd + 88);
  EncodeU64(Fnv1a64(hd, kHeaderChecksumOff), hd + kHeaderChecksumOff);

  return WriteStringToFile(path, buf);
}

Result<MappedIndex> MappedIndex::Open(const std::string& path,
                                      const OpenOptions& options) {
  HOPDB_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  Header h;
  HOPDB_RETURN_NOT_OK(ParseHeader(file.data(), file.size(), path, &h));
  if (h.file_size != file.size()) {
    return Status::InvalidArgument(
        "HLI2 file size mismatch (header says " + std::to_string(h.file_size) +
        " bytes, file has " + std::to_string(file.size()) + "): " + path);
  }

  const bool directed = (h.flags & kFlagDirected) != 0;
  const uint64_t n = h.num_vertices;
  const uint64_t num_slots = directed ? 2 * n : n;
  // Reject total_entries before any size arithmetic: a crafted header
  // with total_entries near 2^62 would wrap total_entries * 4 to a tiny
  // number and sail through the layout check below. (file_size already
  // equals the real mapped size, so this also bounds every product
  // computed next.)
  if (h.total_entries > h.file_size / sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "HLI2 total_entries exceeds what the file can hold: " + path);
  }
  // The section layout is canonical (Write emits exactly this order and
  // padding), so rather than bounds-checking each claimed offset —
  // which a crafted header can still abuse via reordered/overlapping
  // sections whose pairwise differences underflow — recompute the whole
  // layout from n/total_entries and require exact agreement. This
  // subsumes ordering, overlap, alignment, and bounds in one shot.
  Header want;
  want.offsets_off = AlignUp(kHeaderBytes);
  want.pivots_off =
      AlignUp(want.offsets_off + (num_slots + 1) * sizeof(uint64_t));
  want.dists_off =
      AlignUp(want.pivots_off + h.total_entries * sizeof(uint32_t));
  want.rank_to_orig_off =
      AlignUp(want.dists_off + h.total_entries * sizeof(uint32_t));
  want.orig_to_rank_off =
      AlignUp(want.rank_to_orig_off + n * sizeof(uint32_t));
  want.file_size = want.orig_to_rank_off + n * sizeof(uint32_t);
  if (h.offsets_off != want.offsets_off ||
      h.pivots_off != want.pivots_off || h.dists_off != want.dists_off ||
      h.rank_to_orig_off != want.rank_to_orig_off ||
      h.orig_to_rank_off != want.orig_to_rank_off ||
      h.file_size != want.file_size) {
    return Status::InvalidArgument(
        "HLI2 section offsets disagree with the canonical layout for "
        "num_vertices/total_entries (truncated or crafted?): " + path);
  }

  const uint8_t* base = file.data();
  uint64_t meta = Fnv1a64(base + h.offsets_off, h.pivots_off - h.offsets_off);
  meta ^= Fnv1a64(base + h.rank_to_orig_off, h.file_size - h.rank_to_orig_off);
  if (meta != h.meta_checksum) {
    return Status::InvalidArgument("HLI2 metadata checksum mismatch: " + path);
  }

  // Structural validation of everything queries index by: offsets
  // monotone within total_entries, permutations inverse bijections.
  // O(|V|) — this is the whole non-constant cost of an open.
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(base + h.offsets_off);
  if (offsets[0] != 0 || offsets[num_slots] != h.total_entries) {
    return Status::InvalidArgument("HLI2 offset table endpoints invalid: " +
                                   path);
  }
  for (uint64_t s = 0; s < num_slots; ++s) {
    if (offsets[s] > offsets[s + 1]) {
      return Status::InvalidArgument("HLI2 offset table not monotone: " +
                                     path);
    }
  }
  const uint32_t* rank_to_orig =
      reinterpret_cast<const uint32_t*>(base + h.rank_to_orig_off);
  const uint32_t* orig_to_rank =
      reinterpret_cast<const uint32_t*>(base + h.orig_to_rank_off);
  for (uint64_t r = 0; r < n; ++r) {
    const uint32_t orig = rank_to_orig[r];
    if (orig >= n || orig_to_rank[orig] != r) {
      return Status::InvalidArgument(
          "HLI2 rank permutations are not inverse bijections: " + path);
    }
  }

  MappedIndex index;
  index.file_ = std::move(file);
  index.directed_ = directed;
  index.num_vertices_ = h.num_vertices;
  index.total_entries_ = h.total_entries;
  index.arena_checksum_ = h.arena_checksum;
  const uint8_t* data = index.file_.data();
  index.offsets_ = reinterpret_cast<const uint64_t*>(data + h.offsets_off);
  index.pivots_ = reinterpret_cast<const uint32_t*>(data + h.pivots_off);
  index.dists_ = reinterpret_cast<const uint32_t*>(data + h.dists_off);
  index.rank_to_orig_ =
      reinterpret_cast<const uint32_t*>(data + h.rank_to_orig_off);
  index.orig_to_rank_ =
      reinterpret_cast<const uint32_t*>(data + h.orig_to_rank_off);

  if (options.verify_arenas) {
    HOPDB_RETURN_NOT_OK(index.VerifyArenas());
  }
  if (options.prefault) {
    index.file_.AdviseWillNeed();
  }
  return index;
}

Distance MappedIndex::Query(VertexId src, VertexId dst) const {
  if (src >= num_vertices_ || dst >= num_vertices_) return kInfDistance;
  const VertexId s = orig_to_rank_[src];
  const VertexId t = orig_to_rank_[dst];
  const LabelSetView view = labels();
  return QueryFlatHalves(view.Out(s), view.In(t), s, t, ActiveQueryKernel());
}

Status MappedIndex::VerifyArenas() const {
  if (!mapped()) {
    return Status::FailedPrecondition("VerifyArenas on an unmapped index");
  }
  // Hash exactly what Write hashed: the contiguous byte range from the
  // pivot section start to the rank_to_orig section start (both arenas
  // plus their inter-section padding).
  const uint8_t* begin = reinterpret_cast<const uint8_t*>(pivots_);
  const uint8_t* end = reinterpret_cast<const uint8_t*>(rank_to_orig_);
  if (Fnv1a64(begin, static_cast<size_t>(end - begin)) != arena_checksum_) {
    return Status::InvalidArgument("HLI2 label arena checksum mismatch: " +
                                   path());
  }
  return Status::OK();
}

}  // namespace hopdb
