#include "labeling/mapped_index.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "labeling/query_kernel.h"
#include "util/serde.h"

namespace hopdb {

namespace {

constexpr char kMagic[4] = {'H', 'L', 'I', '2'};
/// Current write version: blocked arenas + per-block pivot sidecars.
constexpr uint32_t kHli2Version = 2;
/// Oldest version Open() still reads (packed arenas, no sidecars).
constexpr uint32_t kHli2MinReadVersion = 1;
constexpr uint64_t kFlagDirected = 1ull << 0;
constexpr size_t kHeaderBytes = 128;
constexpr size_t kHeaderChecksumOffV1 = 96;
constexpr size_t kHeaderChecksumOffV2 = 64;
constexpr size_t kSectionAlign = 64;

uint64_t AlignUp(uint64_t off) {
  return (off + kSectionAlign - 1) & ~static_cast<uint64_t>(kSectionAlign - 1);
}

uint64_t AlignUpBlock(uint64_t entries) {
  return (entries + kLabelBlockEntries - 1) / kLabelBlockEntries *
         kLabelBlockEntries;
}

/// Appends zero bytes until `buf` is kSectionAlign-aligned.
void PadToAlignment(std::string* buf) {
  buf->resize(AlignUp(buf->size()), '\0');
}

struct Header {
  uint32_t version = 0;
  uint64_t flags = 0;
  uint32_t num_vertices = 0;
  uint64_t total_entries = 0;
  uint64_t padded_entries = 0;  // v2 only; == total_entries on v1
  uint64_t file_size = 0;
  uint64_t meta_checksum = 0;
  uint64_t arena_checksum = 0;
  // v1 kept explicit section offsets in the header; v2 derives them.
  uint64_t v1_offsets_off = 0;
  uint64_t v1_pivots_off = 0;
  uint64_t v1_dists_off = 0;
  uint64_t v1_rank_to_orig_off = 0;
  uint64_t v1_orig_to_rank_off = 0;
};

/// Byte offsets of the canonical v2 section order, derived entirely
/// from the slot count, vertex count, and padded entry count. The
/// writer emits exactly this layout and Open() recomputes it and
/// requires exact agreement — subsuming ordering, overlap, alignment,
/// and bounds checks in one shot.
struct LayoutV2 {
  uint64_t offsets_off = 0;
  uint64_t sizes_off = 0;
  uint64_t pivots_off = 0;
  uint64_t dists_off = 0;
  uint64_t block_min_off = 0;
  uint64_t block_max_off = 0;
  uint64_t rank_to_orig_off = 0;
  uint64_t orig_to_rank_off = 0;
  uint64_t file_size = 0;
};

LayoutV2 ComputeLayoutV2(uint64_t num_slots, uint64_t n, uint64_t padded) {
  const uint64_t blocks = padded / kLabelBlockEntries;
  LayoutV2 l;
  l.offsets_off = AlignUp(kHeaderBytes);
  l.sizes_off = AlignUp(l.offsets_off + (num_slots + 1) * sizeof(uint64_t));
  l.pivots_off = AlignUp(l.sizes_off + num_slots * sizeof(uint32_t));
  l.dists_off = AlignUp(l.pivots_off + padded * sizeof(uint32_t));
  l.block_min_off = AlignUp(l.dists_off + padded * sizeof(uint32_t));
  l.block_max_off = AlignUp(l.block_min_off + blocks * sizeof(uint32_t));
  l.rank_to_orig_off = AlignUp(l.block_max_off + blocks * sizeof(uint32_t));
  l.orig_to_rank_off = AlignUp(l.rank_to_orig_off + n * sizeof(uint32_t));
  l.file_size = l.orig_to_rank_off + n * sizeof(uint32_t);
  return l;
}

Status ParseHeader(const uint8_t* data, size_t size, const std::string& path,
                   Header* h) {
  if (size < kHeaderBytes) {
    return Status::InvalidArgument("truncated HLI2 header: " + path);
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an HLI2 index file: " + path);
  }
  h->version = DecodeU32(data + 4);
  if (h->version < kHli2MinReadVersion || h->version > kHli2Version) {
    return Status::InvalidArgument(
        "unsupported HLI2 version " + std::to_string(h->version) +
        " (this build reads versions " + std::to_string(kHli2MinReadVersion) +
        ".." + std::to_string(kHli2Version) + "): " + path);
  }
  h->flags = DecodeU64(data + 8);
  h->num_vertices = DecodeU32(data + 16);
  h->total_entries = DecodeU64(data + 24);
  if (h->version == 1) {
    h->padded_entries = h->total_entries;
    h->v1_offsets_off = DecodeU64(data + 32);
    h->v1_pivots_off = DecodeU64(data + 40);
    h->v1_dists_off = DecodeU64(data + 48);
    h->v1_rank_to_orig_off = DecodeU64(data + 56);
    h->v1_orig_to_rank_off = DecodeU64(data + 64);
    h->file_size = DecodeU64(data + 72);
    h->meta_checksum = DecodeU64(data + 80);
    h->arena_checksum = DecodeU64(data + 88);
    if (Fnv1a64(data, kHeaderChecksumOffV1) !=
        DecodeU64(data + kHeaderChecksumOffV1)) {
      return Status::InvalidArgument("HLI2 header checksum mismatch: " + path);
    }
  } else {
    h->padded_entries = DecodeU64(data + 32);
    h->file_size = DecodeU64(data + 40);
    h->meta_checksum = DecodeU64(data + 48);
    h->arena_checksum = DecodeU64(data + 56);
    if (Fnv1a64(data, kHeaderChecksumOffV2) !=
        DecodeU64(data + kHeaderChecksumOffV2)) {
      return Status::InvalidArgument("HLI2 header checksum mismatch: " + path);
    }
  }
  return Status::OK();
}

}  // namespace

Status MappedIndex::Write(const TwoHopIndex& labels,
                          const RankMapping& mapping,
                          const std::string& path) {
  return WriteVersion(labels, mapping, path, kHli2Version);
}

Status MappedIndex::WriteVersion(const TwoHopIndex& labels,
                                 const RankMapping& mapping,
                                 const std::string& path, uint32_t version) {
  if (version < kHli2MinReadVersion || version > kHli2Version) {
    return Status::InvalidArgument("unwritable HLI2 version " +
                                   std::to_string(version));
  }
  const VertexId n = labels.num_vertices();
  if (mapping.size() != n) {
    return Status::InvalidArgument(
        "rank mapping covers " + std::to_string(mapping.size()) +
        " vertices but the index has " + std::to_string(n));
  }
  // Serialize from the flat mirror; flatten on the fly when the caller
  // mutated labels without rebuilding it.
  FlatLabelStore rebuilt;
  const FlatLabelStore* flat = &labels.flat_store();
  if (!flat->built()) {
    std::vector<LabelVector> out(n), in;
    if (labels.directed()) in.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      const auto out_label = labels.OutLabel(v);
      out[v].assign(out_label.begin(), out_label.end());
      if (labels.directed()) {
        const auto in_label = labels.InLabel(v);
        in[v].assign(in_label.begin(), in_label.end());
      }
    }
    rebuilt = FlatLabelStore::Build(out, in, labels.directed());
    flat = &rebuilt;
  }
  const LabelSetView view = flat->view();
  const size_t num_slots = view.num_slots();
  const uint64_t total = labels.TotalEntries();

  Header h;
  h.version = version;
  h.flags = labels.directed() ? kFlagDirected : 0;
  h.num_vertices = n;
  h.total_entries = total;
  h.padded_entries = flat->PaddedEntries();

  std::string buf;
  buf.resize(kHeaderBytes, '\0');

  if (version == 1) {
    // Legacy packed layout: cumulative real-entry offsets, tightly
    // packed arenas, explicit section offsets in the header.
    h.v1_offsets_off = AlignUp(kHeaderBytes);
    h.v1_pivots_off =
        AlignUp(h.v1_offsets_off + (num_slots + 1) * sizeof(uint64_t));
    h.v1_dists_off = AlignUp(h.v1_pivots_off + total * sizeof(uint32_t));
    h.v1_rank_to_orig_off =
        AlignUp(h.v1_dists_off + total * sizeof(uint32_t));
    h.v1_orig_to_rank_off = AlignUp(h.v1_rank_to_orig_off +
                                    static_cast<uint64_t>(n) *
                                        sizeof(uint32_t));
    h.file_size =
        h.v1_orig_to_rank_off + static_cast<uint64_t>(n) * sizeof(uint32_t);
    buf.reserve(h.file_size);

    uint64_t running = 0;
    PutU64(&buf, 0);
    for (size_t s = 0; s < num_slots; ++s) {
      running += view.sizes[s];
      PutU64(&buf, running);
    }
    PadToAlignment(&buf);
    const size_t pivots_begin = buf.size();
    for (size_t s = 0; s < num_slots; ++s) {
      const FlatLabelStore::View slot = view.Slot(s);
      buf.append(reinterpret_cast<const char*>(slot.pivots),
                 static_cast<size_t>(slot.size) * sizeof(uint32_t));
    }
    PadToAlignment(&buf);
    const size_t dists_begin = buf.size();
    for (size_t s = 0; s < num_slots; ++s) {
      const FlatLabelStore::View slot = view.Slot(s);
      buf.append(reinterpret_cast<const char*>(slot.dists),
                 static_cast<size_t>(slot.size) * sizeof(uint32_t));
    }
    PadToAlignment(&buf);
    const size_t rank_to_orig_begin = buf.size();
    for (VertexId r = 0; r < n; ++r) PutU32(&buf, mapping.rank_to_orig[r]);
    PadToAlignment(&buf);
    const size_t orig_to_rank_begin = buf.size();
    for (VertexId v = 0; v < n; ++v) PutU32(&buf, mapping.orig_to_rank[v]);

    if (pivots_begin != h.v1_pivots_off || dists_begin != h.v1_dists_off ||
        rank_to_orig_begin != h.v1_rank_to_orig_off ||
        orig_to_rank_begin != h.v1_orig_to_rank_off ||
        buf.size() != h.file_size) {
      return Status::Internal("HLI2 writer layout mismatch");
    }
    h.meta_checksum = Fnv1a64(buf.data() + h.v1_offsets_off,
                              h.v1_pivots_off - h.v1_offsets_off) ^
                      Fnv1a64(buf.data() + h.v1_rank_to_orig_off,
                              h.file_size - h.v1_rank_to_orig_off);
    h.arena_checksum = Fnv1a64(buf.data() + h.v1_pivots_off,
                               h.v1_rank_to_orig_off - h.v1_pivots_off);

    uint8_t* hd = reinterpret_cast<uint8_t*>(buf.data());
    std::memcpy(hd, kMagic, 4);
    EncodeU32(1, hd + 4);
    EncodeU64(h.flags, hd + 8);
    EncodeU32(h.num_vertices, hd + 16);
    EncodeU32(0, hd + 20);
    EncodeU64(h.total_entries, hd + 24);
    EncodeU64(h.v1_offsets_off, hd + 32);
    EncodeU64(h.v1_pivots_off, hd + 40);
    EncodeU64(h.v1_dists_off, hd + 48);
    EncodeU64(h.v1_rank_to_orig_off, hd + 56);
    EncodeU64(h.v1_orig_to_rank_off, hd + 64);
    EncodeU64(h.file_size, hd + 72);
    EncodeU64(h.meta_checksum, hd + 80);
    EncodeU64(h.arena_checksum, hd + 88);
    EncodeU64(Fnv1a64(hd, kHeaderChecksumOffV1), hd + kHeaderChecksumOffV1);
    return WriteStringToFile(path, buf);
  }

  // Version 2: blocked arenas + sidecars, canonical derived layout.
  const LayoutV2 l = ComputeLayoutV2(num_slots, n, h.padded_entries);
  buf.reserve(l.file_size);

  const size_t offsets_begin = buf.size();
  for (size_t s = 0; s <= num_slots; ++s) PutU64(&buf, view.offsets[s]);
  PadToAlignment(&buf);
  const size_t sizes_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.sizes),
             num_slots * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t pivots_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.pivots),
             h.padded_entries * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t dists_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.dists),
             h.padded_entries * sizeof(uint32_t));
  PadToAlignment(&buf);
  const uint64_t blocks = h.padded_entries / kLabelBlockEntries;
  const size_t block_min_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.block_min),
             blocks * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t block_max_begin = buf.size();
  buf.append(reinterpret_cast<const char*>(view.block_max),
             blocks * sizeof(uint32_t));
  PadToAlignment(&buf);
  const size_t rank_to_orig_begin = buf.size();
  for (VertexId r = 0; r < n; ++r) PutU32(&buf, mapping.rank_to_orig[r]);
  PadToAlignment(&buf);
  const size_t orig_to_rank_begin = buf.size();
  for (VertexId v = 0; v < n; ++v) PutU32(&buf, mapping.orig_to_rank[v]);

  // The layout math and the append cursor must agree exactly.
  if (offsets_begin != l.offsets_off || sizes_begin != l.sizes_off ||
      pivots_begin != l.pivots_off || dists_begin != l.dists_off ||
      block_min_begin != l.block_min_off ||
      block_max_begin != l.block_max_off ||
      rank_to_orig_begin != l.rank_to_orig_off ||
      orig_to_rank_begin != l.orig_to_rank_off ||
      buf.size() != l.file_size) {
    return Status::Internal("HLI2 writer layout mismatch");
  }
  h.file_size = l.file_size;

  // The metadata checksum folds the offset/size tables in with the
  // permutation sections so corrupt slot structure or id translation is
  // caught at open time, not query time; the arena checksum covers both
  // arenas and both sidecars.
  h.meta_checksum =
      Fnv1a64(buf.data() + l.offsets_off, l.pivots_off - l.offsets_off) ^
      Fnv1a64(buf.data() + l.rank_to_orig_off,
              l.file_size - l.rank_to_orig_off);
  h.arena_checksum = Fnv1a64(buf.data() + l.pivots_off,
                             l.rank_to_orig_off - l.pivots_off);

  uint8_t* hd = reinterpret_cast<uint8_t*>(buf.data());
  std::memcpy(hd, kMagic, 4);
  EncodeU32(kHli2Version, hd + 4);
  EncodeU64(h.flags, hd + 8);
  EncodeU32(h.num_vertices, hd + 16);
  EncodeU32(0, hd + 20);
  EncodeU64(h.total_entries, hd + 24);
  EncodeU64(h.padded_entries, hd + 32);
  EncodeU64(h.file_size, hd + 40);
  EncodeU64(h.meta_checksum, hd + 48);
  EncodeU64(h.arena_checksum, hd + 56);
  EncodeU64(Fnv1a64(hd, kHeaderChecksumOffV2), hd + kHeaderChecksumOffV2);

  return WriteStringToFile(path, buf);
}

Result<MappedIndex> MappedIndex::Open(const std::string& path,
                                      const OpenOptions& options) {
  HOPDB_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  Header h;
  HOPDB_RETURN_NOT_OK(ParseHeader(file.data(), file.size(), path, &h));
  if (h.file_size != file.size()) {
    return Status::InvalidArgument(
        "HLI2 file size mismatch (header says " + std::to_string(h.file_size) +
        " bytes, file has " + std::to_string(file.size()) + "): " + path);
  }

  const bool directed = (h.flags & kFlagDirected) != 0;
  const uint64_t n = h.num_vertices;
  const uint64_t num_slots = directed ? 2 * n : n;
  // Reject entry counts before any size arithmetic: a crafted header
  // with counts near 2^62 would wrap count * 4 to a tiny number and
  // sail through the layout check below. (file_size already equals the
  // real mapped size, so this also bounds every product computed next.)
  if (h.total_entries > h.file_size / sizeof(uint32_t) ||
      h.padded_entries > h.file_size / sizeof(uint32_t) ||
      h.padded_entries < h.total_entries ||
      (h.version >= 2 && h.padded_entries % kLabelBlockEntries != 0)) {
    return Status::InvalidArgument(
        "HLI2 total_entries/padded_entries exceed what the file can hold "
        "or are inconsistent: " + path);
  }

  uint64_t offsets_off, pivots_off, dists_off, rank_to_orig_off,
      orig_to_rank_off;
  uint64_t sizes_off = 0, block_min_off = 0, block_max_off = 0;
  if (h.version == 1) {
    // The v1 section layout is canonical too (the v1 writer emitted
    // exactly this order and padding), so recompute it and require
    // exact agreement with the header's explicit offsets.
    Header want;
    want.v1_offsets_off = AlignUp(kHeaderBytes);
    want.v1_pivots_off =
        AlignUp(want.v1_offsets_off + (num_slots + 1) * sizeof(uint64_t));
    want.v1_dists_off =
        AlignUp(want.v1_pivots_off + h.total_entries * sizeof(uint32_t));
    want.v1_rank_to_orig_off =
        AlignUp(want.v1_dists_off + h.total_entries * sizeof(uint32_t));
    want.v1_orig_to_rank_off =
        AlignUp(want.v1_rank_to_orig_off + n * sizeof(uint32_t));
    want.file_size = want.v1_orig_to_rank_off + n * sizeof(uint32_t);
    if (h.v1_offsets_off != want.v1_offsets_off ||
        h.v1_pivots_off != want.v1_pivots_off ||
        h.v1_dists_off != want.v1_dists_off ||
        h.v1_rank_to_orig_off != want.v1_rank_to_orig_off ||
        h.v1_orig_to_rank_off != want.v1_orig_to_rank_off ||
        h.file_size != want.file_size) {
      return Status::InvalidArgument(
          "HLI2 section offsets disagree with the canonical layout for "
          "num_vertices/total_entries (truncated or crafted?): " + path);
    }
    offsets_off = h.v1_offsets_off;
    pivots_off = h.v1_pivots_off;
    dists_off = h.v1_dists_off;
    rank_to_orig_off = h.v1_rank_to_orig_off;
    orig_to_rank_off = h.v1_orig_to_rank_off;
  } else {
    const LayoutV2 l = ComputeLayoutV2(num_slots, n, h.padded_entries);
    if (l.file_size != h.file_size) {
      return Status::InvalidArgument(
          "HLI2 file size disagrees with the canonical v2 layout for "
          "num_vertices/padded_entries (truncated or crafted?): " + path);
    }
    offsets_off = l.offsets_off;
    sizes_off = l.sizes_off;
    pivots_off = l.pivots_off;
    dists_off = l.dists_off;
    block_min_off = l.block_min_off;
    block_max_off = l.block_max_off;
    rank_to_orig_off = l.rank_to_orig_off;
    orig_to_rank_off = l.orig_to_rank_off;
  }

  const uint8_t* base = file.data();
  uint64_t meta = Fnv1a64(base + offsets_off, pivots_off - offsets_off);
  meta ^= Fnv1a64(base + rank_to_orig_off, h.file_size - rank_to_orig_off);
  if (meta != h.meta_checksum) {
    return Status::InvalidArgument("HLI2 metadata checksum mismatch: " + path);
  }

  // Structural validation of everything queries index by: offsets
  // monotone (v2: block-aligned and exactly sizes[s] rounded up apart),
  // permutations inverse bijections. O(|V|) — this is the whole
  // non-constant cost of an open.
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(base + offsets_off);
  const uint32_t* sizes =
      h.version >= 2 ? reinterpret_cast<const uint32_t*>(base + sizes_off)
                     : nullptr;
  if (offsets[0] != 0 || offsets[num_slots] != h.padded_entries) {
    return Status::InvalidArgument("HLI2 offset table endpoints invalid: " +
                                   path);
  }
  if (h.version == 1) {
    for (uint64_t s = 0; s < num_slots; ++s) {
      if (offsets[s] > offsets[s + 1]) {
        return Status::InvalidArgument("HLI2 offset table not monotone: " +
                                       path);
      }
    }
  } else {
    uint64_t real_total = 0;
    for (uint64_t s = 0; s < num_slots; ++s) {
      if (offsets[s] % kLabelBlockEntries != 0 ||
          offsets[s + 1] != offsets[s] + AlignUpBlock(sizes[s])) {
        return Status::InvalidArgument(
            "HLI2 blocked offset table not block-aligned or inconsistent "
            "with slot sizes: " + path);
      }
      real_total += sizes[s];
    }
    if (real_total != h.total_entries) {
      return Status::InvalidArgument(
          "HLI2 slot sizes disagree with total_entries: " + path);
    }
  }
  const uint32_t* rank_to_orig =
      reinterpret_cast<const uint32_t*>(base + rank_to_orig_off);
  const uint32_t* orig_to_rank =
      reinterpret_cast<const uint32_t*>(base + orig_to_rank_off);
  for (uint64_t r = 0; r < n; ++r) {
    const uint32_t orig = rank_to_orig[r];
    if (orig >= n || orig_to_rank[orig] != r) {
      return Status::InvalidArgument(
          "HLI2 rank permutations are not inverse bijections: " + path);
    }
  }

  MappedIndex index;
  index.file_ = std::move(file);
  index.directed_ = directed;
  index.version_ = h.version;
  index.num_vertices_ = h.num_vertices;
  index.total_entries_ = h.total_entries;
  index.padded_entries_ = h.padded_entries;
  index.arena_checksum_ = h.arena_checksum;
  const uint8_t* data = index.file_.data();
  index.offsets_ = reinterpret_cast<const uint64_t*>(data + offsets_off);
  index.pivots_ = reinterpret_cast<const uint32_t*>(data + pivots_off);
  index.dists_ = reinterpret_cast<const uint32_t*>(data + dists_off);
  if (h.version >= 2) {
    index.sizes_ = reinterpret_cast<const uint32_t*>(data + sizes_off);
    index.block_min_ =
        reinterpret_cast<const uint32_t*>(data + block_min_off);
    index.block_max_ =
        reinterpret_cast<const uint32_t*>(data + block_max_off);
  }
  index.rank_to_orig_ =
      reinterpret_cast<const uint32_t*>(data + rank_to_orig_off);
  index.orig_to_rank_ =
      reinterpret_cast<const uint32_t*>(data + orig_to_rank_off);

  if (options.verify_arenas) {
    HOPDB_RETURN_NOT_OK(index.VerifyArenas());
  }
  if (options.prefault) {
    index.file_.AdviseWillNeed();
  }
  return index;
}

Distance MappedIndex::Query(VertexId src, VertexId dst) const {
  if (src >= num_vertices_ || dst >= num_vertices_) return kInfDistance;
  const VertexId s = orig_to_rank_[src];
  const VertexId t = orig_to_rank_[dst];
  const LabelSetView view = labels();
  return QueryFlatHalves(view.Out(s), view.In(t), s, t, ActiveQueryKernel());
}

Status MappedIndex::VerifyArenas() const {
  if (!mapped()) {
    return Status::FailedPrecondition("VerifyArenas on an unmapped index");
  }
  // Hash exactly what Write hashed: the contiguous byte range from the
  // pivot section start to the rank_to_orig section start (both arenas,
  // the v2 block sidecars, and the inter-section padding).
  const uint8_t* begin = reinterpret_cast<const uint8_t*>(pivots_);
  const uint8_t* end = reinterpret_cast<const uint8_t*>(rank_to_orig_);
  if (Fnv1a64(begin, static_cast<size_t>(end - begin)) != arena_checksum_) {
    return Status::InvalidArgument("HLI2 label arena checksum mismatch: " +
                                   path());
  }
  return Status::OK();
}

}  // namespace hopdb
