#include "labeling/external_builder.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "io/external_sorter.h"
#include "io/record_stream.h"
#include "labeling/candidate_partition.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace hopdb {

namespace {

struct ByABD {
  bool operator()(const LabelRec& x, const LabelRec& y) const {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.dist < y.dist;
  }
};

using LabelSorter = ExternalSorter<LabelRec, ByABD>;

/// Record source abstraction so group cursors work over plain files and
/// over two-way merged (old + pending) views alike.
class RecSource {
 public:
  virtual ~RecSource() = default;
  virtual bool Next(LabelRec* out) = 0;
};

class FileSource : public RecSource {
 public:
  static Result<FileSource> Open(const std::string& path,
                                 uint64_t block_size) {
    HOPDB_ASSIGN_OR_RETURN(RecordReader<LabelRec> r,
                           RecordReader<LabelRec>::Open(path, block_size));
    FileSource s;
    s.reader_ = std::move(r);
    return s;
  }
  bool Next(LabelRec* out) override { return reader_.Next(out); }
  const IoStats& stats() const { return reader_.stats(); }

 private:
  RecordReader<LabelRec> reader_;
};

/// Streams the min-dist collapse of two (owner, pivot)-sorted files —
/// the "old ∪ pending" label view used by pruning.
class MergedSource : public RecSource {
 public:
  static Result<MergedSource> Open(const std::string& path1,
                                   const std::string& path2,
                                   uint64_t block_size) {
    MergedSource s;
    HOPDB_ASSIGN_OR_RETURN(s.r1_,
                           RecordReader<LabelRec>::Open(path1, block_size));
    HOPDB_ASSIGN_OR_RETURN(s.r2_,
                           RecordReader<LabelRec>::Open(path2, block_size));
    s.v1_ = s.r1_.Next(&s.h1_);
    s.v2_ = s.r2_.Next(&s.h2_);
    return s;
  }

  bool Next(LabelRec* out) override {
    if (!v1_ && !v2_) return false;
    if (v1_ && (!v2_ || Key(h1_) < Key(h2_))) {
      *out = h1_;
      v1_ = r1_.Next(&h1_);
      return true;
    }
    if (v2_ && (!v1_ || Key(h2_) < Key(h1_))) {
      *out = h2_;
      v2_ = r2_.Next(&h2_);
      return true;
    }
    // Same (a, b) key in both: the collapse keeps the minimum distance.
    *out = h1_;
    out->dist = std::min(h1_.dist, h2_.dist);
    v1_ = r1_.Next(&h1_);
    v2_ = r2_.Next(&h2_);
    return true;
  }

  IoStats TotalStats() const {
    IoStats s = r1_.stats();
    s.Add(r2_.stats());
    return s;
  }

 private:
  static uint64_t Key(const LabelRec& r) {
    return (static_cast<uint64_t>(r.a) << 32) | r.b;
  }
  RecordReader<LabelRec> r1_, r2_;
  LabelRec h1_{}, h2_{};
  bool v1_ = false, v2_ = false;
};

/// Reads consecutive records sharing field `a` as one group.
class GroupCursor {
 public:
  explicit GroupCursor(RecSource* source) : source_(source) {
    pending_valid_ = source_->Next(&pending_);
  }

  bool NextGroup(VertexId* key, std::vector<LabelRec>* group) {
    if (!pending_valid_) return false;
    *key = pending_.a;
    group->clear();
    group->push_back(pending_);
    while ((pending_valid_ = source_->Next(&pending_)) &&
           pending_.a == *key) {
      group->push_back(pending_);
    }
    return true;
  }

 private:
  RecSource* source_;
  LabelRec pending_{};
  bool pending_valid_ = false;
};

/// Sorted-merge witness scan (Section 3.3 / 4.2): true iff some pivot
/// w < beta appears in both groups with d1 + d2 <= d. Groups are label
/// records of one owner, sorted by pivot (field b).
bool HasWitness(const std::vector<LabelRec>& outs,
                const std::vector<LabelRec>& ins, VertexId beta,
                Distance d) {
  size_t i = 0, j = 0;
  while (i < outs.size() && j < ins.size() && outs[i].b < beta &&
         ins[j].b < beta) {
    if (outs[i].b == ins[j].b) {
      if (SaturatingAdd(outs[i].dist, ins[j].dist) <= d) return true;
      ++i;
      ++j;
    } else if (outs[i].b < ins[j].b) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

struct BlockGroup {
  VertexId owner;
  uint32_t begin;
  uint32_t len;
};

/// Pulls whole owner-groups from a stream until the byte budget fills —
/// the outer loop blocks of Section 4's nested-loop joins.
class BlockLoader {
 public:
  BlockLoader(RecSource* source, size_t budget_bytes)
      : cursor_(source),
        budget_records_(std::max<size_t>(budget_bytes / sizeof(LabelRec), 1)) {
    have_group_ = cursor_.NextGroup(&gkey_, &group_);
  }

  bool NextBlock(std::vector<LabelRec>* entries,
                 std::vector<BlockGroup>* groups) {
    if (!have_group_) return false;
    entries->clear();
    groups->clear();
    while (have_group_) {
      if (!entries->empty() &&
          entries->size() + group_.size() > budget_records_) {
        break;  // block full; group goes into the next block
      }
      groups->push_back({gkey_, static_cast<uint32_t>(entries->size()),
                         static_cast<uint32_t>(group_.size())});
      entries->insert(entries->end(), group_.begin(), group_.end());
      have_group_ = cursor_.NextGroup(&gkey_, &group_);
    }
    return true;
  }

 private:
  GroupCursor cursor_;
  size_t budget_records_;
  std::vector<LabelRec> group_;
  VertexId gkey_ = 0;
  bool have_group_ = false;
};

const std::vector<LabelRec>* FindGroup(
    const std::vector<BlockGroup>& groups,
    const std::vector<LabelRec>& entries, VertexId owner,
    std::vector<LabelRec>* scratch) {
  auto it = std::lower_bound(groups.begin(), groups.end(), owner,
                             [](const BlockGroup& g, VertexId v) {
                               return g.owner < v;
                             });
  if (it == groups.end() || it->owner != owner) return nullptr;
  scratch->assign(entries.begin() + it->begin,
                  entries.begin() + it->begin + it->len);
  return scratch;
}

class ExternalBuilder {
 public:
  ExternalBuilder(const CsrGraph& g, const ExternalBuildOptions& opts)
      : g_(g),
        opts_(opts),
        directed_(g.directed()),
        threads_(opts.build.num_threads == 0 ? HardwareThreads()
                                             : opts.build.num_threads),
        deadline_(opts.build.time_budget_seconds) {}

  Result<ExternalBuildResult> Run();

 private:
  std::string Path(const std::string& name) const {
    return opts_.scratch_dir + "/" + name;
  }

  Status Initialize();

  /// Installs the owner-partitioned parallel run sort (shared with the
  /// in-memory builder's dedup phase) when more than one thread is
  /// configured. The hook reproduces std::sort's output exactly, so the
  /// spilled runs — and everything downstream — are bit-identical to the
  /// sequential build. Sorters are used one at a time on the build
  /// thread, so sharing one scratch buffer is safe.
  void ConfigureSorter(LabelSorter* sorter) {
    if (threads_ <= 1) return;
    sorter->SetSortFn([this](std::vector<LabelRec>* buffer) {
      OwnerPartitionedSort(
          buffer, g_.num_vertices(), threads_,
          [](const LabelRec& r) { return r.a; }, ByABD{}, &sort_scratch_,
          &sort_plan_);
    });
  }

  Status Generate(BuildMode mode, LabelSorter* out_sorter,
                  LabelSorter* in_sorter, IterationStats* st);
  /// Sorted candidates -> pending file (deduped, not dominated by old).
  Status DedupAgainstOld(LabelSorter* sorter, const std::string& old_path,
                         const std::string& pending_path,
                         IterationStats* st);
  /// Blocked nested-loop pruning of one candidate side.
  Status PruneSide(bool out_side, IterationStats* st);
  /// Merge survivors into the owner- and pivot-sorted label files.
  Status Apply(bool out_side, uint64_t* side_entries);

  const CsrGraph& g_;
  ExternalBuildOptions opts_;
  bool directed_;
  uint32_t threads_;
  Deadline deadline_;
  BuildStats stats_;
  IoStats io_;

  /// Parallel run-sort scratch, reused across all sorters and iterations.
  std::vector<LabelRec> sort_scratch_;
  OwnerPartitionPlan sort_plan_;

  // Current files; "old" = all surviving entries, "bp" = pivot-sorted
  // copy, "prev" = last iteration's survivors, "pend"/"surv" = this
  // iteration's scratch.
  std::string out_old_, out_bp_, prev_out_;
  std::string in_old_, in_bp_, prev_in_;
  uint64_t out_entries_ = 0, in_entries_ = 0;
  uint64_t prev_out_n_ = 0, prev_in_n_ = 0;
  uint64_t pend_out_n_ = 0, pend_in_n_ = 0;
  uint64_t surv_out_n_ = 0, surv_in_n_ = 0;
};

Status ExternalBuilder::Initialize() {
  out_old_ = Path("out_old");
  out_bp_ = Path("out_bp");
  prev_out_ = Path("prev_out");
  in_old_ = Path("in_old");
  in_bp_ = Path("in_bp");
  prev_in_ = Path("prev_in");

  const uint64_t budget = opts_.memory_budget_bytes / 4;
  LabelSorter out_sorter(Path("init_out"), budget, ByABD{},
                         opts_.block_size);
  LabelSorter in_sorter(Path("init_in"), budget, ByABD{}, opts_.block_size);
  ConfigureSorter(&out_sorter);
  ConfigureSorter(&in_sorter);

  for (VertexId u = 0; u < g_.num_vertices(); ++u) {
    for (const Arc& a : g_.OutArcs(u)) {
      const VertexId v = a.to;
      if (directed_) {
        if (v < u) {
          HOPDB_RETURN_NOT_OK(out_sorter.Add({u, v, a.weight}));
        } else {
          HOPDB_RETURN_NOT_OK(in_sorter.Add({v, u, a.weight}));
        }
      } else if (u < v) {
        HOPDB_RETURN_NOT_OK(out_sorter.Add({v, u, a.weight}));
      }
    }
  }

  auto drain = [&](LabelSorter* sorter, const std::string& owner_path,
                   const std::string& bp_path, const std::string& prev_path,
                   uint64_t* count) -> Status {
    HOPDB_RETURN_NOT_OK(sorter->Finish());
    HOPDB_ASSIGN_OR_RETURN(
        auto w_old, RecordWriter<LabelRec>::Open(owner_path, opts_.block_size));
    HOPDB_ASSIGN_OR_RETURN(
        auto w_prev, RecordWriter<LabelRec>::Open(prev_path, opts_.block_size));
    LabelSorter bp_sorter(bp_path + ".s", opts_.memory_budget_bytes / 4,
                          ByABD{}, opts_.block_size);
    // Pivot-sorted records put the pivot in field a — still a vertex id,
    // so the owner-partitioned sort hook applies unchanged.
    ConfigureSorter(&bp_sorter);
    LabelRec rec;
    *count = 0;
    while (sorter->Next(&rec)) {
      // Parallel edges were removed by Normalize(); keys are unique.
      HOPDB_RETURN_NOT_OK(w_old.Append(rec));
      HOPDB_RETURN_NOT_OK(w_prev.Append(rec));
      HOPDB_RETURN_NOT_OK(bp_sorter.Add({rec.b, rec.a, rec.dist}));
      ++*count;
    }
    HOPDB_RETURN_NOT_OK(w_old.Close());
    HOPDB_RETURN_NOT_OK(w_prev.Close());
    io_.Add(w_old.stats());
    io_.Add(w_prev.stats());
    sorter->Cleanup();
    HOPDB_RETURN_NOT_OK(bp_sorter.Finish());
    HOPDB_ASSIGN_OR_RETURN(
        auto w_bp, RecordWriter<LabelRec>::Open(bp_path, opts_.block_size));
    while (bp_sorter.Next(&rec)) HOPDB_RETURN_NOT_OK(w_bp.Append(rec));
    HOPDB_RETURN_NOT_OK(w_bp.Close());
    io_.Add(w_bp.stats());
    bp_sorter.Cleanup();
    return Status::OK();
  };

  HOPDB_RETURN_NOT_OK(drain(&out_sorter, out_old_, out_bp_, prev_out_,
                            &out_entries_));
  prev_out_n_ = out_entries_;
  HOPDB_RETURN_NOT_OK(
      drain(&in_sorter, in_old_, in_bp_, prev_in_, &in_entries_));
  prev_in_n_ = in_entries_;
  stats_.initial_entries = out_entries_ + in_entries_;
  return Status::OK();
}

Status ExternalBuilder::Generate(BuildMode mode, LabelSorter* out_sorter,
                                 LabelSorter* in_sorter,
                                 IterationStats* st) {
  uint64_t raw = 0;
  auto emit = [&](LabelSorter* sorter, VertexId owner, VertexId pivot,
                  Distance d) -> Status {
    ++raw;
    if (opts_.build.max_candidates_per_iteration != 0 &&
        raw > opts_.build.max_candidates_per_iteration) {
      return Status::ResourceExhausted("candidate volume exceeds cap");
    }
    if ((raw & 0xFFFF) == 0 && deadline_.Exceeded()) {
      return Status::DeadlineExceeded("generation over time budget");
    }
    return sorter->Add({owner, pivot, d});
  };

  if (mode == BuildMode::kHopStepping) {
    // Unit-hop extension at the owner side, straight from the CSR arcs.
    {
      HOPDB_ASSIGN_OR_RETURN(FileSource prev,
                             FileSource::Open(prev_out_, opts_.block_size));
      LabelRec c;
      while (prev.Next(&c)) {
        auto arcs = directed_ ? g_.InArcs(c.a) : g_.OutArcs(c.a);
        for (const Arc& a : arcs) {
          if (a.to <= c.b) continue;
          HOPDB_RETURN_NOT_OK(emit(out_sorter, a.to, c.b,
                                   SaturatingAdd(c.dist, a.weight)));
        }
      }
    }
    if (directed_) {
      HOPDB_ASSIGN_OR_RETURN(FileSource prev,
                             FileSource::Open(prev_in_, opts_.block_size));
      LabelRec c;
      while (prev.Next(&c)) {
        for (const Arc& a : g_.OutArcs(c.a)) {
          if (a.to <= c.b) continue;
          HOPDB_RETURN_NOT_OK(emit(in_sorter, a.to, c.b,
                                   SaturatingAdd(c.dist, a.weight)));
        }
      }
    }
    st->raw_candidates = raw;
    return Status::OK();
  }

  // --- Hop-Doubling: four merge joins over the label files.
  // Join prev (key = owner) with a label file (key = field a) and emit
  // via `combine`.
  auto join = [&](const std::string& prev_path, const std::string& label_path,
                  auto&& combine) -> Status {
    HOPDB_ASSIGN_OR_RETURN(FileSource prev_src,
                           FileSource::Open(prev_path, opts_.block_size));
    HOPDB_ASSIGN_OR_RETURN(FileSource label_src,
                           FileSource::Open(label_path, opts_.block_size));
    GroupCursor prev_groups(&prev_src);
    GroupCursor label_groups(&label_src);
    std::vector<LabelRec> pg, lg;
    VertexId pk = 0, lk = 0;
    bool pv = prev_groups.NextGroup(&pk, &pg);
    bool lv = label_groups.NextGroup(&lk, &lg);
    while (pv && lv) {
      if (pk == lk) {
        HOPDB_RETURN_NOT_OK(combine(pg, lg));
        pv = prev_groups.NextGroup(&pk, &pg);
        lv = label_groups.NextGroup(&lk, &lg);
      } else if (pk < lk) {
        pv = prev_groups.NextGroup(&pk, &pg);
      } else {
        lv = label_groups.NextGroup(&lk, &lg);
      }
    }
    return Status::OK();
  };

  // Rule 1 (directed) / undirected Rule 1: prev out (u -> v, d) x label
  // entries of u with pivot > v -> out-candidate owned by that pivot.
  HOPDB_RETURN_NOT_OK(join(
      prev_out_, directed_ ? in_old_ : out_old_,
      [&](const std::vector<LabelRec>& pg,
          const std::vector<LabelRec>& lg) -> Status {
        for (const LabelRec& p : pg) {
          auto it = std::upper_bound(
              lg.begin(), lg.end(), p.b,
              [](VertexId v, const LabelRec& r) { return v < r.b; });
          for (; it != lg.end(); ++it) {
            HOPDB_RETURN_NOT_OK(emit(out_sorter, it->b, p.b,
                                     SaturatingAdd(it->dist, p.dist)));
          }
        }
        return Status::OK();
      }));

  // Rule 2: prev out (u -> v, d) x pivot-sorted out entries (u, u2, d2)
  // -> out-candidate (u2, v, d2 + d).
  HOPDB_RETURN_NOT_OK(join(
      prev_out_, out_bp_,
      [&](const std::vector<LabelRec>& pg,
          const std::vector<LabelRec>& lg) -> Status {
        for (const LabelRec& p : pg) {
          for (const LabelRec& l : lg) {
            HOPDB_RETURN_NOT_OK(emit(out_sorter, l.b, p.b,
                                     SaturatingAdd(l.dist, p.dist)));
          }
        }
        return Status::OK();
      }));

  if (directed_) {
    // Rule 4: prev in (owner v, pivot u, d) x out entries of v with pivot
    // u4 > u -> in-candidate (u4, u, d + d4).
    HOPDB_RETURN_NOT_OK(join(
        prev_in_, out_old_,
        [&](const std::vector<LabelRec>& pg,
            const std::vector<LabelRec>& lg) -> Status {
          for (const LabelRec& p : pg) {
            auto it = std::upper_bound(
                lg.begin(), lg.end(), p.b,
                [](VertexId v, const LabelRec& r) { return v < r.b; });
            for (; it != lg.end(); ++it) {
              HOPDB_RETURN_NOT_OK(emit(in_sorter, it->b, p.b,
                                       SaturatingAdd(p.dist, it->dist)));
            }
          }
          return Status::OK();
        }));

    // Rule 5: prev in (owner v, pivot u, d) x pivot-sorted in entries
    // (v, u5, d5) -> in-candidate (u5, u, d + d5).
    HOPDB_RETURN_NOT_OK(join(
        prev_in_, in_bp_,
        [&](const std::vector<LabelRec>& pg,
            const std::vector<LabelRec>& lg) -> Status {
          for (const LabelRec& p : pg) {
            for (const LabelRec& l : lg) {
              HOPDB_RETURN_NOT_OK(emit(in_sorter, l.b, p.b,
                                       SaturatingAdd(p.dist, l.dist)));
            }
          }
          return Status::OK();
        }));
  }

  st->raw_candidates = raw;
  return Status::OK();
}

Status ExternalBuilder::DedupAgainstOld(LabelSorter* sorter,
                                        const std::string& old_path,
                                        const std::string& pending_path,
                                        IterationStats* st) {
  HOPDB_RETURN_NOT_OK(sorter->Finish());
  HOPDB_ASSIGN_OR_RETURN(auto old_reader, RecordReader<LabelRec>::Open(
                                              old_path, opts_.block_size));
  HOPDB_ASSIGN_OR_RETURN(auto pend_writer, RecordWriter<LabelRec>::Open(
                                               pending_path, opts_.block_size));
  LabelRec old_rec{};
  bool old_valid = old_reader.Next(&old_rec);
  LabelRec cand;
  bool have_last = false;
  VertexId la = 0, lb = 0;
  uint64_t written = 0;
  auto key = [](VertexId a, VertexId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  while (sorter->Next(&cand)) {
    if (have_last && la == cand.a && lb == cand.b) continue;  // dup
    have_last = true;
    la = cand.a;
    lb = cand.b;
    st->deduped_candidates++;
    while (old_valid && key(old_rec.a, old_rec.b) < key(cand.a, cand.b)) {
      old_valid = old_reader.Next(&old_rec);
    }
    if (old_valid && old_rec.a == cand.a && old_rec.b == cand.b &&
        old_rec.dist <= cand.dist) {
      st->existing_dropped++;
      continue;
    }
    HOPDB_RETURN_NOT_OK(pend_writer.Append(cand));
    ++written;
  }
  HOPDB_RETURN_NOT_OK(pend_writer.Close());
  io_.Add(pend_writer.stats());
  io_.Add(old_reader.stats());
  sorter->Cleanup();
  if (old_path == out_old_ || !directed_) {
    pend_out_n_ = written;
  }
  if (directed_ && old_path == in_old_) pend_in_n_ = written;
  return Status::OK();
}

Status ExternalBuilder::PruneSide(bool out_side, IterationStats* st) {
  // Pruning a side's candidates: outer blocks hold the candidates' SOURCE
  // labels (Lout for out-candidates, Lin for in-candidates) merged with
  // pending entries; the inner stream supplies the other half once per
  // block. Undirected graphs use the single label file on both sides.
  const std::string source_old =
      out_side || !directed_ ? out_old_ : in_old_;
  const std::string source_pend =
      out_side || !directed_ ? Path("pend_out") : Path("pend_in");
  const std::string other_old =
      directed_ ? (out_side ? in_old_ : out_old_) : out_old_;
  const std::string other_pend =
      directed_ ? (out_side ? Path("pend_in") : Path("pend_out"))
                : Path("pend_out");
  const std::string pend_path = out_side ? Path("pend_out") : Path("pend_in");
  const std::string surv_path = out_side ? Path("surv_out") : Path("surv_in");

  const bool use_cand_witnesses = opts_.build.prune_with_candidates;
  const std::string empty_path = Path("empty");
  {
    // An empty file stands in for "no candidate witnesses" ablation.
    HOPDB_ASSIGN_OR_RETURN(auto w, RecordWriter<LabelRec>::Open(
                                       empty_path, opts_.block_size));
    HOPDB_RETURN_NOT_OK(w.Close());
  }

  HOPDB_ASSIGN_OR_RETURN(
      MergedSource outer_src,
      MergedSource::Open(source_old,
                         use_cand_witnesses ? source_pend : empty_path,
                         opts_.block_size));
  HOPDB_ASSIGN_OR_RETURN(auto cand_reader, RecordReader<LabelRec>::Open(
                                               pend_path, opts_.block_size));
  HOPDB_ASSIGN_OR_RETURN(auto surv_writer, RecordWriter<LabelRec>::Open(
                                               surv_path, opts_.block_size));

  BlockLoader loader(&outer_src, opts_.memory_budget_bytes / 2);
  std::vector<LabelRec> entries;
  std::vector<BlockGroup> groups;
  LabelRec cand{};
  bool cand_valid = cand_reader.Next(&cand);
  std::vector<LabelRec> tests;
  std::vector<uint8_t> pruned_flag;
  std::vector<uint32_t> order;
  std::vector<LabelRec> source_group;
  uint64_t survivors = 0;

  while (loader.NextBlock(&entries, &groups)) {
    if (deadline_.Exceeded()) {
      return Status::DeadlineExceeded("pruning over time budget");
    }
    if (groups.empty()) continue;
    const VertexId last_owner = groups.back().owner;
    // Candidates to test in this block: pending entries whose owner falls
    // in the block's owner range (pending ⊆ merged, so none are skipped).
    tests.clear();
    while (cand_valid && cand.a <= last_owner) {
      tests.push_back(cand);
      cand_valid = cand_reader.Next(&cand);
    }
    if (tests.empty()) continue;

    // Inner pass keyed by the candidates' destination-side vertex (the
    // pivot for out-candidates, also stored in field b for in-candidates).
    order.resize(tests.size());
    for (size_t i = 0; i < tests.size(); ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
      if (tests[x].b != tests[y].b) return tests[x].b < tests[y].b;
      return tests[x].a < tests[y].a;
    });
    pruned_flag.assign(tests.size(), 0);

    HOPDB_ASSIGN_OR_RETURN(
        MergedSource inner_src,
        MergedSource::Open(other_old,
                           use_cand_witnesses ? other_pend : empty_path,
                           opts_.block_size));
    GroupCursor inner_groups(&inner_src);
    std::vector<LabelRec> ig;
    VertexId ik = 0;
    size_t oi = 0;
    while (oi < order.size() && inner_groups.NextGroup(&ik, &ig)) {
      while (oi < order.size() && tests[order[oi]].b < ik) ++oi;
      while (oi < order.size() && tests[order[oi]].b == ik) {
        const LabelRec& t = tests[order[oi]];
        // In the prune_with_candidates ablation the outer stream is
        // old-only, so a brand-new owner may have no group: no witnesses,
        // the candidate survives.
        const std::vector<LabelRec>* sg =
            FindGroup(groups, entries, t.a, &source_group);
        // beta = the candidate's pivot (field b): witnesses must outrank
        // it. Out-candidates intersect Lout(owner) x Lin(pivot);
        // in-candidates intersect Lout(pivot) x Lin(owner) — the witness
        // scan is symmetric, so the argument order does not matter.
        if (sg != nullptr && HasWitness(*sg, ig, t.b, t.dist)) {
          pruned_flag[order[oi]] = 1;
        }
        ++oi;
      }
    }
    io_.Add(inner_src.TotalStats());

    for (uint32_t i = 0; i < tests.size(); ++i) {
      if (pruned_flag[i]) {
        st->pruned++;
      } else {
        HOPDB_RETURN_NOT_OK(surv_writer.Append(tests[i]));
        ++survivors;
      }
    }
  }
  // Candidates beyond the final block (possible only in the old-only
  // witness ablation) have no source labels at all: they survive.
  while (cand_valid) {
    HOPDB_RETURN_NOT_OK(surv_writer.Append(cand));
    ++survivors;
    cand_valid = cand_reader.Next(&cand);
  }
  HOPDB_RETURN_NOT_OK(surv_writer.Close());
  io_.Add(surv_writer.stats());
  io_.Add(outer_src.TotalStats());
  io_.Add(cand_reader.stats());
  if (out_side) {
    surv_out_n_ = survivors;
  } else {
    surv_in_n_ = survivors;
  }
  return Status::OK();
}

Status ExternalBuilder::Apply(bool out_side, uint64_t* side_entries) {
  const std::string surv_path = out_side ? Path("surv_out") : Path("surv_in");
  const std::string old_path = out_side ? out_old_ : in_old_;
  const std::string bp_path = out_side ? out_bp_ : in_bp_;
  const std::string prev_path = out_side ? prev_out_ : prev_in_;

  // --- owner-sorted file: streaming merge with min-dist collapse.
  const std::string new_old = old_path + ".new";
  {
    HOPDB_ASSIGN_OR_RETURN(
        MergedSource merged,
        MergedSource::Open(old_path, surv_path, opts_.block_size));
    HOPDB_ASSIGN_OR_RETURN(
        auto writer, RecordWriter<LabelRec>::Open(new_old, opts_.block_size));
    LabelRec rec;
    uint64_t count = 0;
    while (merged.Next(&rec)) {
      HOPDB_RETURN_NOT_OK(writer.Append(rec));
      ++count;
    }
    HOPDB_RETURN_NOT_OK(writer.Close());
    io_.Add(writer.stats());
    io_.Add(merged.TotalStats());
    *side_entries = count;
  }
  HOPDB_RETURN_NOT_OK(RemoveFileIfExists(old_path));
  if (::rename(new_old.c_str(), old_path.c_str()) != 0) {
    return Status::IOError("rename failed for " + new_old);
  }

  // --- pivot-sorted file: sort survivors by (pivot, owner), then merge.
  const std::string surv_bp = surv_path + ".bp";
  {
    LabelSorter bp_sorter(surv_bp + ".s", opts_.memory_budget_bytes / 4,
                          ByABD{}, opts_.block_size);
    ConfigureSorter(&bp_sorter);  // field a is the pivot: still a vertex id
    HOPDB_ASSIGN_OR_RETURN(auto reader, RecordReader<LabelRec>::Open(
                                            surv_path, opts_.block_size));
    LabelRec rec;
    while (reader.Next(&rec)) {
      HOPDB_RETURN_NOT_OK(bp_sorter.Add({rec.b, rec.a, rec.dist}));
    }
    io_.Add(reader.stats());
    HOPDB_RETURN_NOT_OK(bp_sorter.Finish());
    HOPDB_ASSIGN_OR_RETURN(
        auto writer, RecordWriter<LabelRec>::Open(surv_bp, opts_.block_size));
    while (bp_sorter.Next(&rec)) HOPDB_RETURN_NOT_OK(writer.Append(rec));
    HOPDB_RETURN_NOT_OK(writer.Close());
    io_.Add(writer.stats());
    bp_sorter.Cleanup();
  }
  const std::string new_bp = bp_path + ".new";
  {
    HOPDB_ASSIGN_OR_RETURN(MergedSource merged, MergedSource::Open(
                                                    bp_path, surv_bp,
                                                    opts_.block_size));
    HOPDB_ASSIGN_OR_RETURN(
        auto writer, RecordWriter<LabelRec>::Open(new_bp, opts_.block_size));
    LabelRec rec;
    while (merged.Next(&rec)) HOPDB_RETURN_NOT_OK(writer.Append(rec));
    HOPDB_RETURN_NOT_OK(writer.Close());
    io_.Add(writer.stats());
    io_.Add(merged.TotalStats());
  }
  HOPDB_RETURN_NOT_OK(RemoveFileIfExists(bp_path));
  if (::rename(new_bp.c_str(), bp_path.c_str()) != 0) {
    return Status::IOError("rename failed for " + new_bp);
  }
  HOPDB_RETURN_NOT_OK(RemoveFileIfExists(surv_bp));

  // --- survivors become prev.
  HOPDB_RETURN_NOT_OK(RemoveFileIfExists(prev_path));
  if (::rename(surv_path.c_str(), prev_path.c_str()) != 0) {
    return Status::IOError("rename failed for " + surv_path);
  }
  return Status::OK();
}

Result<ExternalBuildResult> ExternalBuilder::Run() {
  Stopwatch total_watch;
  if (opts_.scratch_dir.empty()) {
    return Status::InvalidArgument("scratch_dir is required");
  }
  {
    Stopwatch init_watch;
    HOPDB_RETURN_NOT_OK(Initialize());
    stats_.init_seconds = init_watch.Seconds();
  }

  for (uint32_t iter = 1; iter <= opts_.build.max_iterations; ++iter) {
    if (prev_out_n_ == 0 && prev_in_n_ == 0) break;
    if (deadline_.Exceeded()) {
      return Status::DeadlineExceeded("external build over time budget");
    }
    Stopwatch iter_watch;
    IterationStats st;
    st.iteration = iter;
    switch (opts_.build.mode) {
      case BuildMode::kHopStepping:
        st.mode_used = BuildMode::kHopStepping;
        break;
      case BuildMode::kHopDoubling:
        st.mode_used = BuildMode::kHopDoubling;
        break;
      case BuildMode::kHybrid:
        st.mode_used = iter <= opts_.build.hybrid_switch_iteration
                           ? BuildMode::kHopStepping
                           : BuildMode::kHopDoubling;
        break;
    }

    const uint64_t sort_budget = opts_.memory_budget_bytes / 4;
    LabelSorter out_sorter(Path("cand_out"), sort_budget, ByABD{},
                           opts_.block_size);
    LabelSorter in_sorter(Path("cand_in"), sort_budget, ByABD{},
                          opts_.block_size);
    ConfigureSorter(&out_sorter);
    ConfigureSorter(&in_sorter);
    HOPDB_RETURN_NOT_OK(Generate(st.mode_used, &out_sorter, &in_sorter, &st));

    pend_out_n_ = pend_in_n_ = 0;
    HOPDB_RETURN_NOT_OK(
        DedupAgainstOld(&out_sorter, out_old_, Path("pend_out"), &st));
    if (directed_) {
      HOPDB_RETURN_NOT_OK(
          DedupAgainstOld(&in_sorter, in_old_, Path("pend_in"), &st));
    }

    surv_out_n_ = surv_in_n_ = 0;
    if (opts_.build.prune) {
      HOPDB_RETURN_NOT_OK(PruneSide(/*out_side=*/true, &st));
      if (directed_) HOPDB_RETURN_NOT_OK(PruneSide(/*out_side=*/false, &st));
    } else {
      // No pruning: pending survives verbatim.
      if (::rename(Path("pend_out").c_str(), Path("surv_out").c_str()) != 0) {
        return Status::IOError("rename pend_out failed");
      }
      surv_out_n_ = pend_out_n_;
      if (directed_) {
        if (::rename(Path("pend_in").c_str(), Path("surv_in").c_str()) != 0) {
          return Status::IOError("rename pend_in failed");
        }
        surv_in_n_ = pend_in_n_;
      }
    }
    if (opts_.build.prune) {
      HOPDB_RETURN_NOT_OK(RemoveFileIfExists(Path("pend_out")));
      HOPDB_RETURN_NOT_OK(RemoveFileIfExists(Path("pend_in")));
    }

    HOPDB_RETURN_NOT_OK(Apply(/*out_side=*/true, &out_entries_));
    if (directed_) {
      HOPDB_RETURN_NOT_OK(Apply(/*out_side=*/false, &in_entries_));
    }
    prev_out_n_ = surv_out_n_;
    prev_in_n_ = surv_in_n_;

    st.survivors = surv_out_n_ + surv_in_n_;
    st.total_entries_after = out_entries_ + in_entries_;
    st.seconds = iter_watch.Seconds();
    stats_.iterations.push_back(st);
    stats_.num_rule_iterations = iter;
    if (st.survivors == 0) break;
  }

  stats_.total_seconds = total_watch.Seconds();
  ExternalBuildResult result;
  result.out_labels_path = out_old_;
  result.in_labels_path = directed_ ? in_old_ : "";
  result.stats = std::move(stats_);
  result.io = io_;
  result.total_entries = out_entries_ + in_entries_;
  return result;
}

}  // namespace

Result<TwoHopIndex> ExternalBuildResult::ToMemory(
    const CsrGraph& ranked_graph) const {
  const VertexId n = ranked_graph.num_vertices();
  std::vector<LabelVector> out(n);
  std::vector<LabelVector> in(ranked_graph.directed() ? n : 0);
  auto load = [&](const std::string& path,
                  std::vector<LabelVector>* side) -> Status {
    HOPDB_ASSIGN_OR_RETURN(auto reader, RecordReader<LabelRec>::Open(path));
    LabelRec rec;
    while (reader.Next(&rec)) {
      if (rec.a >= n) return Status::Internal("label owner out of range");
      (*side)[rec.a].push_back({rec.b, rec.dist});
    }
    return Status::OK();
  };
  HOPDB_RETURN_NOT_OK(load(out_labels_path, &out));
  if (ranked_graph.directed()) {
    HOPDB_RETURN_NOT_OK(load(in_labels_path, &in));
  }
  return TwoHopIndex(std::move(out), std::move(in),
                     ranked_graph.directed());
}

Result<ExternalBuildResult> BuildHopLabelingExternal(
    const CsrGraph& ranked_graph, const ExternalBuildOptions& options) {
  ExternalBuilder builder(ranked_graph, options);
  return builder.Run();
}

}  // namespace hopdb
