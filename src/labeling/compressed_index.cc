#include "labeling/compressed_index.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "labeling/query_kernel.h"
#include "util/serde.h"

namespace hopdb {

namespace {

constexpr uint32_t kMagic = 0x31434c48;  // "HLC1" little-endian

/// Streaming decoder over one compressed label: yields (pivot, dist) pairs
/// in increasing pivot order.
class LabelCursor {
 public:
  LabelCursor(const uint8_t* payload, size_t begin, size_t end)
      : payload_(payload), pos_(begin), end_(end) {}

  /// Advances to the next entry; false at end (corruption is impossible
  /// here because encode/Load validated the payload).
  bool Next(VertexId* pivot, Distance* dist) {
    if (pos_ >= end_) return false;
    uint64_t delta = 0, d = 0;
    if (!GetVarint64(payload_, end_, &pos_, &delta)) return false;
    if (!GetVarint64(payload_, end_, &pos_, &d)) return false;
    prev_ += delta;  // first delta is prev_(-1 start) + delta
    *pivot = static_cast<VertexId>(prev_ - 1);
    *dist = static_cast<Distance>(d);
    return true;
  }

 private:
  const uint8_t* payload_;
  size_t pos_;
  size_t end_;
  /// 1 + previous pivot, so the first entry's delta is pivot + 1 (delta 0
  /// never occurs: pivots strictly increase).
  uint64_t prev_ = 0;
};

void EncodeLabel(std::span<const LabelEntry> label, std::string* payload) {
  uint64_t prev = 0;
  for (const LabelEntry& e : label) {
    const uint64_t key = static_cast<uint64_t>(e.pivot) + 1;
    PutVarint64(payload, key - prev);
    PutVarint64(payload, e.dist);
    prev = key;
  }
}

}  // namespace

Result<CompressedIndex> CompressedIndex::FromIndex(const TwoHopIndex& index) {
  if (index.num_vertices() == 0) {
    return Status::InvalidArgument("cannot compress an empty index");
  }
  CompressedIndex out;
  out.directed_ = index.directed();
  out.num_vertices_ = index.num_vertices();
  const size_t num_labels =
      out.directed_ ? 2 * static_cast<size_t>(out.num_vertices_)
                    : out.num_vertices_;
  out.offsets_.reserve(num_labels + 1);
  out.offsets_.push_back(0);
  for (VertexId v = 0; v < out.num_vertices_; ++v) {
    EncodeLabel(index.OutLabel(v), &out.payload_);
    if (out.payload_.size() > UINT32_MAX) {
      return Status::ResourceExhausted("compressed payload exceeds 4 GiB");
    }
    out.offsets_.push_back(static_cast<uint32_t>(out.payload_.size()));
  }
  if (out.directed_) {
    for (VertexId v = 0; v < out.num_vertices_; ++v) {
      EncodeLabel(index.InLabel(v), &out.payload_);
      if (out.payload_.size() > UINT32_MAX) {
        return Status::ResourceExhausted("compressed payload exceeds 4 GiB");
      }
      out.offsets_.push_back(static_cast<uint32_t>(out.payload_.size()));
    }
  }
  return out;
}

Result<TwoHopIndex> CompressedIndex::Decompress() const {
  const auto* payload = reinterpret_cast<const uint8_t*>(payload_.data());
  auto decode_slot = [&](size_t slot) -> LabelVector {
    LabelVector label;
    LabelCursor cursor(payload, offsets_[slot], offsets_[slot + 1]);
    VertexId pivot;
    Distance dist;
    while (cursor.Next(&pivot, &dist)) label.push_back({pivot, dist});
    return label;
  };

  std::vector<LabelVector> outs(num_vertices_), ins;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    outs[v] = decode_slot(SlotOut(v));
  }
  if (directed_) {
    ins.resize(num_vertices_);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      ins[v] = decode_slot(SlotIn(v));
    }
  }
  return TwoHopIndex(std::move(outs), std::move(ins), directed_);
}

Distance CompressedIndex::Query(VertexId s, VertexId t) const {
  if (s >= num_vertices_ || t >= num_vertices_) return kInfDistance;
  if (s == t) return 0;
  // The active kernel's stream leg merges the two delta-varint payloads
  // directly — SIMD kernels decode register-width blocks on the fly, so
  // compressed queries ride the same dispatch as flat ones. The trivial
  // pivots (t in Lout(s), s in Lin(t)) are the kernel's direct probes.
  const auto* payload = reinterpret_cast<const uint8_t*>(payload_.data());
  const uint32_t a_off = offsets_[SlotOut(s)];
  const uint32_t b_off = offsets_[SlotIn(t)];
  return ActiveQueryKernel().intersect_stream(
      payload + a_off, offsets_[SlotOut(s) + 1] - a_off, payload + b_off,
      offsets_[SlotIn(t) + 1] - b_off,
      /*direct_a=*/t, /*direct_b=*/s);
}

uint64_t CompressedIndex::SizeBytes() const {
  return payload_.size() + offsets_.size() * sizeof(uint32_t) + 9;
}

Status CompressedIndex::Save(const std::string& path) const {
  std::string blob;
  blob.reserve(SizeBytes() + 8);
  PutU32(&blob, kMagic);
  PutU8(&blob, directed_ ? 1 : 0);
  PutU32(&blob, num_vertices_);
  for (const uint32_t off : offsets_) PutU32(&blob, off);
  blob.append(payload_);
  PutU64(&blob, Fnv1a64(blob.data(), blob.size()));
  return WriteStringToFile(path, blob);
}

Result<CompressedIndex> CompressedIndex::Load(const std::string& path) {
  std::string blob;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &blob));
  if (blob.size() < 17) {
    return Status::IOError("compressed index file too small: " + path);
  }
  const uint64_t stored = DecodeU64(
      reinterpret_cast<const uint8_t*>(blob.data()) + blob.size() - 8);
  const uint64_t actual = Fnv1a64(blob.data(), blob.size() - 8);
  if (stored != actual) {
    return Status::IOError("compressed index checksum mismatch: " + path);
  }

  ByteReader reader(reinterpret_cast<const uint8_t*>(blob.data()),
                    blob.size() - 8);
  uint32_t magic;
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::IOError("not a compressed index (bad magic): " + path);
  }
  CompressedIndex out;
  uint8_t flags;
  HOPDB_RETURN_NOT_OK(reader.ReadU8(&flags));
  out.directed_ = (flags & 1) != 0;
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&out.num_vertices_));
  const size_t num_labels =
      out.directed_ ? 2 * static_cast<size_t>(out.num_vertices_)
                    : out.num_vertices_;
  if (reader.remaining() < (num_labels + 1) * 4) {
    return Status::IOError("compressed index offsets truncated: " + path);
  }
  out.offsets_.resize(num_labels + 1);
  for (auto& off : out.offsets_) {
    HOPDB_RETURN_NOT_OK(reader.ReadU32(&off));
  }
  if (out.offsets_.front() != 0) {
    return Status::IOError("compressed index offsets must start at 0");
  }
  for (size_t i = 1; i < out.offsets_.size(); ++i) {
    if (out.offsets_[i] < out.offsets_[i - 1]) {
      return Status::IOError("compressed index offsets not monotone");
    }
  }
  if (out.offsets_.back() != reader.remaining()) {
    return Status::IOError("compressed index payload size mismatch");
  }
  out.payload_.resize(reader.remaining());
  HOPDB_RETURN_NOT_OK(
      reader.ReadBytes(out.payload_.data(), out.payload_.size()));
  return out;
}

}  // namespace hopdb
