#include "labeling/query_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "util/logging.h"
#include "util/serde.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define HOPDB_X86_KERNELS 1
#include <immintrin.h>
#else
#define HOPDB_X86_KERNELS 0
#endif

namespace hopdb {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference. Also the tail finisher of every SIMD variant, so all
// kernels share one definition of the boundary semantics.
// ---------------------------------------------------------------------------

Distance ScalarTailFlat(const uint32_t* ap, const uint32_t* ad, size_t an,
                        const uint32_t* bp, const uint32_t* bd, size_t bn,
                        size_t i, size_t j, Distance best) {
  while (i < an && j < bn) {
    if (ap[i] == bp[j]) {
      const Distance d = SaturatingAdd(ad[i], bd[j]);
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ap[i] < bp[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

Distance IntersectFlatScalar(const uint32_t* ap, const uint32_t* ad,
                             uint32_t an, const uint32_t* bp,
                             const uint32_t* bd, uint32_t bn) {
  return ScalarTailFlat(ap, ad, an, bp, bd, bn, 0, 0, kInfDistance);
}

Distance ScalarTailEntries(const LabelEntry* a, size_t an,
                           const LabelEntry* b, size_t bn, size_t i, size_t j,
                           Distance best) {
  while (i < an && j < bn) {
    if (a[i].pivot == b[j].pivot) {
      const Distance d = SaturatingAdd(a[i].dist, b[j].dist);
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (a[i].pivot < b[j].pivot) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

Distance IntersectEntriesScalar(const LabelEntry* a, uint32_t an,
                                const LabelEntry* b, uint32_t bn) {
  return ScalarTailEntries(a, an, b, bn, 0, 0, kInfDistance);
}

/// Bounded witness tail: resumes the merge at (i, j), stops at the beta
/// bound, returns on the first common pivot with d1 + d2 <= d. The
/// saturating add makes an overflowing pair a witness exactly when
/// d == kInfDistance — the same semantics the builder's scalar cursor
/// scan has always had.
bool ScalarTailWitness(const uint32_t* ap, const uint32_t* ad, size_t an,
                       const uint32_t* bp, const uint32_t* bd, size_t bn,
                       size_t i, size_t j, VertexId beta, Distance d) {
  while (i < an && j < bn) {
    const uint32_t pa = ap[i];
    const uint32_t pb = bp[j];
    if (pa >= beta || pb >= beta) return false;
    if (pa == pb) {
      if (SaturatingAdd(ad[i], bd[j]) <= d) return true;
      ++i;
      ++j;
    } else if (pa < pb) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool HasWitnessFlatScalar(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                          const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                          VertexId beta, Distance d) {
  return ScalarTailWitness(ap, ad, an, bp, bd, bn, 0, 0, beta, d);
}

// ---------------------------------------------------------------------------
// Blocked merge, scalar. The outer loop walks the per-block pivot
// min/max sidecars and advances past a block as soon as its range
// cannot overlap the other side's current block (strict per-slot
// sortedness makes block ranges disjoint and ascending, so a skipped
// block can never match a later block either). Overlapping blocks fall
// back to a bounded two-pointer merge over their real entries. The
// block-advance rule — advance whichever block's maximum real pivot is
// smaller, both on equal — is the same exhaustiveness argument as the
// SIMD all-pairs merge.
// ---------------------------------------------------------------------------

inline uint32_t NumBlocks(uint32_t size) {
  return (size + kLabelBlockEntries - 1) / kLabelBlockEntries;
}

Distance IntersectBlockedScalar(const uint32_t* ap, const uint32_t* ad,
                                const uint32_t* abmin, const uint32_t* abmax,
                                uint32_t an, const uint32_t* bp,
                                const uint32_t* bd, const uint32_t* bbmin,
                                const uint32_t* bbmax, uint32_t bn) {
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  Distance best = kInfDistance;
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    const size_t i0 = static_cast<size_t>(ba) * kLabelBlockEntries;
    const size_t j0 = static_cast<size_t>(bb) * kLabelBlockEntries;
    size_t i = i0, j = j0;
    const size_t ie = std::min<size_t>(an, i0 + kLabelBlockEntries);
    const size_t je = std::min<size_t>(bn, j0 + kLabelBlockEntries);
    while (i < ie && j < je) {
      if (ap[i] == bp[j]) {
        const Distance d = SaturatingAdd(ad[i], bd[j]);
        if (d < best) best = d;
        ++i;
        ++j;
      } else if (ap[i] < bp[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return best;
}

bool HasWitnessBlockedScalar(const uint32_t* ap, const uint32_t* ad,
                             const uint32_t* abmin, const uint32_t* abmax,
                             uint32_t an, const uint32_t* bp,
                             const uint32_t* bd, const uint32_t* bbmin,
                             const uint32_t* bbmax, uint32_t bn,
                             VertexId beta, Distance d) {
  if (beta == 0) return false;
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    // All remaining real pivots on a side are >= its current block
    // minimum, so reaching the beta bound here ends the whole probe.
    if (abmin[ba] >= beta || bbmin[bb] >= beta) return false;
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    const size_t i0 = static_cast<size_t>(ba) * kLabelBlockEntries;
    const size_t j0 = static_cast<size_t>(bb) * kLabelBlockEntries;
    size_t i = i0, j = j0;
    const size_t ie = std::min<size_t>(an, i0 + kLabelBlockEntries);
    const size_t je = std::min<size_t>(bn, j0 + kLabelBlockEntries);
    while (i < ie && j < je) {
      const uint32_t pa = ap[i];
      const uint32_t pb = bp[j];
      // Within this block pair every later pivot is larger, so nothing
      // below beta remains in the pair — but later PAIRS restart at the
      // other side's next block, so this only ends the pair, not the
      // probe (unlike the sidecar check above).
      if (pa >= beta || pb >= beta) break;
      if (pa == pb) {
        if (SaturatingAdd(ad[i], bd[j]) <= d) return true;
        ++i;
        ++j;
      } else if (pa < pb) {
        ++i;
      } else {
        ++j;
      }
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compressed-stream merge, scalar — the HLC1 delta-varint payload
// decoded entry-at-a-time into a sorted merge, with the trivial-pivot
// direct hits folded in (the exact semantics CompressedIndex::Query has
// always had). The SIMD variants below decode register-width blocks
// instead but keep the identical match/direct-hit set.
// ---------------------------------------------------------------------------

struct StreamCursor {
  const uint8_t* data;
  size_t pos;
  size_t end;
  /// 1 + previous pivot, so the first entry's gap is pivot + 1 (gap 0
  /// never occurs: pivots strictly increase).
  uint64_t prev = 0;

  bool Next(uint32_t* pivot, uint32_t* dist) {
    if (pos >= end) return false;
    uint64_t gap = 0, d = 0;
    if (!GetVarint64(data, end, &pos, &gap)) return false;
    if (!GetVarint64(data, end, &pos, &d)) return false;
    prev += gap;
    *pivot = static_cast<uint32_t>(prev - 1);
    *dist = static_cast<uint32_t>(d);
    return true;
  }
};

Distance IntersectStreamScalar(const uint8_t* a, size_t a_len,
                               const uint8_t* b, size_t b_len,
                               VertexId direct_a, VertexId direct_b) {
  StreamCursor ca{a, 0, a_len};
  StreamCursor cb{b, 0, b_len};
  Distance best = kInfDistance;
  uint32_t pa = kInvalidVertex, pb = kInvalidVertex;
  uint32_t da = kInfDistance, db = kInfDistance;
  bool va = ca.Next(&pa, &da);
  bool vb = cb.Next(&pb, &db);
  while (va && vb) {
    if (pa == pb) {
      const Distance d = SaturatingAdd(da, db);
      if (d < best) best = d;
      va = ca.Next(&pa, &da);
      vb = cb.Next(&pb, &db);
    } else if (pa < pb) {
      if (pa == direct_a && da < best) best = da;
      va = ca.Next(&pa, &da);
    } else {
      if (pb == direct_b && db < best) best = db;
      vb = cb.Next(&pb, &db);
    }
  }
  for (; va; va = ca.Next(&pa, &da)) {
    if (pa == direct_a && da < best) best = da;
  }
  for (; vb; vb = cb.Next(&pb, &db)) {
    if (pb == direct_b && db < best) best = db;
  }
  return best;
}

/// Register-width decode buffer for the SIMD stream kernels. Unused
/// lanes are padded with 0xFFFFFFFF pivots/dists, which the all-pairs
/// folds treat as inert (label_entry.h).
struct StreamBlock {
  alignas(64) uint32_t p[16];
  alignas(64) uint32_t d[16];
  uint32_t n = 0;
};

/// Decodes up to `width` entries into `blk`, folding any direct-pivot
/// hit into the returned running minimum — every decoded entry passes
/// through here exactly once, so the direct-hit set matches the scalar
/// stream merge's.
inline Distance RefillStream(StreamCursor* cur, StreamBlock* blk,
                             uint32_t width, VertexId direct,
                             Distance best) {
  uint32_t n = 0;
  while (n < width && cur->Next(&blk->p[n], &blk->d[n])) {
    if (blk->p[n] == direct && blk->d[n] < best) best = blk->d[n];
    ++n;
  }
  for (uint32_t k = n; k < width; ++k) {
    blk->p[k] = kInvalidVertex;
    blk->d[k] = kInfDistance;
  }
  blk->n = n;
  return best;
}

constexpr QueryKernel kScalarKernel{
    "scalar",
    &IntersectFlatScalar,
    &IntersectEntriesScalar,
    &HasWitnessFlatScalar,
    &IntersectBlockedScalar,
    &HasWitnessBlockedScalar,
    &IntersectStreamScalar};

#if HOPDB_X86_KERNELS

// ---------------------------------------------------------------------------
// Blocked all-pairs merge, AVX2 (8 lanes). Per block pair: compare va
// against all 8 rotations of vb; matching lanes contribute d1+d2 to a
// running vector minimum. A lane whose sum wraps uint32 is dropped — the
// scalar semantics saturate it to kInfDistance, which can never win the
// minimum. Then advance the block whose maximum (last) pivot is smaller;
// strict sortedness makes that exhaustive (Inoue et al.'s argument).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
FoldMatches8(__m256i va_p, __m256i va_d, __m256i vb_p, __m256i vb_d,
             __m256i best, __m256i rot1) {
  for (int r = 0; r < 8; ++r) {
    const __m256i eq = _mm256_cmpeq_epi32(va_p, vb_p);
    const __m256i sum = _mm256_add_epi32(va_d, vb_d);
    // No-overflow lanes satisfy sum >= d1 (unsigned).
    const __m256i no_ovf =
        _mm256_cmpeq_epi32(_mm256_max_epu32(sum, va_d), sum);
    const __m256i take = _mm256_and_si256(eq, no_ovf);
    best = _mm256_min_epu32(best, _mm256_blendv_epi8(best, sum, take));
    vb_p = _mm256_permutevar8x32_epi32(vb_p, rot1);
    vb_d = _mm256_permutevar8x32_epi32(vb_d, rot1);
  }
  return best;
}

__attribute__((target("avx2"))) Distance
HorizontalMinU32(__m256i v) {
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Distance best = lanes[0];
  for (int k = 1; k < 8; ++k) best = std::min(best, lanes[k]);
  return best;
}

__attribute__((target("avx2"))) Distance
IntersectFlatAvx2(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                  const uint32_t* bp, const uint32_t* bd, uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m256i best = _mm256_set1_epi32(-1);  // kInfDistance in every lane
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= a_n && j + 8 <= b_n) {
    const uint32_t amax = ap[i + 7];
    const uint32_t bmax = bp[j + 7];
    const __m256i va_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + i));
    const __m256i va_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + i));
    const __m256i vb_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + j));
    const __m256i vb_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + j));
    best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailFlat(ap, ad, a_n, bp, bd, b_n, i, j,
                        HorizontalMinU32(best));
}

/// Deinterleaves 8 consecutive (pivot, dist) entries into one pivot and
/// one distance vector. Both outputs share the same lane permutation
/// (p0 p1 p4 p5 p2 p3 p6 p7), which the all-pairs compare is insensitive
/// to — only pivot/distance lane correspondence matters.
__attribute__((target("avx2"))) inline void
LoadEntries8(const LabelEntry* e, __m256i* pivots, __m256i* dists) {
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + 4));
  const __m256i s0 = _mm256_shuffle_epi32(lo, _MM_SHUFFLE(3, 1, 2, 0));
  const __m256i s1 = _mm256_shuffle_epi32(hi, _MM_SHUFFLE(3, 1, 2, 0));
  *pivots = _mm256_unpacklo_epi64(s0, s1);
  *dists = _mm256_unpackhi_epi64(s0, s1);
}

__attribute__((target("avx2"))) Distance
IntersectEntriesAvx2(const LabelEntry* a, uint32_t an, const LabelEntry* b,
                     uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m256i best = _mm256_set1_epi32(-1);
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= a_n && j + 8 <= b_n) {
    const uint32_t amax = a[i + 7].pivot;
    const uint32_t bmax = b[j + 7].pivot;
    __m256i va_p, va_d, vb_p, vb_d;
    LoadEntries8(a + i, &va_p, &va_d);
    LoadEntries8(b + j, &vb_p, &vb_d);
    best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailEntries(a, a_n, b, b_n, i, j, HorizontalMinU32(best));
}

// ---------------------------------------------------------------------------
// Bounded early-exit witness probe, AVX2. The block walk mirrors the
// intersect kernel but (1) stops as soon as either block starts at or
// past the beta bound (strict sortedness makes everything after it
// irrelevant), (2) masks out lanes whose pivot is >= beta, and (3)
// returns on the first lane satisfying d1 + d2 <= d. When d is
// kInfDistance an overflowing sum saturates into a witness, so the
// overflow mask is disabled for that case instead of dropping the lane.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) bool
HasWitnessFlatAvx2(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                   const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                   VertexId beta, Distance d) {
  if (beta == 0) return false;  // no pivot ranks above rank 0
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i beta_m1 = _mm256_set1_epi32(static_cast<int>(beta - 1));
  const __m256i vd = _mm256_set1_epi32(static_cast<int>(d));
  const bool inf_budget = d == kInfDistance;
  while (i + 8 <= a_n && j + 8 <= b_n) {
    if (ap[i] >= beta || bp[j] >= beta) return false;
    const uint32_t amax = ap[i + 7];
    const uint32_t bmax = bp[j + 7];
    const __m256i va_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + i));
    const __m256i va_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + i));
    __m256i vb_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + j));
    __m256i vb_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + j));
    // va_p < beta per lane (unsigned): min(va_p, beta - 1) == va_p.
    const __m256i a_in_bound =
        _mm256_cmpeq_epi32(_mm256_min_epu32(va_p, beta_m1), va_p);
    __m256i hit = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      const __m256i eq = _mm256_cmpeq_epi32(va_p, vb_p);
      const __m256i sum = _mm256_add_epi32(va_d, vb_d);
      const __m256i no_ovf =
          _mm256_cmpeq_epi32(_mm256_max_epu32(sum, va_d), sum);
      // sum <= d (unsigned): min(sum, d) == sum. An overflowed lane
      // saturates to kInfDistance, a witness only when d is infinite.
      const __m256i le_d =
          _mm256_cmpeq_epi32(_mm256_min_epu32(sum, vd), sum);
      __m256i ok = inf_budget ? _mm256_set1_epi32(-1)
                              : _mm256_and_si256(no_ovf, le_d);
      ok = _mm256_and_si256(ok, _mm256_and_si256(eq, a_in_bound));
      hit = _mm256_or_si256(hit, ok);
      vb_p = _mm256_permutevar8x32_epi32(vb_p, rot1);
      vb_d = _mm256_permutevar8x32_epi32(vb_d, rot1);
    }
    if (_mm256_movemask_epi8(hit) != 0) return true;
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailWitness(ap, ad, a_n, bp, bd, b_n, i, j, beta, d);
}

// ---------------------------------------------------------------------------
// Blocked merge, AVX2: sidecar-driven outer loop, 16x16 all-pairs inner
// fold as a 2x2 tile of 8-lane folds with a cheap sub-block range check
// to skip tiles whose pivot ranges are disjoint. Padding lanes are
// inert, so the fold always runs at full width — no scalar tail at all.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) Distance
IntersectBlockedAvx2(const uint32_t* ap, const uint32_t* ad,
                     const uint32_t* abmin, const uint32_t* abmax,
                     uint32_t an, const uint32_t* bp, const uint32_t* bd,
                     const uint32_t* bbmin, const uint32_t* bbmax,
                     uint32_t bn) {
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  __m256i best = _mm256_set1_epi32(-1);
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    const uint32_t* pa = ap + static_cast<size_t>(ba) * kLabelBlockEntries;
    const uint32_t* da = ad + static_cast<size_t>(ba) * kLabelBlockEntries;
    const uint32_t* pb = bp + static_cast<size_t>(bb) * kLabelBlockEntries;
    const uint32_t* db = bd + static_cast<size_t>(bb) * kLabelBlockEntries;
    for (int sa = 0; sa < 2; ++sa) {
      const uint32_t alo = pa[8 * sa];
      const uint32_t ahi = pa[8 * sa + 7];
      __m256i va_p, va_d;
      bool loaded = false;
      for (int sb = 0; sb < 2; ++sb) {
        if (ahi < pb[8 * sb] || pb[8 * sb + 7] < alo) continue;
        if (!loaded) {
          va_p = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(pa + 8 * sa));
          va_d = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(da + 8 * sa));
          loaded = true;
        }
        const __m256i vb_p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pb + 8 * sb));
        const __m256i vb_d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(db + 8 * sb));
        best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
      }
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return HorizontalMinU32(best);
}

__attribute__((target("avx2"))) bool
HasWitnessBlockedAvx2(const uint32_t* ap, const uint32_t* ad,
                      const uint32_t* abmin, const uint32_t* abmax,
                      uint32_t an, const uint32_t* bp, const uint32_t* bd,
                      const uint32_t* bbmin, const uint32_t* bbmax,
                      uint32_t bn, VertexId beta, Distance d) {
  if (beta == 0) return false;
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    if (abmin[ba] >= beta || bbmin[bb] >= beta) return false;
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    // Probe the two padded blocks with the flat 8-lane kernel: padding
    // pivots are >= beta, so the in-bound mask discards them.
    if (HasWitnessFlatAvx2(
            ap + static_cast<size_t>(ba) * kLabelBlockEntries,
            ad + static_cast<size_t>(ba) * kLabelBlockEntries,
            kLabelBlockEntries,
            bp + static_cast<size_t>(bb) * kLabelBlockEntries,
            bd + static_cast<size_t>(bb) * kLabelBlockEntries,
            kLabelBlockEntries, beta, d)) {
      return true;
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compressed-stream merge, AVX2: decode 8-entry blocks per side into
// stack buffers (direct hits folded at decode time), then run the same
// all-pairs fold/advance scheme as the flat kernel. Partial end blocks
// are sentinel-padded, so the fold needs no tail handling.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) Distance
IntersectStreamAvx2(const uint8_t* a, size_t a_len, const uint8_t* b,
                    size_t b_len, VertexId direct_a, VertexId direct_b) {
  StreamCursor ca{a, 0, a_len};
  StreamCursor cb{b, 0, b_len};
  StreamBlock blk_a, blk_b;
  Distance direct_best = kInfDistance;
  direct_best = RefillStream(&ca, &blk_a, 8, direct_a, direct_best);
  direct_best = RefillStream(&cb, &blk_b, 8, direct_b, direct_best);
  __m256i best = _mm256_set1_epi32(-1);
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (blk_a.n > 0 && blk_b.n > 0) {
    const __m256i va_p =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(blk_a.p));
    const __m256i va_d =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(blk_a.d));
    const __m256i vb_p =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(blk_b.p));
    const __m256i vb_d =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(blk_b.d));
    best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
    const uint32_t amax = blk_a.p[blk_a.n - 1];
    const uint32_t bmax = blk_b.p[blk_b.n - 1];
    const bool adv_a = amax <= bmax;
    const bool adv_b = bmax <= amax;
    if (adv_a) direct_best = RefillStream(&ca, &blk_a, 8, direct_a,
                                          direct_best);
    if (adv_b) direct_best = RefillStream(&cb, &blk_b, 8, direct_b,
                                          direct_best);
  }
  // One side is exhausted: nothing left to match, but the other side's
  // remaining entries still owe their direct-hit checks (done inside
  // RefillStream).
  while (blk_a.n > 0) {
    direct_best = RefillStream(&ca, &blk_a, 8, direct_a, direct_best);
  }
  while (blk_b.n > 0) {
    direct_best = RefillStream(&cb, &blk_b, 8, direct_b, direct_best);
  }
  return std::min(direct_best, HorizontalMinU32(best));
}

constexpr QueryKernel kAvx2Kernel{
    "avx2",
    &IntersectFlatAvx2,
    &IntersectEntriesAvx2,
    &HasWitnessFlatAvx2,
    &IntersectBlockedAvx2,
    &HasWitnessBlockedAvx2,
    &IntersectStreamAvx2};

// ---------------------------------------------------------------------------
// Blocked all-pairs merge, SSE4.2 (4 lanes). Same scheme with immediate
// lane rotation. The AoS entry point stays scalar: without 256-bit
// registers the deinterleave overhead eats the 4-lane win.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) Distance
IntersectFlatSse42(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                   const uint32_t* bp, const uint32_t* bd, uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m128i best = _mm_set1_epi32(-1);
  while (i + 4 <= a_n && j + 4 <= b_n) {
    const uint32_t amax = ap[i + 3];
    const uint32_t bmax = bp[j + 3];
    const __m128i va_p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ap + i));
    const __m128i va_d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ad + i));
    __m128i vb_p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + j));
    __m128i vb_d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bd + j));
    for (int r = 0; r < 4; ++r) {
      const __m128i eq = _mm_cmpeq_epi32(va_p, vb_p);
      const __m128i sum = _mm_add_epi32(va_d, vb_d);
      const __m128i no_ovf = _mm_cmpeq_epi32(_mm_max_epu32(sum, va_d), sum);
      const __m128i take = _mm_and_si128(eq, no_ovf);
      best = _mm_min_epu32(best, _mm_blendv_epi8(best, sum, take));
      vb_p = _mm_shuffle_epi32(vb_p, _MM_SHUFFLE(0, 3, 2, 1));
      vb_d = _mm_shuffle_epi32(vb_d, _MM_SHUFFLE(0, 3, 2, 1));
    }
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  Distance folded = std::min(std::min(lanes[0], lanes[1]),
                             std::min(lanes[2], lanes[3]));
  return ScalarTailFlat(ap, ad, a_n, bp, bd, b_n, i, j, folded);
}

/// 4-lane witness probe; same masking scheme as the AVX2 variant.
__attribute__((target("sse4.2"))) bool
HasWitnessFlatSse42(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                    const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                    VertexId beta, Distance d) {
  if (beta == 0) return false;
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  const __m128i beta_m1 = _mm_set1_epi32(static_cast<int>(beta - 1));
  const __m128i vd = _mm_set1_epi32(static_cast<int>(d));
  const bool inf_budget = d == kInfDistance;
  while (i + 4 <= a_n && j + 4 <= b_n) {
    if (ap[i] >= beta || bp[j] >= beta) return false;
    const uint32_t amax = ap[i + 3];
    const uint32_t bmax = bp[j + 3];
    const __m128i va_p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ap + i));
    const __m128i va_d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ad + i));
    __m128i vb_p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + j));
    __m128i vb_d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bd + j));
    const __m128i a_in_bound =
        _mm_cmpeq_epi32(_mm_min_epu32(va_p, beta_m1), va_p);
    __m128i hit = _mm_setzero_si128();
    for (int r = 0; r < 4; ++r) {
      const __m128i eq = _mm_cmpeq_epi32(va_p, vb_p);
      const __m128i sum = _mm_add_epi32(va_d, vb_d);
      const __m128i no_ovf = _mm_cmpeq_epi32(_mm_max_epu32(sum, va_d), sum);
      const __m128i le_d = _mm_cmpeq_epi32(_mm_min_epu32(sum, vd), sum);
      __m128i ok = inf_budget ? _mm_set1_epi32(-1)
                              : _mm_and_si128(no_ovf, le_d);
      ok = _mm_and_si128(ok, _mm_and_si128(eq, a_in_bound));
      hit = _mm_or_si128(hit, ok);
      vb_p = _mm_shuffle_epi32(vb_p, _MM_SHUFFLE(0, 3, 2, 1));
      vb_d = _mm_shuffle_epi32(vb_d, _MM_SHUFFLE(0, 3, 2, 1));
    }
    if (_mm_movemask_epi8(hit) != 0) return true;
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return ScalarTailWitness(ap, ad, a_n, bp, bd, b_n, i, j, beta, d);
}

// Blocked variants, SSE4.2: the sidecar-driven outer loop is the win;
// overlapping block pairs reuse the 4-lane flat kernels over the two
// padded 16-entry spans (padding is inert to both).

__attribute__((target("sse4.2"))) Distance
IntersectBlockedSse42(const uint32_t* ap, const uint32_t* ad,
                      const uint32_t* abmin, const uint32_t* abmax,
                      uint32_t an, const uint32_t* bp, const uint32_t* bd,
                      const uint32_t* bbmin, const uint32_t* bbmax,
                      uint32_t bn) {
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  Distance best = kInfDistance;
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    const Distance pair = IntersectFlatSse42(
        ap + static_cast<size_t>(ba) * kLabelBlockEntries,
        ad + static_cast<size_t>(ba) * kLabelBlockEntries, kLabelBlockEntries,
        bp + static_cast<size_t>(bb) * kLabelBlockEntries,
        bd + static_cast<size_t>(bb) * kLabelBlockEntries,
        kLabelBlockEntries);
    if (pair < best) best = pair;
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return best;
}

__attribute__((target("sse4.2"))) bool
HasWitnessBlockedSse42(const uint32_t* ap, const uint32_t* ad,
                       const uint32_t* abmin, const uint32_t* abmax,
                       uint32_t an, const uint32_t* bp, const uint32_t* bd,
                       const uint32_t* bbmin, const uint32_t* bbmax,
                       uint32_t bn, VertexId beta, Distance d) {
  if (beta == 0) return false;
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    if (abmin[ba] >= beta || bbmin[bb] >= beta) return false;
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    if (HasWitnessFlatSse42(
            ap + static_cast<size_t>(ba) * kLabelBlockEntries,
            ad + static_cast<size_t>(ba) * kLabelBlockEntries,
            kLabelBlockEntries,
            bp + static_cast<size_t>(bb) * kLabelBlockEntries,
            bd + static_cast<size_t>(bb) * kLabelBlockEntries,
            kLabelBlockEntries, beta, d)) {
      return true;
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return false;
}

constexpr QueryKernel kSse42Kernel{
    "sse4.2",
    &IntersectFlatSse42,
    &IntersectEntriesScalar,
    &HasWitnessFlatSse42,
    &IntersectBlockedSse42,
    &HasWitnessBlockedSse42,
    &IntersectStreamScalar};

// ---------------------------------------------------------------------------
// AVX-512F kernels (16 lanes): the same all-pairs scheme with mask
// registers — compare masks replace blend arithmetic, and one 16-lane
// fold covers an entire cacheline block, so the blocked merge is a
// single fold per overlapping block pair.
// ---------------------------------------------------------------------------

// gcc 12 expands several AVX-512 intrinsics (permutexvar, reductions)
// through _mm512_undefined_epi32(), whose deliberately-uninitialized
// value trips -W(maybe-)uninitialized under -Werror (GCC PR 105593).
// The lanes are architecturally dead — full-mask ops ignore the
// passthrough operand — so silence the false positive for this section.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) inline __m512i
FoldMatches16(__m512i va_p, __m512i va_d, __m512i vb_p, __m512i vb_d,
              __m512i best, __m512i rot1) {
  for (int r = 0; r < 16; ++r) {
    const __mmask16 eq = _mm512_cmpeq_epi32_mask(va_p, vb_p);
    const __m512i sum = _mm512_add_epi32(va_d, vb_d);
    const __mmask16 no_ovf = _mm512_cmpge_epu32_mask(sum, va_d);
    best = _mm512_mask_min_epu32(
        best, static_cast<__mmask16>(eq & no_ovf), best, sum);
    vb_p = _mm512_permutexvar_epi32(rot1, vb_p);
    vb_d = _mm512_permutexvar_epi32(rot1, vb_d);
  }
  return best;
}

/// Manual 16-lane horizontal min. gcc's _mm512_reduce_min_epu32 expands
/// through _mm256_undefined_si256 and trips -Werror=uninitialized, so we
/// spill and fold — the compiler vectorizes the fold anyway.
__attribute__((target("avx512f"))) inline Distance
HorizontalMin16(__m512i v) {
  alignas(64) uint32_t lanes[16];
  _mm512_store_si512(lanes, v);
  Distance best = lanes[0];
  for (int k = 1; k < 16; ++k) best = std::min(best, lanes[k]);
  return best;
}

__attribute__((target("avx512f"))) inline __m512i
Rot1Index16() {
  return _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                           15, 0);
}

__attribute__((target("avx512f"))) Distance
IntersectFlatAvx512(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                    const uint32_t* bp, const uint32_t* bd, uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m512i best = _mm512_set1_epi32(-1);
  const __m512i rot1 = Rot1Index16();
  while (i + 16 <= a_n && j + 16 <= b_n) {
    const uint32_t amax = ap[i + 15];
    const uint32_t bmax = bp[j + 15];
    const __m512i va_p = _mm512_loadu_si512(ap + i);
    const __m512i va_d = _mm512_loadu_si512(ad + i);
    const __m512i vb_p = _mm512_loadu_si512(bp + j);
    const __m512i vb_d = _mm512_loadu_si512(bd + j);
    best = FoldMatches16(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 16;
    if (bmax <= amax) j += 16;
  }
  return ScalarTailFlat(ap, ad, a_n, bp, bd, b_n, i, j,
                        HorizontalMin16(best));
}

/// Deinterleaves 16 consecutive (pivot, dist) entries with one
/// two-source permute per output vector; lanes stay in entry order.
__attribute__((target("avx512f"))) inline void
LoadEntries16(const LabelEntry* e, __m512i* pivots, __m512i* dists) {
  const __m512i lo = _mm512_loadu_si512(e);
  const __m512i hi = _mm512_loadu_si512(e + 8);
  const __m512i idx_p = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18,
                                          20, 22, 24, 26, 28, 30);
  const __m512i idx_d = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19,
                                          21, 23, 25, 27, 29, 31);
  *pivots = _mm512_permutex2var_epi32(lo, idx_p, hi);
  *dists = _mm512_permutex2var_epi32(lo, idx_d, hi);
}

__attribute__((target("avx512f"))) Distance
IntersectEntriesAvx512(const LabelEntry* a, uint32_t an, const LabelEntry* b,
                       uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m512i best = _mm512_set1_epi32(-1);
  const __m512i rot1 = Rot1Index16();
  while (i + 16 <= a_n && j + 16 <= b_n) {
    const uint32_t amax = a[i + 15].pivot;
    const uint32_t bmax = b[j + 15].pivot;
    __m512i va_p, va_d, vb_p, vb_d;
    LoadEntries16(a + i, &va_p, &va_d);
    LoadEntries16(b + j, &vb_p, &vb_d);
    best = FoldMatches16(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 16;
    if (bmax <= amax) j += 16;
  }
  return ScalarTailEntries(a, a_n, b, b_n, i, j,
                           HorizontalMin16(best));
}

__attribute__((target("avx512f"))) bool
HasWitnessFlatAvx512(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                     const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                     VertexId beta, Distance d) {
  if (beta == 0) return false;
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  const __m512i rot1 = Rot1Index16();
  const __m512i vbeta = _mm512_set1_epi32(static_cast<int>(beta));
  const __m512i vd = _mm512_set1_epi32(static_cast<int>(d));
  const bool inf_budget = d == kInfDistance;
  while (i + 16 <= a_n && j + 16 <= b_n) {
    if (ap[i] >= beta || bp[j] >= beta) return false;
    const uint32_t amax = ap[i + 15];
    const uint32_t bmax = bp[j + 15];
    const __m512i va_p = _mm512_loadu_si512(ap + i);
    const __m512i va_d = _mm512_loadu_si512(ad + i);
    __m512i vb_p = _mm512_loadu_si512(bp + j);
    __m512i vb_d = _mm512_loadu_si512(bd + j);
    const __mmask16 a_in_bound = _mm512_cmplt_epu32_mask(va_p, vbeta);
    __mmask16 hit = 0;
    for (int r = 0; r < 16; ++r) {
      const __mmask16 eq = _mm512_cmpeq_epi32_mask(va_p, vb_p);
      const __m512i sum = _mm512_add_epi32(va_d, vb_d);
      const __mmask16 no_ovf = _mm512_cmpge_epu32_mask(sum, va_d);
      const __mmask16 le_d = _mm512_cmple_epu32_mask(sum, vd);
      const __mmask16 ok =
          inf_budget ? static_cast<__mmask16>(0xFFFF)
                     : static_cast<__mmask16>(no_ovf & le_d);
      hit = static_cast<__mmask16>(hit | (ok & eq & a_in_bound));
      vb_p = _mm512_permutexvar_epi32(rot1, vb_p);
      vb_d = _mm512_permutexvar_epi32(rot1, vb_d);
    }
    if (hit != 0) return true;
    if (amax <= bmax) i += 16;
    if (bmax <= amax) j += 16;
  }
  return ScalarTailWitness(ap, ad, a_n, bp, bd, b_n, i, j, beta, d);
}

__attribute__((target("avx512f"))) Distance
IntersectBlockedAvx512(const uint32_t* ap, const uint32_t* ad,
                       const uint32_t* abmin, const uint32_t* abmax,
                       uint32_t an, const uint32_t* bp, const uint32_t* bd,
                       const uint32_t* bbmin, const uint32_t* bbmax,
                       uint32_t bn) {
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  __m512i best = _mm512_set1_epi32(-1);
  const __m512i rot1 = Rot1Index16();
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    const size_t i0 = static_cast<size_t>(ba) * kLabelBlockEntries;
    const size_t j0 = static_cast<size_t>(bb) * kLabelBlockEntries;
    const __m512i va_p = _mm512_loadu_si512(ap + i0);
    const __m512i va_d = _mm512_loadu_si512(ad + i0);
    const __m512i vb_p = _mm512_loadu_si512(bp + j0);
    const __m512i vb_d = _mm512_loadu_si512(bd + j0);
    best = FoldMatches16(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return HorizontalMin16(best);
}

__attribute__((target("avx512f"))) bool
HasWitnessBlockedAvx512(const uint32_t* ap, const uint32_t* ad,
                        const uint32_t* abmin, const uint32_t* abmax,
                        uint32_t an, const uint32_t* bp, const uint32_t* bd,
                        const uint32_t* bbmin, const uint32_t* bbmax,
                        uint32_t bn, VertexId beta, Distance d) {
  if (beta == 0) return false;
  const uint32_t nba = NumBlocks(an);
  const uint32_t nbb = NumBlocks(bn);
  uint32_t ba = 0, bb = 0;
  while (ba < nba && bb < nbb) {
    if (abmin[ba] >= beta || bbmin[bb] >= beta) return false;
    const uint32_t amax = abmax[ba];
    const uint32_t bmax = bbmax[bb];
    if (amax < bbmin[bb]) {
      ++ba;
      continue;
    }
    if (bmax < abmin[ba]) {
      ++bb;
      continue;
    }
    if (HasWitnessFlatAvx512(
            ap + static_cast<size_t>(ba) * kLabelBlockEntries,
            ad + static_cast<size_t>(ba) * kLabelBlockEntries,
            kLabelBlockEntries,
            bp + static_cast<size_t>(bb) * kLabelBlockEntries,
            bd + static_cast<size_t>(bb) * kLabelBlockEntries,
            kLabelBlockEntries, beta, d)) {
      return true;
    }
    if (amax <= bmax) ++ba;
    if (bmax <= amax) ++bb;
  }
  return false;
}

__attribute__((target("avx512f"))) Distance
IntersectStreamAvx512(const uint8_t* a, size_t a_len, const uint8_t* b,
                      size_t b_len, VertexId direct_a, VertexId direct_b) {
  StreamCursor ca{a, 0, a_len};
  StreamCursor cb{b, 0, b_len};
  StreamBlock blk_a, blk_b;
  Distance direct_best = kInfDistance;
  direct_best = RefillStream(&ca, &blk_a, 16, direct_a, direct_best);
  direct_best = RefillStream(&cb, &blk_b, 16, direct_b, direct_best);
  __m512i best = _mm512_set1_epi32(-1);
  const __m512i rot1 = Rot1Index16();
  while (blk_a.n > 0 && blk_b.n > 0) {
    const __m512i va_p = _mm512_load_si512(blk_a.p);
    const __m512i va_d = _mm512_load_si512(blk_a.d);
    const __m512i vb_p = _mm512_load_si512(blk_b.p);
    const __m512i vb_d = _mm512_load_si512(blk_b.d);
    best = FoldMatches16(va_p, va_d, vb_p, vb_d, best, rot1);
    const uint32_t amax = blk_a.p[blk_a.n - 1];
    const uint32_t bmax = blk_b.p[blk_b.n - 1];
    const bool adv_a = amax <= bmax;
    const bool adv_b = bmax <= amax;
    if (adv_a) direct_best = RefillStream(&ca, &blk_a, 16, direct_a,
                                          direct_best);
    if (adv_b) direct_best = RefillStream(&cb, &blk_b, 16, direct_b,
                                          direct_best);
  }
  while (blk_a.n > 0) {
    direct_best = RefillStream(&ca, &blk_a, 16, direct_a, direct_best);
  }
  while (blk_b.n > 0) {
    direct_best = RefillStream(&cb, &blk_b, 16, direct_b, direct_best);
  }
  return std::min(direct_best, HorizontalMin16(best));
}

constexpr QueryKernel kAvx512Kernel{
    "avx512",
    &IntersectFlatAvx512,
    &IntersectEntriesAvx512,
    &HasWitnessFlatAvx512,
    &IntersectBlockedAvx512,
    &HasWitnessBlockedAvx512,
    &IntersectStreamAvx512};

#pragma GCC diagnostic pop

#endif  // HOPDB_X86_KERNELS

std::atomic<const QueryKernel*> g_active_kernel{nullptr};

const QueryKernel* ResolveDefaultKernel() {
  if (const char* env = std::getenv("HOPDB_QUERY_KERNEL");
      env != nullptr && *env != '\0') {
    if (const QueryKernel* forced = FindQueryKernel(env)) return forced;
    HOPDB_LOG(Warning) << "HOPDB_QUERY_KERNEL='" << env
                       << "' unknown or unsupported on this CPU; "
                          "auto-selecting";
  }
#if HOPDB_X86_KERNELS
  // avx512 is deliberately NOT the auto default: on many parts wide-512
  // execution drops the core frequency license, taxing the non-query
  // work sharing the socket. Opt in via HOPDB_QUERY_KERNEL=avx512.
  if (__builtin_cpu_supports("avx2")) return &kAvx2Kernel;
  if (__builtin_cpu_supports("sse4.2")) return &kSse42Kernel;
#endif
  return &kScalarKernel;
}

}  // namespace

std::vector<const QueryKernel*> SupportedQueryKernels() {
  std::vector<const QueryKernel*> kernels{&kScalarKernel};
#if HOPDB_X86_KERNELS
  if (__builtin_cpu_supports("sse4.2")) kernels.push_back(&kSse42Kernel);
  if (__builtin_cpu_supports("avx2")) kernels.push_back(&kAvx2Kernel);
  if (__builtin_cpu_supports("avx512f")) kernels.push_back(&kAvx512Kernel);
#endif
  return kernels;
}

const QueryKernel* FindQueryKernel(std::string_view name) {
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    if (name == kernel->name) return kernel;
  }
  return nullptr;
}

const QueryKernel& ActiveQueryKernel() {
  const QueryKernel* kernel = g_active_kernel.load(std::memory_order_acquire);
  if (kernel == nullptr) {
    // Benign race: concurrent first callers resolve the same default.
    kernel = ResolveDefaultKernel();
    g_active_kernel.store(kernel, std::memory_order_release);
  }
  return *kernel;
}

bool SetActiveQueryKernel(std::string_view name) {
  const QueryKernel* kernel = FindQueryKernel(name);
  if (kernel == nullptr) return false;
  g_active_kernel.store(kernel, std::memory_order_release);
  return true;
}

Distance LookupPivotFlat(FlatLabelStore::View label, VertexId pivot) {
  size_t lo = 0, hi = label.size;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (label.pivots[mid] < pivot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < label.size && label.pivots[lo] == pivot) return label.dists[lo];
  return kInfDistance;
}

Distance QueryFlatHalves(FlatLabelStore::View out_s,
                         FlatLabelStore::View in_t, VertexId s, VertexId t,
                         const QueryKernel& kernel) {
  if (s == t) return 0;
  const bool blocked =
      out_s.block_min != nullptr && in_t.block_min != nullptr;
  Distance best =
      blocked ? kernel.intersect_blocked(
                    out_s.pivots, out_s.dists, out_s.block_min,
                    out_s.block_max, out_s.size, in_t.pivots, in_t.dists,
                    in_t.block_min, in_t.block_max, in_t.size)
              : kernel.intersect_flat(out_s.pivots, out_s.dists, out_s.size,
                                      in_t.pivots, in_t.dists, in_t.size);
  // Implicit trivial pivots: (s, 0) in Lout(s) and (t, 0) in Lin(t).
  const Distance direct_t = LookupPivotFlat(out_s, t);
  if (direct_t < best) best = direct_t;
  const Distance direct_s = LookupPivotFlat(in_t, s);
  if (direct_s < best) best = direct_s;
  return best;
}

}  // namespace hopdb
