#include "labeling/query_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "util/logging.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define HOPDB_X86_KERNELS 1
#include <immintrin.h>
#else
#define HOPDB_X86_KERNELS 0
#endif

namespace hopdb {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference. Also the tail finisher of every SIMD variant, so all
// kernels share one definition of the boundary semantics.
// ---------------------------------------------------------------------------

Distance ScalarTailFlat(const uint32_t* ap, const uint32_t* ad, size_t an,
                        const uint32_t* bp, const uint32_t* bd, size_t bn,
                        size_t i, size_t j, Distance best) {
  while (i < an && j < bn) {
    if (ap[i] == bp[j]) {
      const Distance d = SaturatingAdd(ad[i], bd[j]);
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (ap[i] < bp[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

Distance IntersectFlatScalar(const uint32_t* ap, const uint32_t* ad,
                             uint32_t an, const uint32_t* bp,
                             const uint32_t* bd, uint32_t bn) {
  return ScalarTailFlat(ap, ad, an, bp, bd, bn, 0, 0, kInfDistance);
}

Distance ScalarTailEntries(const LabelEntry* a, size_t an,
                           const LabelEntry* b, size_t bn, size_t i, size_t j,
                           Distance best) {
  while (i < an && j < bn) {
    if (a[i].pivot == b[j].pivot) {
      const Distance d = SaturatingAdd(a[i].dist, b[j].dist);
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (a[i].pivot < b[j].pivot) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

Distance IntersectEntriesScalar(const LabelEntry* a, uint32_t an,
                                const LabelEntry* b, uint32_t bn) {
  return ScalarTailEntries(a, an, b, bn, 0, 0, kInfDistance);
}

/// Bounded witness tail: resumes the merge at (i, j), stops at the beta
/// bound, returns on the first common pivot with d1 + d2 <= d. The
/// saturating add makes an overflowing pair a witness exactly when
/// d == kInfDistance — the same semantics the builder's scalar cursor
/// scan has always had.
bool ScalarTailWitness(const uint32_t* ap, const uint32_t* ad, size_t an,
                       const uint32_t* bp, const uint32_t* bd, size_t bn,
                       size_t i, size_t j, VertexId beta, Distance d) {
  while (i < an && j < bn) {
    const uint32_t pa = ap[i];
    const uint32_t pb = bp[j];
    if (pa >= beta || pb >= beta) return false;
    if (pa == pb) {
      if (SaturatingAdd(ad[i], bd[j]) <= d) return true;
      ++i;
      ++j;
    } else if (pa < pb) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool HasWitnessFlatScalar(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                          const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                          VertexId beta, Distance d) {
  return ScalarTailWitness(ap, ad, an, bp, bd, bn, 0, 0, beta, d);
}

constexpr QueryKernel kScalarKernel{"scalar", &IntersectFlatScalar,
                                    &IntersectEntriesScalar,
                                    &HasWitnessFlatScalar};

#if HOPDB_X86_KERNELS

// ---------------------------------------------------------------------------
// Blocked all-pairs merge, AVX2 (8 lanes). Per block pair: compare va
// against all 8 rotations of vb; matching lanes contribute d1+d2 to a
// running vector minimum. A lane whose sum wraps uint32 is dropped — the
// scalar semantics saturate it to kInfDistance, which can never win the
// minimum. Then advance the block whose maximum (last) pivot is smaller;
// strict sortedness makes that exhaustive (Inoue et al.'s argument).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
FoldMatches8(__m256i va_p, __m256i va_d, __m256i vb_p, __m256i vb_d,
             __m256i best, __m256i rot1) {
  for (int r = 0; r < 8; ++r) {
    const __m256i eq = _mm256_cmpeq_epi32(va_p, vb_p);
    const __m256i sum = _mm256_add_epi32(va_d, vb_d);
    // No-overflow lanes satisfy sum >= d1 (unsigned).
    const __m256i no_ovf =
        _mm256_cmpeq_epi32(_mm256_max_epu32(sum, va_d), sum);
    const __m256i take = _mm256_and_si256(eq, no_ovf);
    best = _mm256_min_epu32(best, _mm256_blendv_epi8(best, sum, take));
    vb_p = _mm256_permutevar8x32_epi32(vb_p, rot1);
    vb_d = _mm256_permutevar8x32_epi32(vb_d, rot1);
  }
  return best;
}

__attribute__((target("avx2"))) Distance
HorizontalMinU32(__m256i v) {
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Distance best = lanes[0];
  for (int k = 1; k < 8; ++k) best = std::min(best, lanes[k]);
  return best;
}

__attribute__((target("avx2"))) Distance
IntersectFlatAvx2(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                  const uint32_t* bp, const uint32_t* bd, uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m256i best = _mm256_set1_epi32(-1);  // kInfDistance in every lane
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= a_n && j + 8 <= b_n) {
    const uint32_t amax = ap[i + 7];
    const uint32_t bmax = bp[j + 7];
    const __m256i va_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + i));
    const __m256i va_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + i));
    const __m256i vb_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + j));
    const __m256i vb_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + j));
    best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailFlat(ap, ad, a_n, bp, bd, b_n, i, j,
                        HorizontalMinU32(best));
}

/// Deinterleaves 8 consecutive (pivot, dist) entries into one pivot and
/// one distance vector. Both outputs share the same lane permutation
/// (p0 p1 p4 p5 p2 p3 p6 p7), which the all-pairs compare is insensitive
/// to — only pivot/distance lane correspondence matters.
__attribute__((target("avx2"))) inline void
LoadEntries8(const LabelEntry* e, __m256i* pivots, __m256i* dists) {
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + 4));
  const __m256i s0 = _mm256_shuffle_epi32(lo, _MM_SHUFFLE(3, 1, 2, 0));
  const __m256i s1 = _mm256_shuffle_epi32(hi, _MM_SHUFFLE(3, 1, 2, 0));
  *pivots = _mm256_unpacklo_epi64(s0, s1);
  *dists = _mm256_unpackhi_epi64(s0, s1);
}

__attribute__((target("avx2"))) Distance
IntersectEntriesAvx2(const LabelEntry* a, uint32_t an, const LabelEntry* b,
                     uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m256i best = _mm256_set1_epi32(-1);
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= a_n && j + 8 <= b_n) {
    const uint32_t amax = a[i + 7].pivot;
    const uint32_t bmax = b[j + 7].pivot;
    __m256i va_p, va_d, vb_p, vb_d;
    LoadEntries8(a + i, &va_p, &va_d);
    LoadEntries8(b + j, &vb_p, &vb_d);
    best = FoldMatches8(va_p, va_d, vb_p, vb_d, best, rot1);
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailEntries(a, a_n, b, b_n, i, j, HorizontalMinU32(best));
}

// ---------------------------------------------------------------------------
// Bounded early-exit witness probe, AVX2. The block walk mirrors the
// intersect kernel but (1) stops as soon as either block starts at or
// past the beta bound (strict sortedness makes everything after it
// irrelevant), (2) masks out lanes whose pivot is >= beta, and (3)
// returns on the first lane satisfying d1 + d2 <= d. When d is
// kInfDistance an overflowing sum saturates into a witness, so the
// overflow mask is disabled for that case instead of dropping the lane.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) bool
HasWitnessFlatAvx2(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                   const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                   VertexId beta, Distance d) {
  if (beta == 0) return false;  // no pivot ranks above rank 0
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i beta_m1 = _mm256_set1_epi32(static_cast<int>(beta - 1));
  const __m256i vd = _mm256_set1_epi32(static_cast<int>(d));
  const bool inf_budget = d == kInfDistance;
  while (i + 8 <= a_n && j + 8 <= b_n) {
    if (ap[i] >= beta || bp[j] >= beta) return false;
    const uint32_t amax = ap[i + 7];
    const uint32_t bmax = bp[j + 7];
    const __m256i va_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + i));
    const __m256i va_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + i));
    __m256i vb_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + j));
    __m256i vb_d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + j));
    // va_p < beta per lane (unsigned): min(va_p, beta - 1) == va_p.
    const __m256i a_in_bound =
        _mm256_cmpeq_epi32(_mm256_min_epu32(va_p, beta_m1), va_p);
    __m256i hit = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      const __m256i eq = _mm256_cmpeq_epi32(va_p, vb_p);
      const __m256i sum = _mm256_add_epi32(va_d, vb_d);
      const __m256i no_ovf =
          _mm256_cmpeq_epi32(_mm256_max_epu32(sum, va_d), sum);
      // sum <= d (unsigned): min(sum, d) == sum. An overflowed lane
      // saturates to kInfDistance, a witness only when d is infinite.
      const __m256i le_d =
          _mm256_cmpeq_epi32(_mm256_min_epu32(sum, vd), sum);
      __m256i ok = inf_budget ? _mm256_set1_epi32(-1)
                              : _mm256_and_si256(no_ovf, le_d);
      ok = _mm256_and_si256(ok, _mm256_and_si256(eq, a_in_bound));
      hit = _mm256_or_si256(hit, ok);
      vb_p = _mm256_permutevar8x32_epi32(vb_p, rot1);
      vb_d = _mm256_permutevar8x32_epi32(vb_d, rot1);
    }
    if (_mm256_movemask_epi8(hit) != 0) return true;
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return ScalarTailWitness(ap, ad, a_n, bp, bd, b_n, i, j, beta, d);
}

constexpr QueryKernel kAvx2Kernel{"avx2", &IntersectFlatAvx2,
                                  &IntersectEntriesAvx2,
                                  &HasWitnessFlatAvx2};

// ---------------------------------------------------------------------------
// Blocked all-pairs merge, SSE4.2 (4 lanes). Same scheme with immediate
// lane rotation. The AoS entry point stays scalar: without 256-bit
// registers the deinterleave overhead eats the 4-lane win.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) Distance
IntersectFlatSse42(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                   const uint32_t* bp, const uint32_t* bd, uint32_t bn) {
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  __m128i best = _mm_set1_epi32(-1);
  while (i + 4 <= a_n && j + 4 <= b_n) {
    const uint32_t amax = ap[i + 3];
    const uint32_t bmax = bp[j + 3];
    const __m128i va_p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ap + i));
    const __m128i va_d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ad + i));
    __m128i vb_p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + j));
    __m128i vb_d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bd + j));
    for (int r = 0; r < 4; ++r) {
      const __m128i eq = _mm_cmpeq_epi32(va_p, vb_p);
      const __m128i sum = _mm_add_epi32(va_d, vb_d);
      const __m128i no_ovf = _mm_cmpeq_epi32(_mm_max_epu32(sum, va_d), sum);
      const __m128i take = _mm_and_si128(eq, no_ovf);
      best = _mm_min_epu32(best, _mm_blendv_epi8(best, sum, take));
      vb_p = _mm_shuffle_epi32(vb_p, _MM_SHUFFLE(0, 3, 2, 1));
      vb_d = _mm_shuffle_epi32(vb_d, _MM_SHUFFLE(0, 3, 2, 1));
    }
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  Distance folded = std::min(std::min(lanes[0], lanes[1]),
                             std::min(lanes[2], lanes[3]));
  return ScalarTailFlat(ap, ad, a_n, bp, bd, b_n, i, j, folded);
}

/// 4-lane witness probe; same masking scheme as the AVX2 variant.
__attribute__((target("sse4.2"))) bool
HasWitnessFlatSse42(const uint32_t* ap, const uint32_t* ad, uint32_t an,
                    const uint32_t* bp, const uint32_t* bd, uint32_t bn,
                    VertexId beta, Distance d) {
  if (beta == 0) return false;
  size_t i = 0, j = 0;
  const size_t a_n = an, b_n = bn;
  const __m128i beta_m1 = _mm_set1_epi32(static_cast<int>(beta - 1));
  const __m128i vd = _mm_set1_epi32(static_cast<int>(d));
  const bool inf_budget = d == kInfDistance;
  while (i + 4 <= a_n && j + 4 <= b_n) {
    if (ap[i] >= beta || bp[j] >= beta) return false;
    const uint32_t amax = ap[i + 3];
    const uint32_t bmax = bp[j + 3];
    const __m128i va_p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ap + i));
    const __m128i va_d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ad + i));
    __m128i vb_p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + j));
    __m128i vb_d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bd + j));
    const __m128i a_in_bound =
        _mm_cmpeq_epi32(_mm_min_epu32(va_p, beta_m1), va_p);
    __m128i hit = _mm_setzero_si128();
    for (int r = 0; r < 4; ++r) {
      const __m128i eq = _mm_cmpeq_epi32(va_p, vb_p);
      const __m128i sum = _mm_add_epi32(va_d, vb_d);
      const __m128i no_ovf = _mm_cmpeq_epi32(_mm_max_epu32(sum, va_d), sum);
      const __m128i le_d = _mm_cmpeq_epi32(_mm_min_epu32(sum, vd), sum);
      __m128i ok = inf_budget ? _mm_set1_epi32(-1)
                              : _mm_and_si128(no_ovf, le_d);
      ok = _mm_and_si128(ok, _mm_and_si128(eq, a_in_bound));
      hit = _mm_or_si128(hit, ok);
      vb_p = _mm_shuffle_epi32(vb_p, _MM_SHUFFLE(0, 3, 2, 1));
      vb_d = _mm_shuffle_epi32(vb_d, _MM_SHUFFLE(0, 3, 2, 1));
    }
    if (_mm_movemask_epi8(hit) != 0) return true;
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return ScalarTailWitness(ap, ad, a_n, bp, bd, b_n, i, j, beta, d);
}

constexpr QueryKernel kSse42Kernel{"sse4.2", &IntersectFlatSse42,
                                   &IntersectEntriesScalar,
                                   &HasWitnessFlatSse42};

#endif  // HOPDB_X86_KERNELS

std::atomic<const QueryKernel*> g_active_kernel{nullptr};

const QueryKernel* ResolveDefaultKernel() {
  if (const char* env = std::getenv("HOPDB_QUERY_KERNEL");
      env != nullptr && *env != '\0') {
    if (const QueryKernel* forced = FindQueryKernel(env)) return forced;
    HOPDB_LOG(Warning) << "HOPDB_QUERY_KERNEL='" << env
                       << "' unknown or unsupported on this CPU; "
                          "auto-selecting";
  }
#if HOPDB_X86_KERNELS
  if (__builtin_cpu_supports("avx2")) return &kAvx2Kernel;
  if (__builtin_cpu_supports("sse4.2")) return &kSse42Kernel;
#endif
  return &kScalarKernel;
}

}  // namespace

std::vector<const QueryKernel*> SupportedQueryKernels() {
  std::vector<const QueryKernel*> kernels{&kScalarKernel};
#if HOPDB_X86_KERNELS
  if (__builtin_cpu_supports("sse4.2")) kernels.push_back(&kSse42Kernel);
  if (__builtin_cpu_supports("avx2")) kernels.push_back(&kAvx2Kernel);
#endif
  return kernels;
}

const QueryKernel* FindQueryKernel(std::string_view name) {
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    if (name == kernel->name) return kernel;
  }
  return nullptr;
}

const QueryKernel& ActiveQueryKernel() {
  const QueryKernel* kernel = g_active_kernel.load(std::memory_order_acquire);
  if (kernel == nullptr) {
    // Benign race: concurrent first callers resolve the same default.
    kernel = ResolveDefaultKernel();
    g_active_kernel.store(kernel, std::memory_order_release);
  }
  return *kernel;
}

bool SetActiveQueryKernel(std::string_view name) {
  const QueryKernel* kernel = FindQueryKernel(name);
  if (kernel == nullptr) return false;
  g_active_kernel.store(kernel, std::memory_order_release);
  return true;
}

Distance LookupPivotFlat(FlatLabelStore::View label, VertexId pivot) {
  size_t lo = 0, hi = label.size;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (label.pivots[mid] < pivot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < label.size && label.pivots[lo] == pivot) return label.dists[lo];
  return kInfDistance;
}

Distance QueryFlatHalves(FlatLabelStore::View out_s,
                         FlatLabelStore::View in_t, VertexId s, VertexId t,
                         const QueryKernel& kernel) {
  if (s == t) return 0;
  Distance best = kernel.intersect_flat(out_s.pivots, out_s.dists,
                                        out_s.size, in_t.pivots, in_t.dists,
                                        in_t.size);
  // Implicit trivial pivots: (s, 0) in Lout(s) and (t, 0) in Lin(t).
  const Distance direct_t = LookupPivotFlat(out_s, t);
  if (direct_t < best) best = direct_t;
  const Distance direct_s = LookupPivotFlat(in_t, s);
  if (direct_s < best) best = direct_s;
  return best;
}

}  // namespace hopdb
