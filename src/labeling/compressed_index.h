// CompressedIndex: a delta-varint-compressed, directly-queryable 2-hop
// label index.
//
// The paper accounts index size as 32-bit pivot + 8-bit distance per entry
// (Table 6). This format goes further while staying queryable without a
// decompression pass: within each label vector (already sorted by pivot)
// pivots are delta-encoded and distances stored raw, both as LEB128
// varints. Scale-free labels compress well under this scheme: pivots
// concentrate on the highest ranks (Table 7's coverage results), so deltas
// are small, and unweighted distances rarely exceed the diameter.
//
// Layout (little-endian, "HLC1"):
//   magic u32 | flags u8 (bit0 directed) | num_vertices u32 |
//   offsets u32 x (num_labels + 1) | payload bytes |
//   fnv1a-64 checksum u64 (over everything preceding)
// where num_labels = 2 * |V| for directed indexes (all out-labels first,
// then all in-labels) and |V| otherwise. Each label's payload is
// (varint pivot-delta, varint dist)* with the first delta relative to -1.
//
// Queries decode the two label vectors lazily inside a sorted-merge
// intersection; no per-query allocation.

#ifndef HOPDB_LABELING_COMPRESSED_INDEX_H_
#define HOPDB_LABELING_COMPRESSED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

class CompressedIndex {
 public:
  CompressedIndex() = default;

  /// Compresses a plain index. Fails on empty (default-constructed) input.
  static Result<CompressedIndex> FromIndex(const TwoHopIndex& index);

  /// Expands back to a plain index (exact round trip).
  Result<TwoHopIndex> Decompress() const;

  /// Exact distance query over the compressed form; kInfDistance when
  /// unreachable. Identical results to TwoHopIndex::Query.
  ///
  /// Thread safety: const end-to-end (varint decode into locals, no
  /// mutable/static state) — safe for concurrent readers.
  Distance Query(VertexId s, VertexId t) const;

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }

  /// Total compressed footprint: payload + offset table + header.
  uint64_t SizeBytes() const;

  /// Serialized file image (header + offsets + payload + checksum).
  Status Save(const std::string& path) const;
  /// Verifies magic and checksum; corrupt or truncated files fail cleanly.
  static Result<CompressedIndex> Load(const std::string& path);

 private:
  /// Label slot of vertex v: out labels occupy [0, n), in labels (directed
  /// only) occupy [n, 2n).
  size_t SlotOut(VertexId v) const { return v; }
  size_t SlotIn(VertexId v) const {
    return directed_ ? num_vertices_ + v : v;
  }

  bool directed_ = false;
  VertexId num_vertices_ = 0;
  std::vector<uint32_t> offsets_;  // byte offsets into payload_
  std::string payload_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_COMPRESSED_INDEX_H_
