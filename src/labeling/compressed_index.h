// CompressedIndex: a delta-varint-compressed, directly-queryable 2-hop
// label index.
//
// The paper accounts index size as 32-bit pivot + 8-bit distance per entry
// (Table 6). This format goes further while staying queryable without a
// decompression pass: within each label vector (already sorted by pivot)
// pivots are delta-encoded and distances stored raw, both as LEB128
// varints. Scale-free labels compress well under this scheme: pivots
// concentrate on the highest ranks (Table 7's coverage results), so deltas
// are small, and unweighted distances rarely exceed the diameter.
//
// Layout (little-endian, "HLC1"):
//   magic u32 | flags u8 (bit0 directed) | num_vertices u32 |
//   offsets u32 x (num_labels + 1) | payload bytes |
//   fnv1a-64 checksum u64 (over everything preceding)
// where num_labels = 2 * |V| for directed indexes (all out-labels first,
// then all in-labels) and |V| otherwise. Each label's payload is
// (varint pivot-delta, varint dist)* with the first delta relative to -1.
//
// Queries decode the two label vectors lazily inside a sorted-merge
// intersection; no per-query allocation.

#ifndef HOPDB_LABELING_COMPRESSED_INDEX_H_
#define HOPDB_LABELING_COMPRESSED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

class CompressedIndex {
 public:
  CompressedIndex() = default;

  /// Compresses a plain index — O(total entries) encode, one pass, no
  /// mutation of the input. Fails with InvalidArgument on empty
  /// (default-constructed) input and ResourceExhausted when the encoded
  /// payload would overflow the u32 offset table (> 4 GiB).
  static Result<CompressedIndex> FromIndex(const TwoHopIndex& index);

  /// Expands back to a plain TwoHopIndex. Exact round trip:
  /// Decompress(FromIndex(x)) equals x entry-for-entry (and rebuilds
  /// the flat query mirror). O(total entries) time and full heap
  /// footprint — use this to hand labels to code that needs the
  /// uncompressed representation, not on the serving path.
  Result<TwoHopIndex> Decompress() const;

  /// Exact distance query over the compressed form; kInfDistance when
  /// unreachable. Identical results to TwoHopIndex::Query on the
  /// source index. O(|Lout(s)| + |Lin(t)|) varint decodes inside a
  /// sorted-merge intersection; no per-query allocation, roughly 2-3x
  /// the flat-store query cost in exchange for the 2-3x smaller
  /// footprint. Both ids must be < num_vertices() (internal/ranked
  /// ids, like TwoHopIndex).
  ///
  /// Thread safety: const end-to-end (varint decode into locals, no
  /// mutable/static state) — safe for concurrent readers.
  Distance Query(VertexId s, VertexId t) const;

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }

  /// Total compressed footprint: payload + offset table + header —
  /// also the serialized file size minus the trailing checksum.
  uint64_t SizeBytes() const;

  /// Writes the HLC1 file image (header + offsets + payload +
  /// fnv1a-64 checksum; byte-exact spec in docs/FORMATS.md). Const and
  /// safe to call while other threads query.
  Status Save(const std::string& path) const;
  /// Verifies magic and checksum before accepting any byte; corrupt or
  /// truncated files fail cleanly with InvalidArgument. HopDbIndex::Load
  /// dispatches here automatically on the "HLC1" magic.
  static Result<CompressedIndex> Load(const std::string& path);

 private:
  /// Label slot of vertex v: out labels occupy [0, n), in labels (directed
  /// only) occupy [n, 2n).
  size_t SlotOut(VertexId v) const { return v; }
  size_t SlotIn(VertexId v) const {
    return directed_ ? num_vertices_ + v : v;
  }

  bool directed_ = false;
  VertexId num_vertices_ = 0;
  std::vector<uint32_t> offsets_;  // byte offsets into payload_
  std::string payload_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_COMPRESSED_INDEX_H_
