// Vectorized merge-join distance kernels over 2-hop labels.
//
// A point query is min_{w in Lout(s) ∩ Lin(t)} d1 + d2 over two sorted
// pivot arrays — a sorted-merge intersection. The kernels here implement
// that primitive behind one dispatch table:
//
//   scalar   portable two-pointer merge (the reference semantics)
//   sse4.2   4-lane blocked merge (SSE4.1/4.2 integer ops)
//   avx2     8-lane blocked merge (the serving default on modern x86)
//   avx512   16-lane merge (opt-in via HOPDB_QUERY_KERNEL=avx512)
//
// The SIMD variants use block-wise all-pairs comparison (Inoue et al.,
// "Faster Set Intersection with SIMD instructions"): load one block per
// side, compare every lane pairing via lane rotations, fold matching
// d1+d2 sums into a running vector minimum, then advance the block whose
// maximum pivot is smaller. All variants return bit-identical results —
// including kInfDistance saturation on d1+d2 overflow — which the test
// suite verifies pairwise on randomized labels.
//
// Three storage microarchitectures share those semantics:
//
//   flat     packed SoA arrays (FlatLabelArena views, HLI2 v1 files)
//   blocked  cacheline-blocked SoA arenas with per-block pivot min/max
//            sidecars (FlatLabelStore, HLI2 v2): the merge consults the
//            tiny sidecar arrays first and skips whole 64-byte blocks
//            whose pivot ranges cannot overlap, touching the arenas only
//            for blocks that can match
//   stream   delta-varint compressed label streams (the HLC1 payload):
//            the kernel decodes fixed-width register blocks on the fly
//            and merges without materializing the label, so compressed
//            indexes answer queries with no decompression pass
//
// Kernel selection is runtime CPUID dispatch: the first query picks the
// widest auto-default the CPU supports (avx2 — avx512 stays opt-in to
// avoid frequency-license surprises on mixed workloads), overridable
// with the environment variable
// HOPDB_QUERY_KERNEL=scalar|sse4.2|avx2|avx512 (ignored when the CPU
// lacks the requested extension) or programmatically via
// SetActiveQueryKernel (tests and benchmarks).

#ifndef HOPDB_LABELING_QUERY_KERNEL_H_
#define HOPDB_LABELING_QUERY_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "labeling/flat_label_store.h"
#include "labeling/label_entry.h"

namespace hopdb {

/// One query-kernel implementation. Every intersect entry point computes
///   min over common pivots of SaturatingAdd(d1, d2)
/// (kInfDistance when the intersection is empty) and requires strictly
/// ascending pivots on both sides — the TwoHopIndex label invariant.
/// All functions are stateless and reentrant: safe for any number of
/// concurrent callers.
struct QueryKernel {
  const char* name;

  /// Structure-of-arrays form (packed label views) — valid on blocked
  /// stores too, since a slot's real entries stay contiguous.
  /// O((|a| + |b|) / lanes) block steps plus a scalar tail.
  Distance (*intersect_flat)(const uint32_t* a_pivots,
                             const uint32_t* a_dists, uint32_t a_size,
                             const uint32_t* b_pivots,
                             const uint32_t* b_dists, uint32_t b_size);

  /// Array-of-structs form (LabelEntry spans) — builders, baselines and
  /// the disk index. The AVX2/AVX-512 kernels deinterleave entry blocks
  /// in registers; narrower kernels fall back to the scalar merge.
  Distance (*intersect_entries)(const LabelEntry* a, uint32_t a_size,
                                const LabelEntry* b, uint32_t b_size);

  /// Bounded early-exit witness probe — the builder's rule-(ii) pruning
  /// primitive (Section 3.3). True iff some common pivot w < beta has
  /// SaturatingAdd(d1, d2) <= d. Unlike intersect_flat it never scans
  /// past the beta bound and returns on the first witness found, so the
  /// common prune case touches only a prefix of each label. All kernels
  /// return the identical boolean (existence is order-insensitive),
  /// including the d == kInfDistance case where an overflowed d1 + d2
  /// saturates into a valid witness.
  bool (*has_witness_flat)(const uint32_t* a_pivots, const uint32_t* a_dists,
                           uint32_t a_size, const uint32_t* b_pivots,
                           const uint32_t* b_dists, uint32_t b_size,
                           VertexId beta, Distance d);

  /// Blocked SoA form: merge-join driven by the per-block pivot min/max
  /// sidecars (FlatLabelStore::View::block_min/block_max; one entry per
  /// kLabelBlockEntries-entry block). Non-overlapping blocks are skipped
  /// from the sidecars alone; overlapping blocks are compared all-pairs
  /// at full SIMD width with no scalar tail — both arenas must be
  /// readable through the padded end of the last block, with padding
  /// lanes holding 0xFFFFFFFF (see label_entry.h for why padding is
  /// inert). Bit-identical to intersect_flat on the same labels.
  Distance (*intersect_blocked)(const uint32_t* a_pivots,
                                const uint32_t* a_dists,
                                const uint32_t* a_block_min,
                                const uint32_t* a_block_max, uint32_t a_size,
                                const uint32_t* b_pivots,
                                const uint32_t* b_dists,
                                const uint32_t* b_block_min,
                                const uint32_t* b_block_max, uint32_t b_size);

  /// Blocked witness probe: has_witness_flat semantics over the blocked
  /// layout, with a block-level early exit the moment either side's
  /// current block minimum reaches the beta bound.
  bool (*has_witness_blocked)(const uint32_t* a_pivots,
                              const uint32_t* a_dists,
                              const uint32_t* a_block_min,
                              const uint32_t* a_block_max, uint32_t a_size,
                              const uint32_t* b_pivots,
                              const uint32_t* b_dists,
                              const uint32_t* b_block_min,
                              const uint32_t* b_block_max, uint32_t b_size,
                              VertexId beta, Distance d);

  /// Delta-varint compressed streams (the HLC1 label payload: per entry
  /// a pivot gap varint — first gap relative to -1 — followed by a
  /// distance varint). Merges the two streams directly, additionally
  /// folding in the distance of any a-entry whose pivot equals
  /// `direct_a` and any b-entry whose pivot equals `direct_b` (the
  /// implicit trivial pivots: callers pass direct_a = t, direct_b = s).
  /// Pass kInvalidVertex to disable a direct probe. The streams must be
  /// well-formed (CompressedIndex validates on construction/load).
  Distance (*intersect_stream)(const uint8_t* a, size_t a_len,
                               const uint8_t* b, size_t b_len,
                               VertexId direct_a, VertexId direct_b);
};

/// Kernels this binary can run on this CPU, widest last; index 0 is
/// always the scalar reference.
std::vector<const QueryKernel*> SupportedQueryKernels();

/// Looks up a supported kernel by name; nullptr when unknown or not
/// supported by the running CPU.
const QueryKernel* FindQueryKernel(std::string_view name);

/// The kernel all label queries route through. First call resolves the
/// default (HOPDB_QUERY_KERNEL override, else widest supported);
/// subsequent calls are one atomic load.
const QueryKernel& ActiveQueryKernel();

/// Forces the active kernel (tests/benchmarks). Returns false — leaving
/// the active kernel unchanged — when the name is unknown or unsupported
/// on this CPU. Takes effect for queries issued after the call; do not
/// race it against in-flight queries you need deterministic kernel
/// attribution for.
bool SetActiveQueryKernel(std::string_view name);

/// Binary search for `pivot` in a flat label view; stored distance or
/// kInfDistance when absent. O(log |label|).
Distance LookupPivotFlat(FlatLabelStore::View label, VertexId pivot);

/// QueryLabelHalves (two_hop_index.h) over flat views: intersection via
/// `kernel` plus the two implicit trivial pivots and the s == t case.
/// Routes through intersect_blocked when both views carry block
/// sidecars, intersect_flat otherwise.
Distance QueryFlatHalves(FlatLabelStore::View out_s,
                         FlatLabelStore::View in_t, VertexId s, VertexId t,
                         const QueryKernel& kernel);

}  // namespace hopdb

#endif  // HOPDB_LABELING_QUERY_KERNEL_H_
