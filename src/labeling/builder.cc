#include "labeling/builder.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "labeling/candidate_partition.h"
#include "labeling/flat_label_store.h"
#include "labeling/query_kernel.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace hopdb {

namespace {

/// A candidate label entry produced by the generation rules. `owner` is
/// the vertex whose label would receive the entry; `pivot` is always
/// ranked above the owner (pivot < owner).
struct Cand {
  VertexId owner;
  VertexId pivot;
  Distance dist;
};

bool CandLess(const Cand& a, const Cand& b) {
  if (a.owner != b.owner) return a.owner < b.owner;
  if (a.pivot != b.pivot) return a.pivot < b.pivot;
  return a.dist < b.dist;
}

/// Locates the contiguous slice of `cands` (sorted by owner) that belongs
/// to `owner`.
std::span<const Cand> OwnerSlice(const std::vector<Cand>& cands,
                                 VertexId owner) {
  auto lo = std::lower_bound(
      cands.begin(), cands.end(), owner,
      [](const Cand& c, VertexId v) { return c.owner < v; });
  auto hi = std::upper_bound(
      cands.begin(), cands.end(), owner,
      [](VertexId v, const Cand& c) { return v < c.owner; });
  // Note: no &*lo — dereferencing the end iterator is UB when the slice
  // is empty (caught by UBSan on empty candidate sets).
  return {cands.data() + (lo - cands.begin()), static_cast<size_t>(hi - lo)};
}

/// Merged sorted-by-pivot cursor over a label vector and the owner's
/// candidate slice; when both contain the same pivot (an in-place distance
/// update) the smaller distance wins. This is how this iteration's
/// candidates act as pruning witnesses (Section 4.2 keeps candidates in
/// the outer pruning block together with old labels). The flat witness
/// snapshot materializes exactly this merged view; the cursor remains as
/// the small-iteration fallback and the debug cross-check.
class PivotCursor {
 public:
  PivotCursor(std::span<const LabelEntry> label, std::span<const Cand> cands)
      : label_(label), cands_(cands) {}

  bool Next(VertexId* pivot, Distance* dist) {
    const bool has_l = li_ < label_.size();
    const bool has_c = ci_ < cands_.size();
    if (!has_l && !has_c) return false;
    if (has_l && (!has_c || label_[li_].pivot < cands_[ci_].pivot)) {
      *pivot = label_[li_].pivot;
      *dist = label_[li_].dist;
      ++li_;
      return true;
    }
    if (has_c && (!has_l || cands_[ci_].pivot < label_[li_].pivot)) {
      *pivot = cands_[ci_].pivot;
      *dist = cands_[ci_].dist;
      ++ci_;
      return true;
    }
    *pivot = label_[li_].pivot;
    *dist = std::min(label_[li_].dist, cands_[ci_].dist);
    ++li_;
    ++ci_;
    return true;
  }

 private:
  std::span<const LabelEntry> label_;
  std::span<const Cand> cands_;
  size_t li_ = 0;
  size_t ci_ = 0;
};

/// Witness scan of Section 3.3: true iff some pivot w < beta appears on
/// both cursors with d1 + d2 <= d. Both cursors yield pivots in
/// increasing order, so this is a bounded sorted-merge. The scalar
/// reference semantics of QueryKernel::has_witness_flat.
bool HasPruningWitness(PivotCursor outs_of_source, PivotCursor ins_of_dest,
                       VertexId beta, Distance d) {
  VertexId pa = kInvalidVertex, pb = kInvalidVertex;
  Distance da = kInfDistance, db = kInfDistance;
  bool va = outs_of_source.Next(&pa, &da);
  bool vb = ins_of_dest.Next(&pb, &db);
  while (va && vb && pa < beta && pb < beta) {
    if (pa == pb) {
      if (SaturatingAdd(da, db) <= d) return true;
      va = outs_of_source.Next(&pa, &da);
      vb = ins_of_dest.Next(&pb, &db);
    } else if (pa < pb) {
      va = outs_of_source.Next(&pa, &da);
    } else {
      vb = ins_of_dest.Next(&pb, &db);
    }
  }
  return false;
}

/// Candidate volume below which the flat witness snapshot costs more
/// than it saves; Prune falls back to the scalar cursor scan.
constexpr size_t kMinFlatWitnessCandidates = 2048;

/// Candidate volume below which Apply stays single-partition.
constexpr size_t kMinParallelApply = 1 << 12;

class Builder {
 public:
  Builder(const CsrGraph& g, const BuildOptions& opts)
      : g_(g),
        opts_(opts),
        directed_(g.directed()),
        threads_(opts.num_threads == 0 ? HardwareThreads()
                                       : opts.num_threads),
        deadline_(opts.time_budget_seconds) {}

  Result<BuildOutput> Run();

 private:
  void Initialize();
  Status Generate(BuildMode mode_used, std::vector<Cand>* out_c,
                  std::vector<Cand>* in_c, IterationStats* st);

  /// Periodic in-generation control check: accumulates the caller's local
  /// progress and trips the shared abort flag when the deadline or the
  /// candidate-volume cap is blown MID-generation. Without this, a bad
  /// vertex order (random order on a big scale-free graph) can spend
  /// minutes and gigabytes inside a single rule iteration before the
  /// between-phase checks ever run.
  bool GenerationTick(uint64_t locally_generated) const {
    generated_total_.fetch_add(locally_generated,
                               std::memory_order_relaxed);
    if (opts_.max_candidates_per_iteration != 0 &&
        generated_total_.load(std::memory_order_relaxed) >
            opts_.max_candidates_per_iteration) {
      generation_abort_.store(true, std::memory_order_relaxed);
    } else if (deadline_.Exceeded()) {
      generation_abort_.store(true, std::memory_order_relaxed);
    }
    return !generation_abort_.load(std::memory_order_relaxed);
  }
  void GenerateSteppingOut(std::span<const Cand> prev,
                           std::vector<Cand>* out_c) const;
  void GenerateSteppingIn(std::span<const Cand> prev,
                          std::vector<Cand>* in_c) const;
  void GenerateDoublingOut(std::span<const Cand> prev,
                           std::vector<Cand>* out_c) const;
  void GenerateDoublingIn(std::span<const Cand> prev,
                          std::vector<Cand>* in_c) const;

  /// Runs `gen` over `prev` split into one chunk per thread, concatenating
  /// the per-chunk outputs in chunk order (deterministic multiset; the
  /// dedup sort canonicalizes the order anyway). The per-chunk sinks are
  /// arena members reused across iterations, so steady-state generation
  /// reallocates nothing.
  template <typename GenFn>
  void GenerateParallel(const std::vector<Cand>& prev, GenFn gen,
                        std::vector<Cand>* sink) {
    if (threads_ <= 1 || prev.size() < 1024) {
      gen(std::span<const Cand>(prev), sink);
      return;
    }
    const size_t used = std::min<size_t>(threads_, prev.size());
    if (gen_parts_.size() < used) gen_parts_.resize(used);
    ParallelChunks(threads_, prev.size(),
                   [&](size_t begin, size_t end, uint32_t chunk) {
                     gen_parts_[chunk].clear();
                     gen(std::span<const Cand>(prev.data() + begin,
                                               end - begin),
                         &gen_parts_[chunk]);
                   });
    for (size_t c = 0; c < used; ++c) {
      sink->insert(sink->end(), gen_parts_[c].begin(), gen_parts_[c].end());
    }
  }

  /// Owner-partitioned parallel sort + per-(owner,pivot) dedup keeping
  /// min dist, then drop candidates dominated by an existing entry
  /// (d_existing <= d_cand). Bit-identical to the old global
  /// std::sort + sequential scan for every thread count.
  void DedupAndFilter(std::vector<Cand>* cands, bool out_side,
                      IterationStats* st);

  /// Section 3.3 pruning over both candidate lists.
  void Prune(std::vector<Cand>* out_c, std::vector<Cand>* in_c,
             IterationStats* st);

  /// Builds the iteration-frozen flat witness snapshots (labels merged
  /// with this iteration's deduped candidates) for the SIMD witness
  /// kernel. Only vertices that can appear as a witness-scan endpoint
  /// are materialized.
  void BuildWitnessSnapshots(const std::vector<Cand>& out_c,
                             const std::vector<Cand>& in_c);
  void BuildSideSnapshot(FlatLabelArena* arena,
                         const std::vector<LabelVector>& labels,
                         const std::vector<Cand>& cands,
                         const std::vector<size_t>& cand_begin,
                         const std::vector<uint8_t>& touched,
                         bool with_cands);

  /// cand_begin[v] = first index of `cands` (sorted by owner) whose
  /// owner is >= v; cand_begin[n] = cands.size().
  void ComputeCandBegin(const std::vector<Cand>& cands,
                        std::vector<size_t>* cand_begin) const;

  /// Merges survivors into labels + inverted lists; returns survivor
  /// count. Label vectors merge in parallel over disjoint owner ranges;
  /// inverted-list appends replay sequentially in candidate order, so
  /// the result is bit-identical to the sequential merge.
  uint64_t Apply(const std::vector<Cand>& cands, bool out_side,
                 IterationStats* st);

  std::vector<LabelVector>& Side(bool out_side) {
    return out_side || !directed_ ? out_ : in_;
  }

  const CsrGraph& g_;
  BuildOptions opts_;
  bool directed_;
  uint32_t threads_;
  Deadline deadline_;

  std::vector<LabelVector> out_;
  std::vector<LabelVector> in_;
  /// inv_out_[p]: owners w with an entry (p, ·) in Lout(w). Drives Rule 2.
  std::vector<std::vector<VertexId>> inv_out_;
  /// inv_in_[p]: owners w with an entry (p, ·) in Lin(w). Drives Rule 5.
  std::vector<std::vector<VertexId>> inv_in_;

  /// Entries that survived the previous iteration, sorted by owner.
  std::vector<Cand> prev_out_;
  std::vector<Cand> prev_in_;

  /// Mid-generation abort machinery (see GenerationTick).
  mutable std::atomic<uint64_t> generated_total_{0};
  mutable std::atomic<bool> generation_abort_{false};

  // -------------------------------------------------------------------
  // Iteration-scoped arenas, all reused across iterations so the
  // steady-state loop performs no per-iteration allocation beyond label
  // growth itself (the realloc/touch churn dominated large GLP builds).
  // -------------------------------------------------------------------
  /// Per-chunk generation sinks (GenerateParallel).
  std::vector<std::vector<Cand>> gen_parts_;
  /// Ping-pong buffer + partition plan for the owner-partitioned sort.
  std::vector<Cand> sort_scratch_;
  OwnerPartitionPlan sort_plan_;
  /// Per-partition dedup counters.
  struct DedupPartStats {
    uint64_t deduped = 0;
    uint64_t dropped = 0;
    size_t kept = 0;
  };
  std::vector<DedupPartStats> dedup_parts_;
  /// Pruning keep/kill marks.
  std::vector<uint8_t> keep_;
  /// Witness snapshot state.
  FlatLabelArena wit_out_arena_;
  FlatLabelArena wit_in_arena_;
  std::vector<uint8_t> touched_out_;
  std::vector<uint8_t> touched_in_;
  std::vector<uint64_t> slot_sizes_;
  std::vector<size_t> cand_begin_out_;
  std::vector<size_t> cand_begin_in_;
  /// Legacy witness copies for the small-iteration scalar path.
  std::vector<Cand> wit_out_small_;
  std::vector<Cand> wit_in_small_;
  /// Apply-phase partition state.
  std::vector<size_t> apply_bounds_;
  std::vector<std::vector<std::pair<VertexId, VertexId>>> new_inv_parts_;
  std::vector<uint64_t> apply_updates_;

  BuildStats stats_;
};

void Builder::Initialize() {
  const VertexId n = g_.num_vertices();
  out_.assign(n, {});
  inv_out_.assign(n, {});
  if (directed_) {
    in_.assign(n, {});
    inv_in_.assign(n, {});
  }

  // One entry per edge: the higher-ranked endpoint becomes the pivot.
  // Directed arc u->v: v < u places (v, w) in Lout(u); u < v places
  // (u, w) in Lin(v). Undirected edge {u, v} with u < v: (u, w) in L(v).
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : g_.OutArcs(u)) {
      const VertexId v = a.to;
      if (directed_) {
        if (v < u) {
          out_[u].push_back({v, a.weight});
          prev_out_.push_back({u, v, a.weight});
        } else {
          in_[v].push_back({u, a.weight});
          prev_in_.push_back({v, u, a.weight});
        }
      } else {
        if (u < v) {
          out_[v].push_back({u, a.weight});
          prev_out_.push_back({v, u, a.weight});
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(out_[v].begin(), out_[v].end(),
              [](const LabelEntry& a, const LabelEntry& b) {
                return a.pivot < b.pivot;
              });
    for (const LabelEntry& e : out_[v]) inv_out_[e.pivot].push_back(v);
    if (directed_) {
      std::sort(in_[v].begin(), in_[v].end(),
                [](const LabelEntry& a, const LabelEntry& b) {
                  return a.pivot < b.pivot;
                });
      for (const LabelEntry& e : in_[v]) inv_in_[e.pivot].push_back(v);
    }
  }
  std::sort(prev_out_.begin(), prev_out_.end(), CandLess);
  std::sort(prev_in_.begin(), prev_in_.end(), CandLess);
  stats_.initial_entries = prev_out_.size() + prev_in_.size();
}

/// Candidates emitted between GenerationTick control checks.
constexpr uint64_t kTickEvery = 1 << 16;

void Builder::GenerateSteppingOut(std::span<const Cand> prev,
                                  std::vector<Cand>* out_c) const {
  // Rules 1+2 with a unit-hop left factor: a prev out-entry (u -> v, d)
  // extends backwards over every in-arc (w -> u) whose w is ranked below
  // the pivot (w > v). Undirected graphs use the full neighborhood.
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    auto arcs = directed_ ? g_.InArcs(c.owner) : g_.OutArcs(c.owner);
    for (const Arc& a : arcs) {
      if (a.to <= c.pivot) continue;  // w must rank below the pivot
      out_c->push_back({a.to, c.pivot, SaturatingAdd(c.dist, a.weight)});
    }
    since_tick += arcs.size();
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateSteppingIn(std::span<const Cand> prev,
                                 std::vector<Cand>* in_c) const {
  // Rules 4+5 with a unit-hop right factor: a prev in-entry
  // (owner v, pivot u, d) extends forward over out-arcs (v -> w), w > u.
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    for (const Arc& a : g_.OutArcs(c.owner)) {
      if (a.to <= c.pivot) continue;
      in_c->push_back({a.to, c.pivot, SaturatingAdd(c.dist, a.weight)});
    }
    since_tick += g_.OutArcs(c.owner).size();
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateDoublingOut(std::span<const Cand> prev,
                                  std::vector<Cand>* out_c) const {
  const auto& ins = directed_ ? in_ : out_;
  const auto& inv = inv_out_;
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    const uint64_t before = out_c->size();
    // Rule 1: join with in-labels of the owner whose pivot u1 satisfies
    // v < u1 (< u automatically): suffix scan of the sorted label.
    const LabelVector& lin = ins[c.owner];
    for (size_t i = UpperBoundPivot(lin, c.pivot); i < lin.size(); ++i) {
      out_c->push_back(
          {lin[i].pivot, c.pivot, SaturatingAdd(lin[i].dist, c.dist)});
    }
    // Rule 2: join with every out-entry whose pivot is the owner:
    // owners u2 > u found via the inverted list.
    for (VertexId u2 : inv[c.owner]) {
      Distance d2 = LookupPivot(out_[u2], c.owner);
      HOPDB_DCHECK_NE(d2, kInfDistance);
      out_c->push_back({u2, c.pivot, SaturatingAdd(d2, c.dist)});
    }
    since_tick += out_c->size() - before;
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateDoublingIn(std::span<const Cand> prev,
                                 std::vector<Cand>* in_c) const {
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    const uint64_t before = in_c->size();
    // Rule 4: join with out-labels of the owner (the path's destination)
    // whose pivot u4 satisfies u < u4 (< v automatically).
    const LabelVector& lout = out_[c.owner];
    for (size_t i = UpperBoundPivot(lout, c.pivot); i < lout.size(); ++i) {
      in_c->push_back(
          {lout[i].pivot, c.pivot, SaturatingAdd(c.dist, lout[i].dist)});
    }
    // Rule 5: join with every in-entry whose pivot is the owner.
    for (VertexId u5 : inv_in_[c.owner]) {
      Distance d5 = LookupPivot(in_[u5], c.owner);
      HOPDB_DCHECK_NE(d5, kInfDistance);
      in_c->push_back({u5, c.pivot, SaturatingAdd(c.dist, d5)});
    }
    since_tick += in_c->size() - before;
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

Status Builder::Generate(BuildMode mode_used, std::vector<Cand>* out_c,
                         std::vector<Cand>* in_c, IterationStats* st) {
  generated_total_.store(0, std::memory_order_relaxed);
  generation_abort_.store(false, std::memory_order_relaxed);
  if (mode_used == BuildMode::kHopStepping) {
    GenerateParallel(
        prev_out_,
        [this](std::span<const Cand> p, std::vector<Cand>* s) {
          GenerateSteppingOut(p, s);
        },
        out_c);
    if (directed_) {
      GenerateParallel(
          prev_in_,
          [this](std::span<const Cand> p, std::vector<Cand>* s) {
            GenerateSteppingIn(p, s);
          },
          in_c);
    }
  } else {
    GenerateParallel(
        prev_out_,
        [this](std::span<const Cand> p, std::vector<Cand>* s) {
          GenerateDoublingOut(p, s);
        },
        out_c);
    if (directed_) {
      GenerateParallel(
          prev_in_,
          [this](std::span<const Cand> p, std::vector<Cand>* s) {
            GenerateDoublingIn(p, s);
          },
          in_c);
    }
  }
  st->raw_candidates = out_c->size() + in_c->size();
  stats_.peak_candidates = std::max(stats_.peak_candidates,
                                    st->raw_candidates);
  // An in-generation abort leaves the candidate lists truncated; report
  // whichever limit tripped. (The post-hoc checks below catch volumes
  // that landed between ticks.)
  if (opts_.max_candidates_per_iteration != 0 &&
      (st->raw_candidates > opts_.max_candidates_per_iteration ||
       generated_total_.load(std::memory_order_relaxed) >
           opts_.max_candidates_per_iteration)) {
    return Status::ResourceExhausted(
        "candidate volume " + std::to_string(st->raw_candidates) +
        " exceeds cap at iteration " + std::to_string(st->iteration));
  }
  if (generation_abort_.load(std::memory_order_relaxed) ||
      deadline_.Exceeded()) {
    return Status::DeadlineExceeded("label generation over time budget");
  }
  return Status::OK();
}

void Builder::DedupAndFilter(std::vector<Cand>* cands, bool out_side,
                             IterationStats* st) {
  // Owner-partitioned parallel sort; bounds are owner-aligned, so the
  // per-partition scans below see every (owner, pivot) group whole.
  OwnerPartitionedSort(
      cands, g_.num_vertices(), threads_,
      [](const Cand& c) { return c.owner; }, CandLess, &sort_scratch_,
      &sort_plan_);
  const std::vector<size_t>& bounds = sort_plan_.bounds;
  const size_t parts = bounds.size() - 1;
  const auto& side = Side(out_side);

  dedup_parts_.assign(parts, {});
  ParallelChunks(
      static_cast<uint32_t>(parts), parts,
      [&](size_t pb, size_t pe, uint32_t) {
        for (size_t p = pb; p < pe; ++p) {
          DedupPartStats& ps = dedup_parts_[p];
          size_t w = bounds[p];
          bool have_last = false;
          VertexId last_owner = 0, last_pivot = 0;
          for (size_t i = bounds[p]; i < bounds[p + 1]; ++i) {
            const Cand& c = (*cands)[i];
            if (have_last && last_owner == c.owner && last_pivot == c.pivot) {
              continue;  // duplicate (owner, pivot); the sort kept min dist
            }
            have_last = true;
            last_owner = c.owner;
            last_pivot = c.pivot;
            ps.deduped++;
            Distance existing = LookupPivot(side[c.owner], c.pivot);
            if (existing <= c.dist) {
              ps.dropped++;
              continue;  // dominated by an existing entry
            }
            (*cands)[w++] = c;
          }
          ps.kept = w - bounds[p];
        }
      });

  // Close the inter-partition gaps in partition order — the surviving
  // sequence equals the sequential scan's output exactly.
  size_t w = dedup_parts_[0].kept;
  st->deduped_candidates += dedup_parts_[0].deduped;
  st->existing_dropped += dedup_parts_[0].dropped;
  for (size_t p = 1; p < parts; ++p) {
    std::move(cands->begin() + static_cast<ptrdiff_t>(bounds[p]),
              cands->begin() +
                  static_cast<ptrdiff_t>(bounds[p] + dedup_parts_[p].kept),
              cands->begin() + static_cast<ptrdiff_t>(w));
    w += dedup_parts_[p].kept;
    st->deduped_candidates += dedup_parts_[p].deduped;
    st->existing_dropped += dedup_parts_[p].dropped;
  }
  cands->resize(w);
}

void Builder::ComputeCandBegin(const std::vector<Cand>& cands,
                               std::vector<size_t>* cand_begin) const {
  const VertexId n = g_.num_vertices();
  cand_begin->resize(static_cast<size_t>(n) + 1);
  size_t i = 0;
  for (VertexId v = 0; v < n; ++v) {
    while (i < cands.size() && cands[i].owner < v) ++i;
    (*cand_begin)[v] = i;
  }
  (*cand_begin)[n] = cands.size();
}

void Builder::BuildSideSnapshot(FlatLabelArena* arena,
                                const std::vector<LabelVector>& labels,
                                const std::vector<Cand>& cands,
                                const std::vector<size_t>& cand_begin,
                                const std::vector<uint8_t>& touched,
                                bool with_cands) {
  const size_t n = labels.size();
  slot_sizes_.assign(n, 0);
  // Pass 1: merged entry counts for the vertices the witness scans can
  // touch (untouched slots stay empty — they are never viewed).
  ParallelChunks(threads_, n, [&](size_t b, size_t e, uint32_t) {
    for (size_t v = b; v < e; ++v) {
      if (!touched[v]) continue;
      const LabelVector& lab = labels[v];
      if (!with_cands) {
        slot_sizes_[v] = lab.size();
        continue;
      }
      size_t li = 0, ci = cand_begin[v];
      const size_t ce = cand_begin[v + 1];
      uint64_t count = 0;
      while (li < lab.size() && ci < ce) {
        const VertexId lp = lab[li].pivot;
        const VertexId cp = cands[ci].pivot;
        if (lp == cp) {
          ++li;
          ++ci;
        } else if (lp < cp) {
          ++li;
        } else {
          ++ci;
        }
        ++count;
      }
      slot_sizes_[v] = count + (lab.size() - li) + (ce - ci);
    }
  });
  arena->Reset(n, slot_sizes_.data());
  // Pass 2: merge-fill (same min-dist collapse PivotCursor performs).
  ParallelChunks(threads_, n, [&](size_t b, size_t e, uint32_t) {
    for (size_t v = b; v < e; ++v) {
      if (!touched[v]) continue;
      uint32_t* pivots = arena->slot_pivots(v);
      uint32_t* dists = arena->slot_dists(v);
      const LabelVector& lab = labels[v];
      size_t w = 0;
      size_t li = 0;
      size_t ci = with_cands ? cand_begin[v] : 0;
      const size_t ce = with_cands ? cand_begin[v + 1] : 0;
      while (li < lab.size() && ci < ce) {
        const LabelEntry& le = lab[li];
        const Cand& c = cands[ci];
        if (le.pivot == c.pivot) {
          pivots[w] = le.pivot;
          dists[w] = std::min(le.dist, c.dist);
          ++li;
          ++ci;
        } else if (le.pivot < c.pivot) {
          pivots[w] = le.pivot;
          dists[w] = le.dist;
          ++li;
        } else {
          pivots[w] = c.pivot;
          dists[w] = c.dist;
          ++ci;
        }
        ++w;
      }
      for (; li < lab.size(); ++li, ++w) {
        pivots[w] = lab[li].pivot;
        dists[w] = lab[li].dist;
      }
      for (; ci < ce; ++ci, ++w) {
        pivots[w] = cands[ci].pivot;
        dists[w] = cands[ci].dist;
      }
      HOPDB_DCHECK_EQ(w, arena->slot_size(v));
    }
  });
}

void Builder::BuildWitnessSnapshots(const std::vector<Cand>& out_c,
                                    const std::vector<Cand>& in_c) {
  const VertexId n = g_.num_vertices();
  const bool with_cands = opts_.prune_with_candidates;

  ComputeCandBegin(out_c, &cand_begin_out_);
  if (directed_) ComputeCandBegin(in_c, &cand_begin_in_);

  // A vertex needs an out-snapshot iff it can be a witness-scan source
  // (owner of an out-candidate, pivot of an in-candidate) and an
  // in-snapshot iff it can be a destination (pivot of an out-candidate,
  // owner of an in-candidate). Undirected scans use the out-snapshot for
  // both endpoints.
  touched_out_.assign(n, 0);
  std::vector<uint8_t>& touched_in = directed_ ? touched_in_ : touched_out_;
  if (directed_) touched_in_.assign(n, 0);
  for (const Cand& c : out_c) {
    touched_out_[c.owner] = 1;
    touched_in[c.pivot] = 1;
  }
  for (const Cand& c : in_c) {
    touched_out_[c.pivot] = 1;
    touched_in[c.owner] = 1;
  }

  BuildSideSnapshot(&wit_out_arena_, out_, out_c, cand_begin_out_,
                    touched_out_, with_cands);
  if (directed_) {
    BuildSideSnapshot(&wit_in_arena_, in_, in_c, cand_begin_in_, touched_in_,
                      with_cands);
  }
}

void Builder::Prune(std::vector<Cand>* out_c, std::vector<Cand>* in_c,
                    IterationStats* st) {
  if (!opts_.prune) return;
  const auto& ins = directed_ ? in_ : out_;

  // A candidate covering the directed path source ⇝ dest with pivot
  // beta = min(owner, pivot) dies iff a witness pivot w < beta exists in
  // Lout(source) ∩ Lin(dest) with d1 + d2 <= d. For out-entries the
  // source is the owner; for in-entries the source is the pivot. The
  // witness set is frozen at the start of the phase: old labels merged
  // with this iteration's deduped candidates (a pruned candidate may
  // still witness the pruning of another — safe, since every entry
  // covers a real path and canonical entries are never pruned; Thm. 3).
  //
  // Decisions are independent, so they are marked in parallel and
  // compacted sequentially — identical output for any thread count.
  const size_t total = out_c->size() + in_c->size();
  const bool use_flat = total >= kMinFlatWitnessCandidates;

  // Shared mark-in-parallel + compact-sequentially scaffold; the two
  // witness implementations below differ only in this callable.
  auto prune_list = [&](std::vector<Cand>* cands, bool is_out,
                        auto&& has_witness) {
    keep_.assign(cands->size(), 0);
    ParallelChunks(threads_, cands->size(),
                   [&](size_t begin, size_t end, uint32_t) {
                     for (size_t i = begin; i < end; ++i) {
                       keep_[i] = !has_witness((*cands)[i], is_out);
                     }
                   });
    size_t w = 0;
    for (size_t i = 0; i < cands->size(); ++i) {
      if (keep_[i]) {
        (*cands)[w++] = (*cands)[i];
      } else {
        st->pruned++;
      }
    }
    cands->resize(w);
  };

  if (use_flat) {
    // Hot path: frozen flat SoA snapshots + the bounded early-exit SIMD
    // merge-join of the active query kernel.
    BuildWitnessSnapshots(*out_c, *in_c);
    const QueryKernel& kernel = ActiveQueryKernel();
    const FlatLabelArena& dest_arena =
        directed_ ? wit_in_arena_ : wit_out_arena_;
    auto flat_witness = [&](const Cand& c, bool is_out) {
      const VertexId source = is_out ? c.owner : c.pivot;
      const VertexId dest = is_out ? c.pivot : c.owner;
      const FlatLabelStore::View sv = wit_out_arena_.View(source);
      const FlatLabelStore::View dv = dest_arena.View(dest);
      return kernel.has_witness_flat(sv.pivots, sv.dists, sv.size, dv.pivots,
                                     dv.dists, dv.size, c.pivot, c.dist);
    };
    prune_list(out_c, /*is_out=*/true, flat_witness);
    if (directed_) prune_list(in_c, /*is_out=*/false, flat_witness);
    return;
  }

  // Small-iteration fallback: the scalar cursor merge over label vectors
  // and candidate slices (also the reference the SIMD path is
  // cross-checked against in tests).
  wit_out_small_.clear();
  wit_in_small_.clear();
  if (opts_.prune_with_candidates) {
    wit_out_small_ = *out_c;
    wit_in_small_ = directed_ ? *in_c : *out_c;
  }
  auto cursor_witness = [&](const Cand& c, bool is_out) {
    const VertexId source = is_out ? c.owner : c.pivot;
    const VertexId dest = is_out ? c.pivot : c.owner;
    PivotCursor outs(out_[source], OwnerSlice(wit_out_small_, source));
    PivotCursor inss(ins[dest], OwnerSlice(wit_in_small_, dest));
    return HasPruningWitness(outs, inss, c.pivot, c.dist);
  };
  prune_list(out_c, /*is_out=*/true, cursor_witness);
  if (directed_) prune_list(in_c, /*is_out=*/false, cursor_witness);
}

uint64_t Builder::Apply(const std::vector<Cand>& cands, bool out_side,
                        IterationStats* st) {
  auto& side = Side(out_side);
  auto& inv = out_side || !directed_ ? inv_out_ : inv_in_;
  if (cands.empty()) return 0;
  const size_t m = cands.size();

  // Owner-aligned partition bounds: every owner's contiguous candidate
  // run lands in exactly one partition, so partitions touch disjoint
  // label vectors and merge independently.
  apply_bounds_.clear();
  apply_bounds_.push_back(0);
  if (threads_ > 1 && m >= kMinParallelApply) {
    for (uint32_t k = 1; k < threads_; ++k) {
      size_t idx = std::max<size_t>(1, m * k / threads_);
      while (idx < m && cands[idx].owner == cands[idx - 1].owner) ++idx;
      if (idx > apply_bounds_.back() && idx < m) apply_bounds_.push_back(idx);
    }
  }
  apply_bounds_.push_back(m);
  const size_t parts = apply_bounds_.size() - 1;
  if (new_inv_parts_.size() < parts) new_inv_parts_.resize(parts);
  apply_updates_.assign(parts, 0);

  ParallelChunks(
      static_cast<uint32_t>(parts), parts,
      [&](size_t pb, size_t pe, uint32_t) {
        for (size_t p = pb; p < pe; ++p) {
          auto& new_inv = new_inv_parts_[p];
          new_inv.clear();
          uint64_t updates = 0;
          size_t i = apply_bounds_[p];
          const size_t part_end = apply_bounds_[p + 1];
          while (i < part_end) {
            const VertexId owner = cands[i].owner;
            size_t j = i;
            while (j < part_end && cands[j].owner == owner) ++j;
            LabelVector& lab = side[owner];
            const size_t old_size = lab.size();
            for (size_t k = i; k < j; ++k) {
              const Cand& c = cands[k];
              // In-place update when the pivot already exists (possible
              // for weighted graphs and Hop-Doubling's overshooting
              // paths).
              size_t lo = 0, hi = old_size;
              while (lo < hi) {
                size_t mid = (lo + hi) / 2;
                if (lab[mid].pivot < c.pivot) {
                  lo = mid + 1;
                } else {
                  hi = mid;
                }
              }
              if (lo < old_size && lab[lo].pivot == c.pivot) {
                HOPDB_DCHECK_GT(lab[lo].dist, c.dist);
                lab[lo].dist = c.dist;
                ++updates;
              } else {
                lab.push_back({c.pivot, c.dist});
                new_inv.emplace_back(c.pivot, owner);
              }
            }
            std::inplace_merge(
                lab.begin(), lab.begin() + static_cast<ptrdiff_t>(old_size),
                lab.end(), [](const LabelEntry& a, const LabelEntry& b) {
                  return a.pivot < b.pivot;
                });
            i = j;
          }
          apply_updates_[p] = updates;
        }
      });

  // Inverted lists are keyed by pivot — shared across owners — so their
  // appends replay sequentially in candidate order: the lists end up
  // byte-identical to the sequential merge for every thread count.
  for (size_t p = 0; p < parts; ++p) {
    for (const auto& [pivot, owner] : new_inv_parts_[p]) {
      inv[pivot].push_back(owner);
    }
    st->updates += apply_updates_[p];
  }
  return m;
}

Result<BuildOutput> Builder::Run() {
  Stopwatch total_watch;
  {
    Stopwatch init_watch;
    Initialize();
    stats_.init_seconds = init_watch.Seconds();
  }

  std::vector<Cand> out_c, in_c;
  for (uint32_t iter = 1; iter <= opts_.max_iterations; ++iter) {
    if (prev_out_.empty() && prev_in_.empty()) break;
    if (deadline_.Exceeded()) {
      return Status::DeadlineExceeded("label construction over time budget");
    }

    Stopwatch iter_watch;
    IterationStats st;
    st.iteration = iter;
    switch (opts_.mode) {
      case BuildMode::kHopStepping:
        st.mode_used = BuildMode::kHopStepping;
        break;
      case BuildMode::kHopDoubling:
        st.mode_used = BuildMode::kHopDoubling;
        break;
      case BuildMode::kHybrid:
        st.mode_used = iter <= opts_.hybrid_switch_iteration
                           ? BuildMode::kHopStepping
                           : BuildMode::kHopDoubling;
        break;
    }

    out_c.clear();
    in_c.clear();
    Stopwatch phase_watch;
    HOPDB_RETURN_NOT_OK(Generate(st.mode_used, &out_c, &in_c, &st));
    st.generate_seconds = phase_watch.Seconds();

    phase_watch.Restart();
    DedupAndFilter(&out_c, /*out_side=*/true, &st);
    if (directed_) DedupAndFilter(&in_c, /*out_side=*/false, &st);
    st.dedup_seconds = phase_watch.Seconds();

    phase_watch.Restart();
    Prune(&out_c, &in_c, &st);
    st.prune_seconds = phase_watch.Seconds();

    phase_watch.Restart();
    st.survivors = Apply(out_c, /*out_side=*/true, &st);
    if (directed_) st.survivors += Apply(in_c, /*out_side=*/false, &st);
    st.apply_seconds = phase_watch.Seconds();

    prev_out_.swap(out_c);
    prev_in_.swap(in_c);

    uint64_t total_entries = 0;
    for (const auto& l : out_) total_entries += l.size();
    for (const auto& l : in_) total_entries += l.size();
    st.total_entries_after = total_entries;
    st.seconds = iter_watch.Seconds();
    stats_.iterations.push_back(st);
    stats_.num_rule_iterations = iter;

    if (st.survivors == 0) break;
  }

  stats_.total_seconds = total_watch.Seconds();
  BuildOutput output{
      TwoHopIndex(std::move(out_), std::move(in_), directed_),
      std::move(stats_)};
  return output;
}

}  // namespace

const char* BuildModeName(BuildMode mode) {
  switch (mode) {
    case BuildMode::kHopStepping:
      return "Step";
    case BuildMode::kHopDoubling:
      return "Double";
    case BuildMode::kHybrid:
      return "Hybrid";
  }
  return "?";
}

Result<BuildOutput> BuildHopLabeling(const CsrGraph& ranked_graph,
                                     const BuildOptions& options) {
  if (options.mode == BuildMode::kHybrid &&
      options.hybrid_switch_iteration == 0) {
    return Status::InvalidArgument(
        "hybrid mode needs hybrid_switch_iteration >= 1");
  }
  Builder builder(ranked_graph, options);
  return builder.Run();
}

}  // namespace hopdb
