#include "labeling/builder.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace hopdb {

namespace {

/// A candidate label entry produced by the generation rules. `owner` is
/// the vertex whose label would receive the entry; `pivot` is always
/// ranked above the owner (pivot < owner).
struct Cand {
  VertexId owner;
  VertexId pivot;
  Distance dist;
};

bool CandLess(const Cand& a, const Cand& b) {
  if (a.owner != b.owner) return a.owner < b.owner;
  if (a.pivot != b.pivot) return a.pivot < b.pivot;
  return a.dist < b.dist;
}

/// Locates the contiguous slice of `cands` (sorted by owner) that belongs
/// to `owner`.
std::span<const Cand> OwnerSlice(const std::vector<Cand>& cands,
                                 VertexId owner) {
  auto lo = std::lower_bound(
      cands.begin(), cands.end(), owner,
      [](const Cand& c, VertexId v) { return c.owner < v; });
  auto hi = std::upper_bound(
      cands.begin(), cands.end(), owner,
      [](VertexId v, const Cand& c) { return v < c.owner; });
  // Note: no &*lo — dereferencing the end iterator is UB when the slice
  // is empty (caught by UBSan on empty candidate sets).
  return {cands.data() + (lo - cands.begin()), static_cast<size_t>(hi - lo)};
}

/// Merged sorted-by-pivot cursor over a label vector and the owner's
/// candidate slice; when both contain the same pivot (an in-place distance
/// update) the smaller distance wins. This is how this iteration's
/// candidates act as pruning witnesses (Section 4.2 keeps candidates in
/// the outer pruning block together with old labels).
class PivotCursor {
 public:
  PivotCursor(std::span<const LabelEntry> label, std::span<const Cand> cands)
      : label_(label), cands_(cands) {}

  bool Next(VertexId* pivot, Distance* dist) {
    const bool has_l = li_ < label_.size();
    const bool has_c = ci_ < cands_.size();
    if (!has_l && !has_c) return false;
    if (has_l && (!has_c || label_[li_].pivot < cands_[ci_].pivot)) {
      *pivot = label_[li_].pivot;
      *dist = label_[li_].dist;
      ++li_;
      return true;
    }
    if (has_c && (!has_l || cands_[ci_].pivot < label_[li_].pivot)) {
      *pivot = cands_[ci_].pivot;
      *dist = cands_[ci_].dist;
      ++ci_;
      return true;
    }
    *pivot = label_[li_].pivot;
    *dist = std::min(label_[li_].dist, cands_[ci_].dist);
    ++li_;
    ++ci_;
    return true;
  }

 private:
  std::span<const LabelEntry> label_;
  std::span<const Cand> cands_;
  size_t li_ = 0;
  size_t ci_ = 0;
};

/// Witness scan of Section 3.3: true iff some pivot w < beta appears on
/// both cursors with d1 + d2 <= d. Both cursors yield pivots in
/// increasing order, so this is a bounded sorted-merge.
bool HasPruningWitness(PivotCursor outs_of_source, PivotCursor ins_of_dest,
                       VertexId beta, Distance d) {
  VertexId pa = kInvalidVertex, pb = kInvalidVertex;
  Distance da = kInfDistance, db = kInfDistance;
  bool va = outs_of_source.Next(&pa, &da);
  bool vb = ins_of_dest.Next(&pb, &db);
  while (va && vb && pa < beta && pb < beta) {
    if (pa == pb) {
      if (SaturatingAdd(da, db) <= d) return true;
      va = outs_of_source.Next(&pa, &da);
      vb = ins_of_dest.Next(&pb, &db);
    } else if (pa < pb) {
      va = outs_of_source.Next(&pa, &da);
    } else {
      vb = ins_of_dest.Next(&pb, &db);
    }
  }
  return false;
}

class Builder {
 public:
  Builder(const CsrGraph& g, const BuildOptions& opts)
      : g_(g),
        opts_(opts),
        directed_(g.directed()),
        threads_(opts.num_threads == 0 ? HardwareThreads()
                                       : opts.num_threads),
        deadline_(opts.time_budget_seconds) {}

  Result<BuildOutput> Run();

 private:
  void Initialize();
  Status Generate(BuildMode mode_used, std::vector<Cand>* out_c,
                  std::vector<Cand>* in_c, IterationStats* st);

  /// Periodic in-generation control check: accumulates the caller's local
  /// progress and trips the shared abort flag when the deadline or the
  /// candidate-volume cap is blown MID-generation. Without this, a bad
  /// vertex order (random order on a big scale-free graph) can spend
  /// minutes and gigabytes inside a single rule iteration before the
  /// between-phase checks ever run.
  bool GenerationTick(uint64_t locally_generated) const {
    generated_total_.fetch_add(locally_generated,
                               std::memory_order_relaxed);
    if (opts_.max_candidates_per_iteration != 0 &&
        generated_total_.load(std::memory_order_relaxed) >
            opts_.max_candidates_per_iteration) {
      generation_abort_.store(true, std::memory_order_relaxed);
    } else if (deadline_.Exceeded()) {
      generation_abort_.store(true, std::memory_order_relaxed);
    }
    return !generation_abort_.load(std::memory_order_relaxed);
  }
  void GenerateSteppingOut(std::span<const Cand> prev,
                           std::vector<Cand>* out_c) const;
  void GenerateSteppingIn(std::span<const Cand> prev,
                          std::vector<Cand>* in_c) const;
  void GenerateDoublingOut(std::span<const Cand> prev,
                           std::vector<Cand>* out_c) const;
  void GenerateDoublingIn(std::span<const Cand> prev,
                          std::vector<Cand>* in_c) const;

  /// Runs `gen` over `prev` split into one chunk per thread, concatenating
  /// the per-chunk outputs in chunk order (deterministic multiset; the
  /// dedup sort canonicalizes the order anyway).
  template <typename GenFn>
  void GenerateParallel(const std::vector<Cand>& prev, GenFn gen,
                        std::vector<Cand>* sink) const {
    if (threads_ <= 1 || prev.size() < 1024) {
      gen(std::span<const Cand>(prev), sink);
      return;
    }
    std::vector<std::vector<Cand>> parts(threads_);
    ParallelChunks(threads_, prev.size(),
                   [&](size_t begin, size_t end, uint32_t chunk) {
                     gen(std::span<const Cand>(prev.data() + begin,
                                               end - begin),
                         &parts[chunk]);
                   });
    for (const auto& part : parts) {
      sink->insert(sink->end(), part.begin(), part.end());
    }
  }

  /// Sort + per-(owner,pivot) dedup keeping min dist, then drop candidates
  /// dominated by an existing entry (d_existing <= d_cand).
  void DedupAndFilter(std::vector<Cand>* cands, bool out_side,
                      IterationStats* st);

  /// Section 3.3 pruning over both candidate lists.
  void Prune(std::vector<Cand>* out_c, std::vector<Cand>* in_c,
             IterationStats* st);

  /// Merges survivors into labels + inverted lists; returns survivor count.
  uint64_t Apply(const std::vector<Cand>& cands, bool out_side,
                 IterationStats* st);

  std::vector<LabelVector>& Side(bool out_side) {
    return out_side || !directed_ ? out_ : in_;
  }

  const CsrGraph& g_;
  BuildOptions opts_;
  bool directed_;
  uint32_t threads_;
  Deadline deadline_;

  std::vector<LabelVector> out_;
  std::vector<LabelVector> in_;
  /// inv_out_[p]: owners w with an entry (p, ·) in Lout(w). Drives Rule 2.
  std::vector<std::vector<VertexId>> inv_out_;
  /// inv_in_[p]: owners w with an entry (p, ·) in Lin(w). Drives Rule 5.
  std::vector<std::vector<VertexId>> inv_in_;

  /// Entries that survived the previous iteration, sorted by owner.
  std::vector<Cand> prev_out_;
  std::vector<Cand> prev_in_;

  /// Mid-generation abort machinery (see GenerationTick).
  mutable std::atomic<uint64_t> generated_total_{0};
  mutable std::atomic<bool> generation_abort_{false};

  BuildStats stats_;
};

void Builder::Initialize() {
  const VertexId n = g_.num_vertices();
  out_.assign(n, {});
  inv_out_.assign(n, {});
  if (directed_) {
    in_.assign(n, {});
    inv_in_.assign(n, {});
  }

  // One entry per edge: the higher-ranked endpoint becomes the pivot.
  // Directed arc u->v: v < u places (v, w) in Lout(u); u < v places
  // (u, w) in Lin(v). Undirected edge {u, v} with u < v: (u, w) in L(v).
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& a : g_.OutArcs(u)) {
      const VertexId v = a.to;
      if (directed_) {
        if (v < u) {
          out_[u].push_back({v, a.weight});
          prev_out_.push_back({u, v, a.weight});
        } else {
          in_[v].push_back({u, a.weight});
          prev_in_.push_back({v, u, a.weight});
        }
      } else {
        if (u < v) {
          out_[v].push_back({u, a.weight});
          prev_out_.push_back({v, u, a.weight});
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(out_[v].begin(), out_[v].end(),
              [](const LabelEntry& a, const LabelEntry& b) {
                return a.pivot < b.pivot;
              });
    for (const LabelEntry& e : out_[v]) inv_out_[e.pivot].push_back(v);
    if (directed_) {
      std::sort(in_[v].begin(), in_[v].end(),
                [](const LabelEntry& a, const LabelEntry& b) {
                  return a.pivot < b.pivot;
                });
      for (const LabelEntry& e : in_[v]) inv_in_[e.pivot].push_back(v);
    }
  }
  std::sort(prev_out_.begin(), prev_out_.end(), CandLess);
  std::sort(prev_in_.begin(), prev_in_.end(), CandLess);
  stats_.initial_entries = prev_out_.size() + prev_in_.size();
}

/// Candidates emitted between GenerationTick control checks.
constexpr uint64_t kTickEvery = 1 << 16;

void Builder::GenerateSteppingOut(std::span<const Cand> prev,
                                  std::vector<Cand>* out_c) const {
  // Rules 1+2 with a unit-hop left factor: a prev out-entry (u -> v, d)
  // extends backwards over every in-arc (w -> u) whose w is ranked below
  // the pivot (w > v). Undirected graphs use the full neighborhood.
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    auto arcs = directed_ ? g_.InArcs(c.owner) : g_.OutArcs(c.owner);
    for (const Arc& a : arcs) {
      if (a.to <= c.pivot) continue;  // w must rank below the pivot
      out_c->push_back({a.to, c.pivot, SaturatingAdd(c.dist, a.weight)});
    }
    since_tick += arcs.size();
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateSteppingIn(std::span<const Cand> prev,
                                 std::vector<Cand>* in_c) const {
  // Rules 4+5 with a unit-hop right factor: a prev in-entry
  // (owner v, pivot u, d) extends forward over out-arcs (v -> w), w > u.
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    for (const Arc& a : g_.OutArcs(c.owner)) {
      if (a.to <= c.pivot) continue;
      in_c->push_back({a.to, c.pivot, SaturatingAdd(c.dist, a.weight)});
    }
    since_tick += g_.OutArcs(c.owner).size();
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateDoublingOut(std::span<const Cand> prev,
                                  std::vector<Cand>* out_c) const {
  const auto& ins = directed_ ? in_ : out_;
  const auto& inv = inv_out_;
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    const uint64_t before = out_c->size();
    // Rule 1: join with in-labels of the owner whose pivot u1 satisfies
    // v < u1 (< u automatically): suffix scan of the sorted label.
    const LabelVector& lin = ins[c.owner];
    for (size_t i = UpperBoundPivot(lin, c.pivot); i < lin.size(); ++i) {
      out_c->push_back(
          {lin[i].pivot, c.pivot, SaturatingAdd(lin[i].dist, c.dist)});
    }
    // Rule 2: join with every out-entry whose pivot is the owner:
    // owners u2 > u found via the inverted list.
    for (VertexId u2 : inv[c.owner]) {
      Distance d2 = LookupPivot(out_[u2], c.owner);
      HOPDB_DCHECK_NE(d2, kInfDistance);
      out_c->push_back({u2, c.pivot, SaturatingAdd(d2, c.dist)});
    }
    since_tick += out_c->size() - before;
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

void Builder::GenerateDoublingIn(std::span<const Cand> prev,
                                 std::vector<Cand>* in_c) const {
  uint64_t since_tick = 0;
  for (const Cand& c : prev) {
    const uint64_t before = in_c->size();
    // Rule 4: join with out-labels of the owner (the path's destination)
    // whose pivot u4 satisfies u < u4 (< v automatically).
    const LabelVector& lout = out_[c.owner];
    for (size_t i = UpperBoundPivot(lout, c.pivot); i < lout.size(); ++i) {
      in_c->push_back(
          {lout[i].pivot, c.pivot, SaturatingAdd(c.dist, lout[i].dist)});
    }
    // Rule 5: join with every in-entry whose pivot is the owner.
    for (VertexId u5 : inv_in_[c.owner]) {
      Distance d5 = LookupPivot(in_[u5], c.owner);
      HOPDB_DCHECK_NE(d5, kInfDistance);
      in_c->push_back({u5, c.pivot, SaturatingAdd(c.dist, d5)});
    }
    since_tick += in_c->size() - before;
    if (since_tick >= kTickEvery) {
      if (!GenerationTick(since_tick)) return;
      since_tick = 0;
    }
  }
  GenerationTick(since_tick);
}

Status Builder::Generate(BuildMode mode_used, std::vector<Cand>* out_c,
                         std::vector<Cand>* in_c, IterationStats* st) {
  generated_total_.store(0, std::memory_order_relaxed);
  generation_abort_.store(false, std::memory_order_relaxed);
  if (mode_used == BuildMode::kHopStepping) {
    GenerateParallel(
        prev_out_,
        [this](std::span<const Cand> p, std::vector<Cand>* s) {
          GenerateSteppingOut(p, s);
        },
        out_c);
    if (directed_) {
      GenerateParallel(
          prev_in_,
          [this](std::span<const Cand> p, std::vector<Cand>* s) {
            GenerateSteppingIn(p, s);
          },
          in_c);
    }
  } else {
    GenerateParallel(
        prev_out_,
        [this](std::span<const Cand> p, std::vector<Cand>* s) {
          GenerateDoublingOut(p, s);
        },
        out_c);
    if (directed_) {
      GenerateParallel(
          prev_in_,
          [this](std::span<const Cand> p, std::vector<Cand>* s) {
            GenerateDoublingIn(p, s);
          },
          in_c);
    }
  }
  st->raw_candidates = out_c->size() + in_c->size();
  stats_.peak_candidates = std::max(stats_.peak_candidates,
                                    st->raw_candidates);
  // An in-generation abort leaves the candidate lists truncated; report
  // whichever limit tripped. (The post-hoc checks below catch volumes
  // that landed between ticks.)
  if (opts_.max_candidates_per_iteration != 0 &&
      (st->raw_candidates > opts_.max_candidates_per_iteration ||
       generated_total_.load(std::memory_order_relaxed) >
           opts_.max_candidates_per_iteration)) {
    return Status::ResourceExhausted(
        "candidate volume " + std::to_string(st->raw_candidates) +
        " exceeds cap at iteration " + std::to_string(st->iteration));
  }
  if (generation_abort_.load(std::memory_order_relaxed) ||
      deadline_.Exceeded()) {
    return Status::DeadlineExceeded("label generation over time budget");
  }
  return Status::OK();
}

void Builder::DedupAndFilter(std::vector<Cand>* cands, bool out_side,
                             IterationStats* st) {
  std::sort(cands->begin(), cands->end(), CandLess);
  size_t w = 0;
  const auto& side = Side(out_side);
  bool have_last = false;
  VertexId last_owner = 0, last_pivot = 0;
  for (size_t i = 0; i < cands->size(); ++i) {
    const Cand& c = (*cands)[i];
    if (have_last && last_owner == c.owner && last_pivot == c.pivot) {
      continue;  // duplicate (owner, pivot); the sort kept the min dist
    }
    have_last = true;
    last_owner = c.owner;
    last_pivot = c.pivot;
    st->deduped_candidates++;
    Distance existing = LookupPivot(side[c.owner], c.pivot);
    if (existing <= c.dist) {
      st->existing_dropped++;
      continue;  // dominated by an existing entry
    }
    (*cands)[w++] = c;
  }
  cands->resize(w);
}

void Builder::Prune(std::vector<Cand>* out_c, std::vector<Cand>* in_c,
                    IterationStats* st) {
  if (!opts_.prune) return;
  // Snapshot the deduped candidates before compaction: the witness set is
  // fixed at the start of the pruning phase (a pruned candidate may still
  // witness the pruning of another — safe, since every entry covers a
  // real path and canonical entries are never pruned; see Thm. 3).
  std::vector<Cand> wit_out, wit_in;
  if (opts_.prune_with_candidates) {
    wit_out = *out_c;
    wit_in = directed_ ? *in_c : *out_c;
  }
  const auto& ins = directed_ ? in_ : out_;

  // A candidate covering the directed path source ⇝ dest with pivot
  // beta = min(owner, pivot) dies iff a witness pivot w < beta exists in
  // Lout(source) ∩ Lin(dest) with d1 + d2 <= d. For out-entries the
  // source is the owner; for in-entries the source is the pivot.
  //
  // Decisions are independent (labels and witness snapshots are frozen
  // for the whole phase), so they are marked in parallel and compacted
  // sequentially — identical output for any thread count.
  auto prune_list = [&](std::vector<Cand>* cands, bool is_out) {
    std::vector<uint8_t> keep(cands->size());
    ParallelChunks(threads_, cands->size(),
                   [&](size_t begin, size_t end, uint32_t) {
                     for (size_t i = begin; i < end; ++i) {
                       const Cand& c = (*cands)[i];
                       const VertexId source = is_out ? c.owner : c.pivot;
                       const VertexId dest = is_out ? c.pivot : c.owner;
                       const VertexId beta = c.pivot;
                       PivotCursor outs(out_[source],
                                        OwnerSlice(wit_out, source));
                       PivotCursor inss(ins[dest], OwnerSlice(wit_in, dest));
                       keep[i] =
                           !HasPruningWitness(outs, inss, beta, c.dist);
                     }
                   });
    size_t w = 0;
    for (size_t i = 0; i < cands->size(); ++i) {
      if (keep[i]) {
        (*cands)[w++] = (*cands)[i];
      } else {
        st->pruned++;
      }
    }
    cands->resize(w);
  };

  prune_list(out_c, /*is_out=*/true);
  if (directed_) prune_list(in_c, /*is_out=*/false);
}

uint64_t Builder::Apply(const std::vector<Cand>& cands, bool out_side,
                        IterationStats* st) {
  auto& side = Side(out_side);
  auto& inv = out_side || !directed_ ? inv_out_ : inv_in_;
  size_t i = 0;
  while (i < cands.size()) {
    const VertexId owner = cands[i].owner;
    size_t j = i;
    while (j < cands.size() && cands[j].owner == owner) ++j;
    LabelVector& lab = side[owner];
    const size_t old_size = lab.size();
    for (size_t k = i; k < j; ++k) {
      const Cand& c = cands[k];
      // In-place update when the pivot already exists (possible for
      // weighted graphs and for Hop-Doubling's overshooting paths).
      size_t lo = 0, hi = old_size;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (lab[mid].pivot < c.pivot) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < old_size && lab[lo].pivot == c.pivot) {
        HOPDB_DCHECK_GT(lab[lo].dist, c.dist);
        lab[lo].dist = c.dist;
        st->updates++;
      } else {
        lab.push_back({c.pivot, c.dist});
        inv[c.pivot].push_back(owner);
      }
    }
    std::inplace_merge(lab.begin(), lab.begin() + static_cast<ptrdiff_t>(old_size),
                       lab.end(),
                       [](const LabelEntry& a, const LabelEntry& b) {
                         return a.pivot < b.pivot;
                       });
    i = j;
  }
  return cands.size();
}

Result<BuildOutput> Builder::Run() {
  Stopwatch total_watch;
  {
    Stopwatch init_watch;
    Initialize();
    stats_.init_seconds = init_watch.Seconds();
  }

  std::vector<Cand> out_c, in_c;
  for (uint32_t iter = 1; iter <= opts_.max_iterations; ++iter) {
    if (prev_out_.empty() && prev_in_.empty()) break;
    if (deadline_.Exceeded()) {
      return Status::DeadlineExceeded("label construction over time budget");
    }

    Stopwatch iter_watch;
    IterationStats st;
    st.iteration = iter;
    switch (opts_.mode) {
      case BuildMode::kHopStepping:
        st.mode_used = BuildMode::kHopStepping;
        break;
      case BuildMode::kHopDoubling:
        st.mode_used = BuildMode::kHopDoubling;
        break;
      case BuildMode::kHybrid:
        st.mode_used = iter <= opts_.hybrid_switch_iteration
                           ? BuildMode::kHopStepping
                           : BuildMode::kHopDoubling;
        break;
    }

    out_c.clear();
    in_c.clear();
    HOPDB_RETURN_NOT_OK(Generate(st.mode_used, &out_c, &in_c, &st));
    DedupAndFilter(&out_c, /*out_side=*/true, &st);
    if (directed_) DedupAndFilter(&in_c, /*out_side=*/false, &st);
    Prune(&out_c, &in_c, &st);

    st.survivors = Apply(out_c, /*out_side=*/true, &st);
    if (directed_) st.survivors += Apply(in_c, /*out_side=*/false, &st);

    prev_out_.swap(out_c);
    prev_in_.swap(in_c);

    uint64_t total_entries = 0;
    for (const auto& l : out_) total_entries += l.size();
    for (const auto& l : in_) total_entries += l.size();
    st.total_entries_after = total_entries;
    st.seconds = iter_watch.Seconds();
    stats_.iterations.push_back(st);
    stats_.num_rule_iterations = iter;

    if (st.survivors == 0) break;
  }

  stats_.total_seconds = total_watch.Seconds();
  BuildOutput output{
      TwoHopIndex(std::move(out_), std::move(in_), directed_),
      std::move(stats_)};
  return output;
}

}  // namespace

const char* BuildModeName(BuildMode mode) {
  switch (mode) {
    case BuildMode::kHopStepping:
      return "Step";
    case BuildMode::kHopDoubling:
      return "Double";
    case BuildMode::kHybrid:
      return "Hybrid";
  }
  return "?";
}

Result<BuildOutput> BuildHopLabeling(const CsrGraph& ranked_graph,
                                     const BuildOptions& options) {
  if (options.mode == BuildMode::kHybrid &&
      options.hybrid_switch_iteration == 0) {
    return Status::InvalidArgument(
        "hybrid mode needs hybrid_switch_iteration >= 1");
  }
  Builder builder(ranked_graph, options);
  return builder.Run();
}

}  // namespace hopdb
