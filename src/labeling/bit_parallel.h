// Bit-parallel label compression (Section 6) for undirected unweighted
// indexes, adapted from PLL's bit-parallel scheme as a post-processing
// pass over an existing 2-hop index.
//
// A set R of roots (default 50, the top-ranked vertices) is chosen, and
// for each root r up to 64 of its neighbors form S_r (the S_r are
// disjoint and exclude roots). Label entries whose pivot is r or lies in
// S_r are folded into one tuple per (vertex, root):
//
//     (r, d_rv, S^-1_r(v), S^0_r(v))
//
// where the 64-bit masks record the neighbors u in S_r with
// d_uv - d_rv = -1 / 0 (difference +1 entries are discarded — any path
// via u is matched by the path via r). Querying two BP labels costs O(#
// common roots) thanks to a per-vertex root marker bitmap; remaining
// entries stay in a normal 2-hop label and are intersected as usual.
//
// Exactness note: when a pivot u in S_r appears in L(v) but r itself does
// not, the tuple is created with d_rv = d_uv + 1 (a real path via u).
// Every distance the BP query combines is therefore a real path length,
// and the original covering pivots remain represented, so queries stay
// exact — this is verified against the pre-transform index in tests.

#ifndef HOPDB_LABELING_BIT_PARALLEL_H_
#define HOPDB_LABELING_BIT_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct BitParallelOptions {
  /// Number of roots (<= 64; the paper and PLL default to 50).
  uint32_t num_roots = 50;
  /// Max neighbors folded per root (bit width of the masks).
  uint32_t max_neighbors_per_root = 64;
};

class BitParallelIndex {
 public:
  /// Consumes an undirected unweighted 2-hop index (built on the ranked
  /// graph) and folds root-neighborhood entries into bit-parallel labels.
  static Result<BitParallelIndex> Transform(
      TwoHopIndex base, const CsrGraph& ranked_graph,
      const BitParallelOptions& options = {});

  /// Exact distance (internal/ranked ids).
  Distance Query(VertexId s, VertexId t) const;

  VertexId num_vertices() const { return normal_.num_vertices(); }
  uint32_t num_roots() const { return num_roots_; }

  /// Entries remaining in the normal labels.
  uint64_t NormalEntries() const { return normal_.TotalEntries(); }
  /// Bit-parallel tuples stored.
  uint64_t BpTuples() const;
  /// Size under the paper's accounting: 5 bytes per normal entry,
  /// 1+1+8+8 bytes per BP tuple, 8-byte marker per vertex.
  uint64_t PaperSizeBytes() const;

  const TwoHopIndex& normal_index() const { return normal_; }

 private:
  struct BpTuple {
    uint8_t root;    // root index in [0, num_roots)
    Distance dist;   // d_rv (stored in 8 bits on disk when it fits)
    uint64_t s_m1;   // S^-1 mask
    uint64_t s_0;    // S^0 mask
  };

  uint32_t num_roots_ = 0;
  std::vector<uint64_t> marker_;            // root-presence bitmap per vertex
  std::vector<std::vector<BpTuple>> bp_;    // sorted by root index
  TwoHopIndex normal_;
};

}  // namespace hopdb

#endif  // HOPDB_LABELING_BIT_PARALLEL_H_
