#include "labeling/flat_label_store.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hopdb {

namespace {

constexpr char kMagic[4] = {'H', 'F', 'S', '1'};
constexpr uint8_t kFlagDirected = 1u << 0;
constexpr uint8_t kFlagDeltaPivots = 1u << 1;

uint64_t AlignUpBlock(uint64_t entries) {
  return (entries + kLabelBlockEntries - 1) / kLabelBlockEntries *
         kLabelBlockEntries;
}

}  // namespace

void FlatLabelStore::InitBlockedLayout(std::vector<uint32_t> sizes) {
  sizes_ = std::move(sizes);
  const size_t slots = sizes_.size();
  offsets_.assign(slots + 1, 0);
  uint64_t total = 0;
  uint64_t padded = 0;
  for (size_t s = 0; s < slots; ++s) {
    total += sizes_[s];
    padded += AlignUpBlock(sizes_[s]);
    offsets_[s + 1] = padded;
  }
  total_entries_ = total;
  pivots_ = AlignedU32Array(padded);
  dists_ = AlignedU32Array(padded);
}

void FlatLabelStore::FinalizeBlocks() {
  const size_t slots = num_slots();
  block_min_ = AlignedU32Array(pivots_.size() / kLabelBlockEntries);
  block_max_ = AlignedU32Array(pivots_.size() / kLabelBlockEntries);
  for (size_t s = 0; s < slots; ++s) {
    const uint64_t begin = offsets_[s];
    const uint32_t size = sizes_[s];
    for (uint64_t i = begin + size; i < offsets_[s + 1]; ++i) {
      pivots_[i] = kInvalidVertex;
      dists_[i] = kInfDistance;
    }
    // Every block holds at least one real entry (padding only rounds a
    // non-empty slot up), so the sidecar minima/maxima are always real
    // pivots.
    const uint64_t blocks = (offsets_[s + 1] - begin) / kLabelBlockEntries;
    for (uint64_t g = 0; g < blocks; ++g) {
      const uint64_t first = begin + g * kLabelBlockEntries;
      const uint64_t last =
          begin + std::min<uint64_t>(size, (g + 1) * kLabelBlockEntries) - 1;
      block_min_[first / kLabelBlockEntries] = pivots_[first];
      block_max_[first / kLabelBlockEntries] = pivots_[last];
    }
  }
}

FlatLabelStore FlatLabelStore::Build(const std::vector<LabelVector>& out,
                                     const std::vector<LabelVector>& in,
                                     bool directed) {
  FlatLabelStore store;
  store.built_ = true;
  store.directed_ = directed;
  store.num_vertices_ = static_cast<VertexId>(out.size());
  if (directed) {
    HOPDB_CHECK_EQ(out.size(), in.size());
  } else {
    HOPDB_CHECK(in.empty()) << "undirected store must not carry in-labels";
  }

  std::vector<uint32_t> sizes;
  sizes.reserve(store.num_slots());
  for (const LabelVector& label : out) {
    sizes.push_back(static_cast<uint32_t>(label.size()));
  }
  if (directed) {
    for (const LabelVector& label : in) {
      sizes.push_back(static_cast<uint32_t>(label.size()));
    }
  }
  store.InitBlockedLayout(std::move(sizes));

  auto fill_side = [&](const std::vector<LabelVector>& side, size_t base) {
    for (size_t v = 0; v < side.size(); ++v) {
      uint64_t pos = store.offsets_[base + v];
      for (const LabelEntry& e : side[v]) {
        store.pivots_[pos] = e.pivot;
        store.dists_[pos] = e.dist;
        ++pos;
      }
    }
  };
  fill_side(out, 0);
  if (directed) fill_side(in, out.size());
  store.FinalizeBlocks();
  return store;
}

uint64_t FlatLabelStore::SizeBytes() const {
  return pivots_.SizeBytes() + dists_.SizeBytes() + block_min_.SizeBytes() +
         block_max_.SizeBytes() + offsets_.size() * sizeof(uint64_t) +
         sizes_.size() * sizeof(uint32_t);
}

bool FlatLabelStore::MirrorsVectors(const std::vector<LabelVector>& out,
                                    const std::vector<LabelVector>& in,
                                    bool directed) const {
  if (!built_ || directed != directed_ || out.size() != num_vertices_) {
    return false;
  }
  auto side_matches = [&](const std::vector<LabelVector>& side,
                          size_t base) {
    for (size_t v = 0; v < side.size(); ++v) {
      const uint64_t begin = offsets_[base + v];
      if (sizes_[base + v] != side[v].size()) return false;
      for (size_t i = 0; i < side[v].size(); ++i) {
        if (pivots_[begin + i] != side[v][i].pivot ||
            dists_[begin + i] != side[v][i].dist) {
          return false;
        }
      }
    }
    return true;
  };
  if (!side_matches(out, 0)) return false;
  if (directed_ && (in.size() != out.size() || !side_matches(in, out.size()))) {
    return false;
  }
  return true;
}

void FlatLabelStore::AppendTo(std::string* dst, bool delta_pivots) const {
  HOPDB_CHECK(built_) << "cannot serialize an unbuilt flat store";
  dst->append(kMagic, 4);
  uint8_t flags = 0;
  if (directed_) flags |= kFlagDirected;
  if (delta_pivots) flags |= kFlagDeltaPivots;
  PutU8(dst, flags);
  PutU32(dst, num_vertices_);
  PutU64(dst, TotalEntries());
  // The streams carry only real entries in slot order — byte-identical
  // to the pre-blocking format; padding never reaches disk.
  const size_t slots = num_slots();
  for (size_t s = 0; s < slots; ++s) PutVarint64(dst, sizes_[s]);
  if (delta_pivots) {
    for (size_t s = 0; s < slots; ++s) {
      uint64_t prev_plus_one = 0;  // pivot gaps relative to -1
      for (uint64_t i = offsets_[s]; i < offsets_[s] + sizes_[s]; ++i) {
        PutVarint64(dst, pivots_[i] + 1 - prev_plus_one);
        prev_plus_one = static_cast<uint64_t>(pivots_[i]) + 1;
      }
    }
    for (size_t s = 0; s < slots; ++s) {
      for (uint64_t i = offsets_[s]; i < offsets_[s] + sizes_[s]; ++i) {
        PutVarint64(dst, dists_[i]);
      }
    }
  } else {
    for (size_t s = 0; s < slots; ++s) {
      for (uint64_t i = offsets_[s]; i < offsets_[s] + sizes_[s]; ++i) {
        PutU32(dst, pivots_[i]);
      }
    }
    for (size_t s = 0; s < slots; ++s) {
      for (uint64_t i = offsets_[s]; i < offsets_[s] + sizes_[s]; ++i) {
        PutU32(dst, dists_[i]);
      }
    }
  }
}

Result<FlatLabelStore> FlatLabelStore::Parse(ByteReader* reader) {
  char magic[4];
  HOPDB_RETURN_NOT_OK(reader->ReadBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an HFS1 flat-label section");
  }
  uint8_t flags = 0;
  uint32_t nv = 0;
  uint64_t total = 0;
  HOPDB_RETURN_NOT_OK(reader->ReadU8(&flags));
  HOPDB_RETURN_NOT_OK(reader->ReadU32(&nv));
  HOPDB_RETURN_NOT_OK(reader->ReadU64(&total));

  FlatLabelStore store;
  store.built_ = true;
  store.directed_ = (flags & kFlagDirected) != 0;
  store.num_vertices_ = nv;
  const size_t slots = store.directed_ ? 2 * static_cast<size_t>(nv) : nv;
  std::vector<uint32_t> sizes(slots, 0);
  uint64_t running = 0;
  for (size_t s = 0; s < slots; ++s) {
    uint64_t len = 0;
    HOPDB_RETURN_NOT_OK(reader->ReadVarint64(&len));
    if (len > nv) {
      return Status::InvalidArgument("HFS1 slot length exceeds num_vertices");
    }
    running += len;
    sizes[s] = static_cast<uint32_t>(len);
  }
  if (running != total) {
    return Status::InvalidArgument(
        "HFS1 slot lengths disagree with total_entries");
  }
  store.InitBlockedLayout(std::move(sizes));
  if ((flags & kFlagDeltaPivots) != 0) {
    for (size_t s = 0; s < slots; ++s) {
      uint64_t prev_plus_one = 0;
      const uint64_t begin = store.offsets_[s];
      for (uint64_t i = begin; i < begin + store.sizes_[s]; ++i) {
        uint64_t gap = 0;
        HOPDB_RETURN_NOT_OK(reader->ReadVarint64(&gap));
        const uint64_t pivot = prev_plus_one + gap - 1;
        if (gap == 0 || pivot >= nv) {
          return Status::InvalidArgument("HFS1 pivot gap out of range");
        }
        store.pivots_[i] = static_cast<uint32_t>(pivot);
        prev_plus_one = pivot + 1;
      }
    }
    for (size_t s = 0; s < slots; ++s) {
      const uint64_t begin = store.offsets_[s];
      for (uint64_t i = begin; i < begin + store.sizes_[s]; ++i) {
        uint64_t d = 0;
        HOPDB_RETURN_NOT_OK(reader->ReadVarint64(&d));
        if (d > kInfDistance) {
          return Status::InvalidArgument("HFS1 distance out of range");
        }
        store.dists_[i] = static_cast<uint32_t>(d);
      }
    }
  } else {
    // Raw mode: enforce the same invariants the gap encoding gets for
    // free — strictly ascending pivots per slot, pivot < num_vertices —
    // so a malformed file cannot produce a store that silently violates
    // the binary-search/merge-join preconditions.
    for (size_t s = 0; s < slots; ++s) {
      uint64_t prev_plus_one = 0;
      const uint64_t begin = store.offsets_[s];
      for (uint64_t i = begin; i < begin + store.sizes_[s]; ++i) {
        HOPDB_RETURN_NOT_OK(reader->ReadU32(&store.pivots_[i]));
        if (store.pivots_[i] < prev_plus_one || store.pivots_[i] >= nv) {
          return Status::InvalidArgument("HFS1 raw pivot out of order or "
                                         "out of range");
        }
        prev_plus_one = static_cast<uint64_t>(store.pivots_[i]) + 1;
      }
    }
    for (size_t s = 0; s < slots; ++s) {
      const uint64_t begin = store.offsets_[s];
      for (uint64_t i = begin; i < begin + store.sizes_[s]; ++i) {
        HOPDB_RETURN_NOT_OK(reader->ReadU32(&store.dists_[i]));
      }
    }
  }
  store.FinalizeBlocks();
  return store;
}

Status FlatLabelStore::Save(const std::string& path, bool delta_pivots) const {
  std::string buf;
  AppendTo(&buf, delta_pivots);
  PutU64(&buf, Fnv1a64(buf.data(), buf.size()));
  return WriteStringToFile(path, buf);
}

Result<FlatLabelStore> FlatLabelStore::Load(const std::string& path) {
  std::string data;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &data));
  if (data.size() < 8) {
    return Status::InvalidArgument("truncated flat-label file: " + path);
  }
  const size_t body = data.size() - 8;
  const uint64_t want = DecodeU64(
      reinterpret_cast<const uint8_t*>(data.data()) + body);
  if (Fnv1a64(data.data(), body) != want) {
    return Status::InvalidArgument("flat-label checksum mismatch: " + path);
  }
  ByteReader reader(reinterpret_cast<const uint8_t*>(data.data()), body);
  HOPDB_ASSIGN_OR_RETURN(FlatLabelStore store, Parse(&reader));
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in flat-label file: " +
                                   path);
  }
  return store;
}

}  // namespace hopdb
