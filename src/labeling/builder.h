// In-memory Hop-Doubling / Hop-Stepping / Hybrid label construction
// (Sections 3 and 5 of the paper).
//
// The builder runs on a *rank-relabeled* graph (internal id == rank, id 0
// = highest degree). Each iteration is a four-phase pipeline, every phase
// parallel over BuildOptions::num_threads (docs/ARCHITECTURE.md, "Build
// pipeline"):
//   1. generate — candidate entries from the entries that survived the
//      previous iteration (`prev`) joined against either all existing
//      labels (Hop-Doubling, the 4 simplified rules of Fig. 6) or single
//      edges (Hop-Stepping, Section 5.1); parallel over chunks of `prev`.
//   2. dedup — candidates sort by (owner, pivot, dist) via an
//      owner-partitioned counting partition (candidate_partition.h), are
//      collapsed per (owner, pivot) keeping the smallest distance, and
//      drop when dominated by an existing entry; parallel per partition.
//   3. prune — candidates with a witness through a higher-ranked pivot
//      die (Section 3.3): candidate covering path x⇝y with pivot
//      β = min(x, y) dies iff some w < β has (w,d1) ∈ Lout(x),
//      (w,d2) ∈ Lin(y) with d1+d2 ≤ d. Witness scans run through the
//      bounded early-exit SIMD merge-join of the active query kernel
//      over a frozen flat snapshot of labels ∪ candidates, decisions in
//      parallel (scalar cursor fallback for tiny iterations).
//   4. apply — survivors merge into the labels; owners are partitioned
//      into contiguous ranges so label vectors merge in parallel, then
//      inverted lists replay sequentially in candidate order. Survivors
//      become `prev`.
// The loop ends when no candidate survives — at most DH iterations for
// Stepping (Thm. 6) and 2⌈log DH⌉ for Doubling (Thm. 4).
//
// Per-iteration statistics (candidate counts, pruning counts, per-phase
// times) feed Figure 10's growing/pruning-factor plots and
// bench_build's phase breakdown.

#ifndef HOPDB_LABELING_BUILDER_H_
#define HOPDB_LABELING_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

enum class BuildMode {
  kHopStepping,
  kHopDoubling,
  /// The paper's default: Hop-Stepping for the first
  /// `hybrid_switch_iteration` iterations, then Hop-Doubling (Section
  /// 5.4, "by default ... first 10 iterations").
  kHybrid,
};

/// Static display name ("stepping" / "doubling" / "hybrid"); never
/// nullptr. Thread-safe (pure).
const char* BuildModeName(BuildMode mode);

struct BuildOptions {
  BuildMode mode = BuildMode::kHybrid;
  /// Rule iterations run as Hop-Stepping before switching to Hop-Doubling
  /// in kHybrid mode.
  uint32_t hybrid_switch_iteration = 10;
  /// Safety cap; the theoretical bounds make this unreachable for sane
  /// inputs.
  uint32_t max_iterations = 100000;
  /// Wall-clock budget; 0 disables. Exceeding it aborts the build with
  /// Status::DeadlineExceeded (rendered as "—"/DNF in benches, matching
  /// the paper's 24-hour cutoff).
  double time_budget_seconds = 0;
  /// Candidate-volume cap per iteration; 0 disables. Exceeding it aborts
  /// with Status::ResourceExhausted (Hop-Doubling on large graphs can
  /// explode; the paper's Table 8 shows exactly this).
  uint64_t max_candidates_per_iteration = 0;
  /// Disables pruning entirely (ablation; reproduces the Figure 5
  /// labeling of Example 1 when false).
  bool prune = true;
  /// When true (default, matching Section 4.2's outer block which holds
  /// both old labels and fresh candidates), pruning witnesses may be this
  /// iteration's deduped candidates as well as old entries. Ablation knob.
  bool prune_with_candidates = true;
  /// Worker threads for all four per-iteration phases (generation,
  /// dedup, pruning, label merge). The output is bit-identical for every
  /// thread count: generation order only permutes the candidate
  /// multiset, which the owner-partitioned dedup sort canonicalizes into
  /// one global order; pruning decisions depend only on the
  /// iteration-start snapshot; and the apply phase merges disjoint
  /// owner ranges, replaying inverted-list appends in candidate order.
  /// 0 means all hardware threads.
  uint32_t num_threads = 1;
};

/// Counters for one rule iteration (Figure 10's raw material).
struct IterationStats {
  uint32_t iteration = 0;        // 1-based rule iterations
  BuildMode mode_used = BuildMode::kHopStepping;
  uint64_t raw_candidates = 0;   // rule outputs before any filtering
  uint64_t deduped_candidates = 0;  // after (owner,pivot) dedup
  uint64_t existing_dropped = 0;    // dominated by an existing entry
  uint64_t pruned = 0;              // killed by a higher-ranked witness
  uint64_t survivors = 0;           // new entries + in-place updates
  uint64_t updates = 0;             // in-place distance improvements
  uint64_t total_entries_after = 0;
  double seconds = 0;
  /// Per-phase wall clock within this iteration (bench_build's
  /// breakdown); generate + dedup + prune + apply ≈ seconds.
  double generate_seconds = 0;
  double dedup_seconds = 0;
  double prune_seconds = 0;
  double apply_seconds = 0;
};

struct BuildStats {
  std::vector<IterationStats> iterations;
  uint32_t num_rule_iterations = 0;
  uint64_t initial_entries = 0;  // one per edge
  double init_seconds = 0;
  double total_seconds = 0;
  /// Peak candidate-buffer size in entries (memory high-water mark proxy).
  uint64_t peak_candidates = 0;

  /// Sum of a per-iteration phase time over all iterations.
  double PhaseSeconds(double IterationStats::* field) const {
    double total = 0;
    for (const IterationStats& it : iterations) total += it.*field;
    return total;
  }
};

struct BuildOutput {
  TwoHopIndex index;
  BuildStats stats;
};

/// Builds a 2-hop index for `ranked_graph`, which must already be
/// relabeled so that internal id == rank (see RelabelByRank). Returns the
/// index over internal ids (flat query mirror included).
///
/// Blocking and CPU-bound: at most DH rule iterations for Hop-Stepping
/// and 2⌈log DH⌉ for Hop-Doubling (DH = hop-diameter), each iteration
/// roughly linear in candidate volume. Deterministic — bit-identical
/// output for any options.num_threads. Fails with DeadlineExceeded when
/// time_budget_seconds is exceeded and ResourceExhausted when an
/// iteration tops max_candidates_per_iteration; the graph is only read.
/// Reentrant: independent builds may run concurrently on different
/// graphs.
Result<BuildOutput> BuildHopLabeling(const CsrGraph& ranked_graph,
                                     const BuildOptions& options = {});

}  // namespace hopdb

#endif  // HOPDB_LABELING_BUILDER_H_
