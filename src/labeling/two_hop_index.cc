#include "labeling/two_hop_index.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/serde.h"

namespace hopdb {

namespace {
constexpr char kMagic[4] = {'H', 'L', 'I', '1'};
}

TwoHopIndex::TwoHopIndex(std::vector<LabelVector> out,
                         std::vector<LabelVector> in, bool directed)
    : out_(std::move(out)), in_(std::move(in)), directed_(directed) {
  if (!directed_) {
    HOPDB_CHECK(in_.empty()) << "undirected index must not carry in-labels";
  } else {
    HOPDB_CHECK_EQ(out_.size(), in_.size());
  }
}

Distance QueryLabelHalves(std::span<const LabelEntry> out_s,
                          std::span<const LabelEntry> in_t, VertexId s,
                          VertexId t) {
  if (s == t) return 0;
  Distance best = IntersectLabels(out_s, in_t);
  // Implicit trivial pivots: (s, 0) in Lout(s) and (t, 0) in Lin(t).
  Distance direct_t = LookupPivot(out_s, t);
  if (direct_t < best) best = direct_t;
  Distance direct_s = LookupPivot(in_t, s);
  if (direct_s < best) best = direct_s;
  return best;
}

Distance TwoHopIndex::Query(VertexId s, VertexId t) const {
  HOPDB_DCHECK_LT(s, num_vertices());
  HOPDB_DCHECK_LT(t, num_vertices());
  return QueryLabelHalves(OutLabel(s), InLabel(t), s, t);
}

uint64_t TwoHopIndex::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& l : out_) total += l.size();
  for (const auto& l : in_) total += l.size();
  return total;
}

double TwoHopIndex::AvgLabelSize() const {
  if (out_.empty()) return 0;
  return static_cast<double>(TotalEntries()) / static_cast<double>(out_.size());
}

uint64_t TwoHopIndex::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& l : out_) bytes += l.size() * sizeof(LabelEntry);
  for (const auto& l : in_) bytes += l.size() * sizeof(LabelEntry);
  bytes += (out_.size() + in_.size()) * sizeof(LabelVector);
  return bytes;
}

uint64_t TwoHopIndex::PaperSizeBytes() const {
  // 4-byte pivot + 1-byte distance per entry, 8-byte offset per label.
  uint64_t labels = directed_ ? 2ull * out_.size() : out_.size();
  return TotalEntries() * 5ull + labels * 8ull;
}

std::vector<uint64_t> TwoHopIndex::EntriesPerPivot() const {
  std::vector<uint64_t> counts(num_vertices(), 0);
  for (const auto& l : out_) {
    for (const LabelEntry& e : l) counts[e.pivot]++;
  }
  for (const auto& l : in_) {
    for (const LabelEntry& e : l) counts[e.pivot]++;
  }
  return counts;
}

Status TwoHopIndex::Validate(bool ranked) const {
  auto check_side = [&](const std::vector<LabelVector>& side,
                        const char* name) -> Status {
    for (VertexId v = 0; v < side.size(); ++v) {
      const LabelVector& l = side[v];
      for (size_t i = 0; i < l.size(); ++i) {
        if (i > 0 && l[i - 1].pivot >= l[i].pivot) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " not strictly sorted by pivot");
        }
        if (l[i].pivot == v) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " stores a trivial self entry");
        }
        if (ranked && l[i].pivot > v) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " has pivot ranked below owner");
        }
        if (l[i].dist == 0 || l[i].dist == kInfDistance) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) + " has bad distance");
        }
      }
    }
    return Status::OK();
  };
  HOPDB_RETURN_NOT_OK(check_side(out_, directed_ ? "out" : "undirected"));
  HOPDB_RETURN_NOT_OK(check_side(in_, "in"));
  return Status::OK();
}

Status TwoHopIndex::Save(const std::string& path) const {
  std::string buf;
  buf.append(kMagic, 4);
  PutU32(&buf, directed_ ? 1u : 0u);
  PutU32(&buf, num_vertices());
  auto write_side = [&](const std::vector<LabelVector>& side) {
    PutU64(&buf, side.size());
    for (const auto& l : side) {
      PutU64(&buf, l.size());
      for (const LabelEntry& e : l) {
        PutU32(&buf, e.pivot);
        PutU32(&buf, e.dist);
      }
    }
  };
  write_side(out_);
  write_side(in_);
  return WriteStringToFile(path, buf);
}

Result<TwoHopIndex> TwoHopIndex::Load(const std::string& path) {
  std::string data;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &data));
  ByteReader reader(data);
  char magic[4];
  HOPDB_RETURN_NOT_OK(reader.ReadBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a HLI1 index file: " + path);
  }
  uint32_t directed = 0, nv = 0;
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&directed));
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&nv));
  auto read_side = [&](std::vector<LabelVector>* side) -> Status {
    uint64_t count = 0;
    HOPDB_RETURN_NOT_OK(reader.ReadU64(&count));
    side->resize(count);
    for (auto& l : *side) {
      uint64_t len = 0;
      HOPDB_RETURN_NOT_OK(reader.ReadU64(&len));
      l.resize(len);
      for (auto& e : l) {
        HOPDB_RETURN_NOT_OK(reader.ReadU32(&e.pivot));
        HOPDB_RETURN_NOT_OK(reader.ReadU32(&e.dist));
      }
    }
    return Status::OK();
  };
  std::vector<LabelVector> out, in;
  HOPDB_RETURN_NOT_OK(read_side(&out));
  HOPDB_RETURN_NOT_OK(read_side(&in));
  if (out.size() != nv || (directed != 0 && in.size() != nv)) {
    return Status::InvalidArgument("corrupt index file: " + path);
  }
  return TwoHopIndex(std::move(out), std::move(in), directed != 0);
}

}  // namespace hopdb
