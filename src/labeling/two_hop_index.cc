#include "labeling/two_hop_index.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "labeling/query_kernel.h"
#include "util/logging.h"
#include "util/serde.h"

namespace hopdb {

namespace {
constexpr char kMagic[4] = {'H', 'L', 'I', '1'};
}

TwoHopIndex::TwoHopIndex(std::vector<LabelVector> out,
                         std::vector<LabelVector> in, bool directed)
    : out_(std::move(out)), in_(std::move(in)), directed_(directed) {
  if (!directed_) {
    HOPDB_CHECK(in_.empty()) << "undirected index must not carry in-labels";
  } else {
    HOPDB_CHECK_EQ(out_.size(), in_.size());
  }
  RebuildFlatStore();
}

Distance QueryLabelHalves(std::span<const LabelEntry> out_s,
                          std::span<const LabelEntry> in_t, VertexId s,
                          VertexId t) {
  if (s == t) return 0;
  Distance best = ActiveQueryKernel().intersect_entries(
      out_s.data(), static_cast<uint32_t>(out_s.size()), in_t.data(),
      static_cast<uint32_t>(in_t.size()));
  // Implicit trivial pivots: (s, 0) in Lout(s) and (t, 0) in Lin(t).
  Distance direct_t = LookupPivot(out_s, t);
  if (direct_t < best) best = direct_t;
  Distance direct_s = LookupPivot(in_t, s);
  if (direct_s < best) best = direct_s;
  return best;
}

Distance TwoHopIndex::Query(VertexId s, VertexId t) const {
  HOPDB_DCHECK_LT(s, num_vertices());
  HOPDB_DCHECK_LT(t, num_vertices());
  if (flat_.built()) {
    return QueryFlatHalves(flat_.Out(s), flat_.In(t), s, t,
                           ActiveQueryKernel());
  }
  return QueryLabelHalves(OutLabel(s), InLabel(t), s, t);
}

uint64_t TwoHopIndex::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& l : out_) total += l.size();
  for (const auto& l : in_) total += l.size();
  return total;
}

double TwoHopIndex::AvgLabelSize() const {
  if (out_.empty()) return 0;
  return static_cast<double>(TotalEntries()) / static_cast<double>(out_.size());
}

uint64_t TwoHopIndex::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& l : out_) bytes += l.size() * sizeof(LabelEntry);
  for (const auto& l : in_) bytes += l.size() * sizeof(LabelEntry);
  bytes += (out_.size() + in_.size()) * sizeof(LabelVector);
  if (flat_.built()) bytes += flat_.SizeBytes();
  return bytes;
}

uint64_t TwoHopIndex::PaperSizeBytes() const {
  // 4-byte pivot + 1-byte distance per entry, 8-byte offset per label.
  uint64_t labels = directed_ ? 2ull * out_.size() : out_.size();
  return TotalEntries() * 5ull + labels * 8ull;
}

std::vector<uint64_t> TwoHopIndex::EntriesPerPivot() const {
  std::vector<uint64_t> counts(num_vertices(), 0);
  for (const auto& l : out_) {
    for (const LabelEntry& e : l) counts[e.pivot]++;
  }
  for (const auto& l : in_) {
    for (const LabelEntry& e : l) counts[e.pivot]++;
  }
  return counts;
}

Status TwoHopIndex::Validate(bool ranked) const {
  auto check_side = [&](const std::vector<LabelVector>& side,
                        const char* name) -> Status {
    for (VertexId v = 0; v < side.size(); ++v) {
      const LabelVector& l = side[v];
      for (size_t i = 0; i < l.size(); ++i) {
        if (i > 0 && l[i - 1].pivot >= l[i].pivot) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " not strictly sorted by pivot");
        }
        if (l[i].pivot == v) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " stores a trivial self entry");
        }
        if (ranked && l[i].pivot > v) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) +
                                  " has pivot ranked below owner");
        }
        if (l[i].dist == 0 || l[i].dist == kInfDistance) {
          return Status::Internal(std::string(name) + " label of " +
                                  std::to_string(v) + " has bad distance");
        }
      }
    }
    return Status::OK();
  };
  HOPDB_RETURN_NOT_OK(check_side(out_, directed_ ? "out" : "undirected"));
  HOPDB_RETURN_NOT_OK(check_side(in_, "in"));
  return Status::OK();
}

Status TwoHopIndex::Save(const std::string& path) const {
  std::string buf;
  buf.append(kMagic, 4);
  PutU32(&buf, directed_ ? 1u : 0u);
  PutU32(&buf, num_vertices());
  auto write_side = [&](const std::vector<LabelVector>& side) {
    PutU64(&buf, side.size());
    for (const auto& l : side) {
      PutU64(&buf, l.size());
      for (const LabelEntry& e : l) {
        PutU32(&buf, e.pivot);
        PutU32(&buf, e.dist);
      }
    }
  };
  write_side(out_);
  write_side(in_);
  // Trailing flat-mirror section (HFS1, delta-encoded, own checksum):
  // Load adopts it instead of rebuilding the SoA arenas from the
  // vectors. Readers of the original HLI1 body ignored trailing bytes,
  // so the section is backward- and forward-compatible.
  const size_t flat_begin = buf.size();
  if (flat_.built()) {
    flat_.AppendTo(&buf, /*delta_pivots=*/true);
  } else {
    FlatLabelStore::Build(out_, in_, directed_)
        .AppendTo(&buf, /*delta_pivots=*/true);
  }
  PutU64(&buf, Fnv1a64(buf.data() + flat_begin, buf.size() - flat_begin));
  return WriteStringToFile(path, buf);
}

Result<TwoHopIndex> TwoHopIndex::Load(const std::string& path) {
  std::string data;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &data));
  ByteReader reader(data);
  char magic[4];
  HOPDB_RETURN_NOT_OK(reader.ReadBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a HLI1 index file: " + path);
  }
  uint32_t directed = 0, nv = 0;
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&directed));
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&nv));
  auto read_side = [&](std::vector<LabelVector>* side) -> Status {
    uint64_t count = 0;
    HOPDB_RETURN_NOT_OK(reader.ReadU64(&count));
    side->resize(count);
    for (auto& l : *side) {
      uint64_t len = 0;
      HOPDB_RETURN_NOT_OK(reader.ReadU64(&len));
      l.resize(len);
      for (auto& e : l) {
        HOPDB_RETURN_NOT_OK(reader.ReadU32(&e.pivot));
        HOPDB_RETURN_NOT_OK(reader.ReadU32(&e.dist));
      }
    }
    return Status::OK();
  };
  std::vector<LabelVector> out, in;
  HOPDB_RETURN_NOT_OK(read_side(&out));
  HOPDB_RETURN_NOT_OK(read_side(&in));
  if (out.size() != nv || (directed != 0 && in.size() != nv)) {
    return Status::InvalidArgument("corrupt index file: " + path);
  }
  // Adopt the trailing flat-mirror section when present (files written
  // before the flat store existed end here; those rebuild the mirror).
  if (reader.remaining() > 0) {
    if (reader.remaining() < 8) {
      return Status::InvalidArgument("truncated flat section: " + path);
    }
    const size_t begin = reader.position();
    const size_t section_end = data.size() - 8;
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
    if (Fnv1a64(bytes + begin, section_end - begin) !=
        DecodeU64(bytes + section_end)) {
      return Status::InvalidArgument("flat section checksum mismatch: " +
                                     path);
    }
    ByteReader flat_reader(bytes + begin, section_end - begin);
    HOPDB_ASSIGN_OR_RETURN(FlatLabelStore flat,
                           FlatLabelStore::Parse(&flat_reader));
    if (flat_reader.remaining() != 0 ||
        !flat.MirrorsVectors(out, in, directed != 0)) {
      return Status::InvalidArgument(
          "flat section disagrees with label vectors: " + path);
    }
    TwoHopIndex index;
    index.out_ = std::move(out);
    index.in_ = std::move(in);
    index.directed_ = directed != 0;
    index.flat_ = std::move(flat);
    return index;
  }
  return TwoHopIndex(std::move(out), std::move(in), directed != 0);
}

}  // namespace hopdb
