#include "labeling/disk_index.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/serde.h"

namespace hopdb {

namespace {
constexpr char kMagic[4] = {'H', 'D', 'I', '1'};
constexpr uint32_t kFlagDirected = 1u;
constexpr uint32_t kFlagDist8 = 2u;
constexpr size_t kHeaderBytes = 4 + 4 + 4;
}  // namespace

Status DiskIndex::Write(const TwoHopIndex& index, const std::string& path) {
  const VertexId n = index.num_vertices();
  const bool directed = index.directed();

  // Can distances be narrowed to 8 bits?
  bool dist8 = true;
  auto scan_side = [&](bool out_side) {
    for (VertexId v = 0; v < n && dist8; ++v) {
      auto label = out_side ? index.OutLabel(v) : index.InLabel(v);
      for (const LabelEntry& e : label) {
        if (e.dist >= 255) {
          dist8 = false;
          break;
        }
      }
    }
  };
  scan_side(true);
  if (directed) scan_side(false);
  const size_t entry_bytes = dist8 ? 5 : 8;

  std::string buf;
  buf.append(kMagic, 4);
  PutU32(&buf, (directed ? kFlagDirected : 0u) | (dist8 ? kFlagDist8 : 0u));
  PutU32(&buf, n);

  auto append_offsets = [&](bool out_side) {
    uint64_t total = 0;
    PutU64(&buf, total);
    for (VertexId v = 0; v < n; ++v) {
      auto label = out_side ? index.OutLabel(v) : index.InLabel(v);
      total += label.size();
      PutU64(&buf, total);
    }
  };
  append_offsets(true);
  if (directed) append_offsets(false);

  auto append_entries = [&](bool out_side) {
    for (VertexId v = 0; v < n; ++v) {
      auto label = out_side ? index.OutLabel(v) : index.InLabel(v);
      for (const LabelEntry& e : label) {
        PutU32(&buf, e.pivot);
        if (dist8) {
          PutU8(&buf, static_cast<uint8_t>(e.dist));
        } else {
          PutU32(&buf, e.dist);
        }
      }
    }
  };
  append_entries(true);
  if (directed) append_entries(false);

  (void)entry_bytes;
  return WriteStringToFile(path, buf);
}

Result<DiskIndex> DiskIndex::Open(const std::string& path,
                                  uint64_t block_size) {
  DiskIndex idx;
  HOPDB_ASSIGN_OR_RETURN(idx.file_, BlockFile::OpenRead(path, block_size));

  uint8_t header[kHeaderBytes];
  HOPDB_RETURN_NOT_OK(idx.file_.ReadAt(0, header, sizeof(header)));
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a HDI1 index file: " + path);
  }
  uint32_t flags = DecodeU32(header + 4);
  idx.num_vertices_ = DecodeU32(header + 8);
  idx.directed_ = (flags & kFlagDirected) != 0;
  idx.dist8_ = (flags & kFlagDist8) != 0;
  idx.entry_bytes_ = idx.dist8_ ? 5 : 8;

  const uint64_t n = idx.num_vertices_;
  const uint64_t table_bytes = (n + 1) * 8ull;
  auto load_table = [&](uint64_t at,
                        std::vector<uint64_t>* table) -> Status {
    std::vector<uint8_t> raw(table_bytes);
    HOPDB_RETURN_NOT_OK(idx.file_.ReadAt(at, raw.data(), raw.size()));
    table->resize(n + 1);
    for (uint64_t i = 0; i <= n; ++i) {
      (*table)[i] = DecodeU64(raw.data() + i * 8);
    }
    return Status::OK();
  };

  uint64_t pos = kHeaderBytes;
  HOPDB_RETURN_NOT_OK(load_table(pos, &idx.out_offsets_));
  pos += table_bytes;
  if (idx.directed_) {
    HOPDB_RETURN_NOT_OK(load_table(pos, &idx.in_offsets_));
    pos += table_bytes;
  }
  idx.out_base_ = pos;
  idx.in_base_ =
      pos + idx.out_offsets_.back() * idx.entry_bytes_;
  // The offset tables imply an exact entry payload; a shorter file is
  // truncated (queries would fail or, worse, read stale tail bytes).
  const uint64_t expected_size =
      idx.in_base_ +
      (idx.directed_ ? idx.in_offsets_.back() * idx.entry_bytes_ : 0);
  if (idx.file_.size() < expected_size) {
    return Status::IOError(
        "HDI1 index truncated: " + path + " has " +
        std::to_string(idx.file_.size()) + " bytes, offsets imply " +
        std::to_string(expected_size));
  }
  // Offset-table loading is setup cost, not query cost.
  idx.file_.mutable_stats()->Reset();
  return idx;
}

Status DiskIndex::ReadLabel(bool out_side, VertexId v, LabelVector* out) {
  const auto& offsets = out_side ? out_offsets_ : in_offsets_;
  const uint64_t base = out_side ? out_base_ : in_base_;
  const uint64_t begin = offsets[v];
  const uint64_t count = offsets[v + 1] - begin;
  out->clear();
  if (count == 0) return Status::OK();
  const uint64_t bytes = count * entry_bytes_;
  io_buf_.resize(bytes);
  HOPDB_RETURN_NOT_OK(
      file_.ReadAt(base + begin * entry_bytes_, io_buf_.data(), bytes));
  out->reserve(count);
  const uint8_t* p = io_buf_.data();
  for (uint64_t i = 0; i < count; ++i) {
    LabelEntry e;
    e.pivot = DecodeU32(p);
    e.dist = dist8_ ? p[4] : DecodeU32(p + 4);
    out->push_back(e);
    p += entry_bytes_;
  }
  return Status::OK();
}

Distance DiskIndex::Query(VertexId s, VertexId t) {
  HOPDB_CHECK_LT(s, num_vertices_);
  HOPDB_CHECK_LT(t, num_vertices_);
  if (s == t) return 0;
  // Two positional label reads: the disk cost the paper measures.
  ReadLabel(/*out_side=*/true, s, &scratch_s_).CheckOK();
  ReadLabel(directed_ ? false : true, t, &scratch_t_).CheckOK();
  return QueryLabelHalves(scratch_s_, scratch_t_, s, t);
}

Result<TwoHopIndex> DiskIndex::ToMemory() {
  std::vector<LabelVector> out(num_vertices_);
  std::vector<LabelVector> in(directed_ ? num_vertices_ : 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    HOPDB_RETURN_NOT_OK(ReadLabel(true, v, &out[v]));
    if (directed_) HOPDB_RETURN_NOT_OK(ReadLabel(false, v, &in[v]));
  }
  return TwoHopIndex(std::move(out), std::move(in), directed_);
}

}  // namespace hopdb
