// TwoHopIndex: the queryable 2-hop label index. Produced by the HopDb
// builders (in-memory and external) and by the PLL / IS-Label baselines;
// all of them answer queries through this class's Query — same storage
// layout, same active query kernel — so Table 6's "memory query time"
// comparisons measure label quality, not implementation differences.
//
// Two representations live side by side:
//   - per-vertex LabelVectors (array-of-structs): the canonical, mutable
//     form every builder produces and the HLI1 disk format mirrors;
//   - a FlatLabelStore (structure-of-arrays, cache-line-aligned arenas):
//     the read-optimized mirror the query hot path and the SIMD kernels
//     (labeling/query_kernel.h) run on.
// The flat mirror is built eagerly on construction and load, and
// invalidated by mutable_out()/mutable_in(); RebuildFlatStore() restores
// it after a post-processing pass. Queries transparently fall back to the
// vector path while the mirror is stale.

#ifndef HOPDB_LABELING_TWO_HOP_INDEX_H_
#define HOPDB_LABELING_TWO_HOP_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "labeling/flat_label_store.h"
#include "labeling/label_entry.h"
#include "util/status.h"

namespace hopdb {

class TwoHopIndex {
 public:
  TwoHopIndex() = default;

  /// Takes ownership of the label vectors and builds the flat query
  /// mirror (O(total entries)). For undirected indexes pass an empty
  /// `in` (queries then intersect out[s] with out[t]).
  /// Trivial (v, 0) self-entries must NOT be stored; Query handles them
  /// implicitly (the paper's tables count non-trivial entries the same
  /// way).
  TwoHopIndex(std::vector<LabelVector> out, std::vector<LabelVector> in,
              bool directed);

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_.size());
  }
  bool directed() const { return directed_; }

  /// Label views over the canonical vectors (always current, O(1)).
  std::span<const LabelEntry> OutLabel(VertexId v) const { return out_[v]; }
  std::span<const LabelEntry> InLabel(VertexId v) const {
    return directed_ ? std::span<const LabelEntry>(in_[v])
                     : std::span<const LabelEntry>(out_[v]);
  }

  /// Exact distance from s to t (both internal/ranked ids);
  /// kInfDistance when unreachable. O(|Lout(s)| + |Lin(t)|) via the
  /// active SIMD query kernel over the flat store (scalar fallback while
  /// the store is stale).
  ///
  /// Thread safety: const and stateless — a pure intersection over the
  /// immutable label arrays, so concurrent readers need no
  /// synchronization (PLL-style shared-reader serving). Not safe
  /// against a concurrent mutable_out()/mutable_in() writer.
  Distance Query(VertexId s, VertexId t) const;

  /// Number of non-trivial label entries. O(|V|).
  uint64_t TotalEntries() const;

  /// Average non-trivial entries per vertex; for directed graphs counts
  /// Lin and Lout together (the paper's "Avg |label| per vertex").
  double AvgLabelSize() const;

  /// In-memory footprint in bytes: label vectors plus the flat query
  /// mirror when built.
  uint64_t SizeBytes() const;

  /// Size under the paper's disk accounting: 32-bit pivot + 8-bit
  /// distance per entry plus a 64-bit offset per label vector — what the
  /// "Index size (MB)" column of Table 6 reports.
  uint64_t PaperSizeBytes() const;

  /// entries_per_pivot[p] = number of non-trivial entries whose pivot is
  /// p. Drives Table 7 / Figure 8 (label coverage by top-ranked pivots).
  /// O(total entries).
  std::vector<uint64_t> EntriesPerPivot() const;

  /// Structural invariants: labels sorted by pivot, no duplicate pivots,
  /// no trivial self-entries, finite distances. When `ranked` is true
  /// (HopDb/PLL indexes on rank-relabeled graphs) additionally checks
  /// pivot id < owner id.
  Status Validate(bool ranked) const;

  /// Serializes to the HLI1 binary format: the label vectors followed by
  /// a checksummed HFS1 flat-mirror section (docs/ARCHITECTURE.md).
  /// Load adopts the flat section after verifying it mirrors the
  /// vectors, so a loaded index queries at full speed; section-less
  /// files (pre-flat-store writers) rebuild the mirror instead.
  Status Save(const std::string& path) const;
  static Result<TwoHopIndex> Load(const std::string& path);

  /// The flat query mirror. Check flat_store().built() before using the
  /// views directly; it is false after mutable access until
  /// RebuildFlatStore().
  const FlatLabelStore& flat_store() const { return flat_; }

  /// Mutable access for post-processing passes (bit-parallel transform).
  /// Invalidates the flat query mirror: queries stay correct through the
  /// vector fallback, but lose the SIMD path until RebuildFlatStore().
  std::vector<LabelVector>* mutable_out() {
    flat_ = FlatLabelStore();
    return &out_;
  }
  std::vector<LabelVector>* mutable_in() {
    flat_ = FlatLabelStore();
    return &in_;
  }

  /// Re-freezes the flat query mirror from the (possibly edited) label
  /// vectors. O(total entries). Not thread-safe against concurrent
  /// readers — publish the index to readers only after this returns.
  void RebuildFlatStore() { flat_ = FlatLabelStore::Build(out_, in_, directed_); }

 private:
  std::vector<LabelVector> out_;
  std::vector<LabelVector> in_;  // empty when undirected
  FlatLabelStore flat_;          // SoA mirror of out_/in_ for querying
  bool directed_ = false;
};

/// Invokes fn(pivot, dist) for every entry of one side's label of v:
/// through `view` when `index` is null, else through the index's label
/// vectors (the stale-flat-mirror fallback of engines constructed from
/// a TwoHopIndex). The view path SKIPS entries whose pivot is >=
/// view.num_vertices: a LabelSetView may alias the unhashed label
/// arenas of a memory-mapped HLI2 file (labeling/mapped_index.h
/// integrity model), and callers index arrays by pivot — a corrupt
/// arena must be able to mis-answer but never write or read out of
/// bounds. This is the single shared implementation of that
/// safety-critical loop for every view-consuming engine
/// (query/batch.h, query/knn.h).
template <typename Fn>
void ForEachLabelEntry(const TwoHopIndex* index,
                       const FlatLabelStore::LabelSetView& view, bool in_side,
                       VertexId v, Fn&& fn) {
  if (index == nullptr) {
    const FlatLabelStore::View label = in_side ? view.In(v) : view.Out(v);
    for (uint32_t i = 0; i < label.size; ++i) {
      if (label.pivots[i] < view.num_vertices) {
        fn(label.pivots[i], label.dists[i]);
      }
    }
  } else {
    const auto label = in_side ? index->InLabel(v) : index->OutLabel(v);
    for (const LabelEntry& e : label) fn(e.pivot, e.dist);
  }
}

/// Query helper shared with builders' pruning logic: minimum of
/// intersection plus the two implicit trivial pivots.
///   dist = min( min_{w in out_s ∩ in_t} d1+d2,
///               dist stored for pivot t in out_s,
///               dist stored for pivot s in in_t,
///               0 if s == t )
/// The intersection routes through the active query kernel
/// (labeling/query_kernel.h); results are identical for every kernel.
Distance QueryLabelHalves(std::span<const LabelEntry> out_s,
                          std::span<const LabelEntry> in_t, VertexId s,
                          VertexId t);

}  // namespace hopdb

#endif  // HOPDB_LABELING_TWO_HOP_INDEX_H_
