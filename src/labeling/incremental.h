// Incremental label maintenance for dynamic graphs (ROADMAP "Dynamic
// graphs"): repair an existing hop-doubling 2-hop index after edge
// inserts, deletes, and weight changes without rebuilding from scratch.
//
// Two repair procedures, picked by the direction the distance can move:
//
// WEIGHT DECREASES (inserts, reweight-down) use resumed pruned searches
// — the incremental half of dynamic PLL (Akiba et al., WWW'14). A new
// arc a->b never invalidates an existing label entry (every certified
// path still exists; distances only shrink), so repair is purely
// additive: for each hub (h, d) of Lin(a) plus a itself, resume a
// pruned forward Dijkstra from b with start distance d + w, upserting
// (h, nd) into Lin(y) for every reached y > h; prune a vertex u as soon
// as the current labels already certify Query(h, u) <= nd. The mirror
// pass roots at Lout(b)'s hubs plus b and searches backward from a.
// Exactness: on SOME new shortest x->y path take the minimum-id vertex
// u*; the old cover of (a/b, u*) can only be the trivial entry (any
// smaller common pivot would sit on an equally short path, contradicting
// minimality), so u* is a resume root, and the same tie argument shows
// no prune fires along the path — both halves of the (u*, .) cover land.
// Entries for pairs covered elsewhere may keep stale too-large values;
// they remain sound upper bounds (the certified path still exists), and
// every changed pair is re-covered exactly. Cost is proportional to the
// label sizes of the endpoints times the (tiny) unpruned frontier — no
// full-graph searches.
//
// WEIGHT INCREASES (deletes, reweight-up) can kill certified paths, so
// they need the heavyweight affected-set repair:
//
//   1. Affected sets. For a changed arc a->b with old weight w, four
//      single-source searches on the graph WITHOUT the arc characterize
//      every pair whose distance moves:
//        S* = { x : d(x->a) + w < d_without(x->b) }   (strict sources)
//        T* = { y : w + d(b->y) < d_without(a->y) }   (strict targets)
//      Every distance-changed pair lies in S* x T*: an endpoint outside
//      the strict set supplies an equally short arc-free route (shortest
//      paths under positive weights are simple, so d(x->a) and d(b->y)
//      themselves never change). Strictness matters for cost: a label
//      entry certifies a distance VALUE, not one particular path, so a
//      tie pair — which keeps its distance — keeps exact entries and an
//      exact cover sum on its own, even when the specific tied path its
//      cover once followed dies. Empty S* or T* means no value moved
//      and no entry touched — the fast path for redundant updates.
//
//   2. Clean. Since every changed pair lies in S* x T*, the only label
//      entries whose VALUES can be stale are those whose owner and
//      pivot sit on opposite strict sides: pivot-in-T* entries of
//      Lout(x) for x in S*, and pivot-in-S* entries of Lin(y) for y in
//      T*. They are dropped outright — every surviving entry is a
//      sound upper bound, and every surviving entry whose value THIS
//      op moved is gone. Dropping can orphan a pair whose cover ran
//      through a dropped entry; the restore pass re-derives whatever
//      the new graph still needs.
//
//   3. Rank-ordered restore — over R = the owners that actually LOST
//      an entry in the clean (R_out for out-labels, R_in for in-
//      labels), not all of S* ∪ T*. Members are processed in ascending
//      internal id (descending rank-importance); when member v is
//      processed, every smaller-id member is already repaired. Each
//      runs two passes:
//        - Owner restore: one full single-source search gives v's
//          exact new distances. The surviving entries of the cleaned
//          side are first re-verified against them (snapping stale-
//          large decrease-era upper bounds to exact, dropping
//          unreachable pivots), then each missing pivot h < v is added
//          at d(v, h) unless some common pivot below h already
//          certifies that distance (the builder's prune rule, so label
//          minimality is preserved where possible).
//        - Pivot restore: a pruned Dijkstra from v over the new graph
//          — the incremental mirror of one build root — re-derives
//          every (v, *) entry labels on the OPPOSITE side need (a
//          cleaned Lout(v) breaks covers whose out-leg read it, i.e.
//          pivot-v entries in other vertices' in-labels, and vice
//          versa). A vertex u is pruned as soon as a common pivot
//          below v certifies d(v, u) (witness sums never
//          underestimate, so at the tentative distance the certifying
//          cover is exact); otherwise (v, d) is upserted into u's
//          label when u > v and the search keeps expanding.
//      Why R suffices: take a changed-or-orphaned pair (x, y) and the
//      minimum-id vertex u* across all its new shortest paths. Any
//      common pivot z < u* certifying (x, u*) or (u*, y) would lie on
//      a new shortest x->y path, contradicting u*'s minimality — so
//      post-op the ONLY possible cover of (x, y) is the (u*, .) entry
//      pair, and no witness blocks planting it. For the Lout(x) half:
//      either the (u*, .) entry was cleaned (then x ∈ R_out and x's
//      owner restore re-adds it), or it is stale/absent, in which case
//      the pre-op exact cover of (x, u*) ran through some z < u* and
//      at least one of its legs (x->z in Lout(x), z->u* in Lin(u*))
//      changed value this op — a changed leg is a cross-strict entry,
//      so it was cleaned, putting x ∈ R_out (owner restore fixes
//      Lout(x) directly) or u* ∈ R_in (u*'s backward pivot restore
//      reaches x unpruned — a blocking witness at any vertex on a
//      shortest x->u* path would again contradict u*'s minimality —
//      and upserts the exact entry). The Lin(y) half is the mirror
//      image through R_in / R_out. Owners outside R need no work at
//      all. Erasure needs no special pass: a pair newly unreachable
//      had both endpoints strict, and its cleaned entries are simply
//      never re-derived.
//
// The repaired index answers every query identically to a from-scratch
// rebuild on the mutated graph (both are exact; incremental_test.cc
// enforces this differentially on randomized update streams). Repair
// preserves the ORIGINAL vertex ranking: after many updates the degree
// order may drift from the live graph, which costs label size, not
// correctness — UpdateOptions::rebuild_frontier_fraction bounds the
// damage by falling back to a full rebuild (same ranking) when an
// update's affected frontier is a large fraction of the graph.
//
// All ids here are INTERNAL (rank) ids; callers holding original ids
// translate through RankMapping (hopdb.h keeps one per index). The
// serving integration (ADDEDGE/DELEDGE/COMMIT verbs, snapshot publish)
// lives in src/server/server.cc; offline repair in `hopdb_cli update`.

#ifndef HOPDB_LABELING_INCREMENTAL_H_
#define HOPDB_LABELING_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "labeling/builder.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

/// One edge mutation, in INTERNAL (rank) vertex ids.
struct UpdateOp {
  enum class Kind : uint8_t { kAddEdge, kDelEdge };
  Kind kind = Kind::kAddEdge;
  VertexId u = 0;
  VertexId v = 0;
  /// kAddEdge only. Adding an arc that already exists re-weights it
  /// (repairing in whichever direction the distance moved).
  Distance weight = 1;
};

/// Mutable adjacency the updater maintains alongside the index — the
/// dynamic counterpart of the immutable CsrGraph, in the same internal
/// (rank) id space. Undirected graphs mirror each edge into both
/// endpoint lists and alias in-arcs to out-arcs, like CsrGraph.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Snapshots `graph` (already rank-relabeled) into mutable form.
  static DynamicGraph FromGraph(const CsrGraph& graph);

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_.size());
  }
  bool directed() const { return directed_; }
  bool weighted() const { return weighted_; }
  uint64_t num_arcs() const { return num_arcs_; }

  std::span<const Arc> OutArcs(VertexId u) const { return out_[u]; }
  std::span<const Arc> InArcs(VertexId u) const {
    return directed_ ? std::span<const Arc>(in_[u])
                     : std::span<const Arc>(out_[u]);
  }

  /// Weight of arc u->v (undirected: edge {u,v}); kInfDistance if absent.
  Distance ArcWeight(VertexId u, VertexId v) const;

  /// Inserts arc u->v (undirected: edge {u,v}) or re-weights it if
  /// present. Returns false when the call was a structural no-op (the
  /// arc already had this weight).
  bool AddArc(VertexId u, VertexId v, Distance weight);

  /// Removes arc u->v; false when absent.
  bool RemoveArc(VertexId u, VertexId v);

  /// Freezes the current adjacency back into an edge list (for fallback
  /// rebuilds and differential tests). Deterministic order.
  EdgeList ToEdgeList() const;

 private:
  bool directed_ = false;
  bool weighted_ = false;
  uint64_t num_arcs_ = 0;
  std::vector<std::vector<Arc>> out_;
  std::vector<std::vector<Arc>> in_;  // empty when undirected
};

struct UpdateOptions {
  /// Fall back to a full BuildHopLabeling rebuild (keeping the original
  /// ranking) when |S| + |T| exceeds this fraction of |V| for one op.
  /// The incremental repair stays correct at any frontier size — this
  /// is a latency/label-quality valve, not a correctness one. 0 or >1
  /// disables the fallback.
  double rebuild_frontier_fraction = 0.5;
  /// Build options for fallback rebuilds.
  BuildOptions rebuild;
};

struct UpdateStats {
  uint64_t ops_applied = 0;   // ops that changed the graph
  uint64_t ops_noop = 0;      // structurally redundant ops
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t reweights = 0;
  /// Ops whose affected sets were both non-empty (label repair ran).
  uint64_t repairs = 0;
  uint64_t full_rebuilds = 0;  // frontier-valve fallbacks
  uint64_t affected_sources = 0;  // cumulative |S|
  uint64_t affected_targets = 0;  // cumulative |T|
  uint64_t entries_added = 0;
  uint64_t entries_updated = 0;
  uint64_t entries_removed = 0;
  double seconds = 0;  // total Apply time
};

/// Applies edge updates to a (graph, index) pair in lock-step. The graph
/// must be the rank-relabeled graph the index was built over; both are
/// borrowed and mutated in place. Apply() leaves the index's flat query
/// mirror stale (queries fall back to the vector path); call
/// Finalize() — or ApplyBatch, which finalizes for you — before
/// publishing the index to concurrent readers.
class IncrementalUpdater {
 public:
  IncrementalUpdater(DynamicGraph* graph, TwoHopIndex* index,
                     const UpdateOptions& options = {});

  /// Applies one op. Returns true when the graph changed (and the
  /// labels were repaired), false for a structural no-op; fails with
  /// InvalidArgument on self-loops, out-of-range ids, zero weights, or
  /// deleting an absent edge.
  Result<bool> Apply(const UpdateOp& op);

  /// Applies every op in order, then Finalize()s. Fails fast on the
  /// first invalid op (earlier ops stay applied — callers wanting
  /// all-or-nothing semantics validate first; see server COMMIT).
  Status ApplyBatch(std::span<const UpdateOp> ops);

  /// Rebuilds the flat query mirror after a run of Apply() calls.
  void Finalize();

  /// Owners (INTERNAL ids) whose labels changed since construction or
  /// the previous Take — the exact dependency set of a cached point
  /// query: Query(s, t) reads only Lout(s) and Lin(t), so a cached
  /// result is stale iff s's out-label or t's in-label is in here. The
  /// server's COMMIT uses this to carry non-affected result-cache
  /// entries into the snapshot it publishes instead of dropping the
  /// cache wholesale.
  struct TouchedOwners {
    /// True when a fallback rebuild replaced every label; the lists are
    /// empty and callers must treat every owner as touched.
    bool all = false;
    std::vector<VertexId> out;  // Lout(v) changed, ascending
    std::vector<VertexId> in;   // Lin(v) changed (mirrors `out` when
                                // undirected, where the sides alias)
  };
  /// Returns the accumulated set and resets the tracker.
  TouchedOwners TakeTouchedOwners();

  const UpdateStats& stats() const { return stats_; }

 private:
  /// Weight-decrease repair: installs the arc and resumes pruned
  /// searches from the endpoint hub labels (see the header comment).
  void ApplyDecrease(VertexId a, VertexId b, Distance weight, bool insert);

  /// One resumed pruned Dijkstra rooted at `root`, starting from
  /// `start` at distance `start_dist`. backward = false searches
  /// forward and repairs Lin(reached); true searches backward and
  /// repairs Lout(reached).
  void ResumeDecrease(VertexId root, Distance start_dist, VertexId start,
                      bool backward);

  /// d(u->v) under the current live label vectors.
  Distance LiveQuery(VertexId u, VertexId v) const;

  /// Weight-increase owner pass: repairs the cleaned side of v's own
  /// label (out_side = true: Lout(v), candidate pivots h < v at their
  /// exact new d(v->h); false: Lin(v) at d(h->v)) from one full
  /// single-source search — re-verifying surviving entries to exact
  /// values, then adding a missing pivot only when no common pivot
  /// below it already certifies the distance.
  void OwnerRestore(VertexId v, bool out_side);

  /// Weight-increase pivot pass: re-derives v's appearances as a pivot
  /// with a pruned Dijkstra from v (the incremental mirror of one build
  /// root). backward = false searches forward and upserts (v, d) into
  /// Lin(reached); true searches backward into Lout(reached).
  void PivotRestore(VertexId v, bool backward);

  /// True when some common pivot z < beta of Lout(x) / Lin(y) (current,
  /// already-repaired prefix) certifies a path of length <= d.
  bool HasRepairWitness(VertexId x, VertexId y, VertexId beta,
                        Distance d) const;

  /// Entry upsert primitive (operates on the live label vectors).
  void UpsertEntry(std::vector<LabelVector>* side, VertexId owner,
                   VertexId pivot, Distance dist);

  /// Records that `owner`'s label in `side` changed (for
  /// TakeTouchedOwners). Undirected indexes alias the sides, so one
  /// mutation marks both views. O(1) amortized; dedupes via byte marks.
  void MarkTouched(const std::vector<LabelVector>* side, VertexId owner);

  Status RebuildFallback();

  DynamicGraph* graph_;
  TwoHopIndex* index_;
  UpdateOptions options_;
  UpdateStats stats_;
  bool finalized_ = true;  // no Apply since the last Finalize

  std::vector<LabelVector>* out_ = nullptr;  // live label vectors
  std::vector<LabelVector>* in_ = nullptr;   // == out_ when undirected

  // Per-op repair state, reused across ops.
  std::vector<VertexId> s_;  // strict affected sources S*, ascending
  std::vector<VertexId> t_;  // strict affected targets T*, ascending
  std::vector<VertexId> r_out_;  // owners whose Lout lost entries, ascending
  std::vector<VertexId> r_in_;   // owners whose Lin lost entries, ascending

  // Epoch-stamped dist scratch shared by the resumed decrease searches
  // and the pivot-restore searches (|V|-sized, allocated lazily,
  // O(visited) effective reset per search).
  std::vector<Distance> resume_dist_;
  std::vector<uint64_t> resume_stamp_;
  uint64_t resume_epoch_ = 0;

  // Strict-set membership for the weight-increase clean phase
  // (|V|-sized byte marks, zeroed again before Apply returns).
  std::vector<uint8_t> strict_s_mark_;
  std::vector<uint8_t> strict_t_mark_;

  // Touched-owner tracker (TakeTouchedOwners): byte marks dedupe, the
  // id vectors accumulate across Apply calls until the next Take.
  bool touched_all_ = false;
  std::vector<uint8_t> touched_out_mark_;
  std::vector<uint8_t> touched_in_mark_;
  std::vector<VertexId> touched_out_;
  std::vector<VertexId> touched_in_;
};

/// Parses one text op line: "ADDEDGE u v [w]" / "DELEDGE u v"
/// (case-insensitive; "add"/"del" accepted). Ids are in the caller's
/// space — `hopdb_cli update` feeds original ids through RankMapping.
/// Blank lines and '#' comments yield NotFound (caller skips).
Result<UpdateOp> ParseUpdateOpLine(const std::string& line);

}  // namespace hopdb

#endif  // HOPDB_LABELING_INCREMENTAL_H_
