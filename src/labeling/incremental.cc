#include "labeling/incremental.h"

#include <algorithm>
#include <cctype>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {

namespace {

// -----------------------------------------------------------------------
// DynamicGraph helpers
// -----------------------------------------------------------------------

Distance ArcWeightIn(const std::vector<Arc>& arcs, VertexId to) {
  for (const Arc& arc : arcs) {
    if (arc.to == to) return arc.weight;
  }
  return kInfDistance;
}

bool SetArcWeight(std::vector<Arc>* arcs, VertexId to, Distance weight) {
  for (Arc& arc : *arcs) {
    if (arc.to == to) {
      arc.weight = weight;
      return true;
    }
  }
  arcs->push_back(Arc{to, weight});
  return false;
}

bool EraseArc(std::vector<Arc>* arcs, VertexId to) {
  for (size_t i = 0; i < arcs->size(); ++i) {
    if ((*arcs)[i].to == to) {
      (*arcs)[i] = arcs->back();
      arcs->pop_back();
      return true;
    }
  }
  return false;
}

/// Full single-source Dijkstra over the dynamic adjacency (forward or
/// backward). Positive weights only — the EdgeList/UpdateOp validations
/// guarantee that — so this doubles as BFS ground truth on unweighted
/// graphs. Deterministic: heap ties break on vertex id.
std::vector<Distance> DynDistances(const DynamicGraph& graph, VertexId source,
                                   bool backward) {
  const VertexId n = graph.num_vertices();
  std::vector<Distance> dist(n, kInfDistance);
  using Item = std::pair<Distance, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale heap entry
    const std::span<const Arc> arcs =
        backward ? graph.InArcs(u) : graph.OutArcs(u);
    for (const Arc& arc : arcs) {
      const Distance nd = SaturatingAdd(d, arc.weight);
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

/// QueryLabelHalves over live label vectors: intersection minimum plus
/// the two implicit trivial pivots.
Distance QueryRefs(const LabelVector& out_s, const LabelVector& in_t,
                   VertexId s, VertexId t) {
  if (s == t) return 0;
  Distance best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < out_s.size() && j < in_t.size()) {
    const VertexId pa = out_s[i].pivot;
    const VertexId pb = in_t[j].pivot;
    if (pa == pb) {
      best = std::min(best, SaturatingAdd(out_s[i].dist, in_t[j].dist));
      ++i;
      ++j;
    } else if (pa < pb) {
      ++i;
    } else {
      ++j;
    }
  }
  best = std::min(best, LookupPivot(out_s, t));
  best = std::min(best, LookupPivot(in_t, s));
  return best;
}

}  // namespace

// -----------------------------------------------------------------------
// DynamicGraph
// -----------------------------------------------------------------------

DynamicGraph DynamicGraph::FromGraph(const CsrGraph& graph) {
  DynamicGraph dyn;
  dyn.directed_ = graph.directed();
  dyn.weighted_ = graph.weighted();
  const VertexId n = graph.num_vertices();
  dyn.out_.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    const std::span<const Arc> arcs = graph.OutArcs(u);
    dyn.out_[u].assign(arcs.begin(), arcs.end());
    dyn.num_arcs_ += arcs.size();
  }
  if (dyn.directed_) {
    dyn.in_.resize(n);
    for (VertexId u = 0; u < n; ++u) {
      const std::span<const Arc> arcs = graph.InArcs(u);
      dyn.in_[u].assign(arcs.begin(), arcs.end());
    }
  } else {
    // Undirected CSR materializes both orientations; count each once.
    dyn.num_arcs_ /= 2;
  }
  return dyn;
}

Distance DynamicGraph::ArcWeight(VertexId u, VertexId v) const {
  return ArcWeightIn(out_[u], v);
}

bool DynamicGraph::AddArc(VertexId u, VertexId v, Distance weight) {
  if (ArcWeightIn(out_[u], v) == weight) return false;
  if (!SetArcWeight(&out_[u], v, weight)) ++num_arcs_;
  if (directed_) {
    SetArcWeight(&in_[v], u, weight);
  } else {
    SetArcWeight(&out_[v], u, weight);
  }
  if (weight != 1) weighted_ = true;
  return true;
}

bool DynamicGraph::RemoveArc(VertexId u, VertexId v) {
  if (!EraseArc(&out_[u], v)) return false;
  --num_arcs_;
  if (directed_) {
    EraseArc(&in_[v], u);
  } else {
    EraseArc(&out_[v], u);
  }
  return true;
}

EdgeList DynamicGraph::ToEdgeList() const {
  EdgeList edges(num_vertices(), directed_);
  edges.set_weighted(weighted_);
  for (VertexId u = 0; u < num_vertices(); ++u) {
    // Arc order inside a list depends on the update history; emit each
    // vertex's arcs sorted so the frozen edge list is deterministic.
    std::vector<Arc> arcs = out_[u];
    std::sort(arcs.begin(), arcs.end(),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
    for (const Arc& arc : arcs) {
      if (!directed_ && arc.to < u) continue;  // one orientation per edge
      edges.Add(u, arc.to, arc.weight);
    }
  }
  return edges;
}

// -----------------------------------------------------------------------
// IncrementalUpdater
// -----------------------------------------------------------------------

IncrementalUpdater::IncrementalUpdater(DynamicGraph* graph,
                                       TwoHopIndex* index,
                                       const UpdateOptions& options)
    : graph_(graph), index_(index), options_(options) {
  out_ = index_->mutable_out();
  in_ = index_->directed() ? index_->mutable_in() : out_;
}

Result<bool> IncrementalUpdater::Apply(const UpdateOp& op) {
  Stopwatch watch;
  const VertexId n = graph_->num_vertices();
  if (op.u >= n || op.v >= n) {
    return Status::InvalidArgument(
        "edge endpoint out of range (|V| = " + std::to_string(n) + ")");
  }
  if (op.u == op.v) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  const bool is_delete = op.kind == UpdateOp::Kind::kDelEdge;
  if (!is_delete && (op.weight == 0 || op.weight == kInfDistance)) {
    return Status::InvalidArgument("edge weight must be positive and finite");
  }

  const Distance old_w = graph_->ArcWeight(op.u, op.v);
  const Distance new_w = is_delete ? kInfDistance : op.weight;
  if (is_delete && old_w == kInfDistance) {
    return Status::InvalidArgument(
        "DELEDGE of an absent edge (" + std::to_string(op.u) + " -> " +
        std::to_string(op.v) + ")");
  }
  if (new_w == old_w) {
    ++stats_.ops_noop;
    stats_.seconds += watch.Seconds();
    return false;
  }

  if (new_w < old_w) {
    // Weight decrease: distances only shrink and no certificate dies —
    // the cheap resumed-search repair (see header). No affected-set
    // searches, no frozen labels.
    ApplyDecrease(op.u, op.v, new_w, /*insert=*/old_w == kInfDistance);
    stats_.seconds += watch.Seconds();
    return true;
  }

  // Affected-set distances are measured on the graph WITHOUT the arc
  // (see the header comment): remove it, search, then reinstall at the
  // new weight. The repair pivot passes run on the post-update graph.
  if (old_w != kInfDistance) graph_->RemoveArc(op.u, op.v);
  finalized_ = false;

  const VertexId a = op.u, b = op.v;
  const Distance search_w = std::min(old_w, new_w);
  const std::vector<Distance> to_a = DynDistances(*graph_, a, true);
  const std::vector<Distance> from_b = DynDistances(*graph_, b, false);
  // Undirected graphs: backward == forward, so "to b" is from_b and
  // "from a" is to_a — skip the second pair of searches.
  const std::vector<Distance> to_b =
      graph_->directed() ? DynDistances(*graph_, b, true) : from_b;
  const std::vector<Distance> from_a =
      graph_->directed() ? DynDistances(*graph_, a, false) : to_a;

  // Strict comparisons: x is strictly affected when the arc at its old
  // weight was strictly better than every arc-free alternative — its
  // distance to/from the endpoint actually moves. Every pair whose
  // distance changes lies in S* x T* (an endpoint outside would supply
  // an equally short arc-free route). Tie pairs keep their distance,
  // and a label entry certifies a distance VALUE, not one particular
  // path — so their entries and cover sums stay exact on their own.
  // The saturating sum is infinite exactly when no path through the
  // arc exists — never affected.
  if (strict_s_mark_.size() != static_cast<size_t>(n)) {
    strict_s_mark_.assign(n, 0);
    strict_t_mark_.assign(n, 0);
  }
  s_.clear();
  t_.clear();
  for (VertexId x = 0; x < n; ++x) {
    const Distance via_s = SaturatingAdd(to_a[x], search_w);
    if (via_s < to_b[x]) {
      strict_s_mark_[x] = 1;
      s_.push_back(x);
    }
    const Distance via_t = SaturatingAdd(search_w, from_b[x]);
    if (via_t < from_a[x]) {
      strict_t_mark_[x] = 1;
      t_.push_back(x);
    }
  }
  // The marks stay live through the repair (the clean phase keys off
  // them); every return path below resets them through the lists.
  const auto clear_marks = [this] {
    for (const VertexId x : s_) strict_s_mark_[x] = 0;
    for (const VertexId y : t_) strict_t_mark_[y] = 0;
  };

  if (new_w != kInfDistance) graph_->AddArc(a, b, new_w);
  ++stats_.ops_applied;
  if (old_w == kInfDistance) {
    ++stats_.inserts;
  } else if (is_delete) {
    ++stats_.deletes;
  } else {
    ++stats_.reweights;
  }

  if (s_.empty() || t_.empty()) {
    // No pair's distance moved; the labels are already exact.
    clear_marks();
    stats_.seconds += watch.Seconds();
    return true;
  }
  ++stats_.repairs;
  stats_.affected_sources += s_.size();
  stats_.affected_targets += t_.size();

  const double frac = options_.rebuild_frontier_fraction;
  if (frac > 0 && frac <= 1.0 &&
      static_cast<double>(s_.size() + t_.size()) >
          frac * static_cast<double>(n)) {
    clear_marks();
    Status rebuilt = RebuildFallback();
    stats_.seconds += watch.Seconds();
    if (!rebuilt.ok()) return rebuilt;
    return true;
  }

  // Clean: every changed pair has both endpoints strict, so the only
  // entries whose VALUES can be stale are those whose owner and pivot
  // sit on opposite strict sides. Drop them, remembering which owners
  // actually lost something — the restore passes below run over those
  // owners ONLY (see the header coverage proof; everyone else's label
  // is untouched and every broken pair is repaired through a loser).
  r_out_.clear();
  r_in_.clear();
  for (const VertexId x : s_) {
    LabelVector& label = (*out_)[x];
    const size_t before = label.size();
    label.erase(std::remove_if(label.begin(), label.end(),
                               [this](const LabelEntry& e) {
                                 return strict_t_mark_[e.pivot] != 0;
                               }),
                label.end());
    if (label.size() != before) {
      stats_.entries_removed += before - label.size();
      r_out_.push_back(x);
      MarkTouched(out_, x);
    }
  }
  for (const VertexId y : t_) {
    LabelVector& label = (*in_)[y];
    const size_t before = label.size();
    label.erase(std::remove_if(label.begin(), label.end(),
                               [this](const LabelEntry& e) {
                                 return strict_s_mark_[e.pivot] != 0;
                               }),
                label.end());
    if (label.size() != before) {
      stats_.entries_removed += before - label.size();
      r_in_.push_back(y);
      MarkTouched(in_, y);
    }
  }

  // Restore in ascending id (descending rank importance) over the
  // owners that lost entries. The witness-probe induction relies on
  // this order: when member v is processed, every label entry with
  // pivot < v is already exact. Each member first repairs the cleaned
  // side(s) of its OWN label against exact new distances (owner
  // restore), then re-derives its appearances as a PIVOT in labels on
  // the opposite side with a pruned search (pivot restore) — the
  // incremental mirror of one build root.
  {
    const bool shared = out_ == in_;
    size_t i = 0, j = 0;
    while (i < r_out_.size() || j < r_in_.size()) {
      const VertexId next_s = i < r_out_.size() ? r_out_[i] : kInvalidVertex;
      const VertexId next_t = j < r_in_.size() ? r_in_[j] : kInvalidVertex;
      const VertexId v = std::min(next_s, next_t);
      const bool lost_out = next_s == v;
      const bool lost_in = next_t == v;
      if (lost_out) ++i;
      if (lost_in) ++j;
      if (lost_out) OwnerRestore(v, /*out_side=*/true);
      // Undirected labels are shared, so one owner pass repairs both
      // sides at once.
      if (lost_in && !(shared && lost_out)) OwnerRestore(v, /*out_side=*/false);
      // A cleaned Lout(v) can orphan covers that used v as a pivot in
      // OTHER vertices' in-labels (v's out-leg died), and vice versa;
      // undirected searches are symmetric, so one forward pass covers
      // both.
      if (lost_out || shared) PivotRestore(v, /*backward=*/false);
      if (lost_in && !shared) PivotRestore(v, /*backward=*/true);
    }
  }

  clear_marks();
  stats_.seconds += watch.Seconds();
  return true;
}

Status IncrementalUpdater::ApplyBatch(std::span<const UpdateOp> ops) {
  for (const UpdateOp& op : ops) {
    HOPDB_RETURN_NOT_OK(Apply(op).status());
  }
  Finalize();
  return Status::OK();
}

void IncrementalUpdater::Finalize() {
  if (finalized_) return;
  index_->RebuildFlatStore();
  finalized_ = true;
}

Distance IncrementalUpdater::LiveQuery(VertexId u, VertexId v) const {
  return QueryRefs((*out_)[u], (*in_)[v], u, v);
}

void IncrementalUpdater::ApplyDecrease(VertexId a, VertexId b,
                                       Distance weight, bool insert) {
  graph_->AddArc(a, b, weight);
  finalized_ = false;
  ++stats_.ops_applied;
  if (insert) {
    ++stats_.inserts;
  } else {
    ++stats_.reweights;
  }
  ++stats_.repairs;

  // Roots in ascending id (descending rank importance): a label's
  // pivots all outrank its owner, so the owner resumes last. Resumes
  // mutate labels, so iterate over copies of the root lists.
  {
    const LabelVector roots = (*in_)[a];
    for (const LabelEntry& e : roots) {
      ResumeDecrease(e.pivot, SaturatingAdd(e.dist, weight), b,
                     /*backward=*/false);
    }
    ResumeDecrease(a, weight, b, /*backward=*/false);
  }
  {
    const LabelVector roots = (*out_)[b];
    for (const LabelEntry& e : roots) {
      ResumeDecrease(e.pivot, SaturatingAdd(e.dist, weight), a,
                     /*backward=*/true);
    }
    ResumeDecrease(b, weight, a, /*backward=*/true);
  }
}

void IncrementalUpdater::ResumeDecrease(VertexId root, Distance start_dist,
                                        VertexId start, bool backward) {
  const VertexId n = graph_->num_vertices();
  if (resume_dist_.size() != static_cast<size_t>(n)) {
    resume_dist_.assign(n, kInfDistance);
    resume_stamp_.assign(n, 0);
  }
  ++resume_epoch_;
  std::vector<LabelVector>* side = backward ? out_ : in_;

  using Item = std::pair<Distance, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  resume_dist_[start] = start_dist;
  resume_stamp_[start] = resume_epoch_;
  heap.push({start_dist, start});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (resume_stamp_[u] != resume_epoch_ || d != resume_dist_[u]) continue;
    // Prune as soon as the current labels already certify <= d; the
    // subtree below u is then covered by earlier (higher-ranked) roots
    // or pre-existing entries.
    const Distance have =
        backward ? LiveQuery(u, root) : LiveQuery(root, u);
    if (have <= d) continue;
    if (root < u) UpsertEntry(side, u, root, d);
    const std::span<const Arc> arcs =
        backward ? graph_->InArcs(u) : graph_->OutArcs(u);
    for (const Arc& arc : arcs) {
      const Distance nd = SaturatingAdd(d, arc.weight);
      if (nd == kInfDistance) continue;
      if (resume_stamp_[arc.to] != resume_epoch_ ||
          nd < resume_dist_[arc.to]) {
        resume_dist_[arc.to] = nd;
        resume_stamp_[arc.to] = resume_epoch_;
        heap.push({nd, arc.to});
      }
    }
  }
}

void IncrementalUpdater::OwnerRestore(VertexId v, bool out_side) {
  // One exact single-source search gives v's new distances to every
  // candidate pivot. Pass 1 re-verifies the entries that survived the
  // clean against those distances — snapping any stale-large upper
  // bound a past decrease repair left behind down to exact, dropping
  // pivots that became unreachable — so this label is fully exact
  // before any witness probe reads it. Pass 2 then adds each missing
  // pivot h < v at its exact distance unless some common pivot below h
  // already certifies it — the builder's prune rule, so label
  // minimality is preserved where possible.
  const std::vector<Distance> dist =
      DynDistances(*graph_, v, /*backward=*/!out_side);
  std::vector<LabelVector>* side = out_side ? out_ : in_;
  LabelVector& label = (*side)[v];
  size_t kept = 0;
  bool changed = false;
  for (size_t k = 0; k < label.size(); ++k) {
    const Distance d = dist[label[k].pivot];
    if (d == kInfDistance) {
      ++stats_.entries_removed;
      changed = true;
      continue;
    }
    if (label[k].dist != d) {
      label[k].dist = d;
      ++stats_.entries_updated;
      changed = true;
    }
    label[kept++] = label[k];
  }
  label.resize(kept);
  if (changed) MarkTouched(side, v);
  for (VertexId h = 0; h < v; ++h) {
    const Distance d = dist[h];
    if (d == kInfDistance) continue;
    if (LookupPivot(label, h) != kInfDistance) continue;
    const bool covered = out_side ? HasRepairWitness(v, h, h, d)
                                  : HasRepairWitness(h, v, h, d);
    if (!covered) UpsertEntry(side, v, h, d);
  }
}

void IncrementalUpdater::PivotRestore(VertexId v, bool backward) {
  // Pruned Dijkstra from v over the post-update graph — the
  // incremental mirror of one build root. A vertex u is pruned as soon
  // as some common pivot BELOW v certifies d(v, u) (sums over current
  // labels never underestimate, so a witness at the tentative distance
  // is exact); otherwise the trivial (v, d) entry is upserted for
  // owners ranked under v and the search keeps expanding.
  const VertexId n = graph_->num_vertices();
  if (resume_dist_.size() != static_cast<size_t>(n)) {
    resume_dist_.assign(n, kInfDistance);
    resume_stamp_.assign(n, 0);
  }
  ++resume_epoch_;
  std::vector<LabelVector>* side = backward ? out_ : in_;

  using Item = std::pair<Distance, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  resume_dist_[v] = 0;
  resume_stamp_[v] = resume_epoch_;
  heap.push({0, v});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (resume_stamp_[u] != resume_epoch_ || d != resume_dist_[u]) continue;
    if (u != v) {
      const bool covered = backward ? HasRepairWitness(u, v, v, d)
                                    : HasRepairWitness(v, u, v, d);
      if (covered) continue;
      if (u > v) UpsertEntry(side, u, v, d);
    }
    const std::span<const Arc> arcs =
        backward ? graph_->InArcs(u) : graph_->OutArcs(u);
    for (const Arc& arc : arcs) {
      const Distance nd = SaturatingAdd(d, arc.weight);
      if (nd == kInfDistance) continue;
      if (resume_stamp_[arc.to] != resume_epoch_ ||
          nd < resume_dist_[arc.to]) {
        resume_dist_[arc.to] = nd;
        resume_stamp_[arc.to] = resume_epoch_;
        heap.push({nd, arc.to});
      }
    }
  }
}

bool IncrementalUpdater::HasRepairWitness(VertexId x, VertexId y,
                                          VertexId beta, Distance d) const {
  // Scalar mirror of QueryKernel::has_witness_flat over the live label
  // vectors: existence of a common pivot z < beta with d1 + d2 <= d,
  // early exit on the first hit.
  const LabelVector& out_x = (*out_)[x];
  const LabelVector& in_y = (*in_)[y];
  size_t i = 0, j = 0;
  while (i < out_x.size() && j < in_y.size()) {
    const VertexId pa = out_x[i].pivot;
    const VertexId pb = in_y[j].pivot;
    if (pa >= beta || pb >= beta) break;
    if (pa == pb) {
      if (SaturatingAdd(out_x[i].dist, in_y[j].dist) <= d) return true;
      ++i;
      ++j;
    } else if (pa < pb) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

void IncrementalUpdater::UpsertEntry(std::vector<LabelVector>* side,
                                     VertexId owner, VertexId pivot,
                                     Distance dist) {
  LabelVector& label = (*side)[owner];
  auto it = std::lower_bound(
      label.begin(), label.end(), pivot,
      [](const LabelEntry& e, VertexId p) { return e.pivot < p; });
  if (it != label.end() && it->pivot == pivot) {
    if (it->dist != dist) {
      it->dist = dist;
      ++stats_.entries_updated;
      MarkTouched(side, owner);
    }
  } else {
    label.insert(it, LabelEntry{pivot, dist});
    ++stats_.entries_added;
    MarkTouched(side, owner);
  }
}

void IncrementalUpdater::MarkTouched(const std::vector<LabelVector>* side,
                                     VertexId owner) {
  const size_t n = graph_->num_vertices();
  if (touched_out_mark_.size() != n) {
    touched_out_mark_.assign(n, 0);
    touched_in_mark_.assign(n, 0);
  }
  const bool shared = out_ == in_;
  if ((side == out_ || shared) && touched_out_mark_[owner] == 0) {
    touched_out_mark_[owner] = 1;
    touched_out_.push_back(owner);
  }
  if ((side == in_ || shared) && touched_in_mark_[owner] == 0) {
    touched_in_mark_[owner] = 1;
    touched_in_.push_back(owner);
  }
}

IncrementalUpdater::TouchedOwners IncrementalUpdater::TakeTouchedOwners() {
  TouchedOwners result;
  result.all = touched_all_;
  result.out = std::move(touched_out_);
  result.in = std::move(touched_in_);
  std::sort(result.out.begin(), result.out.end());
  std::sort(result.in.begin(), result.in.end());
  touched_all_ = false;
  touched_out_.clear();
  touched_in_.clear();
  for (const VertexId v : result.out) touched_out_mark_[v] = 0;
  for (const VertexId v : result.in) touched_in_mark_[v] = 0;
  return result;
}

Status IncrementalUpdater::RebuildFallback() {
  ++stats_.full_rebuilds;
  touched_all_ = true;
  EdgeList edges = graph_->ToEdgeList();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph csr, CsrGraph::FromEdgeList(edges));
  // The dynamic graph lives in internal (rank) ids, so the rebuild runs
  // on an already-ranked graph and the index's RankMapping stays valid.
  HOPDB_ASSIGN_OR_RETURN(BuildOutput output,
                         BuildHopLabeling(csr, options_.rebuild));
  *index_ = std::move(output.index);
  out_ = index_->mutable_out();
  in_ = index_->directed() ? index_->mutable_in() : out_;
  finalized_ = false;
  return Status::OK();
}

// -----------------------------------------------------------------------
// Op-stream parsing
// -----------------------------------------------------------------------

Result<UpdateOp> ParseUpdateOpLine(const std::string& line) {
  const std::string trimmed = TrimString(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  std::vector<std::string> tokens = SplitString(trimmed, ' ');
  std::string verb = tokens[0];
  for (char& c : verb) c = static_cast<char>(std::toupper(c));

  UpdateOp op;
  size_t want_ids = 2;
  bool optional_weight = false;
  if (verb == "ADDEDGE" || verb == "ADD") {
    op.kind = UpdateOp::Kind::kAddEdge;
    optional_weight = true;
  } else if (verb == "DELEDGE" || verb == "DEL") {
    op.kind = UpdateOp::Kind::kDelEdge;
  } else {
    return Status::InvalidArgument("unknown update op '" + tokens[0] +
                                   "' (ADDEDGE u v [w] | DELEDGE u v)");
  }
  const size_t args = tokens.size() - 1;
  if (args < want_ids || args > want_ids + (optional_weight ? 1 : 0)) {
    return Status::InvalidArgument("op '" + verb + "' expects " +
                                   std::to_string(want_ids) +
                                   (optional_weight ? " or 3" : "") +
                                   " arguments");
  }
  uint64_t values[3] = {0, 0, 1};
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (!ParseUint64(tokens[i], &values[i - 1])) {
      return Status::InvalidArgument("bad op operand '" + tokens[i] + "'");
    }
  }
  if (values[0] > kInvalidVertex || values[1] > kInvalidVertex ||
      values[2] >= kInfDistance) {
    return Status::InvalidArgument("op operand out of range");
  }
  op.u = static_cast<VertexId>(values[0]);
  op.v = static_cast<VertexId>(values[1]);
  op.weight = static_cast<Distance>(values[2]);
  return op;
}

}  // namespace hopdb
