// Owner-partitioned parallel sort — the dedup-phase primitive shared by
// the in-memory builder (Builder::DedupAndFilter) and the external
// builder's in-memory candidate runs (ExternalSorter sort hook).
//
// The candidate streams of both builders are sorted by (owner, pivot,
// dist) before duplicate collapse. A global std::sort is the last
// sequential wall in the construction pipeline, so this helper replaces
// it with a two-pass counting partition over the owner key:
//
//   1. count   — per-owner record counts (relaxed atomic adds; the sums
//                are order-insensitive), prefix-summed into owner
//                offsets;
//   2. scatter — records move to their owner's range in a scratch
//                buffer (per-owner atomic cursors; in-owner order is
//                scheduling-dependent at this point);
//   3. sort    — the owner space is cut into ~num_threads partitions at
//                record-count quantiles (always on owner boundaries) and
//                each partition is sorted independently.
//
// Because the comparator's primary key is the owner and equal-comparing
// records are bytewise identical (owner, pivot, dist all equal), the
// concatenation of sorted partitions in partition order *is* the global
// sorted sequence: the output is bit-identical to std::sort for every
// thread count, which is what keeps the builders' any-thread-count
// determinism guarantee intact.

#ifndef HOPDB_LABELING_CANDIDATE_PARTITION_H_
#define HOPDB_LABELING_CANDIDATE_PARTITION_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/parallel.h"

namespace hopdb {

/// Below this record count the counting passes cost more than the sort;
/// OwnerPartitionedSort degenerates to std::sort.
constexpr size_t kMinParallelSortRecords = 1 << 13;

/// Reusable scratch for OwnerPartitionedSort. Hold one per builder and
/// pass it to every call: the owner-offset table and partition bounds
/// keep their capacity across iterations (no per-iteration allocation in
/// steady state).
struct OwnerPartitionPlan {
  /// Record-index partition boundaries from the last call, owner-aligned
  /// and ascending; bounds[0] == 0, bounds.back() == recs->size().
  /// Callers run per-partition dedup/compaction over these.
  std::vector<size_t> bounds;
  /// Internal: per-owner offsets (counting pass), consumed as scatter
  /// cursors.
  std::vector<uint64_t> owner_offsets;
};

/// Sorts `recs` with `less` — whose primary key MUST be `owner_of(rec)`,
/// an integer in [0, num_owners) — producing exactly std::sort's output
/// for any thread count. `scratch` is the ping-pong buffer (resized as
/// needed, contents garbage afterwards); `plan` receives the partition
/// boundaries and reusable internal tables. Sequential below
/// kMinParallelSortRecords or when num_threads <= 1.
template <typename Rec, typename OwnerOf, typename Less>
void OwnerPartitionedSort(std::vector<Rec>* recs, VertexId num_owners,
                          uint32_t num_threads, OwnerOf owner_of, Less less,
                          std::vector<Rec>* scratch,
                          OwnerPartitionPlan* plan) {
  const size_t m = recs->size();
  if (num_threads <= 1 || m < kMinParallelSortRecords || num_owners == 0) {
    std::sort(recs->begin(), recs->end(), less);
    plan->bounds.assign({size_t{0}, m});
    return;
  }

  // Pass 1: per-owner counts. Relaxed atomic adds — the final sums do
  // not depend on scheduling.
  auto& offsets = plan->owner_offsets;
  offsets.assign(static_cast<size_t>(num_owners) + 1, 0);
  ParallelChunks(num_threads, m, [&](size_t b, size_t e, uint32_t) {
    for (size_t i = b; i < e; ++i) {
      std::atomic_ref<uint64_t>(offsets[owner_of((*recs)[i]) + 1])
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t v = 0; v < num_owners; ++v) offsets[v + 1] += offsets[v];

  // Partition the owner space at record-count quantiles (owner-aligned,
  // so every partition is a contiguous run of whole owners).
  plan->bounds.clear();
  plan->bounds.push_back(0);
  for (uint32_t k = 1; k < num_threads; ++k) {
    const uint64_t target =
        static_cast<uint64_t>(m) * k / num_threads;
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    const size_t bound = static_cast<size_t>(*it);
    if (bound > plan->bounds.back() && bound < m) {
      plan->bounds.push_back(bound);
    }
  }
  plan->bounds.push_back(m);

  // Pass 2: scatter to owner ranges. The per-owner cursor order is
  // scheduling-dependent; the per-partition sort below canonicalizes it.
  scratch->resize(m);
  ParallelChunks(num_threads, m, [&](size_t b, size_t e, uint32_t) {
    for (size_t i = b; i < e; ++i) {
      const Rec& r = (*recs)[i];
      const uint64_t pos = std::atomic_ref<uint64_t>(offsets[owner_of(r)])
                               .fetch_add(1, std::memory_order_relaxed);
      (*scratch)[pos] = r;
    }
  });

  // Pass 3: sort each partition, one per thread.
  const size_t parts = plan->bounds.size() - 1;
  ParallelChunks(static_cast<uint32_t>(parts), parts,
                 [&](size_t pb, size_t pe, uint32_t) {
                   for (size_t p = pb; p < pe; ++p) {
                     std::sort(scratch->begin() +
                                   static_cast<ptrdiff_t>(plan->bounds[p]),
                               scratch->begin() +
                                   static_cast<ptrdiff_t>(plan->bounds[p + 1]),
                               less);
                   }
                 });
  recs->swap(*scratch);
}

}  // namespace hopdb

#endif  // HOPDB_LABELING_CANDIDATE_PARTITION_H_
