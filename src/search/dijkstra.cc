#include "search/dijkstra.h"

#include <queue>
#include <vector>

#include "search/bfs.h"

namespace hopdb {

std::vector<Distance> DijkstraDistances(const CsrGraph& graph,
                                        VertexId source, bool backward) {
  DijkstraRunner runner(graph);
  runner.Run(source, backward);
  std::vector<Distance> out(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out[v] = runner.DistanceTo(v);
  }
  return out;
}

DijkstraRunner::DijkstraRunner(const CsrGraph& graph)
    : graph_(graph), dist_(graph.num_vertices(), kInfDistance) {
  visited_.reserve(graph.num_vertices());
}

void DijkstraRunner::Run(VertexId source, bool backward) {
  for (VertexId v : visited_) dist_[v] = kInfDistance;
  visited_.clear();

  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  dist_[source] = 0;
  visited_.push_back(source);
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != dist_[v]) continue;  // stale heap entry
    auto arcs = backward ? graph_.InArcs(v) : graph_.OutArcs(v);
    for (const Arc& a : arcs) {
      Distance nd = SaturatingAdd(d, a.weight);
      if (nd < dist_[a.to]) {
        if (dist_[a.to] == kInfDistance) visited_.push_back(a.to);
        dist_[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
}

Distance DijkstraDistance(const CsrGraph& graph, VertexId s, VertexId t) {
  if (s == t) return 0;
  DijkstraRunner runner(graph);
  runner.Run(s);
  return runner.DistanceTo(t);
}

std::vector<Distance> ExactDistances(const CsrGraph& graph, VertexId source,
                                     bool backward) {
  if (graph.weighted()) return DijkstraDistances(graph, source, backward);
  return BfsDistances(graph, source, backward);
}

}  // namespace hopdb
