#include "search/bidirectional.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace hopdb {

BidirectionalSearcher::BidirectionalSearcher(const CsrGraph& graph)
    : graph_(graph),
      dist_fwd_(graph.num_vertices(), kInfDistance),
      dist_bwd_(graph.num_vertices(), kInfDistance) {}

Distance BidirectionalSearcher::Query(VertexId s, VertexId t) {
  if (s == t) {
    last_settled_ = 0;
    return 0;
  }
  for (VertexId v : touched_fwd_) dist_fwd_[v] = kInfDistance;
  for (VertexId v : touched_bwd_) dist_bwd_[v] = kInfDistance;
  touched_fwd_.clear();
  touched_bwd_.clear();
  last_settled_ = 0;
  return graph_.weighted() ? QueryWeighted(s, t) : QueryUnweighted(s, t);
}

Distance BidirectionalSearcher::QueryUnweighted(VertexId s, VertexId t) {
  // Level-synchronous bidirectional BFS: always expand the smaller
  // frontier; stop once the completed levels prove no shorter meeting can
  // appear (lf + lb >= best).
  std::vector<VertexId> frontier_f{s};
  std::vector<VertexId> frontier_b{t};
  dist_fwd_[s] = 0;
  dist_bwd_[t] = 0;
  touched_fwd_.push_back(s);
  touched_bwd_.push_back(t);
  Distance lf = 0, lb = 0;
  Distance best = kInfDistance;

  std::vector<VertexId> next;
  while (!frontier_f.empty() && !frontier_b.empty()) {
    if (best != kInfDistance && lf + lb >= best) break;
    const bool expand_forward = frontier_f.size() <= frontier_b.size();
    auto& frontier = expand_forward ? frontier_f : frontier_b;
    auto& dist_mine = expand_forward ? dist_fwd_ : dist_bwd_;
    auto& dist_other = expand_forward ? dist_bwd_ : dist_fwd_;
    auto& touched = expand_forward ? touched_fwd_ : touched_bwd_;
    Distance level = expand_forward ? lf : lb;

    next.clear();
    for (VertexId v : frontier) {
      ++last_settled_;
      auto arcs = expand_forward ? graph_.OutArcs(v) : graph_.InArcs(v);
      for (const Arc& a : arcs) {
        if (dist_mine[a.to] != kInfDistance) continue;
        dist_mine[a.to] = level + 1;
        touched.push_back(a.to);
        next.push_back(a.to);
        if (dist_other[a.to] != kInfDistance) {
          best = std::min(best,
                          SaturatingAdd(level + 1, dist_other[a.to]));
        }
      }
    }
    frontier.swap(next);
    if (expand_forward) {
      ++lf;
    } else {
      ++lb;
    }
  }
  return best;
}

Distance BidirectionalSearcher::QueryWeighted(VertexId s, VertexId t) {
  struct Item {
    Distance dist;
    VertexId vertex;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  using Heap = std::priority_queue<Item, std::vector<Item>, std::greater<>>;
  Heap heap_f, heap_b;
  dist_fwd_[s] = 0;
  dist_bwd_[t] = 0;
  touched_fwd_.push_back(s);
  touched_bwd_.push_back(t);
  heap_f.push({0, s});
  heap_b.push({0, t});
  Distance best = kInfDistance;

  auto settle = [&](bool forward, Heap& heap) {
    auto& dist_mine = forward ? dist_fwd_ : dist_bwd_;
    auto& dist_other = forward ? dist_bwd_ : dist_fwd_;
    auto& touched = forward ? touched_fwd_ : touched_bwd_;
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      if (d != dist_mine[v]) {
        heap.pop();  // stale
        continue;
      }
      heap.pop();
      ++last_settled_;
      auto arcs = forward ? graph_.OutArcs(v) : graph_.InArcs(v);
      for (const Arc& a : arcs) {
        Distance nd = SaturatingAdd(d, a.weight);
        if (nd < dist_mine[a.to]) {
          if (dist_mine[a.to] == kInfDistance) touched.push_back(a.to);
          dist_mine[a.to] = nd;
          heap.push({nd, a.to});
        }
        if (dist_other[a.to] != kInfDistance) {
          best = std::min(best, SaturatingAdd(nd, dist_other[a.to]));
        }
      }
      return;  // settled exactly one vertex
    }
  };

  while (!heap_f.empty() || !heap_b.empty()) {
    // Drop stale tops so the termination test sees true minima.
    auto prune_stale = [&](Heap& heap, std::vector<Distance>& dist) {
      while (!heap.empty() && heap.top().dist != dist[heap.top().vertex]) {
        heap.pop();
      }
    };
    prune_stale(heap_f, dist_fwd_);
    prune_stale(heap_b, dist_bwd_);
    Distance top_f = heap_f.empty() ? kInfDistance : heap_f.top().dist;
    Distance top_b = heap_b.empty() ? kInfDistance : heap_b.top().dist;
    if (best != kInfDistance && SaturatingAdd(top_f, top_b) >= best) break;
    if (top_f == kInfDistance && top_b == kInfDistance) break;
    if (top_f <= top_b) {
      settle(/*forward=*/true, heap_f);
    } else {
      settle(/*forward=*/false, heap_b);
    }
  }
  return best;
}

}  // namespace hopdb
