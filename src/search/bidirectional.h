// BIDIJ: the paper's in-memory query baseline (Table 6) — bidirectional
// BFS for unweighted graphs, bidirectional Dijkstra for weighted ones.
// No index; every query searches forward from s and backward from t.

#ifndef HOPDB_SEARCH_BIDIRECTIONAL_H_
#define HOPDB_SEARCH_BIDIRECTIONAL_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace hopdb {

/// Reusable bidirectional searcher (O(touched) reset between queries so
/// benchmark loops measure search work, not allocation).
class BidirectionalSearcher {
 public:
  explicit BidirectionalSearcher(const CsrGraph& graph);

  /// Exact distance from s to t; kInfDistance when unreachable.
  Distance Query(VertexId s, VertexId t);

  /// Vertices settled by the last query (for work accounting in benches).
  uint64_t last_settled() const { return last_settled_; }

 private:
  Distance QueryUnweighted(VertexId s, VertexId t);
  Distance QueryWeighted(VertexId s, VertexId t);

  const CsrGraph& graph_;
  std::vector<Distance> dist_fwd_;
  std::vector<Distance> dist_bwd_;
  std::vector<VertexId> touched_fwd_;
  std::vector<VertexId> touched_bwd_;
  uint64_t last_settled_ = 0;
};

}  // namespace hopdb

#endif  // HOPDB_SEARCH_BIDIRECTIONAL_H_
