#include "search/bfs.h"

#include <vector>

namespace hopdb {

std::vector<Distance> BfsDistances(const CsrGraph& graph, VertexId source,
                                   bool backward) {
  BfsRunner runner(graph);
  runner.Run(source, backward);
  std::vector<Distance> out(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out[v] = runner.DistanceTo(v);
  }
  return out;
}

BfsRunner::BfsRunner(const CsrGraph& graph)
    : graph_(graph), dist_(graph.num_vertices(), kInfDistance) {
  queue_.reserve(graph.num_vertices());
  visited_.reserve(graph.num_vertices());
}

void BfsRunner::Run(VertexId source, bool backward) {
  for (VertexId v : visited_) dist_[v] = kInfDistance;
  visited_.clear();
  queue_.clear();

  dist_[source] = 0;
  queue_.push_back(source);
  visited_.push_back(source);
  size_t head = 0;
  while (head < queue_.size()) {
    VertexId v = queue_[head++];
    Distance d = dist_[v];
    auto arcs = backward ? graph_.InArcs(v) : graph_.OutArcs(v);
    for (const Arc& a : arcs) {
      if (dist_[a.to] == kInfDistance) {
        dist_[a.to] = d + 1;
        queue_.push_back(a.to);
        visited_.push_back(a.to);
      }
    }
  }
}

Distance BfsDistance(const CsrGraph& graph, VertexId s, VertexId t) {
  if (s == t) return 0;
  BfsRunner runner(graph);
  runner.Run(s);
  return runner.DistanceTo(t);
}

}  // namespace hopdb
