// Breadth-first search distance computation for unweighted graphs.
// Serves as the exactness ground truth in tests and as a building block
// for PLL, HCL, and graph statistics.

#ifndef HOPDB_SEARCH_BFS_H_
#define HOPDB_SEARCH_BFS_H_

#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace hopdb {

/// Single-source hop distances following out-arcs (forward) or in-arcs
/// (backward). Unreachable vertices get kInfDistance.
std::vector<Distance> BfsDistances(const CsrGraph& graph, VertexId source,
                                   bool backward = false);

/// Reusable BFS workspace: repeated single-source scans without
/// re-allocating or re-clearing the distance array (O(touched) reset).
/// Used heavily by PLL, which runs |V| searches.
class BfsRunner {
 public:
  explicit BfsRunner(const CsrGraph& graph);

  /// Runs BFS from `source`; distances remain valid until the next Run.
  void Run(VertexId source, bool backward = false);

  Distance DistanceTo(VertexId v) const { return dist_[v]; }

  /// Vertices reached by the last Run, in visit (distance) order.
  const std::vector<VertexId>& visited() const { return visited_; }

 private:
  const CsrGraph& graph_;
  std::vector<Distance> dist_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> visited_;
};

/// Exact distance for one pair by plain BFS (test helper).
Distance BfsDistance(const CsrGraph& graph, VertexId s, VertexId t);

}  // namespace hopdb

#endif  // HOPDB_SEARCH_BFS_H_
