// Dijkstra single-source shortest paths for weighted graphs; ground truth
// for weighted tests and the engine behind weighted PLL / IS-Label.

#ifndef HOPDB_SEARCH_DIJKSTRA_H_
#define HOPDB_SEARCH_DIJKSTRA_H_

#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace hopdb {

/// Single-source weighted distances (forward or backward).
std::vector<Distance> DijkstraDistances(const CsrGraph& graph,
                                        VertexId source,
                                        bool backward = false);

/// Reusable Dijkstra workspace with O(touched) reset, like BfsRunner.
class DijkstraRunner {
 public:
  explicit DijkstraRunner(const CsrGraph& graph);

  void Run(VertexId source, bool backward = false);

  Distance DistanceTo(VertexId v) const { return dist_[v]; }

  /// Vertices settled by the last Run (in settle order).
  const std::vector<VertexId>& visited() const { return visited_; }

 private:
  struct HeapItem {
    Distance dist;
    VertexId vertex;
    bool operator>(const HeapItem& o) const { return dist > o.dist; }
  };

  const CsrGraph& graph_;
  std::vector<Distance> dist_;
  std::vector<VertexId> visited_;
};

/// Exact one-pair weighted distance (test helper).
Distance DijkstraDistance(const CsrGraph& graph, VertexId s, VertexId t);

/// Dispatches to BFS for unweighted graphs and Dijkstra otherwise —
/// "the ground truth oracle" used throughout tests and verification.
std::vector<Distance> ExactDistances(const CsrGraph& graph, VertexId source,
                                     bool backward = false);

}  // namespace hopdb

#endif  // HOPDB_SEARCH_DIJKSTRA_H_
