// Fundamental graph value types shared by every module.

#ifndef HOPDB_GRAPH_TYPES_H_
#define HOPDB_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace hopdb {

/// Vertex identifier. After ranking, internal ids are rank positions:
/// id 0 is the highest-ranked (highest-degree) vertex, matching the
/// paper's convention (its example graph labels vertices 0..7 by rank).
using VertexId = uint32_t;

/// Distance / edge weight. The paper stores 8-bit distances for unweighted
/// graphs; we compute in 32 bits (weighted graphs need the range) and
/// narrow on disk when the value range allows it.
using Distance = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// "No path" marker. All query APIs return kInfDistance for unreachable
/// pairs.
inline constexpr Distance kInfDistance = std::numeric_limits<Distance>::max();

/// Adds two distances, saturating at kInfDistance (so inf + x == inf and
/// no overflow UB is possible when combining label halves).
inline Distance SaturatingAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  uint64_t s = static_cast<uint64_t>(a) + static_cast<uint64_t>(b);
  return s >= kInfDistance ? kInfDistance : static_cast<Distance>(s);
}

/// A directed, weighted edge. Unweighted graphs use weight == 1.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Distance weight = 1;

  Edge() = default;
  Edge(VertexId s, VertexId d, Distance w = 1) : src(s), dst(d), weight(w) {}

  bool operator==(const Edge& o) const {
    return src == o.src && dst == o.dst && weight == o.weight;
  }
};

}  // namespace hopdb

#endif  // HOPDB_GRAPH_TYPES_H_
