#include "graph/transform.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace hopdb {

EdgeList ReverseEdges(const EdgeList& edges) {
  if (!edges.directed()) return edges;
  EdgeList out(edges.num_vertices(), /*directed=*/true);
  out.set_weighted(edges.weighted());
  for (const Edge& e : edges.edges()) {
    out.Add(e.dst, e.src, e.weight);
  }
  out.set_num_vertices(edges.num_vertices());
  out.Normalize();
  return out;
}

EdgeList Symmetrize(const EdgeList& edges) {
  EdgeList out(edges.num_vertices(), /*directed=*/false);
  out.set_weighted(edges.weighted());
  for (const Edge& e : edges.edges()) {
    out.Add(e.src, e.dst, e.weight);
  }
  out.set_num_vertices(edges.num_vertices());
  out.Normalize();
  return out;
}

EdgeList InducedSubgraph(const EdgeList& edges,
                         const std::vector<bool>& selected,
                         std::vector<VertexId>* old_ids) {
  HOPDB_CHECK_EQ(selected.size(), edges.num_vertices());
  std::vector<VertexId> remap(edges.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (selected[v]) remap[v] = next++;
  }
  if (old_ids != nullptr) {
    old_ids->clear();
    old_ids->reserve(next);
    for (VertexId v = 0; v < edges.num_vertices(); ++v) {
      if (selected[v]) old_ids->push_back(v);
    }
  }
  EdgeList out(next, edges.directed());
  out.set_weighted(edges.weighted());
  for (const Edge& e : edges.edges()) {
    if (remap[e.src] != kInvalidVertex && remap[e.dst] != kInvalidVertex) {
      out.Add(remap[e.src], remap[e.dst], e.weight);
    }
  }
  out.set_num_vertices(next);
  out.Normalize();
  return out;
}

std::vector<uint32_t> WeaklyConnectedComponents(const CsrGraph& graph,
                                                uint32_t* num_components) {
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  uint32_t next_comp = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next_comp;
    stack.push_back(start);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      auto visit = [&](const Arc& a) {
        if (comp[a.to] == UINT32_MAX) {
          comp[a.to] = next_comp;
          stack.push_back(a.to);
        }
      };
      for (const Arc& a : graph.OutArcs(v)) visit(a);
      if (graph.directed()) {
        for (const Arc& a : graph.InArcs(v)) visit(a);
      }
    }
    ++next_comp;
  }
  if (num_components != nullptr) *num_components = next_comp;
  return comp;
}

EdgeList LargestComponent(const CsrGraph& graph,
                          std::vector<VertexId>* old_ids) {
  uint32_t num_comp = 0;
  std::vector<uint32_t> comp = WeaklyConnectedComponents(graph, &num_comp);
  std::vector<uint64_t> size(num_comp, 0);
  for (uint32_t c : comp) size[c]++;
  uint32_t best =
      static_cast<uint32_t>(std::max_element(size.begin(), size.end()) -
                            size.begin());
  std::vector<bool> selected(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    selected[v] = comp[v] == best;
  }
  return InducedSubgraph(graph.ToEdgeList(), selected, old_ids);
}

}  // namespace hopdb
