#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

#include "util/serde.h"
#include "util/string_util.h"

namespace hopdb {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'R', '1'};

/// Splits a line into up to 3 whitespace-separated numeric fields.
/// Returns the number of fields found, or -1 on malformed content.
int SplitFields(const std::string& line, uint64_t fields[3]) {
  int count = 0;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    while (i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= n) break;
    if (count == 3) return -1;  // too many fields
    uint64_t v = 0;
    bool any = false;
    while (i < n && line[i] >= '0' && line[i] <= '9') {
      v = v * 10 + static_cast<uint64_t>(line[i] - '0');
      any = true;
      ++i;
    }
    if (!any) return -1;  // non-numeric field
    fields[count++] = v;
  }
  return count;
}
}  // namespace

Result<EdgeList> ParseTextEdgeList(const std::string& text,
                                   const TextGraphOptions& options) {
  EdgeList out(0, options.directed);
  std::unordered_map<uint64_t, VertexId> remap;
  auto map_id = [&](uint64_t raw) -> VertexId {
    if (!options.compact_ids) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    std::string trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    uint64_t f[3];
    int nf = SplitFields(trimmed, f);
    if (nf < 2) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + ": " + trimmed);
    }
    Distance w = 1;
    if (nf == 3 && options.read_weights) {
      if (f[2] == 0 || f[2] >= kInfDistance) {
        return Status::InvalidArgument("bad weight at line " +
                                       std::to_string(line_no));
      }
      w = static_cast<Distance>(f[2]);
    }
    out.Add(map_id(f[0]), map_id(f[1]), w);
  }
  out.Normalize();
  return out;
}

Result<EdgeList> ReadTextEdgeList(const std::string& path,
                                  const TextGraphOptions& options) {
  std::string text;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &text));
  return ParseTextEdgeList(text, options);
}

Status WriteTextEdgeList(const EdgeList& edges, const std::string& path) {
  std::string out;
  out.reserve(edges.num_edges() * 16);
  out += "# hopdb edge list |V|=" + std::to_string(edges.num_vertices()) +
         " |E|=" + std::to_string(edges.num_edges()) +
         (edges.directed() ? " directed" : " undirected") + "\n";
  char buf[64];
  for (const Edge& e : edges.edges()) {
    if (edges.weighted()) {
      std::snprintf(buf, sizeof(buf), "%u %u %u\n", e.src, e.dst, e.weight);
    } else {
      std::snprintf(buf, sizeof(buf), "%u %u\n", e.src, e.dst);
    }
    out += buf;
  }
  return WriteStringToFile(path, out);
}

Status WriteBinaryGraph(const EdgeList& edges, const std::string& path) {
  std::string out;
  out.reserve(20 + edges.num_edges() * 12);
  out.append(kMagic, 4);
  uint32_t flags = (edges.directed() ? 1u : 0u) | (edges.weighted() ? 2u : 0u);
  PutU32(&out, flags);
  PutU32(&out, edges.num_vertices());
  PutU64(&out, edges.num_edges());
  for (const Edge& e : edges.edges()) {
    PutU32(&out, e.src);
    PutU32(&out, e.dst);
    if (edges.weighted()) PutU32(&out, e.weight);
  }
  return WriteStringToFile(path, out);
}

Result<EdgeList> ReadBinaryGraph(const std::string& path) {
  std::string data;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path, &data));
  ByteReader reader(data);
  char magic[4];
  HOPDB_RETURN_NOT_OK(reader.ReadBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a HGR1 graph file: " + path);
  }
  uint32_t flags = 0, nv = 0;
  uint64_t ne = 0;
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&flags));
  HOPDB_RETURN_NOT_OK(reader.ReadU32(&nv));
  HOPDB_RETURN_NOT_OK(reader.ReadU64(&ne));
  const bool directed = (flags & 1u) != 0;
  const bool weighted = (flags & 2u) != 0;
  EdgeList out(nv, directed);
  out.set_weighted(weighted);
  out.mutable_edges().reserve(ne);
  for (uint64_t i = 0; i < ne; ++i) {
    uint32_t s = 0, d = 0, w = 1;
    HOPDB_RETURN_NOT_OK(reader.ReadU32(&s));
    HOPDB_RETURN_NOT_OK(reader.ReadU32(&d));
    if (weighted) HOPDB_RETURN_NOT_OK(reader.ReadU32(&w));
    out.mutable_edges().emplace_back(s, d, w);
  }
  out.set_num_vertices(nv);
  HOPDB_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<EdgeList> LoadGraphFile(const std::string& path, bool directed,
                               bool read_weights) {
  if (EndsWith(path, ".hgr") || EndsWith(path, ".bin")) {
    return ReadBinaryGraph(path);
  }
  TextGraphOptions options;
  options.directed = directed;
  options.read_weights = read_weights;
  return ReadTextEdgeList(path, options);
}

}  // namespace hopdb
