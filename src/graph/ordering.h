// Vertex-ordering heuristics for general (non-scale-free) graphs.
//
// Section 7 of the paper: the algorithms work with ANY total ranking of
// vertices, but degree ranking is only effective when high-degree hubs hit
// many shortest paths. "The direct approach to determine such a vertex
// ranking requires the computation of the shortest paths for all pairs of
// vertices... some heuristical method to approximate this ranking may be
// helpful." This module provides those heuristics; feed the resulting
// order into HopDbOptions::Ranking::kCustom (or RankingFromOrder).
//
// All strategies are deterministic for a fixed seed.

#ifndef HOPDB_GRAPH_ORDERING_H_
#define HOPDB_GRAPH_ORDERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

enum class OrderStrategy {
  /// Non-increasing total degree (the paper's undirected default).
  kDegree,
  /// Non-increasing (in+1)*(out+1) degree product (the paper's directed
  /// default).
  kInOutProduct,
  /// Non-increasing (degree, sum of neighbor degrees): a 2-hop-aware
  /// refinement that separates hubs attached to hubs from hubs attached
  /// to leaves.
  kNeighborhoodDegree,
  /// Reverse degeneracy (k-core) order: repeatedly peel a minimum-degree
  /// vertex; vertices peeled last (the densest core) rank highest.
  kDegeneracy,
  /// Brandes betweenness estimated from sampled sources, ranked
  /// non-increasing. A direct proxy for "hits the most shortest paths".
  /// Hop metric (unit weights) is used even on weighted graphs — the
  /// ordering is a heuristic, not an answer.
  kSampledBetweenness,
  /// Recursive balanced-separator (nested-dissection-style) order:
  /// top-level separators rank highest. The effective choice for
  /// road-like graphs (grids, meshes) where no vertex property carries
  /// hub signal — every s-t pair crossing a cut is covered by the cut's
  /// separator pivots. Halves come from a pseudo-diameter double-BFS
  /// split; the separator is the boundary layer of one side.
  kSeparator,
  /// Uniform random permutation (ablation baseline).
  kRandom,
};

const char* OrderStrategyName(OrderStrategy strategy);

struct OrderOptions {
  /// Sources sampled for kSampledBetweenness (clamped to |V|).
  uint32_t betweenness_samples = 32;
  /// Seed for sampling / kRandom.
  uint64_t seed = 42;
};

/// Computes a total vertex order: order[i] is the original id of the
/// rank-i vertex (rank 0 = highest, the paper's v1). The result is always
/// a permutation of 0..|V|-1.
Result<std::vector<VertexId>> ComputeOrder(const CsrGraph& graph,
                                           OrderStrategy strategy,
                                           const OrderOptions& options = {});

/// Approximate betweenness scores from `num_samples` sampled sources
/// (Brandes dependency accumulation on the hop metric; forward searches on
/// directed graphs). Exposed for tests and for callers wanting the raw
/// scores (e.g. top-k hub extraction).
std::vector<double> SampledBetweenness(const CsrGraph& graph,
                                       uint32_t num_samples, uint64_t seed);

/// Degeneracy (k-core) peeling order: result[i] is the i-th vertex peeled;
/// core numbers come out non-decreasing along the sequence. Exposed for
/// tests; ComputeOrder(kDegeneracy) returns its reverse.
std::vector<VertexId> DegeneracyPeelOrder(const CsrGraph& graph);

/// Separator level of every vertex under the recursive bisection used by
/// kSeparator: level 0 = top separator, increasing toward the leaves.
/// Exposed for tests (grid separators should be O(side)-sized layers).
std::vector<uint32_t> SeparatorLevels(const CsrGraph& graph);

}  // namespace hopdb

#endif  // HOPDB_GRAPH_ORDERING_H_
