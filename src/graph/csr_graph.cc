#include "graph/csr_graph.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace hopdb {

Result<CsrGraph> CsrGraph::FromEdgeList(const EdgeList& edges) {
  HOPDB_RETURN_NOT_OK(edges.Validate());
  CsrGraph g;
  g.num_vertices_ = edges.num_vertices();
  g.directed_ = edges.directed();
  g.weighted_ = edges.weighted();

  const VertexId n = g.num_vertices_;
  const auto& es = edges.edges();

  // Counting pass.
  std::vector<uint64_t> out_count(n + 1, 0);
  std::vector<uint64_t> in_count(g.directed_ ? n + 1 : 0, 0);
  for (const Edge& e : es) {
    out_count[e.src]++;
    if (g.directed_) {
      in_count[e.dst]++;
    } else {
      out_count[e.dst]++;  // undirected: both endpoints see the arc
    }
  }

  g.offsets_out_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    g.offsets_out_[v + 1] = g.offsets_out_[v] + out_count[v];
  }
  g.arcs_out_.resize(g.offsets_out_[n]);

  if (g.directed_) {
    g.offsets_in_.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      g.offsets_in_[v + 1] = g.offsets_in_[v] + in_count[v];
    }
    g.arcs_in_.resize(g.offsets_in_[n]);
  }

  // Filling pass.
  std::vector<uint64_t> out_pos(g.offsets_out_.begin(), g.offsets_out_.end() - 1);
  std::vector<uint64_t> in_pos;
  if (g.directed_) {
    in_pos.assign(g.offsets_in_.begin(), g.offsets_in_.end() - 1);
  }
  for (const Edge& e : es) {
    g.arcs_out_[out_pos[e.src]++] = Arc{e.dst, e.weight};
    if (g.directed_) {
      g.arcs_in_[in_pos[e.dst]++] = Arc{e.src, e.weight};
    } else {
      g.arcs_out_[out_pos[e.dst]++] = Arc{e.src, e.weight};
    }
  }

  // Sort adjacency by target id so neighborhood scans and ArcWeight lookups
  // are deterministic and binary-searchable.
  auto sort_range = [](std::vector<Arc>& arcs, const std::vector<uint64_t>& off,
                       VertexId nv) {
    for (VertexId v = 0; v < nv; ++v) {
      std::sort(arcs.begin() + static_cast<ptrdiff_t>(off[v]),
                arcs.begin() + static_cast<ptrdiff_t>(off[v + 1]),
                [](const Arc& a, const Arc& b) { return a.to < b.to; });
    }
  };
  sort_range(g.arcs_out_, g.offsets_out_, n);
  if (g.directed_) sort_range(g.arcs_in_, g.offsets_in_, n);

#ifndef NDEBUG
  // A Normalize()d edge list yields no duplicate targets per vertex.
  for (VertexId v = 0; v < n; ++v) {
    auto span = g.OutArcs(v);
    for (size_t i = 1; i < span.size(); ++i) {
      HOPDB_DCHECK_LT(span[i - 1].to, span[i].to)
          << "duplicate/parallel arc at vertex " << v;
    }
  }
#endif

  g.num_edges_ = es.size();
  return g;
}

uint32_t CsrGraph::MaxDegree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

Distance CsrGraph::ArcWeight(VertexId u, VertexId v) const {
  auto arcs = OutArcs(u);
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, VertexId target) { return a.to < target; });
  if (it != arcs.end() && it->to == v) return it->weight;
  return kInfDistance;
}

EdgeList CsrGraph::ToEdgeList() const {
  EdgeList out(num_vertices_, directed_);
  out.set_weighted(weighted_);
  for (VertexId u = 0; u < num_vertices_; ++u) {
    for (const Arc& a : OutArcs(u)) {
      if (!directed_ && a.to < u) continue;  // emit undirected edges once
      out.Add(u, a.to, a.weight);
    }
  }
  return out;
}

uint64_t CsrGraph::SizeBytes() const {
  return offsets_out_.size() * sizeof(uint64_t) +
         arcs_out_.size() * sizeof(Arc) +
         offsets_in_.size() * sizeof(uint64_t) + arcs_in_.size() * sizeof(Arc);
}

uint64_t CsrGraph::PaperSizeBytes() const {
  // 32-bit per endpoint + 8-bit distance per stored edge.
  return num_edges_ * 9ULL;
}

}  // namespace hopdb
