// Scale-free diagnostics (Section 2.2).
//
// The paper's complexity bounds rest on three measurable properties:
//   * power-law degree distribution with rank exponent γ (Lemma 1,
//     Faloutsos et al.: deg(v) = r(v)^γ / |V|^γ, γ ≈ -0.8..-0.7),
//   * expansion factor R = z2/z1 ≈ log|V| (Eq. 2, Newman et al.),
//   * small (hop) diameter D ≈ log|V|/log log|V| (Eq. 1, Bollobás et al.).
// GraphStats estimates all three so experiments can report how closely a
// dataset matches the assumptions.

#ifndef HOPDB_GRAPH_STATS_H_
#define HOPDB_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace hopdb {

struct GraphStats {
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0;

  /// Least-squares slope of log(degree) vs log(rank) over the top part of
  /// the degree sequence — the rank exponent γ of Lemma 1.
  double rank_exponent = 0;

  /// z1: mean #vertices at exactly 1 hop; z2: at exactly 2 hops;
  /// R = z2 / z1 (expansion factor, Eq. 2 predicts R ≈ log |V|).
  double z1 = 0;
  double z2 = 0;
  double expansion_factor = 0;

  /// Max BFS eccentricity over sampled sources: a lower bound on the hop
  /// diameter DH (exact on small graphs where all sources are sampled).
  uint32_t estimated_hop_diameter = 0;

  std::string ToString() const;
};

struct GraphStatsOptions {
  /// Sources sampled for z1/z2 and diameter estimation; graphs with fewer
  /// vertices are measured exhaustively.
  uint32_t sample_sources = 64;
  uint64_t seed = 42;
};

/// Computes diagnostics for `graph` (undirected view for distances).
GraphStats ComputeGraphStats(const CsrGraph& graph,
                             const GraphStatsOptions& options = {});

/// Degree histogram: index d holds the number of vertices of degree d.
std::vector<uint64_t> DegreeHistogram(const CsrGraph& graph);

}  // namespace hopdb

#endif  // HOPDB_GRAPH_STATS_H_
