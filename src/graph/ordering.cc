#include "graph/ordering.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/ranking.h"
#include "util/random.h"

namespace hopdb {

namespace {

/// Sorts 0..n-1 by non-increasing key, ties toward smaller original id
/// (the same determinism rule ComputeRanking uses).
template <typename Key>
std::vector<VertexId> OrderByKeyDesc(VertexId n, const std::vector<Key>& key) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (key[a] != key[b]) return key[a] > key[b];
    return a < b;
  });
  return order;
}

std::vector<VertexId> NeighborhoodDegreeOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  // Key: degree first, then the sum of neighbor degrees as tiebreak —
  // packed into one comparable pair.
  std::vector<std::pair<uint64_t, uint64_t>> key(n);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t ndeg = 0;
    for (const Arc& a : g.OutArcs(v)) ndeg += g.Degree(a.to);
    if (g.directed()) {
      for (const Arc& a : g.InArcs(v)) ndeg += g.Degree(a.to);
    }
    key[v] = {g.Degree(v), ndeg};
  }
  return OrderByKeyDesc(n, key);
}

std::vector<VertexId> RandomOrder(const CsrGraph& g, uint64_t seed) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(DeriveSeed(seed, /*stream=*/0x02de));
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  return order;
}

}  // namespace

const char* OrderStrategyName(OrderStrategy strategy) {
  switch (strategy) {
    case OrderStrategy::kDegree:
      return "degree";
    case OrderStrategy::kInOutProduct:
      return "inout-product";
    case OrderStrategy::kNeighborhoodDegree:
      return "neighborhood-degree";
    case OrderStrategy::kDegeneracy:
      return "degeneracy";
    case OrderStrategy::kSampledBetweenness:
      return "sampled-betweenness";
    case OrderStrategy::kSeparator:
      return "separator";
    case OrderStrategy::kRandom:
      return "random";
  }
  return "?";
}

std::vector<VertexId> DegeneracyPeelOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> deg(n);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue with lazy (stale-entry) deletion: every degree decrement
  // pushes a fresh entry; pops discard entries whose recorded degree no
  // longer matches.
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);

  std::vector<VertexId> peel;
  peel.reserve(n);
  std::vector<bool> peeled(n, false);
  uint32_t cur = 0;
  while (peel.size() < static_cast<size_t>(n)) {
    while (cur <= max_deg && buckets[cur].empty()) ++cur;
    if (cur > max_deg) break;  // unreachable for consistent degrees
    const VertexId v = buckets[cur].back();
    buckets[cur].pop_back();
    if (peeled[v] || deg[v] != cur) continue;  // stale entry
    peeled[v] = true;
    peel.push_back(v);
    auto relax = [&](VertexId w) {
      if (peeled[w] || deg[w] == 0) return;
      --deg[w];
      buckets[deg[w]].push_back(w);
      if (deg[w] < cur) cur = deg[w];
    };
    for (const Arc& a : g.OutArcs(v)) relax(a.to);
    if (g.directed()) {
      for (const Arc& a : g.InArcs(v)) relax(a.to);
    }
  }
  return peel;
}

std::vector<double> SampledBetweenness(const CsrGraph& g,
                                       uint32_t num_samples, uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  if (n == 0) return bc;

  // Sample sources without replacement (partial Fisher-Yates).
  std::vector<VertexId> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  Rng rng(DeriveSeed(seed, /*stream=*/0xbc));
  const uint32_t samples = std::min<uint32_t>(num_samples, n);
  for (uint32_t i = 0; i < samples; ++i) {
    std::swap(pool[i], pool[i + rng.Below(n - i)]);
  }

  // Brandes (2001) on the hop metric, one BFS per sampled source;
  // dependency accumulation scans in-arcs to find BFS-tree predecessors
  // instead of materializing predecessor lists.
  std::vector<Distance> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<VertexId> stack;
  stack.reserve(n);
  for (uint32_t i = 0; i < samples; ++i) {
    const VertexId s = pool[i];
    std::fill(dist.begin(), dist.end(), kInfDistance);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    stack.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    size_t head = 0;
    stack.push_back(s);
    while (head < stack.size()) {
      const VertexId v = stack[head++];
      for (const Arc& a : g.OutArcs(v)) {
        if (dist[a.to] == kInfDistance) {
          dist[a.to] = dist[v] + 1;
          stack.push_back(a.to);
        }
        if (dist[a.to] == dist[v] + 1) sigma[a.to] += sigma[v];
      }
    }
    for (size_t j = stack.size(); j-- > 1;) {  // skip s itself (j == 0)
      const VertexId v = stack[j];
      for (const Arc& a : g.InArcs(v)) {
        const VertexId w = a.to;
        if (dist[w] != kInfDistance && dist[w] + 1 == dist[v]) {
          delta[w] += sigma[w] / sigma[v] * (1.0 + delta[v]);
        }
      }
      bc[v] += delta[v];
    }
  }
  return bc;
}

std::vector<uint32_t> SeparatorLevels(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  // Level of each vertex; initialized to the deepest level so isolated
  // leftovers sort last.
  std::vector<uint32_t> level(n, UINT32_MAX);
  if (n == 0) return level;

  // Undirected-view BFS restricted to a subset, via an epoch-stamped
  // membership mark (no per-recursion allocation).
  std::vector<uint32_t> member_epoch(n, 0), visit_epoch(n, 0);
  std::vector<Distance> dist(n, 0);
  std::vector<VertexId> queue;
  uint32_t epoch = 0;

  auto for_each_neighbor = [&](VertexId v, auto&& fn) {
    for (const Arc& a : g.OutArcs(v)) fn(a.to);
    if (g.directed()) {
      for (const Arc& a : g.InArcs(v)) fn(a.to);
    }
  };

  /// BFS over the members from `source`; fills dist/visit stamps and
  /// returns the last vertex settled (an approximate eccentricity peak).
  auto bfs = [&](VertexId source, uint32_t members) -> VertexId {
    queue.clear();
    queue.push_back(source);
    visit_epoch[source] = epoch;
    dist[source] = 0;
    size_t head = 0;
    VertexId last = source;
    while (head < queue.size()) {
      const VertexId v = queue[head++];
      last = v;
      for_each_neighbor(v, [&](VertexId w) {
        if (member_epoch[w] == members && visit_epoch[w] != epoch) {
          visit_epoch[w] = epoch;
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      });
    }
    return last;
  };

  // Iterative recursion over (subset, depth) work items.
  struct WorkItem {
    std::vector<VertexId> subset;
    uint32_t depth;
  };
  std::vector<WorkItem> stack;
  {
    std::vector<VertexId> all(n);
    std::iota(all.begin(), all.end(), 0);
    stack.push_back({std::move(all), 0});
  }
  constexpr size_t kBaseCase = 8;
  constexpr uint32_t kMaxDepth = 64;

  std::vector<Distance> dist_u(n);
  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();
    std::vector<VertexId>& subset = item.subset;
    if (subset.size() <= kBaseCase || item.depth >= kMaxDepth) {
      for (const VertexId v : subset) level[v] = item.depth;
      continue;
    }

    // Stamp membership for this subset.
    ++epoch;
    const uint32_t members = epoch;
    for (const VertexId v : subset) member_epoch[v] = members;

    // The subset may be disconnected (separator removal splits it):
    // peel one connected piece at a time; pieces other than the first
    // are pushed back as separate work at the same depth.
    ++epoch;
    const VertexId far_u = bfs(subset[0], members);
    std::vector<VertexId> piece;
    for (const VertexId v : subset) {
      if (visit_epoch[v] == epoch) piece.push_back(v);
    }
    if (piece.size() < subset.size()) {
      std::vector<VertexId> rest;
      rest.reserve(subset.size() - piece.size());
      for (const VertexId v : subset) {
        if (visit_epoch[v] != epoch) rest.push_back(v);
      }
      stack.push_back({std::move(rest), item.depth});
      if (piece.size() <= kBaseCase) {
        for (const VertexId v : piece) level[v] = item.depth;
        continue;
      }
      // Restrict membership to the connected piece.
      ++epoch;
      for (const VertexId v : piece) member_epoch[v] = epoch;
    }
    const uint32_t piece_members = member_epoch[piece[0]];

    // Pseudo-diameter split: dist from far_u vs dist from far_v.
    ++epoch;
    (void)bfs(far_u, piece_members);
    for (const VertexId v : piece) dist_u[v] = dist[v];
    // far_v = vertex maximizing dist_u (the BFS's last settle).
    VertexId far_v = piece[0];
    for (const VertexId v : piece) {
      if (dist_u[v] > dist_u[far_v]) far_v = v;
    }
    ++epoch;
    (void)bfs(far_v, piece_members);

    // Side A: nearer to far_u (ties to A). Separator: A-vertices with a
    // neighbor in B — removing them disconnects A's interior from B.
    std::vector<VertexId> side_a, side_b;
    for (const VertexId v : piece) {
      if (dist_u[v] <= dist[v]) {
        side_a.push_back(v);
      } else {
        side_b.push_back(v);
      }
    }
    if (side_a.empty() || side_b.empty()) {
      // Degenerate split (e.g. complete graph): no balanced cut exists;
      // settle everything at this depth.
      for (const VertexId v : piece) level[v] = item.depth;
      continue;
    }
    ++epoch;
    const uint32_t b_mark = epoch;
    for (const VertexId v : side_b) visit_epoch[v] = b_mark;
    std::vector<VertexId> interior_a;
    for (const VertexId v : side_a) {
      bool boundary = false;
      for_each_neighbor(v, [&](VertexId w) {
        if (member_epoch[w] == piece_members && visit_epoch[w] == b_mark) {
          boundary = true;
        }
      });
      if (boundary) {
        level[v] = item.depth;  // separator vertex
      } else {
        interior_a.push_back(v);
      }
    }
    if (interior_a.size() == side_a.size()) {
      // No boundary found (should not happen for a connected piece, but
      // stay safe): settle the smaller side.
      for (const VertexId v : side_a) level[v] = item.depth;
    } else {
      stack.push_back({std::move(interior_a), item.depth + 1});
    }
    stack.push_back({std::move(side_b), item.depth + 1});
  }
  return level;
}

namespace {

std::vector<VertexId> SeparatorOrder(const CsrGraph& g) {
  const std::vector<uint32_t> level = SeparatorLevels(g);
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (level[a] != level[b]) return level[a] < level[b];
    return a < b;
  });
  return order;
}

}  // namespace

Result<std::vector<VertexId>> ComputeOrder(const CsrGraph& graph,
                                           OrderStrategy strategy,
                                           const OrderOptions& options) {
  switch (strategy) {
    case OrderStrategy::kDegree:
      return ComputeRanking(graph, RankingPolicy::kDegree).rank_to_orig;
    case OrderStrategy::kInOutProduct:
      return ComputeRanking(graph, RankingPolicy::kInOutProduct).rank_to_orig;
    case OrderStrategy::kNeighborhoodDegree:
      return NeighborhoodDegreeOrder(graph);
    case OrderStrategy::kDegeneracy: {
      std::vector<VertexId> order = DegeneracyPeelOrder(graph);
      std::reverse(order.begin(), order.end());
      return order;
    }
    case OrderStrategy::kSampledBetweenness: {
      if (options.betweenness_samples == 0) {
        return Status::InvalidArgument("betweenness_samples must be >= 1");
      }
      return OrderByKeyDesc(
          graph.num_vertices(),
          SampledBetweenness(graph, options.betweenness_samples,
                             options.seed));
    }
    case OrderStrategy::kSeparator:
      return SeparatorOrder(graph);
    case OrderStrategy::kRandom:
      return RandomOrder(graph, options.seed);
  }
  return Status::InvalidArgument("unknown order strategy");
}

}  // namespace hopdb
