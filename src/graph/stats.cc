#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace hopdb {

namespace {

/// BFS ignoring direction; fills per-level counts and returns eccentricity.
uint32_t UndirectedBfsLevels(const CsrGraph& graph, VertexId source,
                             std::vector<uint32_t>* dist,
                             uint64_t* level1, uint64_t* level2) {
  std::fill(dist->begin(), dist->end(), UINT32_MAX);
  (*dist)[source] = 0;
  std::queue<VertexId> q;
  q.push(source);
  uint32_t ecc = 0;
  uint64_t l1 = 0, l2 = 0;
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    uint32_t d = (*dist)[v];
    ecc = std::max(ecc, d);
    if (d == 1) ++l1;
    if (d == 2) ++l2;
    auto visit = [&](const Arc& a) {
      if ((*dist)[a.to] == UINT32_MAX) {
        (*dist)[a.to] = d + 1;
        q.push(a.to);
      }
    };
    for (const Arc& a : graph.OutArcs(v)) visit(a);
    if (graph.directed()) {
      for (const Arc& a : graph.InArcs(v)) visit(a);
    }
  }
  *level1 = l1;
  *level2 = l2;
  return ecc;
}

}  // namespace

GraphStats ComputeGraphStats(const CsrGraph& graph,
                             const GraphStatsOptions& options) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.max_degree = graph.MaxDegree();
  s.avg_degree = s.num_vertices == 0
                     ? 0
                     : static_cast<double>(s.num_edges) *
                           (graph.directed() ? 1.0 : 2.0) / s.num_vertices;

  if (s.num_vertices == 0) return s;

  // --- rank exponent: regress log(deg) on log(rank) over the vertices with
  // degree >= 2 (the flat tail of degree-1 vertices would bias the slope).
  std::vector<uint32_t> degrees(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) degrees[v] = graph.Degree(v);
  std::sort(degrees.begin(), degrees.end(), std::greater<uint32_t>());
  {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    uint64_t cnt = 0;
    for (size_t i = 0; i < degrees.size() && degrees[i] >= 2; ++i) {
      double x = std::log(static_cast<double>(i + 1));
      double y = std::log(static_cast<double>(degrees[i]));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++cnt;
    }
    if (cnt >= 2 && sxx * cnt - sx * sx > 1e-12) {
      s.rank_exponent = (sxy * cnt - sx * sy) / (sxx * cnt - sx * sx);
    }
  }

  // --- sampled BFS for z1, z2, diameter estimate.
  uint32_t samples = std::min<uint64_t>(options.sample_sources,
                                        s.num_vertices);
  if (samples == 0) samples = 1;
  Rng rng(options.seed);
  std::vector<uint32_t> dist(s.num_vertices);
  double sum1 = 0, sum2 = 0;
  uint32_t ecc_max = 0;
  for (uint32_t i = 0; i < samples; ++i) {
    VertexId src = s.num_vertices <= options.sample_sources
                       ? i
                       : static_cast<VertexId>(rng.Below(s.num_vertices));
    uint64_t l1 = 0, l2 = 0;
    uint32_t ecc = UndirectedBfsLevels(graph, src, &dist, &l1, &l2);
    sum1 += static_cast<double>(l1);
    sum2 += static_cast<double>(l2);
    ecc_max = std::max(ecc_max, ecc);
  }
  s.z1 = sum1 / samples;
  s.z2 = sum2 / samples;
  s.expansion_factor = s.z1 > 0 ? s.z2 / s.z1 : 0;
  s.estimated_hop_diameter = ecc_max;
  return s;
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& graph) {
  std::vector<uint64_t> hist(graph.MaxDegree() + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    hist[graph.Degree(v)]++;
  }
  return hist;
}

std::string GraphStats::ToString() const {
  std::string out;
  out += "|V|=" + HumanCount(num_vertices);
  out += " |E|=" + HumanCount(num_edges);
  out += " maxdeg=" + HumanCount(max_degree);
  out += " avgdeg=" + FormatDouble(avg_degree, 2);
  out += " gamma=" + FormatDouble(rank_exponent, 3);
  out += " R=" + FormatDouble(expansion_factor, 2);
  out += " (log|V|=" +
         FormatDouble(num_vertices > 1 ? std::log(double(num_vertices)) : 0, 2) +
         ")";
  out += " DH>=" + std::to_string(estimated_hop_diameter);
  return out;
}

}  // namespace hopdb
