// EdgeList: the mutable, order-insensitive graph representation used while
// loading or generating a graph, before it is frozen into a CsrGraph.

#ifndef HOPDB_GRAPH_EDGE_LIST_H_
#define HOPDB_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

/// A bag of directed edges plus graph-level metadata. For undirected
/// graphs, each undirected edge {u, v} is stored once (in either
/// orientation); CsrGraph materializes both arcs.
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, bool directed)
      : num_vertices_(num_vertices), directed_(directed) {}

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }
  bool weighted() const { return weighted_; }
  size_t num_edges() const { return edges_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  void set_num_vertices(VertexId n) { num_vertices_ = n; }
  void set_directed(bool d) { directed_ = d; }
  void set_weighted(bool w) { weighted_ = w; }

  /// Appends an edge; grows num_vertices to cover both endpoints.
  void Add(VertexId src, VertexId dst, Distance weight = 1);

  /// Drops self-loops and collapses parallel edges keeping the minimum
  /// weight (for undirected graphs {u,v} and {v,u} are the same edge).
  /// Index construction assumes a simple graph; loaders call this.
  void Normalize();

  /// Validates that all endpoints are < num_vertices and weights are
  /// positive and finite.
  Status Validate() const;

  /// Total in-memory footprint of the edge array (for "|G| MB" columns;
  /// matches the paper's 2x32-bit vertex + 8-bit weight accounting when
  /// `paper_accounting` is true).
  uint64_t SizeBytes(bool paper_accounting = false) const;

 private:
  VertexId num_vertices_ = 0;
  bool directed_ = true;
  bool weighted_ = false;
  std::vector<Edge> edges_;
};

}  // namespace hopdb

#endif  // HOPDB_GRAPH_EDGE_LIST_H_
