// CsrGraph: the immutable compressed-sparse-row graph all algorithms run on.
//
// Both out-adjacency and in-adjacency are materialized: the labeling rules
// extend paths at either end (Rules 1/2 need in-neighbors, Rules 4/5 need
// out-neighbors), and bidirectional search needs both directions too.
// For undirected graphs the two adjacencies are identical and share storage.

#ifndef HOPDB_GRAPH_CSR_GRAPH_H_
#define HOPDB_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

/// One adjacency arc: target vertex and edge weight.
struct Arc {
  VertexId to;
  Distance weight;
};

/// Immutable CSR graph. Construct via FromEdgeList.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Freezes an edge list into CSR form. The edge list should already be
  /// Normalize()d (simple graph); this is verified in debug builds.
  static Result<CsrGraph> FromEdgeList(const EdgeList& edges);

  VertexId num_vertices() const { return num_vertices_; }
  /// Number of directed arcs for directed graphs; number of undirected
  /// edges for undirected graphs (each stored as two arcs internally).
  uint64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }
  bool weighted() const { return weighted_; }

  /// Out-neighbors of u (for undirected graphs: all neighbors).
  std::span<const Arc> OutArcs(VertexId u) const {
    return {arcs_out_.data() + offsets_out_[u],
            offsets_out_[u + 1] - offsets_out_[u]};
  }

  /// In-neighbors of u (for undirected graphs: all neighbors).
  std::span<const Arc> InArcs(VertexId u) const {
    if (!directed_) return OutArcs(u);
    return {arcs_in_.data() + offsets_in_[u],
            offsets_in_[u + 1] - offsets_in_[u]};
  }

  uint32_t OutDegree(VertexId u) const {
    return static_cast<uint32_t>(offsets_out_[u + 1] - offsets_out_[u]);
  }

  uint32_t InDegree(VertexId u) const {
    if (!directed_) return OutDegree(u);
    return static_cast<uint32_t>(offsets_in_[u + 1] - offsets_in_[u]);
  }

  /// Total degree: in + out for directed graphs, neighbor count for
  /// undirected ones.
  uint32_t Degree(VertexId u) const {
    return directed_ ? OutDegree(u) + InDegree(u) : OutDegree(u);
  }

  uint32_t MaxDegree() const;

  /// Returns the weight of arc u->v, or kInfDistance if absent.
  Distance ArcWeight(VertexId u, VertexId v) const;

  /// Converts back to an edge list (undirected edges emitted once).
  EdgeList ToEdgeList() const;

  /// In-memory footprint of the CSR arrays.
  uint64_t SizeBytes() const;

  /// Graph size under the paper's accounting (32-bit vertex ids, 8-bit
  /// weights): what the "|G| (MB)" column of Table 6 reports.
  uint64_t PaperSizeBytes() const;

 private:
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  bool directed_ = true;
  bool weighted_ = false;
  std::vector<uint64_t> offsets_out_;
  std::vector<Arc> arcs_out_;
  std::vector<uint64_t> offsets_in_;  // empty when undirected
  std::vector<Arc> arcs_in_;          // empty when undirected
};

}  // namespace hopdb

#endif  // HOPDB_GRAPH_CSR_GRAPH_H_
