// Graph transformations: reverse, symmetrize, induced subgraphs, and
// weakly-connected components. Used by generators (to clean up synthetic
// graphs), baselines (IS-Label augmentation works on edge lists), and the
// evaluation harness.

#ifndef HOPDB_GRAPH_TRANSFORM_H_
#define HOPDB_GRAPH_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace hopdb {

/// Reverses every edge of a directed graph (undirected graphs are returned
/// unchanged).
EdgeList ReverseEdges(const EdgeList& edges);

/// Converts a directed graph into an undirected one (collapsing
/// anti-parallel pairs, keeping the min weight).
EdgeList Symmetrize(const EdgeList& edges);

/// Keeps only edges whose endpoints are both selected; selected vertices
/// are renumbered 0..k-1 in increasing old-id order. `old_ids` (optional
/// out) receives the old id of each new vertex.
EdgeList InducedSubgraph(const EdgeList& edges,
                         const std::vector<bool>& selected,
                         std::vector<VertexId>* old_ids = nullptr);

/// Component id per vertex (ignoring direction), ids are 0-based and
/// assigned in order of discovery from vertex 0.
std::vector<uint32_t> WeaklyConnectedComponents(const CsrGraph& graph,
                                                uint32_t* num_components);

/// Extracts the largest weakly-connected component, renumbering vertices.
EdgeList LargestComponent(const CsrGraph& graph,
                          std::vector<VertexId>* old_ids = nullptr);

}  // namespace hopdb

#endif  // HOPDB_GRAPH_TRANSFORM_H_
