// Vertex ranking (Section 3.1) and rank-relabeling.
//
// The labeling algorithms assume vertices are totally ordered with the
// "most important" vertex first. For scale-free graphs the paper ranks by
// non-increasing degree (undirected) or by non-increasing product of
// in-degree and out-degree (directed, "due to its better performance",
// Section 8). Ties are broken by total degree, then by original id, making
// every build deterministic.
//
// All builders run on a *relabeled* graph where internal id == rank
// position, so the paper's r(u) > r(v) is simply u < v. RankMapping keeps
// the permutation so public APIs speak original ids.

#ifndef HOPDB_GRAPH_RANKING_H_
#define HOPDB_GRAPH_RANKING_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"

namespace hopdb {

enum class RankingPolicy {
  /// Non-increasing total degree (the paper's choice for undirected).
  kDegree,
  /// Non-increasing (in-degree+1)*(out-degree+1) (the paper's choice for
  /// directed graphs; the +1 smoothing keeps source/sink vertices ordered
  /// by their one-sided degree instead of collapsing them all to zero).
  kInOutProduct,
  /// Identity: assume the input is already ranked (id == rank). Used by
  /// tests and by the "general graphs" pathway of Section 7 where the
  /// caller supplies a custom order.
  kIdentity,
};

/// order[i] == original id of the vertex with rank i (rank 0 = highest).
struct RankMapping {
  std::vector<VertexId> rank_to_orig;
  std::vector<VertexId> orig_to_rank;

  VertexId ToInternal(VertexId orig) const { return orig_to_rank[orig]; }
  VertexId ToOriginal(VertexId internal) const {
    return rank_to_orig[internal];
  }
  VertexId size() const { return static_cast<VertexId>(rank_to_orig.size()); }
};

/// Computes the rank order of `graph` under `policy`.
RankMapping ComputeRanking(const CsrGraph& graph, RankingPolicy policy);

/// Builds a mapping from an explicit order (order[i] = original id with
/// rank i). Used for custom rankings on general graphs (Section 7).
RankMapping RankingFromOrder(std::vector<VertexId> rank_to_orig);

/// Returns `graph` relabeled so internal id == rank position.
Result<CsrGraph> RelabelByRank(const CsrGraph& graph,
                               const RankMapping& mapping);

}  // namespace hopdb

#endif  // HOPDB_GRAPH_RANKING_H_
