#include "graph/ranking.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hopdb {

RankMapping ComputeRanking(const CsrGraph& graph, RankingPolicy policy) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);

  if (policy != RankingPolicy::kIdentity) {
    // Primary key per vertex under the chosen policy.
    std::vector<uint64_t> key(n);
    std::vector<uint64_t> tiebreak(n);
    for (VertexId v = 0; v < n; ++v) {
      uint64_t in = graph.InDegree(v);
      uint64_t out = graph.OutDegree(v);
      switch (policy) {
        case RankingPolicy::kDegree:
          key[v] = graph.Degree(v);
          break;
        case RankingPolicy::kInOutProduct:
          key[v] = (in + 1) * (out + 1);
          break;
        case RankingPolicy::kIdentity:
          break;
      }
      tiebreak[v] = in + out;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                       if (key[a] != key[b]) return key[a] > key[b];
                       if (tiebreak[a] != tiebreak[b]) {
                         return tiebreak[a] > tiebreak[b];
                       }
                       return a < b;
                     });
  }
  return RankingFromOrder(std::move(order));
}

RankMapping RankingFromOrder(std::vector<VertexId> rank_to_orig) {
  RankMapping m;
  m.rank_to_orig = std::move(rank_to_orig);
  m.orig_to_rank.assign(m.rank_to_orig.size(), kInvalidVertex);
  for (VertexId r = 0; r < m.rank_to_orig.size(); ++r) {
    VertexId orig = m.rank_to_orig[r];
    HOPDB_CHECK_LT(orig, m.orig_to_rank.size()) << "order id out of range";
    HOPDB_CHECK_EQ(m.orig_to_rank[orig], kInvalidVertex)
        << "duplicate id in rank order";
    m.orig_to_rank[orig] = r;
  }
  return m;
}

Result<CsrGraph> RelabelByRank(const CsrGraph& graph,
                               const RankMapping& mapping) {
  if (mapping.size() != graph.num_vertices()) {
    return Status::InvalidArgument("rank mapping size mismatch");
  }
  EdgeList edges(graph.num_vertices(), graph.directed());
  edges.set_weighted(graph.weighted());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const Arc& a : graph.OutArcs(u)) {
      if (!graph.directed() && a.to < u) continue;
      edges.Add(mapping.ToInternal(u), mapping.ToInternal(a.to), a.weight);
    }
  }
  edges.set_num_vertices(graph.num_vertices());
  edges.Normalize();
  return CsrGraph::FromEdgeList(edges);
}

}  // namespace hopdb
