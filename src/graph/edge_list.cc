#include "graph/edge_list.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

namespace hopdb {

void EdgeList::Add(VertexId src, VertexId dst, Distance weight) {
  edges_.emplace_back(src, dst, weight);
  VertexId hi = std::max(src, dst);
  if (hi >= num_vertices_) num_vertices_ = hi + 1;
  if (weight != 1) weighted_ = true;
}

void EdgeList::Normalize() {
  // Canonicalize undirected edges so {u,v} and {v,u} dedup together.
  if (!directed_) {
    for (Edge& e : edges_) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  size_t out = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.src == e.dst) continue;  // self-loop
    if (out > 0 && edges_[out - 1].src == e.src &&
        edges_[out - 1].dst == e.dst) {
      continue;  // parallel edge; the sort put the lightest first
    }
    edges_[out++] = e;
  }
  edges_.resize(out);
}

Status EdgeList::Validate() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return Status::InvalidArgument(
          "edge endpoint out of range: " + std::to_string(e.src) + "->" +
          std::to_string(e.dst) + " with |V|=" + std::to_string(num_vertices_));
    }
    if (e.weight == 0 || e.weight == kInfDistance) {
      return Status::InvalidArgument("edge weight must be in [1, inf)");
    }
  }
  return Status::OK();
}

uint64_t EdgeList::SizeBytes(bool paper_accounting) const {
  if (paper_accounting) {
    // The paper uses a 32-bit integer per endpoint and an 8-bit distance.
    return edges_.size() * (4ULL + 4ULL + 1ULL);
  }
  return edges_.size() * sizeof(Edge);
}

}  // namespace hopdb
