// Graph loading and saving.
//
// Two formats:
//  * Text edge lists ("u v" or "u v w" per line, '#'/'%' comments), the
//    format SNAP and KONECT distribute — so real datasets drop in directly
//    when available.
//  * A little-endian binary format (HGR1) for fast reload of generated
//    stand-in datasets.

#ifndef HOPDB_GRAPH_GRAPH_IO_H_
#define HOPDB_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "util/status.h"

namespace hopdb {

struct TextGraphOptions {
  bool directed = true;
  /// When false, a third column (weight) is ignored and all weights are 1.
  bool read_weights = true;
  /// Vertex ids in the file may be arbitrary (non-contiguous); when true
  /// they are compacted to 0..n-1 in first-appearance order.
  bool compact_ids = true;
};

/// Parses a text edge list. Lines starting with '#' or '%' are comments.
Result<EdgeList> ReadTextEdgeList(const std::string& path,
                                  const TextGraphOptions& options);

/// Parses a text edge list from an in-memory string (used by tests).
Result<EdgeList> ParseTextEdgeList(const std::string& text,
                                   const TextGraphOptions& options);

/// Writes "u v w" lines (w omitted for unweighted graphs).
Status WriteTextEdgeList(const EdgeList& edges, const std::string& path);

/// Binary format:
///   magic "HGR1" | u32 flags (bit0 directed, bit1 weighted) |
///   u32 num_vertices | u64 num_edges | edges (u32 src, u32 dst[, u32 w])
Status WriteBinaryGraph(const EdgeList& edges, const std::string& path);
Result<EdgeList> ReadBinaryGraph(const std::string& path);

/// Loads a graph by extension: .hgr/.bin read the self-describing HGR1
/// binary (directed/weighted flags ignored); anything else reads a text
/// edge list with the given options. The shared loader behind
/// `hopdb_cli build/update` and the server's --graph registration.
Result<EdgeList> LoadGraphFile(const std::string& path, bool directed,
                               bool read_weights);

}  // namespace hopdb

#endif  // HOPDB_GRAPH_GRAPH_IO_H_
