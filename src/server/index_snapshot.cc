#include "server/index_snapshot.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "query/batch.h"
#include "util/logging.h"

namespace hopdb {

void ServingSnapshot::InitHotHub(uint32_t k) {
  if (k == 0) return;
  if (mapped()) {
    hub_ = HotHubCache::Build(mapped_->labels(), k);
  } else if (index_.label_index().flat_store().built()) {
    hub_ = HotHubCache::Build(index_.label_index().flat_store().view(), k);
  }
}

Distance ServingSnapshot::Query(VertexId s, VertexId t) const {
  if (hub_.enabled()) {
    const VertexId n = num_vertices();
    if (s >= n || t >= n) return kInfDistance;
    if (mapped()) {
      return hub_.Query(mapped_->labels(), mapped_->ToInternal(s),
                        mapped_->ToInternal(t));
    }
    return hub_.Query(index_.label_index().flat_store().view(),
                      index_.ranking().ToInternal(s),
                      index_.ranking().ToInternal(t));
  }
  return mapped() ? mapped_->Query(s, t) : index_.Query(s, t);
}

uint64_t ServingSnapshot::ResidentBytes() const {
  return mapped() ? mapped_->ResidentBytes()
                  : index_.label_index().SizeBytes();
}

const HopDbIndex& ServingSnapshot::index() const {
  HOPDB_CHECK(!mapped())
      << "ServingSnapshot::index() on an mmap-backed snapshot";
  return index_;
}

std::vector<Distance> ServingSnapshot::QueryOneToMany(
    VertexId s, const std::vector<VertexId>& targets) const {
  const auto to_internal = [this](VertexId v) {
    return mapped() ? mapped_->ToInternal(v) : index_.ranking().ToInternal(v);
  };
  std::vector<VertexId> internal;
  internal.reserve(targets.size());
  for (VertexId t : targets) internal.push_back(to_internal(t));
  OneToManyEngine engine =
      mapped() ? OneToManyEngine(mapped_->labels(), std::move(internal))
               : OneToManyEngine(index_.label_index(), std::move(internal));
  return engine.Query(to_internal(s));
}

std::vector<std::pair<VertexId, Distance>> ServingSnapshot::QueryKnn(
    VertexId s, uint32_t k) const {
  const KnnEngine& engine = knn_engine();
  const VertexId internal_s =
      mapped() ? mapped_->ToInternal(s) : index_.ranking().ToInternal(s);
  const std::vector<KnnEngine::Neighbor> neighbors =
      engine.Query(internal_s, k);
  std::vector<std::pair<VertexId, Distance>> result;
  result.reserve(neighbors.size());
  for (const KnnEngine::Neighbor& nb : neighbors) {
    const VertexId orig = mapped() ? mapped_->ToOriginal(nb.vertex)
                                   : index_.ranking().ToOriginal(nb.vertex);
    result.emplace_back(orig, nb.dist);
  }
  return result;
}

std::vector<std::pair<VertexId, Distance>> ServingSnapshot::QueryWithin(
    VertexId s, Distance radius) const {
  const KnnEngine& engine = knn_engine();
  const VertexId internal_s =
      mapped() ? mapped_->ToInternal(s) : index_.ranking().ToInternal(s);
  const std::vector<KnnEngine::Neighbor> neighbors =
      engine.QueryWithin(internal_s, radius);
  std::vector<std::pair<VertexId, Distance>> result;
  result.reserve(neighbors.size());
  for (const KnnEngine::Neighbor& nb : neighbors) {
    const VertexId orig = mapped() ? mapped_->ToOriginal(nb.vertex)
                                   : index_.ranking().ToOriginal(nb.vertex);
    result.emplace_back(orig, nb.dist);
  }
  // The engine orders by (distance, internal id); re-sort the vertex
  // tiebreak into original-id space so the wire answer is deterministic
  // in the ids clients actually see.
  std::sort(result.begin(), result.end(),
            [](const std::pair<VertexId, Distance>& a,
               const std::pair<VertexId, Distance>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return result;
}

Result<std::vector<VertexId>> ServingSnapshot::QueryPath(VertexId s,
                                                         VertexId t) const {
  if (!HasPathGraph()) {
    return Status::FailedPrecondition(
        "PATH needs the build graph; serve this index with --graph "
        "(heap-backed indexes only)");
  }
  std::call_once(path_once_, [this] {
    auto querier = HopDbPathQuerier::Create(index_, *path_graph_);
    if (querier.ok()) {
      path_ = std::make_unique<HopDbPathQuerier>(std::move(*querier));
    } else {
      path_status_ = querier.status();
    }
  });
  if (path_ == nullptr) return path_status_;
  return path_->ShortestPath(s, t);
}

const KnnEngine& ServingSnapshot::knn_engine() const {
  std::call_once(knn_once_, [this] {
    if (mapped()) {
      knn_ = std::make_unique<KnnEngine>(mapped_->labels(),
                                         KnnEngine::Direction::kForward);
    } else {
      knn_ = std::make_unique<KnnEngine>(index_.label_index(),
                                         KnnEngine::Direction::kForward);
    }
  });
  return *knn_;
}

}  // namespace hopdb
