#include "server/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace hopdb {

namespace {

/// Unread-response backlog (bytes) above which a connection stops being
/// read: a client that pipelines but never reads must not grow our
/// output buffer without bound.
constexpr size_t kMaxBufferedOutBytes = 8u << 20;

/// Compact the output buffer once this many bytes are dead at the front
/// (amortizes the memmove instead of paying it per partial write).
constexpr size_t kOutCompactBytes = 1u << 16;

void EncodeForWire(WireVersion version, const WireResponse& response,
                   std::string* out) {
  if (version == WireVersion::kV2) {
    EncodeResponseV2(response, out);
  } else {
    // kUnknown only happens for a pre-negotiation fatal error; ASCII is
    // the only rendering a client that never sent the magic can read.
    out->append(EncodeResponseV1(response));
    out->push_back('\n');
  }
}

/// Trace ids are process-global so ids stay unique across I/O threads
/// and connections (ring entries and slow-query log lines correlate).
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

uint64_t Connection::OpenSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.emplace_back();
  return next_seq_++;
}

void Connection::Complete(uint64_t seq, WireResponse response,
                          RequestTrace trace) {
  trace.status = response.status;
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || seq < base_seq_) return;  // connection died first
    const size_t idx = static_cast<size_t>(seq - base_seq_);
    if (idx >= slots_.size()) return;  // defensive; cannot happen
    slots_[idx].response = std::move(response);
    slots_[idx].trace = trace;
    slots_[idx].done = true;
    // Only a completed HEAD makes bytes writable; completions behind an
    // unfinished slot will be picked up when the head completes.
    if (idx == 0 && !flush_queued_) {
      flush_queued_ = true;
      notify = true;
    }
  }
  if (notify) owner_->RequestFlush(shared_from_this());
}

// ---------------------------------------------------------------------------
// IoThread
// ---------------------------------------------------------------------------

IoThread::~IoThread() { Stop(); }

Status IoThread::Start(const IoGroupOptions& options, RequestSink* sink) {
  sink_ = sink;
  max_inflight_ = options.max_inflight_per_conn == 0
                      ? 1
                      : options.max_inflight_per_conn;
  trace_sample_every_ = options.trace_sample_every;
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const std::string err = std::strerror(errno);
    close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd: " + err);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    const std::string err = std::strerror(errno);
    close(wake_fd_);
    close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return Status::IOError("epoll_ctl(wake): " + err);
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void IoThread::Adopt(int fd) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    pending_adds_.push_back(fd);
  }
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

void IoThread::RequestFlush(std::shared_ptr<Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    pending_flushes_.push_back(std::move(conn));
  }
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

void IoThread::ShutdownReads() {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    pending_shutdown_reads_ = true;
  }
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

void IoThread::Stop() {
  if (epoll_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  close(wake_fd_);
  close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

void IoThread::Run() {
  std::vector<epoll_event> events(1024);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broke; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == wake_fd_) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainMailbox();
        continue;
      }
      // Look the fd up instead of trusting a stored pointer: an earlier
      // event in this same batch may have closed the connection.
      auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (ev.events & EPOLLOUT) FlushConnection(conn);
      if (ev.events & (EPOLLIN | EPOLLHUP | EPOLLERR)) ProcessInput(conn);
    }
  }
  // Shutdown path: deliver any completions posted before the stop
  // signal, give every connection one best-effort flush, then close.
  DrainMailbox();
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const auto& conn : remaining) FlushConnection(conn);
  for (const auto& conn : remaining) CloseConnection(conn);
  conns_.clear();
}

void IoThread::DrainMailbox() {
  std::vector<int> adds;
  std::vector<std::shared_ptr<Connection>> flushes;
  bool shutdown_reads = false;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    adds.swap(pending_adds_);
    flushes.swap(pending_flushes_);
    shutdown_reads = pending_shutdown_reads_;
  }
  for (int fd : adds) AddConnection(fd);
  for (const auto& conn : flushes) FlushConnection(conn);
  if (shutdown_reads) {
    // SHUT_RD turns every reader into the EOF path: already-parsed
    // requests still get answered and flushed, new bytes are refused.
    for (const auto& [fd, conn] : conns_) shutdown(fd, SHUT_RD);
  }
}

void IoThread::AddConnection(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    close(fd);
    return;
  }
  auto conn = std::make_shared<Connection>(fd, this);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    close(fd);
    return;
  }
  conn->epoll_events_ = EPOLLIN;
  conns_.emplace(fd, std::move(conn));
  open_count_.fetch_add(1, std::memory_order_relaxed);
}

void IoThread::ProcessInput(const std::shared_ptr<Connection>& conn) {
  char chunk[65536];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      if (conn->closed_ || conn->read_shutdown_ || conn->read_paused_) return;
    }
    if (!ParseBuffered(conn)) return;  // fatal framing error
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      if (conn->closed_ || conn->read_shutdown_ || conn->read_paused_) return;
    }
    const ssize_t n = recv(conn->fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(conn);  // hard socket error
      return;
    }
    // EOF (peer close or our SHUT_RD): parse what is already buffered,
    // answer it, then close once the last response flushed.
    (void)ParseBuffered(conn);
    bool close_now = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      if (conn->closed_) return;
      conn->read_shutdown_ = true;
      conn->close_after_flush_ = true;
      close_now = conn->slots_.empty() && conn->out_off_ >= conn->out_.size();
      if (!close_now) UpdateInterestLocked(conn.get());
    }
    if (close_now) CloseConnection(conn);
    return;
  }
}

RequestTrace IoThread::BeginTrace(uint64_t accepted_ns) {
  RequestTrace trace;
  trace.accepted_ns = accepted_ns;
  if (trace_sample_every_ > 0 &&
      trace_counter_++ % trace_sample_every_ == 0) {
    trace.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  }
  return trace;
}

bool IoThread::ParseBuffered(const std::shared_ptr<Connection>& conn) {
  std::string& in = conn->in_;
  size_t off = 0;
  bool fatal = false;
  // One accepted stamp per parse pass: the moment this thread turned to
  // the buffered bytes. Requests split out of the same read share it.
  const uint64_t accepted_ns = MonotonicNowNs();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      if (conn->closed_ || conn->read_shutdown_) break;
      // Admission: at the in-flight cap (or with an unread response
      // backlog), stop parsing — FlushConnection resumes us.
      if (conn->slots_.size() >= max_inflight_ ||
          conn->out_.size() - conn->out_off_ > kMaxBufferedOutBytes) {
        conn->read_paused_ = true;
        UpdateInterestLocked(conn.get());
        break;
      }
    }
    if (conn->version_ == WireVersion::kUnknown) {
      if (in.size() <= off) break;
      if (in[off] == kV2Magic[0]) {
        if (in.size() - off < sizeof(kV2Magic)) break;  // need full magic
        if (std::memcmp(in.data() + off, kV2Magic, sizeof(kV2Magic)) != 0) {
          FatalProtocolError(conn, "bad protocol magic",
                             BeginTrace(accepted_ns));
          fatal = true;
          break;
        }
        off += sizeof(kV2Magic);
        conn->version_ = WireVersion::kV2;
      } else {
        conn->version_ = WireVersion::kV1;
      }
      continue;
    }
    if (conn->version_ == WireVersion::kV1) {
      const size_t newline = in.find('\n', off);
      if (newline == std::string::npos) {
        if (in.size() - off > kMaxLineBytes) {
          FatalProtocolError(conn, "request line too long",
                             BeginTrace(accepted_ns));
          fatal = true;
        }
        break;
      }
      std::string line = in.substr(off, newline - off);
      off = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (TrimString(line).empty()) continue;  // telnet-friendly
      RequestTrace trace = BeginTrace(accepted_ns);
      Result<Request> parsed = ParseRequest(line);
      trace.parsed_ns = MonotonicNowNs();
      const uint64_t seq = conn->OpenSlot();
      if (parsed.ok()) {
        sink_->HandleRequest(conn, seq, std::move(*parsed), trace);
      } else {
        // Malformed v1 input is answered in order and the connection
        // stays up — the line framing resynchronizes at the newline.
        sink_->HandleParseError(conn, seq, parsed.status().message(), trace);
      }
      continue;
    }
    // v2 binary frames.
    size_t consumed = 0;
    Request request;
    std::string error;
    RequestTrace trace = BeginTrace(accepted_ns);
    const FrameParse verdict = ParseRequestFrameV2(
        in.data() + off, in.size() - off, &consumed, &request, &error);
    if (verdict == FrameParse::kNeedMore) break;
    if (verdict == FrameParse::kError) {
      // A bad frame desynchronizes the byte stream; the connection
      // cannot be salvaged after the (ordered) error answer.
      FatalProtocolError(conn, std::move(error), trace);
      fatal = true;
      break;
    }
    trace.parsed_ns = MonotonicNowNs();
    off += consumed;
    const uint64_t seq = conn->OpenSlot();
    sink_->HandleRequest(conn, seq, std::move(request), trace);
  }
  if (off > 0) in.erase(0, off);
  return !fatal;
}

void IoThread::FatalProtocolError(const std::shared_ptr<Connection>& conn,
                                  std::string message, RequestTrace trace) {
  trace.parsed_ns = MonotonicNowNs();
  const uint64_t seq = conn->OpenSlot();
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->read_shutdown_ = true;
    conn->close_after_flush_ = true;
  }
  // Through the sink so the error is counted like any other parse
  // error; the sink completes the slot inline, which queues the flush.
  sink_->HandleParseError(conn, seq, std::move(message), trace);
}

void IoThread::FlushConnection(const std::shared_ptr<Connection>& conn) {
  bool resume_read = false;
  bool close_now = false;
  // Traces whose last response byte the kernel just accepted; delivered
  // to the sink outside the connection lock.
  std::vector<RequestTrace> finished;
  {
    std::unique_lock<std::mutex> lock(conn->mu_);
    if (conn->closed_) return;
    conn->flush_queued_ = false;
    if (!conn->slots_.empty() && conn->slots_.front().done) {
      const uint64_t encoded_ns = MonotonicNowNs();
      do {
        Connection::Slot& slot = conn->slots_.front();
        const size_t before = conn->out_.size();
        EncodeForWire(conn->version_, slot.response, &conn->out_);
        conn->total_encoded_ += conn->out_.size() - before;
        slot.trace.encoded_ns = encoded_ns;
        conn->pending_writes_.push_back({conn->total_encoded_, slot.trace});
        conn->slots_.pop_front();
        ++conn->base_seq_;
      } while (!conn->slots_.empty() && conn->slots_.front().done);
    }
    while (conn->out_off_ < conn->out_.size()) {
      const ssize_t n =
          send(conn->fd_, conn->out_.data() + conn->out_off_,
               conn->out_.size() - conn->out_off_, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off_ += static_cast<size_t>(n);
        conn->total_written_ += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EPIPE/ECONNRESET: the client vanished mid-response. Drop the
      // connection; in-flight work for it completes into the void.
      lock.unlock();
      CloseConnection(conn);
      return;
    }
    if (conn->out_off_ >= conn->out_.size()) {
      conn->out_.clear();
      conn->out_off_ = 0;
    } else if (conn->out_off_ >= kOutCompactBytes) {
      conn->out_.erase(0, conn->out_off_);
      conn->out_off_ = 0;
    }
    if (!conn->pending_writes_.empty() &&
        conn->pending_writes_.front().end <= conn->total_written_) {
      const uint64_t written_ns = MonotonicNowNs();
      do {
        Connection::PendingWrite& pending = conn->pending_writes_.front();
        pending.trace.written_ns = written_ns;
        finished.push_back(pending.trace);
        conn->pending_writes_.pop_front();
      } while (!conn->pending_writes_.empty() &&
               conn->pending_writes_.front().end <= conn->total_written_);
    }
    const bool drained = conn->out_.empty();
    if (drained && conn->close_after_flush_ && conn->slots_.empty()) {
      close_now = true;
    } else {
      if (conn->read_paused_ && !conn->read_shutdown_ &&
          conn->slots_.size() < max_inflight_ &&
          conn->out_.size() - conn->out_off_ <= kMaxBufferedOutBytes) {
        conn->read_paused_ = false;
        resume_read = true;
      }
      UpdateInterestLocked(conn.get());
    }
  }
  for (const RequestTrace& trace : finished) sink_->HandleTraceDone(trace);
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  // A resumed connection may hold fully buffered requests that will
  // never raise EPOLLIN again; parse them now.
  if (resume_read) ProcessInput(conn);
}

void IoThread::UpdateInterestLocked(Connection* conn) {
  uint32_t want = 0;
  if (!conn->read_shutdown_ && !conn->read_paused_) want |= EPOLLIN;
  if (conn->out_off_ < conn->out_.size()) want |= EPOLLOUT;
  if (want == conn->epoll_events_) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev) == 0) {
    conn->epoll_events_ = want;
  }
}

void IoThread::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    if (conn->closed_) return;
    conn->closed_ = true;
    conn->slots_.clear();  // late Complete()s see closed_ and drop
    conn->pending_writes_.clear();  // never fully written; never delivered
    conn->out_.clear();
    conn->out_off_ = 0;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd_, nullptr);
  close(conn->fd_);
  conns_.erase(conn->fd_);
  open_count_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// IoGroup
// ---------------------------------------------------------------------------

Status IoGroup::Start(const IoGroupOptions& options, RequestSink* sink) {
  const uint32_t n = options.num_threads == 0 ? 1 : options.num_threads;
  threads_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto thread = std::make_unique<IoThread>();
    const Status status = thread->Start(options, sink);
    if (!status.ok()) {
      for (auto& started : threads_) started->Stop();
      threads_.clear();
      return status;
    }
    threads_.push_back(std::move(thread));
  }
  return Status::OK();
}

void IoGroup::Adopt(int fd) {
  const uint64_t i = next_thread_.fetch_add(1, std::memory_order_relaxed);
  threads_[i % threads_.size()]->Adopt(fd);
}

void IoGroup::ShutdownReads() {
  for (auto& thread : threads_) thread->ShutdownReads();
}

void IoGroup::Stop() {
  for (auto& thread : threads_) thread->Stop();
}

size_t IoGroup::open_connections() const {
  size_t total = 0;
  for (const auto& thread : threads_) total += thread->open_connections();
  return total;
}

}  // namespace hopdb
