#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/string_util.h"

namespace hopdb {

DistanceClient& DistanceClient::operator=(DistanceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    protocol_ = other.protocol_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.buffer_.clear();
  }
  return *this;
}

Result<DistanceClient> DistanceClient::Connect(const std::string& host,
                                               uint16_t port,
                                               Protocol protocol) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host '" + host +
                                   "' (numeric IPv4 required)");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  DistanceClient client;
  client.fd_ = fd;
  client.protocol_ = protocol;
  if (protocol == Protocol::kV2) {
    // The magic is the whole negotiation; frames follow immediately.
    HOPDB_RETURN_NOT_OK(
        client.SendAll(std::string(kV2Magic, sizeof(kV2Magic))));
  }
  return client;
}

Status DistanceClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Close();
      return Status::IOError("send failed: connection lost");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

void DistanceClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status DistanceClient::FillBuffer() {
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::IOError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return Status::OK();
  }
}

Result<std::string> DistanceClient::RoundTrip(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (protocol_ != Protocol::kV1) {
    return Status::FailedPrecondition(
        "RoundTrip is the v1 line API; use Call() on a v2 connection");
  }
  std::string request = line;
  request += '\n';
  HOPDB_RETURN_NOT_OK(SendAll(request));
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline == std::string::npos) {
      HOPDB_RETURN_NOT_OK(FillBuffer());
      continue;
    }
    std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    if (!response.empty() && response.back() == '\r') response.pop_back();
    // Multi-line payloads (METRICS, TRACE) arrive as "OK BLOB <n>"
    // followed by n raw bytes and a closing newline; hand the body back
    // verbatim so callers see the exposition text itself.
    uint64_t blob_len = 0;
    if (StartsWith(response, "OK BLOB ") &&
        ParseUint64(response.substr(8), &blob_len)) {
      while (buffer_.size() < blob_len + 1) {
        HOPDB_RETURN_NOT_OK(FillBuffer());
      }
      std::string body = buffer_.substr(0, blob_len);
      buffer_.erase(0, blob_len + 1);  // body plus the framing newline
      return body;
    }
    return response;
  }
}

Result<Distance> ParseDistanceToken(const std::string& token) {
  if (token == "INF") return kInfDistance;
  uint64_t v = 0;
  if (!ParseUint64(token, &v) || v > kInfDistance) {
    return Status::InvalidArgument("bad distance token '" + token + "'");
  }
  return static_cast<Distance>(v);
}

Result<WireResponse> DistanceClient::Call(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (protocol_ != Protocol::kV2) {
    return Status::FailedPrecondition(
        "Call is the v2 frame API; use RoundTrip() on a v1 connection");
  }
  std::string frame;
  EncodeRequestV2(request, &frame);
  HOPDB_RETURN_NOT_OK(SendAll(frame));
  while (true) {
    size_t consumed = 0;
    WireResponse response;
    std::string error;
    const FrameParse verdict = ParseResponseFrameV2(
        buffer_.data(), buffer_.size(), &consumed, &response, &error);
    if (verdict == FrameParse::kDone) {
      buffer_.erase(0, consumed);
      return response;
    }
    if (verdict == FrameParse::kError) {
      Close();
      return Status::Internal("bad v2 response frame: " + error);
    }
    char chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::IOError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Distance> DistanceClient::QueryDistance(VertexId s, VertexId t) {
  if (protocol_ == Protocol::kV2) {
    Request request;
    request.kind = RequestKind::kDist;
    request.src = s;
    request.targets.assign(1, t);
    HOPDB_ASSIGN_OR_RETURN(WireResponse response, Call(request));
    if (response.status != WireStatus::kOk) {
      return Status::Internal("server error: " + response.text);
    }
    return response.distance;
  }
  HOPDB_ASSIGN_OR_RETURN(
      std::string response,
      RoundTrip("DIST " + std::to_string(s) + " " + std::to_string(t)));
  if (!StartsWith(response, "OK ")) {
    return Status::Internal("server error: " + response);
  }
  return ParseDistanceToken(response.substr(3));
}

}  // namespace hopdb
