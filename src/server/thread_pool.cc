#include "server/thread_pool.h"

#include <utility>

#include "util/logging.h"

namespace hopdb {

void ThreadPool::Start(uint32_t num_threads,
                       std::function<void(uint32_t)> body) {
  HOPDB_CHECK(threads_.empty()) << "ThreadPool started twice";
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([body, i] { body(i); });
  }
}

void ThreadPool::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace hopdb
