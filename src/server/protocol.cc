#include "server/protocol.h"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace hopdb {

namespace {

/// Splits on spaces and tabs, dropping empty tokens (so stray double
/// spaces from hand-typed telnet sessions are harmless).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<VertexId> ParseVertex(const std::string& token) {
  uint64_t v = 0;
  if (!ParseUint64(token, &v) || v >= kInvalidVertex) {
    return Status::InvalidArgument("bad vertex id '" + token + "'");
  }
  return static_cast<VertexId>(v);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  const std::string& verb = tokens[0];
  Request request;
  if (verb == "DIST") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: DIST <src> <dst>");
    }
    request.kind = RequestKind::kDist;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(tokens[1]));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(tokens[2]));
    return request;
  }
  if (verb == "BATCH") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument("usage: BATCH <src> <t1> [t2 ...]");
    }
    request.kind = RequestKind::kBatch;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(tokens[1]));
    request.targets.reserve(tokens.size() - 2);
    for (size_t i = 2; i < tokens.size(); ++i) {
      HOPDB_ASSIGN_OR_RETURN(VertexId t, ParseVertex(tokens[i]));
      request.targets.push_back(t);
    }
    return request;
  }
  if (verb == "KNN") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: KNN <src> <k>");
    }
    request.kind = RequestKind::kKnn;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(tokens[1]));
    uint64_t k = 0;
    if (!ParseUint64(tokens[2], &k) || k == 0 ||
        k > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad neighbor count '" + tokens[2] + "'");
    }
    request.k = static_cast<uint32_t>(k);
    return request;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("usage: STATS");
    }
    request.kind = RequestKind::kStats;
    return request;
  }
  if (verb == "RELOAD") {
    if (tokens.size() > 2) {
      return Status::InvalidArgument("usage: RELOAD [<path>]");
    }
    request.kind = RequestKind::kReload;
    if (tokens.size() == 2) request.path = tokens[1];
    return request;
  }
  if (verb == "PING") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("usage: PING");
    }
    request.kind = RequestKind::kPing;
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

std::string FormatDistance(Distance d) {
  return d == kInfDistance ? "INF" : std::to_string(d);
}

std::string OkResponse(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string ErrResponse(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

std::string FormatBatchResponse(const std::vector<Distance>& dists) {
  std::string payload;
  for (size_t i = 0; i < dists.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += FormatDistance(dists[i]);
  }
  return OkResponse(payload);
}

std::string FormatKnnResponse(
    const std::vector<std::pair<VertexId, Distance>>& neighbors) {
  std::string payload;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += std::to_string(neighbors[i].first) + ':' +
               FormatDistance(neighbors[i].second);
  }
  return OkResponse(payload);
}

}  // namespace hopdb
