#include "server/protocol.h"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace hopdb {

namespace {

/// Splits on spaces and tabs, dropping empty tokens (so stray double
/// spaces from hand-typed telnet sessions are harmless).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<VertexId> ParseVertex(const std::string& token) {
  uint64_t v = 0;
  if (!ParseUint64(token, &v) || v >= kInvalidVertex) {
    return Status::InvalidArgument("bad vertex id '" + token + "'");
  }
  return static_cast<VertexId>(v);
}

/// Parses one request from `tokens` (already split). `routed` is true
/// when the tokens follow a USE prefix, which restricts the verb set to
/// the per-index ones and forbids nested USE.
Result<Request> ParseTokens(const std::vector<std::string>& tokens,
                            size_t first, bool routed);

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  return ParseTokens(tokens, 0, /*routed=*/false);
}

namespace {

Result<Request> ParseTokens(const std::vector<std::string>& tokens,
                            size_t first, bool routed) {
  const std::string& verb = tokens[first];
  const size_t count = tokens.size() - first;
  auto token = [&](size_t i) -> const std::string& {
    return tokens[first + i];
  };
  Request request;
  if (verb == "DIST") {
    if (count != 3) {
      return Status::InvalidArgument("usage: DIST <src> <dst>");
    }
    request.kind = RequestKind::kDist;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    return request;
  }
  if (verb == "BATCH") {
    if (count < 3) {
      return Status::InvalidArgument("usage: BATCH <src> <t1> [t2 ...]");
    }
    request.kind = RequestKind::kBatch;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.reserve(count - 2);
    for (size_t i = 2; i < count; ++i) {
      HOPDB_ASSIGN_OR_RETURN(VertexId t, ParseVertex(token(i)));
      request.targets.push_back(t);
    }
    return request;
  }
  if (verb == "KNN") {
    if (count != 3) {
      return Status::InvalidArgument("usage: KNN <src> <k>");
    }
    request.kind = RequestKind::kKnn;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    uint64_t k = 0;
    if (!ParseUint64(token(2), &k) || k == 0 ||
        k > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad neighbor count '" + token(2) + "'");
    }
    request.k = static_cast<uint32_t>(k);
    return request;
  }
  if (verb == "RELOAD") {
    if (count > 2) {
      return Status::InvalidArgument("usage: RELOAD [<path>]");
    }
    request.kind = RequestKind::kReload;
    if (count == 2) request.path = token(1);
    return request;
  }
  if (routed) {
    // Everything below is whole-server scoped and must not carry a USE
    // prefix; nested USE is caught here too.
    return Status::InvalidArgument("USE can only prefix DIST, BATCH, KNN, "
                                   "or RELOAD (got '" + verb + "')");
  }
  if (verb == "USE") {
    if (count < 3) {
      return Status::InvalidArgument("usage: USE <index> <request>");
    }
    HOPDB_ASSIGN_OR_RETURN(Request routed_request,
                           ParseTokens(tokens, first + 2, /*routed=*/true));
    routed_request.index_name = token(1);
    return routed_request;
  }
  if (verb == "ATTACH") {
    if (count != 3) {
      return Status::InvalidArgument("usage: ATTACH <name> <path>");
    }
    request.kind = RequestKind::kAttach;
    request.index_name = token(1);
    request.path = token(2);
    return request;
  }
  if (verb == "DETACH") {
    if (count != 2) {
      return Status::InvalidArgument("usage: DETACH <name>");
    }
    request.kind = RequestKind::kDetach;
    request.index_name = token(1);
    return request;
  }
  if (verb == "STATS") {
    if (count != 1) {
      return Status::InvalidArgument("usage: STATS");
    }
    request.kind = RequestKind::kStats;
    return request;
  }
  if (verb == "PING") {
    if (count != 1) {
      return Status::InvalidArgument("usage: PING");
    }
    request.kind = RequestKind::kPing;
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

}  // namespace

std::string FormatDistance(Distance d) {
  return d == kInfDistance ? "INF" : std::to_string(d);
}

std::string OkResponse(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string ErrResponse(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

std::string FormatBatchResponse(const std::vector<Distance>& dists) {
  std::string payload;
  for (size_t i = 0; i < dists.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += FormatDistance(dists[i]);
  }
  return OkResponse(payload);
}

std::string FormatKnnResponse(
    const std::vector<std::pair<VertexId, Distance>>& neighbors) {
  std::string payload;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += std::to_string(neighbors[i].first) + ':' +
               FormatDistance(neighbors[i].second);
  }
  return OkResponse(payload);
}

}  // namespace hopdb
