#include "server/protocol.h"

#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace hopdb {

namespace {

/// Splits on spaces and tabs, dropping empty tokens (so stray double
/// spaces from hand-typed telnet sessions are harmless).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<VertexId> ParseVertex(const std::string& token) {
  uint64_t v = 0;
  if (!ParseUint64(token, &v) || v >= kInvalidVertex) {
    return Status::InvalidArgument("bad vertex id '" + token + "'");
  }
  return static_cast<VertexId>(v);
}

/// Parses one request from `tokens` (already split). `routed` is true
/// when the tokens follow a USE prefix, which restricts the verb set to
/// the per-index ones and forbids nested USE.
Result<Request> ParseTokens(const std::vector<std::string>& tokens,
                            size_t first, bool routed);

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  return ParseTokens(tokens, 0, /*routed=*/false);
}

namespace {

Result<Request> ParseTokens(const std::vector<std::string>& tokens,
                            size_t first, bool routed) {
  const std::string& verb = tokens[first];
  const size_t count = tokens.size() - first;
  auto token = [&](size_t i) -> const std::string& {
    return tokens[first + i];
  };
  Request request;
  if (verb == "DIST") {
    if (count != 3) {
      return Status::InvalidArgument("usage: DIST <src> <dst>");
    }
    request.kind = RequestKind::kDist;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    return request;
  }
  if (verb == "BATCH") {
    if (count < 3) {
      return Status::InvalidArgument("usage: BATCH <src> <t1> [t2 ...]");
    }
    request.kind = RequestKind::kBatch;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.reserve(count - 2);
    for (size_t i = 2; i < count; ++i) {
      HOPDB_ASSIGN_OR_RETURN(VertexId t, ParseVertex(token(i)));
      request.targets.push_back(t);
    }
    return request;
  }
  if (verb == "KNN") {
    if (count != 3) {
      return Status::InvalidArgument("usage: KNN <src> <k>");
    }
    request.kind = RequestKind::kKnn;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    uint64_t k = 0;
    if (!ParseUint64(token(2), &k) || k == 0 ||
        k > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad neighbor count '" + token(2) + "'");
    }
    request.k = static_cast<uint32_t>(k);
    return request;
  }
  if (verb == "WITHIN") {
    if (count != 3) {
      return Status::InvalidArgument("usage: WITHIN <src> <radius>");
    }
    request.kind = RequestKind::kWithin;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    uint64_t r = 0;
    if (!ParseUint64(token(2), &r) ||
        r > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad radius '" + token(2) + "'");
    }
    request.k = static_cast<uint32_t>(r);
    return request;
  }
  if (verb == "REACH") {
    if (count != 4) {
      return Status::InvalidArgument("usage: REACH <src> <dst> <bound>");
    }
    request.kind = RequestKind::kReach;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    uint64_t bound = 0;
    if (!ParseUint64(token(3), &bound) ||
        bound > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad distance bound '" + token(3) + "'");
    }
    request.k = static_cast<uint32_t>(bound);
    return request;
  }
  if (verb == "PATH") {
    if (count != 3) {
      return Status::InvalidArgument("usage: PATH <src> <dst>");
    }
    request.kind = RequestKind::kPath;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    return request;
  }
  if (verb == "RELOAD") {
    if (count > 2) {
      return Status::InvalidArgument("usage: RELOAD [<path>]");
    }
    request.kind = RequestKind::kReload;
    if (count == 2) request.path = token(1);
    return request;
  }
  if (verb == "ADDEDGE") {
    if (count != 3 && count != 4) {
      return Status::InvalidArgument("usage: ADDEDGE <u> <v> [<w>]");
    }
    request.kind = RequestKind::kAddEdge;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    request.k = 1;
    if (count == 4) {
      uint64_t w = 0;
      if (!ParseUint64(token(3), &w) || w == 0 || w >= kInfDistance) {
        return Status::InvalidArgument("bad edge weight '" + token(3) + "'");
      }
      request.k = static_cast<uint32_t>(w);
    }
    return request;
  }
  if (verb == "DELEDGE") {
    if (count != 3) {
      return Status::InvalidArgument("usage: DELEDGE <u> <v>");
    }
    request.kind = RequestKind::kDelEdge;
    HOPDB_ASSIGN_OR_RETURN(request.src, ParseVertex(token(1)));
    request.targets.resize(1);
    HOPDB_ASSIGN_OR_RETURN(request.targets[0], ParseVertex(token(2)));
    return request;
  }
  if (verb == "COMMIT") {
    if (count != 1) {
      return Status::InvalidArgument("usage: COMMIT");
    }
    request.kind = RequestKind::kCommit;
    return request;
  }
  if (routed) {
    // Everything below is whole-server scoped and must not carry a USE
    // prefix; nested USE is caught here too.
    return Status::InvalidArgument(
        "USE can only prefix DIST, BATCH, KNN, WITHIN, REACH, PATH, "
        "RELOAD, ADDEDGE, DELEDGE, or COMMIT (got '" + verb + "')");
  }
  if (verb == "USE") {
    if (count < 3) {
      return Status::InvalidArgument("usage: USE <index> <request>");
    }
    HOPDB_ASSIGN_OR_RETURN(Request routed_request,
                           ParseTokens(tokens, first + 2, /*routed=*/true));
    routed_request.index_name = token(1);
    return routed_request;
  }
  if (verb == "ATTACH") {
    if (count != 3) {
      return Status::InvalidArgument("usage: ATTACH <name> <path>");
    }
    request.kind = RequestKind::kAttach;
    request.index_name = token(1);
    request.path = token(2);
    return request;
  }
  if (verb == "DETACH") {
    if (count != 2) {
      return Status::InvalidArgument("usage: DETACH <name>");
    }
    request.kind = RequestKind::kDetach;
    request.index_name = token(1);
    return request;
  }
  if (verb == "STATS") {
    if (count != 1) {
      return Status::InvalidArgument("usage: STATS");
    }
    request.kind = RequestKind::kStats;
    return request;
  }
  if (verb == "METRICS") {
    if (count != 1) {
      return Status::InvalidArgument("usage: METRICS");
    }
    request.kind = RequestKind::kMetrics;
    return request;
  }
  if (verb == "TRACE") {
    if (count != 3 || token(1) != "LAST") {
      return Status::InvalidArgument("usage: TRACE LAST <n>");
    }
    uint64_t n = 0;
    if (!ParseUint64(token(2), &n) || n == 0 ||
        n > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad trace count '" + token(2) + "'");
    }
    request.kind = RequestKind::kTrace;
    request.k = static_cast<uint32_t>(n);
    return request;
  }
  if (verb == "PING") {
    if (count != 1) {
      return Status::InvalidArgument("usage: PING");
    }
    request.kind = RequestKind::kPing;
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + verb + "'");
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kDist:
      return "dist";
    case RequestKind::kBatch:
      return "batch";
    case RequestKind::kKnn:
      return "knn";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kReload:
      return "reload";
    case RequestKind::kAttach:
      return "attach";
    case RequestKind::kDetach:
      return "detach";
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kMetrics:
      return "metrics";
    case RequestKind::kTrace:
      return "trace";
    case RequestKind::kAddEdge:
      return "addedge";
    case RequestKind::kDelEdge:
      return "deledge";
    case RequestKind::kCommit:
      return "commit";
    case RequestKind::kWithin:
      return "within";
    case RequestKind::kReach:
      return "reach";
    case RequestKind::kPath:
      return "path";
  }
  return "unknown";
}

std::string FormatDistance(Distance d) {
  return d == kInfDistance ? "INF" : std::to_string(d);
}

std::string OkResponse(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string ErrResponse(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

std::string FormatBatchResponse(const std::vector<Distance>& dists) {
  std::string payload;
  for (size_t i = 0; i < dists.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += FormatDistance(dists[i]);
  }
  return OkResponse(payload);
}

std::string FormatKnnResponse(
    const std::vector<std::pair<VertexId, Distance>>& neighbors) {
  std::string payload;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += std::to_string(neighbors[i].first) + ':' +
               FormatDistance(neighbors[i].second);
  }
  return OkResponse(payload);
}

std::string BusyResponse(const std::string& detail) {
  return ErrResponse("BUSY " + detail);
}

std::string FormatRequestV1(const Request& request) {
  std::string line;
  if (!request.index_name.empty() && request.kind != RequestKind::kAttach &&
      request.kind != RequestKind::kDetach) {
    line = "USE " + request.index_name + " ";
  }
  switch (request.kind) {
    case RequestKind::kDist:
      line += "DIST " + std::to_string(request.src) + " " +
              std::to_string(request.targets.empty() ? 0
                                                     : request.targets[0]);
      break;
    case RequestKind::kBatch:
      line += "BATCH " + std::to_string(request.src);
      for (VertexId t : request.targets) {
        line += ' ';
        line += std::to_string(t);
      }
      break;
    case RequestKind::kKnn:
      line += "KNN " + std::to_string(request.src) + " " +
              std::to_string(request.k);
      break;
    case RequestKind::kStats:
      line += "STATS";
      break;
    case RequestKind::kMetrics:
      line += "METRICS";
      break;
    case RequestKind::kTrace:
      line += "TRACE LAST " + std::to_string(request.k);
      break;
    case RequestKind::kReload:
      line += "RELOAD";
      if (!request.path.empty()) line += " " + request.path;
      break;
    case RequestKind::kAttach:
      line += "ATTACH " + request.index_name + " " + request.path;
      break;
    case RequestKind::kDetach:
      line += "DETACH " + request.index_name;
      break;
    case RequestKind::kPing:
      line += "PING";
      break;
    case RequestKind::kAddEdge:
      line += "ADDEDGE " + std::to_string(request.src) + " " +
              std::to_string(request.targets.empty() ? 0
                                                     : request.targets[0]);
      if (request.k != 1) line += " " + std::to_string(request.k);
      break;
    case RequestKind::kDelEdge:
      line += "DELEDGE " + std::to_string(request.src) + " " +
              std::to_string(request.targets.empty() ? 0
                                                     : request.targets[0]);
      break;
    case RequestKind::kCommit:
      line += "COMMIT";
      break;
    case RequestKind::kWithin:
      line += "WITHIN " + std::to_string(request.src) + " " +
              std::to_string(request.k);
      break;
    case RequestKind::kReach:
      line += "REACH " + std::to_string(request.src) + " " +
              std::to_string(request.targets.empty() ? 0
                                                     : request.targets[0]) +
              " " + std::to_string(request.k);
      break;
    case RequestKind::kPath:
      line += "PATH " + std::to_string(request.src) + " " +
              std::to_string(request.targets.empty() ? 0
                                                     : request.targets[0]);
      break;
  }
  return line;
}

// ---------------------------------------------------------------------------
// WireResponse constructors and the v1 encoder.
// ---------------------------------------------------------------------------

WireResponse WireOk(std::string payload) {
  WireResponse r;
  r.text = std::move(payload);
  return r;
}

WireResponse WireErr(std::string message) {
  WireResponse r;
  r.status = WireStatus::kErr;
  r.text = std::move(message);
  return r;
}

WireResponse WireBlobResponse(std::string text) {
  WireResponse r;
  r.payload = WirePayload::kBlob;
  r.text = std::move(text);
  return r;
}

WireResponse WireBusy() {
  WireResponse r;
  r.status = WireStatus::kBusy;
  r.text = "work queue full; retry";
  return r;
}

WireResponse WireDistanceResponse(Distance d) {
  WireResponse r;
  r.payload = WirePayload::kDistance;
  r.distance = d;
  return r;
}

WireResponse WireDistancesResponse(std::vector<Distance> dists) {
  WireResponse r;
  r.payload = WirePayload::kDistances;
  r.distances = std::move(dists);
  return r;
}

WireResponse WireNeighborsResponse(
    std::vector<std::pair<VertexId, Distance>> neighbors) {
  WireResponse r;
  r.payload = WirePayload::kNeighbors;
  r.neighbors = std::move(neighbors);
  return r;
}

std::string EncodeResponseV1(const WireResponse& response) {
  if (response.status == WireStatus::kBusy) {
    return BusyResponse(response.text);
  }
  if (response.status == WireStatus::kErr) {
    return ErrResponse(response.text);
  }
  switch (response.payload) {
    case WirePayload::kDistance:
      return OkResponse(FormatDistance(response.distance));
    case WirePayload::kDistances:
      return FormatBatchResponse(response.distances);
    case WirePayload::kNeighbors:
      return FormatKnnResponse(response.neighbors);
    case WirePayload::kBlob:
      // "OK BLOB <n>\n" then exactly n raw bytes; the connection appends
      // one more '\n' after the whole response, terminating the blob
      // with a blank line for interactive (telnet) readers.
      return "OK BLOB " + std::to_string(response.text.size()) + "\n" +
             response.text;
    case WirePayload::kText:
      break;
  }
  return OkResponse(response.text);
}

// ---------------------------------------------------------------------------
// Binary protocol v2.
// ---------------------------------------------------------------------------

namespace {

void PutU16(std::string* out, uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out->append(b, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

void EncodeRequestV2(const Request& request, std::string* out) {
  V2Opcode opcode = V2Opcode::kPing;
  uint32_t src = 0;
  uint32_t arg = 0;
  std::string aux;
  switch (request.kind) {
    case RequestKind::kDist:
      opcode = V2Opcode::kDist;
      src = request.src;
      arg = request.targets.empty() ? 0 : request.targets[0];
      break;
    case RequestKind::kBatch:
      opcode = V2Opcode::kBatch;
      src = request.src;
      arg = static_cast<uint32_t>(request.targets.size());
      aux.reserve(request.targets.size() * 4);
      for (VertexId t : request.targets) PutU32(&aux, t);
      break;
    case RequestKind::kKnn:
      opcode = V2Opcode::kKnn;
      src = request.src;
      arg = request.k;
      break;
    case RequestKind::kPing:
      opcode = V2Opcode::kPing;
      break;
    case RequestKind::kStats:
      opcode = V2Opcode::kStats;
      break;
    case RequestKind::kReload:
      opcode = V2Opcode::kReload;
      aux = request.path;
      break;
    case RequestKind::kAttach:
      opcode = V2Opcode::kAttach;
      aux = request.path;
      break;
    case RequestKind::kDetach:
      opcode = V2Opcode::kDetach;
      break;
    case RequestKind::kMetrics:
      opcode = V2Opcode::kMetrics;
      break;
    case RequestKind::kTrace:
      opcode = V2Opcode::kTrace;
      arg = request.k;
      break;
    case RequestKind::kAddEdge:
      opcode = V2Opcode::kAddEdge;
      src = request.src;
      arg = request.targets.empty() ? 0 : request.targets[0];
      PutU32(&aux, request.k);  // edge weight
      break;
    case RequestKind::kDelEdge:
      opcode = V2Opcode::kDelEdge;
      src = request.src;
      arg = request.targets.empty() ? 0 : request.targets[0];
      break;
    case RequestKind::kCommit:
      opcode = V2Opcode::kCommit;
      break;
    case RequestKind::kWithin:
      opcode = V2Opcode::kWithin;
      src = request.src;
      arg = request.k;  // radius
      break;
    case RequestKind::kReach:
      opcode = V2Opcode::kReach;
      src = request.src;
      arg = request.targets.empty() ? 0 : request.targets[0];
      PutU32(&aux, request.k);  // distance bound
      break;
    case RequestKind::kPath:
      opcode = V2Opcode::kPath;
      src = request.src;
      arg = request.targets.empty() ? 0 : request.targets[0];
      break;
  }
  out->push_back(static_cast<char>(opcode));
  out->push_back('\0');  // reserved
  PutU16(out, static_cast<uint16_t>(request.index_name.size()));
  PutU32(out, static_cast<uint32_t>(aux.size()));
  PutU32(out, src);
  PutU32(out, arg);
  out->append(request.index_name);
  out->append(aux);
}

void EncodeResponseV2(const WireResponse& response, std::string* out) {
  uint32_t value = 0;
  size_t aux_len = 0;
  switch (response.payload) {
    case WirePayload::kText:
    case WirePayload::kBlob:
      aux_len = response.text.size();
      break;
    case WirePayload::kDistance:
      value = response.distance;
      break;
    case WirePayload::kDistances:
      value = static_cast<uint32_t>(response.distances.size());
      aux_len = response.distances.size() * 4;
      break;
    case WirePayload::kNeighbors:
      value = static_cast<uint32_t>(response.neighbors.size());
      aux_len = response.neighbors.size() * 8;
      break;
  }
  if (response.status != WireStatus::kOk) {
    value = 0;
    aux_len = response.text.size();
  }
  out->push_back(static_cast<char>(response.status));
  out->push_back(static_cast<char>(response.status == WireStatus::kOk
                                       ? response.payload
                                       : WirePayload::kText));
  PutU16(out, 0);  // reserved
  PutU32(out, value);
  PutU32(out, static_cast<uint32_t>(aux_len));
  if (response.status != WireStatus::kOk) {
    out->append(response.text);
    return;
  }
  switch (response.payload) {
    case WirePayload::kText:
    case WirePayload::kBlob:
      out->append(response.text);
      break;
    case WirePayload::kDistance:
      break;
    case WirePayload::kDistances:
      for (Distance d : response.distances) PutU32(out, d);
      break;
    case WirePayload::kNeighbors:
      for (const auto& [v, d] : response.neighbors) {
        PutU32(out, v);
        PutU32(out, d);
      }
      break;
  }
}

FrameParse ParseRequestFrameV2(const char* data, size_t size,
                               size_t* consumed, Request* out,
                               std::string* error) {
  if (size < kV2RequestHeaderBytes) return FrameParse::kNeedMore;
  const uint8_t opcode = static_cast<uint8_t>(data[0]);
  const uint8_t reserved = static_cast<uint8_t>(data[1]);
  const uint16_t name_len = GetU16(data + 2);
  const uint32_t aux_len = GetU32(data + 4);
  const uint32_t src = GetU32(data + 8);
  const uint32_t arg = GetU32(data + 12);
  if (reserved != 0) {
    *error = "v2 frame: nonzero reserved byte (framing desync?)";
    return FrameParse::kError;
  }
  if (static_cast<size_t>(name_len) + aux_len > kV2MaxFrameBytes) {
    *error = "v2 frame too large";
    return FrameParse::kError;
  }
  const size_t total =
      kV2RequestHeaderBytes + static_cast<size_t>(name_len) + aux_len;
  if (size < total) return FrameParse::kNeedMore;
  const char* name = data + kV2RequestHeaderBytes;
  const char* aux = name + name_len;

  Request request;
  request.index_name.assign(name, name_len);
  switch (static_cast<V2Opcode>(opcode)) {
    case V2Opcode::kDist:
      if (aux_len != 0) {
        *error = "v2 DIST frame carries a payload";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kDist;
      request.src = src;
      request.targets.assign(1, arg);
      if (src >= kInvalidVertex || arg >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      break;
    case V2Opcode::kBatch:
      if (arg == 0 || aux_len != static_cast<size_t>(arg) * 4) {
        *error = "v2 BATCH frame: payload length != 4 * target count";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kBatch;
      request.src = src;
      request.targets.resize(arg);
      std::memcpy(request.targets.data(), aux, aux_len);
      break;
    case V2Opcode::kKnn:
      if (aux_len != 0 || arg == 0) {
        *error = "v2 KNN frame: bad k or stray payload";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kKnn;
      request.src = src;
      request.k = arg;
      break;
    case V2Opcode::kPing:
    case V2Opcode::kStats:
      if (name_len != 0 || aux_len != 0 || src != 0 || arg != 0) {
        *error = "v2 PING/STATS frame carries operands";
        return FrameParse::kError;
      }
      request.kind = static_cast<V2Opcode>(opcode) == V2Opcode::kPing
                         ? RequestKind::kPing
                         : RequestKind::kStats;
      break;
    case V2Opcode::kReload:
      request.kind = RequestKind::kReload;
      request.path.assign(aux, aux_len);
      break;
    case V2Opcode::kAttach:
      if (name_len == 0 || aux_len == 0) {
        *error = "v2 ATTACH frame needs a name and a path";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kAttach;
      request.path.assign(aux, aux_len);
      break;
    case V2Opcode::kDetach:
      if (name_len == 0 || aux_len != 0) {
        *error = "v2 DETACH frame needs a name and no payload";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kDetach;
      break;
    case V2Opcode::kMetrics:
      if (name_len != 0 || aux_len != 0 || src != 0 || arg != 0) {
        *error = "v2 METRICS frame carries operands";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kMetrics;
      break;
    case V2Opcode::kTrace:
      if (name_len != 0 || aux_len != 0 || src != 0 || arg == 0) {
        *error = "v2 TRACE frame: bad count or stray operands";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kTrace;
      request.k = arg;
      break;
    case V2Opcode::kAddEdge: {
      if (aux_len != 4) {
        *error = "v2 ADDEDGE frame: payload must be one u32 weight";
        return FrameParse::kError;
      }
      if (src >= kInvalidVertex || arg >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      const uint32_t weight = GetU32(aux);
      if (weight == 0 || weight >= kInfDistance) {
        *error = "v2 ADDEDGE frame: weight must be positive and finite";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kAddEdge;
      request.src = src;
      request.targets.assign(1, arg);
      request.k = weight;
      break;
    }
    case V2Opcode::kDelEdge:
      if (aux_len != 0) {
        *error = "v2 DELEDGE frame carries a payload";
        return FrameParse::kError;
      }
      if (src >= kInvalidVertex || arg >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kDelEdge;
      request.src = src;
      request.targets.assign(1, arg);
      break;
    case V2Opcode::kCommit:
      if (aux_len != 0 || src != 0 || arg != 0) {
        *error = "v2 COMMIT frame carries operands";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kCommit;
      break;
    case V2Opcode::kWithin:
      if (aux_len != 0) {
        *error = "v2 WITHIN frame carries a payload";
        return FrameParse::kError;
      }
      if (src >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kWithin;
      request.src = src;
      request.k = arg;  // radius
      break;
    case V2Opcode::kReach:
      if (aux_len != 4) {
        *error = "v2 REACH frame: payload must be one u32 bound";
        return FrameParse::kError;
      }
      if (src >= kInvalidVertex || arg >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kReach;
      request.src = src;
      request.targets.assign(1, arg);
      request.k = GetU32(aux);
      break;
    case V2Opcode::kPath:
      if (aux_len != 0) {
        *error = "v2 PATH frame carries a payload";
        return FrameParse::kError;
      }
      if (src >= kInvalidVertex || arg >= kInvalidVertex) {
        *error = "bad vertex id";
        return FrameParse::kError;
      }
      request.kind = RequestKind::kPath;
      request.src = src;
      request.targets.assign(1, arg);
      break;
    default:
      *error = "unknown v2 opcode " + std::to_string(opcode);
      return FrameParse::kError;
  }
  *consumed = total;
  *out = std::move(request);
  return FrameParse::kDone;
}

FrameParse ParseResponseFrameV2(const char* data, size_t size,
                                size_t* consumed, WireResponse* out,
                                std::string* error) {
  if (size < kV2ResponseHeaderBytes) return FrameParse::kNeedMore;
  const uint8_t status = static_cast<uint8_t>(data[0]);
  const uint8_t payload = static_cast<uint8_t>(data[1]);
  const uint16_t reserved = GetU16(data + 2);
  const uint32_t value = GetU32(data + 4);
  const uint32_t aux_len = GetU32(data + 8);
  if (status > static_cast<uint8_t>(WireStatus::kBusy) ||
      payload > static_cast<uint8_t>(WirePayload::kBlob) ||
      reserved != 0) {
    *error = "v2 response frame: bad header";
    return FrameParse::kError;
  }
  if (aux_len > kV2MaxFrameBytes) {
    *error = "v2 response frame too large";
    return FrameParse::kError;
  }
  const size_t total = kV2ResponseHeaderBytes + aux_len;
  if (size < total) return FrameParse::kNeedMore;
  const char* aux = data + kV2ResponseHeaderBytes;

  WireResponse response;
  response.status = static_cast<WireStatus>(status);
  response.payload = static_cast<WirePayload>(payload);
  switch (response.payload) {
    case WirePayload::kText:
    case WirePayload::kBlob:
      response.text.assign(aux, aux_len);
      break;
    case WirePayload::kDistance:
      if (aux_len != 0) {
        *error = "v2 distance response carries a payload";
        return FrameParse::kError;
      }
      response.distance = value;
      break;
    case WirePayload::kDistances:
      if (aux_len != static_cast<size_t>(value) * 4) {
        *error = "v2 distances response: count/length mismatch";
        return FrameParse::kError;
      }
      response.distances.resize(value);
      if (aux_len > 0) {
        std::memcpy(response.distances.data(), aux, aux_len);
      }
      break;
    case WirePayload::kNeighbors: {
      if (aux_len != static_cast<size_t>(value) * 8) {
        *error = "v2 neighbors response: count/length mismatch";
        return FrameParse::kError;
      }
      response.neighbors.resize(value);
      for (uint32_t i = 0; i < value; ++i) {
        response.neighbors[i] = {GetU32(aux + i * 8), GetU32(aux + i * 8 + 4)};
      }
      break;
    }
  }
  *consumed = total;
  *out = std::move(response);
  return FrameParse::kDone;
}

}  // namespace hopdb
