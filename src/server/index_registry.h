// Named multi-index registry: one RCU-style IndexHandle per index name,
// so a single server can hold many graphs hot at once.
//
// The registry is a thin concurrent map from name to the existing
// hot-swap machinery (index_snapshot.h): every name owns its own
// IndexHandle, so per-index RELOAD/ATTACH/DETACH never disturbs queries
// on other indexes, and DETACH is safe against in-flight queries — a
// worker that already holds the snapshot's shared_ptr finishes on it,
// and the index is freed when the last reference drops. One index is the
// DEFAULT ("default"): unprefixed DIST/BATCH/KNN/RELOAD route to it, and
// it cannot be detached (a serving process always has an index).
//
// Index names are restricted to [A-Za-z0-9_.-], at most 64 chars, so
// they embed cleanly in STATS key=value payloads and ATTACH lines.

#ifndef HOPDB_SERVER_INDEX_REGISTRY_H_
#define HOPDB_SERVER_INDEX_REGISTRY_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/index_snapshot.h"
#include "util/status.h"

namespace hopdb {

/// The reserved name unprefixed requests route to. A std::string so the
/// per-request registry lookup compares/finds without materializing a
/// temporary.
inline const std::string kDefaultIndexName = "default";

/// Validates an ATTACH/USE index name: 1-64 chars of [A-Za-z0-9_.-].
/// InvalidArgument (with a client-safe message) otherwise.
Status ValidateIndexName(const std::string& name);

/// Loads a serving snapshot from any index file format, dispatching on
/// the file magic: "HLI2" opens a zero-copy MappedIndex (O(|V|)
/// metadata validation, no deserialization), anything else goes through
/// HopDbIndex::Load (HLI1/HLC1 + .perm sidecar, O(total entries)).
/// The returned snapshot records `path` as its reload source and builds
/// a hot-hub cache over the top `hot_hub_k` pivots (0 disables).
/// A non-empty `graph_path` loads the index's build graph (original
/// ids) alongside a heap-backed snapshot so it can answer PATH; it is
/// ignored for mmap-backed (HLI2) indexes, which cannot host the path
/// engine (their PATH answers stay FailedPrecondition).
Result<std::shared_ptr<const ServingSnapshot>> LoadServingSnapshot(
    const std::string& path, size_t cache_capacity, uint32_t hot_hub_k = 0,
    const std::string& graph_path = std::string());

class IndexRegistry {
 public:
  IndexRegistry() = default;
  IndexRegistry(const IndexRegistry&) = delete;
  IndexRegistry& operator=(const IndexRegistry&) = delete;

  /// Registers `snapshot` under `name`. AlreadyExists-shaped
  /// InvalidArgument when the name is taken (swap an existing index with
  /// Publish/RELOAD instead) and InvalidArgument on a malformed name.
  Status Attach(const std::string& name,
                std::shared_ptr<const ServingSnapshot> snapshot);

  /// Unregisters `name`. The default index cannot be detached; unknown
  /// names are NotFound. Queries already holding the snapshot finish
  /// normally; the index memory is released when the last reference
  /// drops.
  Status Detach(const std::string& name);

  /// Atomically publishes a new snapshot for an existing name (the
  /// RELOAD path). NotFound when the name is not attached.
  Status Publish(const std::string& name,
                 std::shared_ptr<const ServingSnapshot> snapshot);

  /// Current snapshot of `name` (empty string = default), or nullptr
  /// when the name is not attached. Lock-free querying: the caller keeps
  /// the shared_ptr for the duration of its request.
  std::shared_ptr<const ServingSnapshot> Find(const std::string& name) const;

  /// Attached names in sorted order (STATS iteration).
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  /// Each name keeps its own swappable handle so per-index publishes
  /// never contend with lookups of other names beyond this map mutex.
  std::map<std::string, std::shared_ptr<IndexHandle>> handles_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_INDEX_REGISTRY_H_
