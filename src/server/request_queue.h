// A bounded multi-producer / multi-consumer FIFO built on a mutex and two
// condition variables. Producers either block while the queue is full
// (Push — backpressure toward slow clients instead of unbounded memory
// growth) or fail fast (TryPush — so an event-loop producer can shed
// load with a BUSY response instead of stalling its whole I/O thread);
// consumers block while it is empty. Close() wakes everyone: pending
// items still drain, further pushes are refused.
//
// PopBatch is the micro-batching hook: one consumer wakes up and takes
// every immediately available item up to `max`, so a worker can amortize
// per-wakeup costs (lock traffic, label-scan setup) across a burst of
// queued requests without adding latency when the queue is shallow.

#ifndef HOPDB_SERVER_REQUEST_QUEUE_H_
#define HOPDB_SERVER_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace hopdb {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (item dropped) once closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// TryPush outcome: the two failure modes need different client-facing
  /// answers (kFull -> BUSY, retryable; kClosed -> shutting down).
  enum class PushResult : uint8_t { kOk, kFull, kClosed };

  /// Never blocks. Moves from *item only on kOk; on kFull/kClosed the
  /// item is left intact so the caller can answer it inline.
  PushResult TryPush(T* item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(*item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks while empty. Returns false only when closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Blocks for the first item, then drains up to `max` items that are
  /// already queued into `out` (appended). Returns the number taken;
  /// 0 only when closed and drained.
  size_t PopBatch(std::vector<T>* out, size_t max) {
    if (max == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    lock.unlock();
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Refuses further pushes and wakes all blocked producers/consumers.
  /// Already queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_REQUEST_QUEUE_H_
