#include "server/trace.h"

#include <algorithm>

namespace hopdb {

TraceRing::TraceRing(size_t capacity) : ring_(std::max<size_t>(capacity, 1)) {}

void TraceRing::Push(const RequestTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = trace;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
}

std::vector<RequestTrace> TraceRing::Last(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTrace> out;
  const size_t count = std::min(n, size_);
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // next_ - 1 is the newest entry; walk backwards.
    const size_t idx = (next_ + ring_.size() - 1 - i) % ring_.size();
    out.push_back(ring_[idx]);
  }
  return out;
}

}  // namespace hopdb
