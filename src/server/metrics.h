// Lock-free server metrics: per-verb request counters and a log-scale
// latency histogram good enough for p50/p99 reporting.
//
// Latencies are recorded in microseconds into power-of-two buckets
// (bucket i covers [2^i, 2^(i+1)) us, bucket 0 covers [0, 2)). A
// percentile is answered by walking the cumulative histogram and
// returning the upper bound of the bucket containing that rank — at most
// 2x off, which is plenty for "did p99 regress 10x" monitoring, and it
// needs no per-request allocation, sorting, or locking. All counters are
// relaxed atomics: STATS readers see a near-consistent snapshot, which
// is the standard contract for monitoring counters.

#ifndef HOPDB_SERVER_METRICS_H_
#define HOPDB_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace hopdb {

class ServerMetrics {
 public:
  static constexpr size_t kLatencyBuckets = 40;  // up to ~2^39 us ≈ 6 days

  void RecordRequest(double latency_us) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    size_t bucket = 0;
    uint64_t us = latency_us <= 0 ? 0 : static_cast<uint64_t>(latency_us);
    while (us >= 2 && bucket + 1 < kLatencyBuckets) {
      us >>= 1;
      ++bucket;
    }
    latency_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  void RecordError() { errors_.fetch_add(1, std::memory_order_relaxed); }
  /// One request shed with BUSY by admission control (distinct from
  /// errors(): shed load is expected under overload, not a fault).
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordDist(uint64_t n = 1) {
    dist_queries_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordBatch() { batch_requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordKnn() { knn_requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordReload() { reloads_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMicroBatch(uint64_t batched_queries) {
    micro_batches_.fetch_add(1, std::memory_order_relaxed);
    micro_batched_queries_.fetch_add(batched_queries,
                                     std::memory_order_relaxed);
  }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t dist_queries() const {
    return dist_queries_.load(std::memory_order_relaxed);
  }
  uint64_t batch_requests() const {
    return batch_requests_.load(std::memory_order_relaxed);
  }
  uint64_t knn_requests() const {
    return knn_requests_.load(std::memory_order_relaxed);
  }
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  uint64_t micro_batches() const {
    return micro_batches_.load(std::memory_order_relaxed);
  }
  uint64_t micro_batched_queries() const {
    return micro_batched_queries_.load(std::memory_order_relaxed);
  }

  /// Upper bound (us) of the histogram bucket holding the p-th
  /// percentile request, p in [0, 100]. 0 when nothing was recorded.
  uint64_t LatencyPercentileUs(double p) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> dist_queries_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> knn_requests_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> micro_batches_{0};
  std::atomic<uint64_t> micro_batched_queries_{0};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_histogram_{};
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_METRICS_H_
