// Lock-free server metrics: request counters plus log-scale latency
// histograms — one overall, one for degraded (shed/error) requests, one
// per pipeline stage, and one per verb.
//
// Latencies are recorded in microseconds into power-of-two buckets
// (bucket i covers [2^i, 2^(i+1)) us, bucket 0 covers [0, 2)). A
// percentile is answered by walking the cumulative histogram and
// returning the upper bound of the bucket containing that rank — at most
// 2x off, which is plenty for "did p99 regress 10x" monitoring, and it
// needs no per-request allocation, sorting, or locking. All counters are
// relaxed atomics: STATS/METRICS readers see a near-consistent snapshot,
// which is the standard contract for monitoring counters.
//
// Counters (requests/errors/shed) are bumped when a response is
// completed; histograms are fed from RecordTrace when the response's
// last byte reaches the kernel (RequestSink::HandleTraceDone), so
// latency covers the full accepted->written span including socket
// writes. Requests whose connection dies mid-write are counted but
// never reach the histograms.

#ifndef HOPDB_SERVER_METRICS_H_
#define HOPDB_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "server/trace.h"

namespace hopdb {

/// One log-scale latency histogram (see file comment for semantics).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // up to ~2^39 us ≈ 6 days

  void Record(uint64_t us) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    size_t bucket = 0;
    while (us >= 2 && bucket + 1 < kBuckets) {
      us >>= 1;
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper bound (us) of the bucket holding the p-th percentile sample,
  /// p in [0, 100] (clamped). 0 when nothing was recorded.
  uint64_t PercentileUs(double p) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }

  /// Relaxed per-bucket snapshot (Prometheus histogram rendering).
  std::array<uint64_t, kBuckets> BucketSnapshot() const {
    std::array<uint64_t, kBuckets> out;
    for (size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Upper bound (us) of bucket i.
  static uint64_t BucketUpperBoundUs(size_t i) { return 2ull << i; }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

class ServerMetrics {
 public:
  static constexpr size_t kLatencyBuckets = LatencyHistogram::kBuckets;

  /// Counts one completed request. Latency histograms are fed separately
  /// by RecordTrace once the response bytes are written.
  void CountRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }

  /// Back-compat convenience (tests, embedders): count a request and
  /// record its latency into the overall histogram in one call.
  void RecordRequest(double latency_us) {
    CountRequest();
    latency_.Record(latency_us <= 0 ? 0 : static_cast<uint64_t>(latency_us));
  }

  /// Feeds every histogram from one completed trace: overall (or
  /// degraded for shed/error/parse-error requests), per-stage, per-verb.
  void RecordTrace(const RequestTrace& trace);

  void RecordError() { errors_.fetch_add(1, std::memory_order_relaxed); }
  /// One request shed with BUSY by admission control (distinct from
  /// errors(): shed load is expected under overload, not a fault).
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordSlowQuery() {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordDist(uint64_t n = 1) {
    dist_queries_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordBatch() { batch_requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordKnn() { knn_requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordWithin() {
    within_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordReach() {
    reach_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPath() {
    path_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordReload() { reloads_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMicroBatch(uint64_t batched_queries) {
    micro_batches_.fetch_add(1, std::memory_order_relaxed);
    micro_batched_queries_.fetch_add(batched_queries,
                                     std::memory_order_relaxed);
  }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t slow_queries() const {
    return slow_queries_.load(std::memory_order_relaxed);
  }
  uint64_t traces_sampled() const {
    return traces_sampled_.load(std::memory_order_relaxed);
  }
  uint64_t dist_queries() const {
    return dist_queries_.load(std::memory_order_relaxed);
  }
  uint64_t batch_requests() const {
    return batch_requests_.load(std::memory_order_relaxed);
  }
  uint64_t knn_requests() const {
    return knn_requests_.load(std::memory_order_relaxed);
  }
  uint64_t within_requests() const {
    return within_requests_.load(std::memory_order_relaxed);
  }
  uint64_t reach_requests() const {
    return reach_requests_.load(std::memory_order_relaxed);
  }
  uint64_t path_requests() const {
    return path_requests_.load(std::memory_order_relaxed);
  }
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  uint64_t micro_batches() const {
    return micro_batches_.load(std::memory_order_relaxed);
  }
  uint64_t micro_batched_queries() const {
    return micro_batched_queries_.load(std::memory_order_relaxed);
  }

  /// Overall (non-degraded) latency percentile; see
  /// LatencyHistogram::PercentileUs.
  uint64_t LatencyPercentileUs(double p) const {
    return latency_.PercentileUs(p);
  }

  const LatencyHistogram& latency_histogram() const { return latency_; }
  const LatencyHistogram& degraded_histogram() const { return degraded_; }
  const LatencyHistogram& queue_wait_histogram() const { return queue_wait_; }
  const LatencyHistogram& execute_histogram() const { return execute_; }
  const LatencyHistogram& write_histogram() const { return write_; }
  const LatencyHistogram& verb_histogram(RequestKind kind) const {
    return verb_latency_[static_cast<size_t>(kind)];
  }

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> traces_sampled_{0};
  std::atomic<uint64_t> dist_queries_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> knn_requests_{0};
  std::atomic<uint64_t> within_requests_{0};
  std::atomic<uint64_t> reach_requests_{0};
  std::atomic<uint64_t> path_requests_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> micro_batches_{0};
  std::atomic<uint64_t> micro_batched_queries_{0};

  /// accepted -> written, requests answered OK.
  LatencyHistogram latency_;
  /// accepted -> written, shed / error / parse-error requests — overload
  /// latency must stay visible even though those answers are cheap.
  LatencyHistogram degraded_;
  /// enqueued -> dequeued (skipped for shed and parse-error requests,
  /// which never traverse the queue).
  LatencyHistogram queue_wait_;
  /// dequeued -> executed (same skip rule as queue_wait_).
  LatencyHistogram execute_;
  /// executed -> written: encode wait plus socket write backlog.
  LatencyHistogram write_;
  /// accepted -> written per verb (parse errors have no verb).
  std::array<LatencyHistogram, kNumRequestKinds> verb_latency_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_METRICS_H_
