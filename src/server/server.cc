#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "labeling/query_kernel.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace hopdb {

namespace {

/// Same-source DIST groups at or above this size go through the
/// OneToManyEngine instead of independent label intersections.
constexpr size_t kMicroBatchGroupMin = 2;

/// BATCH requests with at least this many targets use the bucket join.
constexpr size_t kBatchEngineMin = 4;

/// Answers one (s, t) pair through the snapshot's cache.
Distance CachedQuery(const ServingSnapshot& snapshot, VertexId s, VertexId t) {
  Distance d = kInfDistance;
  if (snapshot.cache().Lookup(s, t, &d)) return d;
  d = snapshot.Query(s, t);
  snapshot.cache().Insert(s, t, d);
  return d;
}

// ---------------------------------------------------------------------------
// STATS payload helpers. Every key the server emits goes through one of
// these two appenders; tools/check_docs.py parses the call sites to keep
// the key table in docs/OPERATIONS.md from drifting.
// ---------------------------------------------------------------------------

void AppendStat(std::string* payload, const char* key,
                const std::string& value) {
  if (!payload->empty()) payload->push_back(' ');
  payload->append(key);
  payload->push_back('=');
  payload->append(value);
}

/// Emits `index.<name>.<key>=<value>` for the per-index STATS section.
void AppendIndexStat(std::string* payload, const std::string& name,
                     const char* key, const std::string& value) {
  if (!payload->empty()) payload->push_back(' ');
  payload->append("index.");
  payload->append(name);
  payload->push_back('.');
  payload->append(key);
  payload->push_back('=');
  payload->append(value);
}

WireResponse ErrNoSuchIndex(const std::string& name) {
  return WireErr("no index named '" + name + "' (see STATS, or ATTACH "
                 "it first)");
}

WireResponse ErrVertexOutOfRange(VertexId n) {
  return WireErr("vertex id out of range (|V|=" + std::to_string(n) + ")");
}

}  // namespace

DistanceServer::DistanceServer(const ServerOptions& options)
    : options_(options), queue_(options.queue_capacity) {}

Result<std::unique_ptr<DistanceServer>> DistanceServer::Start(
    std::shared_ptr<const ServingSnapshot> snapshot,
    const ServerOptions& options) {
  std::unique_ptr<DistanceServer> server(new DistanceServer(options));
  HOPDB_RETURN_NOT_OK(
      server->registry_.Attach(kDefaultIndexName, std::move(snapshot)));
  HOPDB_RETURN_NOT_OK(server->Listen());
  server->num_io_threads_ =
      options.num_io_threads == 0
          ? std::min<uint32_t>(4, HardwareThreads())
          : options.num_io_threads;
  IoGroupOptions io_options;
  io_options.num_threads = server->num_io_threads_;
  io_options.max_inflight_per_conn = options.max_inflight_per_conn;
  HOPDB_RETURN_NOT_OK(server->io_group_.Start(io_options, server.get()));
  const uint32_t workers =
      options.num_workers == 0 ? HardwareThreads() : options.num_workers;
  server->workers_.Start(workers,
                         [srv = server.get()](uint32_t) { srv->WorkerLoop(); });
  server->acceptor_ = std::thread([srv = server.get()] { srv->AcceptLoop(); });
  return server;
}

Result<std::unique_ptr<DistanceServer>> DistanceServer::Start(
    HopDbIndex index, const ServerOptions& options) {
  return Start(std::make_shared<const ServingSnapshot>(
                   std::move(index), options.source_path,
                   options.cache_capacity),
               options);
}

DistanceServer::~DistanceServer() { Stop(); }

Status DistanceServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "' (numeric IPv4 required)");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (listen(listen_fd_, std::max(1, options_.listen_backlog)) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void DistanceServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: back off briefly instead of dying — the
        // I/O group keeps serving, and closing connections frees fds.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // The listen socket was shut down (Stop) or broke; either way the
      // accept loop is done.
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    io_group_.Adopt(fd);
  }
}

// ---------------------------------------------------------------------------
// RequestSink: the I/O threads deliver parsed requests here. Never
// blocks — admission control answers inline when the queue can't take
// the work.
// ---------------------------------------------------------------------------

void DistanceServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                   uint64_t seq, Request request) {
  WorkItem item;
  item.request = std::move(request);
  item.conn = conn;
  item.seq = seq;
  switch (queue_.TryPush(&item)) {
    case BoundedQueue<WorkItem>::PushResult::kOk:
      return;
    case BoundedQueue<WorkItem>::PushResult::kFull:
      // Saturated, not broken: shed with the retryable BUSY answer.
      metrics_.RecordShed();
      metrics_.RecordRequest(0);
      conn->Complete(seq, WireBusy());
      return;
    case BoundedQueue<WorkItem>::PushResult::kClosed:
      conn->Complete(seq, WireErr("server shutting down"));
      return;
  }
}

void DistanceServer::HandleParseError(const std::shared_ptr<Connection>& conn,
                                      uint64_t seq, std::string message) {
  // Malformed input is answered inline: it never consumes a queue slot
  // a well-formed request could use.
  metrics_.RecordError();
  metrics_.RecordRequest(0);
  conn->Complete(seq, WireErr(std::move(message)));
}

void DistanceServer::WorkerLoop() {
  std::vector<WorkItem> batch;
  while (true) {
    batch.clear();
    if (queue_.PopBatch(&batch, options_.max_micro_batch) == 0) break;
    ExecuteWorkBatch(&batch);
  }
}

void DistanceServer::Finish(WorkItem* item, WireResponse response) {
  if (response.status != WireStatus::kOk) metrics_.RecordError();
  metrics_.RecordRequest(item->enqueue_watch.Micros());
  item->conn->Complete(item->seq, std::move(response));
}

void DistanceServer::ExecuteWorkBatch(std::vector<WorkItem>* items) {
  if (options_.pre_execute_hook) {
    for (const WorkItem& item : *items) options_.pre_execute_hook(item.request);
  }
  // DIST requests that miss the cache are deferred and grouped by
  // (snapshot, source) so one OneToManyEngine pass can answer a whole
  // group. Requests for different indexes in the same drain resolve to
  // different snapshots and therefore never mix. Each pending entry
  // keeps its snapshot shared_ptr: even if the index is DETACHed or
  // RELOADed mid-batch, the group is answered (coherently) on the
  // snapshot it resolved.
  struct PendingDist {
    size_t item_index;
    std::shared_ptr<const ServingSnapshot> snap;
    VertexId s, t;
  };
  std::vector<PendingDist> pending;

  // Memoize name -> snapshot for this drain: most batches target one or
  // two indexes, and resolving per item would pay a registry mutex +
  // map lookup on every DIST. A whole drain intentionally sees one
  // consistent snapshot per name (same RCU semantics as a single
  // in-flight request).
  std::vector<std::pair<const std::string*,
                        std::shared_ptr<const ServingSnapshot>>> resolved;
  // Returns by value (one refcount bump): a reference into `resolved`
  // would dangle across the push_back of the next distinct name.
  auto resolve = [&](const std::string& name)
      -> std::shared_ptr<const ServingSnapshot> {
    for (const auto& [known, snap] : resolved) {
      if (*known == name) return snap;
    }
    resolved.emplace_back(&name, registry_.Find(name));
    return resolved.back().second;
  };

  for (size_t i = 0; i < items->size(); ++i) {
    WorkItem& item = (*items)[i];
    const Request& req = item.request;
    if (req.kind == RequestKind::kDist) {
      std::shared_ptr<const ServingSnapshot> snap = resolve(req.index_name);
      if (snap == nullptr) {
        Finish(&item, ErrNoSuchIndex(req.index_name));
        continue;
      }
      const VertexId s = req.src;
      const VertexId t = req.targets[0];
      const VertexId n = snap->num_vertices();
      if (s >= n || t >= n) {
        Finish(&item, ErrVertexOutOfRange(n));
        continue;
      }
      metrics_.RecordDist();
      Distance d = kInfDistance;
      if (snap->cache().Lookup(s, t, &d)) {
        Finish(&item, WireDistanceResponse(d));
      } else {
        pending.push_back(PendingDist{i, std::move(snap), s, t});
      }
    } else if (req.kind == RequestKind::kBatch ||
               req.kind == RequestKind::kKnn) {
      // The other routed verbs share the memoized resolution so the
      // whole drain sees one snapshot per name and pays the registry
      // mutex once, same as DIST.
      const std::shared_ptr<const ServingSnapshot> snap =
          resolve(req.index_name);
      if (snap == nullptr) {
        Finish(&item, ErrNoSuchIndex(req.index_name));
      } else {
        Finish(&item, ExecuteOnWire(req, *snap));
      }
    } else {
      Finish(&item, ExecuteWire(req));
    }
  }
  if (pending.empty()) return;

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingDist& a, const PendingDist& b) {
                     if (a.snap.get() != b.snap.get()) {
                       return a.snap.get() < b.snap.get();
                     }
                     return a.s < b.s;
                   });
  size_t group_start = 0;
  while (group_start < pending.size()) {
    size_t group_end = group_start + 1;
    while (group_end < pending.size() &&
           pending[group_end].snap.get() == pending[group_start].snap.get() &&
           pending[group_end].s == pending[group_start].s) {
      ++group_end;
    }
    const size_t group_size = group_end - group_start;
    const ServingSnapshot& snap = *pending[group_start].snap;
    const VertexId s = pending[group_start].s;
    if (group_size >= kMicroBatchGroupMin) {
      // One bucket join answers every queued query from this source.
      std::vector<VertexId> targets;
      targets.reserve(group_size);
      for (size_t j = group_start; j < group_end; ++j) {
        targets.push_back(pending[j].t);
      }
      const std::vector<Distance> dists = snap.QueryOneToMany(s, targets);
      for (size_t j = group_start; j < group_end; ++j) {
        const Distance d = dists[j - group_start];
        snap.cache().Insert(s, pending[j].t, d);
        Finish(&(*items)[pending[j].item_index], WireDistanceResponse(d));
      }
      metrics_.RecordMicroBatch(group_size);
    } else {
      const VertexId t = pending[group_start].t;
      const Distance d = snap.Query(s, t);
      snap.cache().Insert(s, t, d);
      Finish(&(*items)[pending[group_start].item_index],
             WireDistanceResponse(d));
    }
    group_start = group_end;
  }
}

std::string DistanceServer::Execute(const Request& request) {
  return EncodeResponseV1(ExecuteWire(request));
}

WireResponse DistanceServer::ExecuteWire(const Request& request) {
  // Registry-scoped admin verbs resolve no snapshot.
  switch (request.kind) {
    case RequestKind::kReload:
      return HandleReload(request.index_name, request.path);
    case RequestKind::kAttach:
      return HandleAttach(request.index_name, request.path);
    case RequestKind::kDetach:
      return HandleDetach(request.index_name);
    default:
      break;
  }
  const std::shared_ptr<const ServingSnapshot> snap =
      registry_.Find(request.index_name);
  if (snap == nullptr) return ErrNoSuchIndex(request.index_name);
  return ExecuteOnWire(request, *snap);
}

WireResponse DistanceServer::ExecuteOnWire(const Request& request,
                                           const ServingSnapshot& snapshot) {
  const VertexId n = snapshot.num_vertices();
  switch (request.kind) {
    case RequestKind::kPing:
      return WireOk("pong");
    case RequestKind::kStats:
      return StatsResponse(snapshot);
    case RequestKind::kDist: {
      const VertexId s = request.src;
      const VertexId t = request.targets[0];
      if (s >= n || t >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordDist();
      return WireDistanceResponse(CachedQuery(snapshot, s, t));
    }
    case RequestKind::kBatch: {
      const VertexId s = request.src;
      if (s >= n) return ErrVertexOutOfRange(n);
      for (VertexId t : request.targets) {
        if (t >= n) return ErrVertexOutOfRange(n);
      }
      metrics_.RecordBatch();
      metrics_.RecordDist(request.targets.size());
      std::vector<Distance> dists;
      if (request.targets.size() >= kBatchEngineMin) {
        dists = snapshot.QueryOneToMany(s, request.targets);
        for (size_t j = 0; j < request.targets.size(); ++j) {
          snapshot.cache().Insert(s, request.targets[j], dists[j]);
        }
      } else {
        dists.reserve(request.targets.size());
        for (VertexId t : request.targets) {
          dists.push_back(CachedQuery(snapshot, s, t));
        }
      }
      return WireDistancesResponse(std::move(dists));
    }
    case RequestKind::kKnn: {
      const VertexId s = request.src;
      if (s >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordKnn();
      return WireNeighborsResponse(snapshot.QueryKnn(s, request.k));
    }
    case RequestKind::kReload:
    case RequestKind::kAttach:
    case RequestKind::kDetach:
      break;  // handled in ExecuteWire before snapshot resolution
  }
  return WireErr("unhandled request kind");
}

WireResponse DistanceServer::StatsResponse(const ServingSnapshot& snapshot) {
  const double uptime = uptime_.Seconds();
  const uint64_t requests = metrics_.requests();
  const ResultCache::Stats cache = snapshot.cache().GetStats();
  std::string payload;
  AppendStat(&payload, "uptime_s", FormatDouble(uptime, 1));
  AppendStat(&payload, "requests", std::to_string(requests));
  AppendStat(&payload, "errors", std::to_string(metrics_.errors()));
  AppendStat(&payload, "shed", std::to_string(metrics_.shed()));
  AppendStat(&payload, "qps",
             FormatDouble(uptime > 0
                              ? static_cast<double>(requests) / uptime
                              : 0.0,
                          1));
  AppendStat(&payload, "p50_us",
             std::to_string(metrics_.LatencyPercentileUs(50)));
  AppendStat(&payload, "p99_us",
             std::to_string(metrics_.LatencyPercentileUs(99)));
  AppendStat(&payload, "dist_queries", std::to_string(metrics_.dist_queries()));
  AppendStat(&payload, "batch_requests",
             std::to_string(metrics_.batch_requests()));
  AppendStat(&payload, "knn_requests",
             std::to_string(metrics_.knn_requests()));
  AppendStat(&payload, "micro_batches",
             std::to_string(metrics_.micro_batches()));
  AppendStat(&payload, "micro_batched_queries",
             std::to_string(metrics_.micro_batched_queries()));
  AppendStat(&payload, "cache_hits", std::to_string(cache.hits));
  AppendStat(&payload, "cache_misses", std::to_string(cache.misses));
  AppendStat(&payload, "cache_hit_rate", FormatDouble(cache.HitRate(), 4));
  AppendStat(&payload, "cache_entries", std::to_string(cache.entries));
  AppendStat(&payload, "cache_capacity", std::to_string(cache.capacity));
  AppendStat(&payload, "queue_depth", std::to_string(queue_.size()));
  AppendStat(&payload, "queue_capacity", std::to_string(queue_.capacity()));
  AppendStat(&payload, "workers", std::to_string(workers_.size()));
  AppendStat(&payload, "io_threads", std::to_string(num_io_threads_));
  AppendStat(&payload, "open_connections",
             std::to_string(open_connections()));
  AppendStat(&payload, "kernel", ActiveQueryKernel().name);
  AppendStat(&payload, "reloads", std::to_string(metrics_.reloads()));
  AppendStat(&payload, "connections", std::to_string(connections_accepted()));
  AppendStat(&payload, "vertices", std::to_string(snapshot.num_vertices()));
  AppendStat(&payload, "directed", snapshot.directed() ? "1" : "0");
  // Per-index section: one group of keys per attached index, so an
  // operator sees every graph's footprint and storage mode in one line.
  const std::vector<std::string> names = registry_.Names();
  AppendStat(&payload, "indexes", std::to_string(names.size()));
  for (const std::string& name : names) {
    const std::shared_ptr<const ServingSnapshot> snap = registry_.Find(name);
    if (snap == nullptr) continue;  // detached between Names() and Find()
    AppendIndexStat(&payload, name, "vertices",
                    std::to_string(snap->num_vertices()));
    AppendIndexStat(&payload, name, "mode", snap->map_mode());
    AppendIndexStat(&payload, name, "resident_bytes",
                    std::to_string(snap->ResidentBytes()));
  }
  return WireOk(std::move(payload));
}

WireResponse DistanceServer::HandleReload(const std::string& name,
                                          const std::string& path) {
  // Format the response from the snapshot this reload itself published,
  // not a re-lookup: a concurrent DETACH right after the publish must
  // not turn a committed reload into an "ERR no index named" answer.
  std::shared_ptr<const ServingSnapshot> snap;
  const Status status = ReloadInternal(name, path, &snap);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("reloaded " + snap->source_path() +
                " vertices=" + std::to_string(snap->num_vertices()) +
                " mode=" + snap->map_mode());
}

WireResponse DistanceServer::HandleAttach(const std::string& name,
                                          const std::string& path) {
  std::shared_ptr<const ServingSnapshot> snap;
  const Status status = AttachInternal(name, path, &snap);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("attached " + name + " " + path +
                " vertices=" + std::to_string(snap->num_vertices()) +
                " mode=" + snap->map_mode());
}

WireResponse DistanceServer::HandleDetach(const std::string& name) {
  const Status status = DetachIndex(name);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("detached " + name);
}

Status DistanceServer::AttachInternal(
    const std::string& name, const std::string& path,
    std::shared_ptr<const ServingSnapshot>* published) {
  HOPDB_RETURN_NOT_OK(ValidateIndexName(name));
  if (name == kDefaultIndexName) {
    return Status::InvalidArgument(
        "'default' names the startup index; RELOAD it instead of "
        "attaching over it");
  }
  // Cheap availability pre-check: a duplicate ATTACH must not pay a
  // full index load (seconds + the whole heap footprint for HLI1) just
  // to be told the name is taken. registry_.Attach below remains the
  // authoritative check for the race where another ATTACH lands between
  // here and there.
  if (registry_.Find(name) != nullptr) {
    return Status::InvalidArgument("index '" + name +
                                   "' is already attached (DETACH it or "
                                   "RELOAD it instead)");
  }
  HOPDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingSnapshot> snapshot,
      LoadServingSnapshot(path, options_.cache_capacity));
  if (published != nullptr) *published = snapshot;
  return registry_.Attach(name, std::move(snapshot));
}

Status DistanceServer::DetachIndex(const std::string& name) {
  return registry_.Detach(name);
}

Status DistanceServer::ReloadInternal(
    const std::string& name, const std::string& path,
    std::shared_ptr<const ServingSnapshot>* published) {
  const std::string resolved = name.empty() ? kDefaultIndexName : name;
  // Serialize reloads PER NAME so two concurrent RELOADs of one index
  // can't interleave their load-then-publish sequences (last publisher
  // would silently win with a torn view of "source_path") — but a slow
  // heap reload of one index never blocks another index's O(1) remap.
  // Queries never take either lock. Lock entries are tiny and reused,
  // so they are simply left in the map after a DETACH.
  std::shared_ptr<std::mutex> name_mu;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    std::shared_ptr<std::mutex>& slot = reload_locks_[resolved];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    name_mu = slot;
  }
  std::lock_guard<std::mutex> lock(*name_mu);
  std::string load_path = path;
  if (load_path.empty()) {
    const std::shared_ptr<const ServingSnapshot> current =
        registry_.Find(resolved);
    if (current == nullptr) {
      return Status::NotFound("no index named '" + resolved + "'");
    }
    load_path = current->source_path();
    if (load_path.empty()) {
      return Status::InvalidArgument(
          "RELOAD needs a path: index '" + resolved +
          "' was started from an in-memory index");
    }
  }
  HOPDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingSnapshot> snapshot,
      LoadServingSnapshot(load_path, options_.cache_capacity));
  if (published != nullptr) *published = snapshot;
  HOPDB_RETURN_NOT_OK(registry_.Publish(resolved, std::move(snapshot)));
  metrics_.RecordReload();
  return Status::OK();
}

ResultCache::Stats DistanceServer::cache_stats() const {
  return registry_.Find("")->cache().GetStats();
}

void DistanceServer::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    // 1. Stop accepting: shutdown unblocks accept(), then join.
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    // 2. Stop reading new requests; anything already parsed may still
    // land in the queue behind us.
    io_group_.ShutdownReads();
    // 3. Close the queue (late submissions get "server shutting down"
    // inline) and run the workers dry: every accepted request gets its
    // response completed into its connection.
    queue_.Close();
    workers_.Join();
    // 4. The I/O threads flush those final responses and close every
    // socket, so clients see answer-then-EOF rather than a hang.
    io_group_.Stop();
  });
}

}  // namespace hopdb
