#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph_io.h"
#include "labeling/query_kernel.h"
#include "util/build_info.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace hopdb {

namespace {

/// Same-source DIST groups at or above this size go through the
/// OneToManyEngine instead of independent label intersections.
constexpr size_t kMicroBatchGroupMin = 2;

/// BATCH requests with at least this many targets use the bucket join.
constexpr size_t kBatchEngineMin = 4;

/// Answers one (s, t) pair through the snapshot's cache.
Distance CachedQuery(const ServingSnapshot& snapshot, VertexId s, VertexId t) {
  Distance d = kInfDistance;
  if (snapshot.cache().Lookup(s, t, &d)) return d;
  d = snapshot.Query(s, t);
  snapshot.cache().Insert(s, t, d);
  return d;
}

// ---------------------------------------------------------------------------
// STATS payload helpers. Every key the server emits goes through one of
// these two appenders; tools/check_docs.py parses the call sites to keep
// the key table in docs/OPERATIONS.md from drifting.
// ---------------------------------------------------------------------------

void AppendStat(std::string* payload, const char* key,
                const std::string& value) {
  if (!payload->empty()) payload->push_back(' ');
  payload->append(key);
  payload->push_back('=');
  payload->append(value);
}

/// Emits `index.<name>.<key>=<value>` for the per-index STATS section.
void AppendIndexStat(std::string* payload, const std::string& name,
                     const char* key, const std::string& value) {
  if (!payload->empty()) payload->push_back(' ');
  payload->append("index.");
  payload->append(name);
  payload->push_back('.');
  payload->append(key);
  payload->push_back('=');
  payload->append(value);
}

// ---------------------------------------------------------------------------
// Prometheus text-exposition helpers (the METRICS verb). Every family
// the server exports is declared through PromFamily; tools/check_docs.py
// parses those call sites to keep the metric table in docs/OPERATIONS.md
// from drifting, and tools/check_metrics.py lints the rendered output.
// ---------------------------------------------------------------------------

void PromFamily(std::string* text, const char* name, const char* type,
                const char* help) {
  text->append("# HELP ");
  text->append(name);
  text->push_back(' ');
  text->append(help);
  text->append("\n# TYPE ");
  text->append(name);
  text->push_back(' ');
  text->append(type);
  text->push_back('\n');
}

/// Escapes a label value per the exposition format (\\, \", \n).
std::string PromLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void PromSample(std::string* text, const std::string& name,
                const std::string& labels, const std::string& value) {
  text->append(name);
  if (!labels.empty()) {
    text->push_back('{');
    text->append(labels);
    text->push_back('}');
  }
  text->push_back(' ');
  text->append(value);
  text->push_back('\n');
}

/// Renders one log-scale histogram as cumulative le-buckets + _sum +
/// _count. The +Inf bucket and _count are the sum of the bucket
/// snapshot (not the separate count_ atomic) so the exposition is
/// internally consistent even while writers race the render.
void PromHistogram(std::string* text, const std::string& name,
                   const std::string& labels, const LatencyHistogram& hist) {
  const std::array<uint64_t, LatencyHistogram::kBuckets> buckets =
      hist.BucketSnapshot();
  const std::string bucket_name = name + "_bucket";
  const std::string label_prefix = labels.empty() ? "" : labels + ",";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += buckets[i];
    PromSample(text, bucket_name,
               label_prefix + "le=\"" +
                   std::to_string(LatencyHistogram::BucketUpperBoundUs(i)) +
                   "\"",
               std::to_string(cumulative));
  }
  PromSample(text, bucket_name, label_prefix + "le=\"+Inf\"",
             std::to_string(cumulative));
  PromSample(text, name + "_sum", labels, std::to_string(hist.sum_us()));
  PromSample(text, name + "_count", labels, std::to_string(cumulative));
}

WireResponse ErrNoSuchIndex(const std::string& name) {
  return WireErr("no index named '" + name + "' (see STATS, or ATTACH "
                 "it first)");
}

WireResponse ErrVertexOutOfRange(VertexId n) {
  return WireErr("vertex id out of range (|V|=" + std::to_string(n) + ")");
}

/// --trace-sample-rate as a 1-in-N cadence for the I/O threads.
uint32_t TraceSampleEvery(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return 1;
  const double every = 1.0 / rate;
  if (every >= 4e9) return 0;  // effectively never
  return static_cast<uint32_t>(every + 0.5);
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kErr:
      return "err";
    case WireStatus::kBusy:
      return "busy";
  }
  return "unknown";
}

}  // namespace

DistanceServer::DistanceServer(const ServerOptions& options)
    : options_(options),
      queue_(options.queue_capacity),
      trace_ring_(options.trace_ring_capacity) {}

Result<std::unique_ptr<DistanceServer>> DistanceServer::Start(
    std::shared_ptr<const ServingSnapshot> snapshot,
    const ServerOptions& options) {
  std::unique_ptr<DistanceServer> server(new DistanceServer(options));
  HOPDB_RETURN_NOT_OK(
      server->registry_.Attach(kDefaultIndexName, std::move(snapshot)));
  HOPDB_RETURN_NOT_OK(server->Listen());
  server->num_io_threads_ =
      options.num_io_threads == 0
          ? std::min<uint32_t>(4, HardwareThreads())
          : options.num_io_threads;
  IoGroupOptions io_options;
  io_options.num_threads = server->num_io_threads_;
  io_options.max_inflight_per_conn = options.max_inflight_per_conn;
  io_options.trace_sample_every = TraceSampleEvery(options.trace_sample_rate);
  HOPDB_RETURN_NOT_OK(server->io_group_.Start(io_options, server.get()));
  const uint32_t workers =
      options.num_workers == 0 ? HardwareThreads() : options.num_workers;
  server->workers_.Start(workers,
                         [srv = server.get()](uint32_t) { srv->WorkerLoop(); });
  server->acceptor_ = std::thread([srv = server.get()] { srv->AcceptLoop(); });
  JsonLogLine(JsonLogLevel::kInfo, "server_start")
      .Str("host", options.host)
      .Num("port", server->port_)
      .Num("workers", workers)
      .Num("io_threads", server->num_io_threads_)
      .Num("queue_capacity", options.queue_capacity)
      .Fixed("trace_sample_rate", options.trace_sample_rate, 4)
      .Num("slow_query_us", options.slow_query_us)
      .Str("git_sha", BuildGitSha());
  return server;
}

Result<std::unique_ptr<DistanceServer>> DistanceServer::Start(
    HopDbIndex index, const ServerOptions& options) {
  return Start(std::make_shared<const ServingSnapshot>(
                   std::move(index), options.source_path,
                   options.cache_capacity, options.hot_hub_k),
               options);
}

DistanceServer::~DistanceServer() { Stop(); }

Status DistanceServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "' (numeric IPv4 required)");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (listen(listen_fd_, std::max(1, options_.listen_backlog)) < 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void DistanceServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: back off briefly instead of dying — the
        // I/O group keeps serving, and closing connections frees fds.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // The listen socket was shut down (Stop) or broke; either way the
      // accept loop is done.
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    io_group_.Adopt(fd);
  }
}

// ---------------------------------------------------------------------------
// RequestSink: the I/O threads deliver parsed requests here. Never
// blocks — admission control answers inline when the queue can't take
// the work.
// ---------------------------------------------------------------------------

void DistanceServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                   uint64_t seq, Request request,
                                   RequestTrace trace) {
  trace.kind = request.kind;
  trace.enqueued_ns = MonotonicNowNs();
  WorkItem item;
  item.request = std::move(request);
  item.conn = conn;
  item.seq = seq;
  item.trace = trace;
  switch (queue_.TryPush(&item)) {
    case BoundedQueue<WorkItem>::PushResult::kOk:
      return;
    case BoundedQueue<WorkItem>::PushResult::kFull:
      // Saturated, not broken: shed with the retryable BUSY answer. The
      // shed request still traces end to end (its queue/execute stages
      // are zero-width) so overload latency lands in the degraded
      // histogram instead of vanishing.
      metrics_.RecordShed();
      metrics_.CountRequest();
      trace.shed = true;
      trace.dequeued_ns = trace.executed_ns = trace.enqueued_ns;
      conn->Complete(seq, WireBusy(), trace);
      return;
    case BoundedQueue<WorkItem>::PushResult::kClosed:
      trace.dequeued_ns = trace.executed_ns = trace.enqueued_ns;
      conn->Complete(seq, WireErr("server shutting down"), trace);
      return;
  }
}

void DistanceServer::HandleParseError(const std::shared_ptr<Connection>& conn,
                                      uint64_t seq, std::string message,
                                      RequestTrace trace) {
  // Malformed input is answered inline: it never consumes a queue slot
  // a well-formed request could use.
  metrics_.RecordError();
  metrics_.CountRequest();
  trace.parse_error = true;
  trace.enqueued_ns = trace.dequeued_ns = trace.executed_ns = MonotonicNowNs();
  conn->Complete(seq, WireErr(std::move(message)), trace);
}

void DistanceServer::HandleTraceDone(const RequestTrace& trace) {
  metrics_.RecordTrace(trace);
  if (trace.sampled()) trace_ring_.Push(trace);
  const uint64_t total_us = trace.total_us();
  if (options_.slow_query_us > 0 && total_us >= options_.slow_query_us) {
    metrics_.RecordSlowQuery();
    JsonLogLine(JsonLogLevel::kWarning, "slow_query")
        .Num("trace_id", trace.trace_id)
        .Str("verb", trace.parse_error ? "parse_error"
                                       : RequestKindName(trace.kind))
        .Str("status", WireStatusName(trace.status))
        .Num("total_us", total_us)
        .Num("parse_us", trace.parse_us())
        .Num("queue_us", trace.queue_wait_us())
        .Num("execute_us", trace.execute_us())
        .Num("write_us", trace.write_us());
  }
}

void DistanceServer::WorkerLoop() {
  std::vector<WorkItem> batch;
  while (true) {
    batch.clear();
    if (queue_.PopBatch(&batch, options_.max_micro_batch) == 0) break;
    ExecuteWorkBatch(&batch);
  }
}

void DistanceServer::Finish(WorkItem* item, WireResponse response) {
  if (response.status != WireStatus::kOk) metrics_.RecordError();
  metrics_.CountRequest();
  item->trace.executed_ns = MonotonicNowNs();
  item->conn->Complete(item->seq, std::move(response), item->trace);
}

void DistanceServer::ExecuteWorkBatch(std::vector<WorkItem>* items) {
  const uint64_t dequeued_ns = MonotonicNowNs();
  for (WorkItem& item : *items) item.trace.dequeued_ns = dequeued_ns;
  if (options_.pre_execute_hook) {
    for (const WorkItem& item : *items) options_.pre_execute_hook(item.request);
  }
  // DIST requests that miss the cache are deferred and grouped by
  // (snapshot, source) so one OneToManyEngine pass can answer a whole
  // group. Requests for different indexes in the same drain resolve to
  // different snapshots and therefore never mix. Each pending entry
  // keeps its snapshot shared_ptr: even if the index is DETACHed or
  // RELOADed mid-batch, the group is answered (coherently) on the
  // snapshot it resolved.
  struct PendingDist {
    size_t item_index;
    std::shared_ptr<const ServingSnapshot> snap;
    VertexId s, t;
  };
  std::vector<PendingDist> pending;

  // Memoize name -> snapshot for this drain: most batches target one or
  // two indexes, and resolving per item would pay a registry mutex +
  // map lookup on every DIST. A whole drain intentionally sees one
  // consistent snapshot per name (same RCU semantics as a single
  // in-flight request).
  std::vector<std::pair<const std::string*,
                        std::shared_ptr<const ServingSnapshot>>> resolved;
  // Returns by value (one refcount bump): a reference into `resolved`
  // would dangle across the push_back of the next distinct name.
  auto resolve = [&](const std::string& name)
      -> std::shared_ptr<const ServingSnapshot> {
    for (const auto& [known, snap] : resolved) {
      if (*known == name) return snap;
    }
    resolved.emplace_back(&name, registry_.Find(name));
    return resolved.back().second;
  };

  for (size_t i = 0; i < items->size(); ++i) {
    WorkItem& item = (*items)[i];
    const Request& req = item.request;
    if (req.kind == RequestKind::kDist) {
      std::shared_ptr<const ServingSnapshot> snap = resolve(req.index_name);
      if (snap == nullptr) {
        Finish(&item, ErrNoSuchIndex(req.index_name));
        continue;
      }
      const VertexId s = req.src;
      const VertexId t = req.targets[0];
      const VertexId n = snap->num_vertices();
      if (s >= n || t >= n) {
        Finish(&item, ErrVertexOutOfRange(n));
        continue;
      }
      metrics_.RecordDist();
      Distance d = kInfDistance;
      if (snap->cache().Lookup(s, t, &d)) {
        Finish(&item, WireDistanceResponse(d));
      } else {
        pending.push_back(PendingDist{i, std::move(snap), s, t});
      }
    } else if (req.kind == RequestKind::kBatch ||
               req.kind == RequestKind::kKnn ||
               req.kind == RequestKind::kWithin ||
               req.kind == RequestKind::kReach ||
               req.kind == RequestKind::kPath) {
      // The other routed verbs share the memoized resolution so the
      // whole drain sees one snapshot per name and pays the registry
      // mutex once, same as DIST.
      const std::shared_ptr<const ServingSnapshot> snap =
          resolve(req.index_name);
      if (snap == nullptr) {
        Finish(&item, ErrNoSuchIndex(req.index_name));
      } else {
        Finish(&item, ExecuteOnWire(req, *snap));
      }
    } else {
      Finish(&item, ExecuteWire(req));
    }
  }
  if (pending.empty()) return;

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingDist& a, const PendingDist& b) {
                     if (a.snap.get() != b.snap.get()) {
                       return a.snap.get() < b.snap.get();
                     }
                     return a.s < b.s;
                   });
  size_t group_start = 0;
  while (group_start < pending.size()) {
    size_t group_end = group_start + 1;
    while (group_end < pending.size() &&
           pending[group_end].snap.get() == pending[group_start].snap.get() &&
           pending[group_end].s == pending[group_start].s) {
      ++group_end;
    }
    const size_t group_size = group_end - group_start;
    const ServingSnapshot& snap = *pending[group_start].snap;
    const VertexId s = pending[group_start].s;
    if (group_size >= kMicroBatchGroupMin) {
      // One bucket join answers every queued query from this source.
      std::vector<VertexId> targets;
      targets.reserve(group_size);
      for (size_t j = group_start; j < group_end; ++j) {
        targets.push_back(pending[j].t);
      }
      const std::vector<Distance> dists = snap.QueryOneToMany(s, targets);
      for (size_t j = group_start; j < group_end; ++j) {
        const Distance d = dists[j - group_start];
        snap.cache().Insert(s, pending[j].t, d);
        Finish(&(*items)[pending[j].item_index], WireDistanceResponse(d));
      }
      metrics_.RecordMicroBatch(group_size);
    } else {
      const VertexId t = pending[group_start].t;
      const Distance d = snap.Query(s, t);
      snap.cache().Insert(s, t, d);
      Finish(&(*items)[pending[group_start].item_index],
             WireDistanceResponse(d));
    }
    group_start = group_end;
  }
}

std::string DistanceServer::Execute(const Request& request) {
  return EncodeResponseV1(ExecuteWire(request));
}

WireResponse DistanceServer::ExecuteWire(const Request& request) {
  // Registry-scoped admin/telemetry verbs resolve no snapshot.
  switch (request.kind) {
    case RequestKind::kReload:
      return HandleReload(request.index_name, request.path);
    case RequestKind::kAttach:
      return HandleAttach(request.index_name, request.path);
    case RequestKind::kDetach:
      return HandleDetach(request.index_name);
    case RequestKind::kMetrics:
      return MetricsResponse();
    case RequestKind::kTrace:
      return TraceResponse(request.k);
    case RequestKind::kAddEdge:
      return HandleEdgeOp(request, /*is_delete=*/false);
    case RequestKind::kDelEdge:
      return HandleEdgeOp(request, /*is_delete=*/true);
    case RequestKind::kCommit:
      return HandleCommit(request.index_name);
    default:
      break;
  }
  const std::shared_ptr<const ServingSnapshot> snap =
      registry_.Find(request.index_name);
  if (snap == nullptr) return ErrNoSuchIndex(request.index_name);
  return ExecuteOnWire(request, *snap);
}

WireResponse DistanceServer::ExecuteOnWire(const Request& request,
                                           const ServingSnapshot& snapshot) {
  const VertexId n = snapshot.num_vertices();
  switch (request.kind) {
    case RequestKind::kPing:
      return WireOk("pong");
    case RequestKind::kStats:
      return StatsResponse(snapshot);
    case RequestKind::kDist: {
      const VertexId s = request.src;
      const VertexId t = request.targets[0];
      if (s >= n || t >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordDist();
      return WireDistanceResponse(CachedQuery(snapshot, s, t));
    }
    case RequestKind::kBatch: {
      const VertexId s = request.src;
      if (s >= n) return ErrVertexOutOfRange(n);
      for (VertexId t : request.targets) {
        if (t >= n) return ErrVertexOutOfRange(n);
      }
      metrics_.RecordBatch();
      metrics_.RecordDist(request.targets.size());
      std::vector<Distance> dists;
      if (request.targets.size() >= kBatchEngineMin) {
        dists = snapshot.QueryOneToMany(s, request.targets);
        for (size_t j = 0; j < request.targets.size(); ++j) {
          snapshot.cache().Insert(s, request.targets[j], dists[j]);
        }
      } else {
        dists.reserve(request.targets.size());
        for (VertexId t : request.targets) {
          dists.push_back(CachedQuery(snapshot, s, t));
        }
      }
      return WireDistancesResponse(std::move(dists));
    }
    case RequestKind::kKnn: {
      const VertexId s = request.src;
      if (s >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordKnn();
      return WireNeighborsResponse(snapshot.QueryKnn(s, request.k));
    }
    case RequestKind::kWithin: {
      const VertexId s = request.src;
      if (s >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordWithin();
      return WireNeighborsResponse(snapshot.QueryWithin(s, request.k));
    }
    case RequestKind::kReach: {
      const VertexId s = request.src;
      const VertexId t = request.targets[0];
      if (s >= n || t >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordReach();
      return WireDistanceResponse(snapshot.QueryReach(s, t, request.k) ? 1
                                                                       : 0);
    }
    case RequestKind::kPath: {
      const VertexId s = request.src;
      const VertexId t = request.targets[0];
      if (s >= n || t >= n) return ErrVertexOutOfRange(n);
      metrics_.RecordPath();
      Result<std::vector<VertexId>> path = snapshot.QueryPath(s, t);
      if (!path.ok()) {
        // Unreachable is an answer, not a fault: an empty sequence (a
        // bare "OK" line in v1), so clients need not parse error text.
        if (path.status().IsNotFound()) return WireDistancesResponse({});
        return WireErr(path.status().ToString());
      }
      std::vector<Distance> ids(path.value().begin(), path.value().end());
      return WireDistancesResponse(std::move(ids));
    }
    case RequestKind::kReload:
    case RequestKind::kAttach:
    case RequestKind::kDetach:
    case RequestKind::kMetrics:
    case RequestKind::kTrace:
    case RequestKind::kAddEdge:
    case RequestKind::kDelEdge:
    case RequestKind::kCommit:
      break;  // handled in ExecuteWire before snapshot resolution
  }
  return WireErr("unhandled request kind");
}

WireResponse DistanceServer::StatsResponse(const ServingSnapshot& snapshot) {
  const double uptime = uptime_.Seconds();
  const uint64_t requests = metrics_.requests();
  const ResultCache::Stats cache = snapshot.cache().GetStats();
  std::string payload;
  AppendStat(&payload, "uptime_seconds", FormatDouble(uptime, 1));
  AppendStat(&payload, "build_git_sha", BuildGitSha());
  AppendStat(&payload, "requests", std::to_string(requests));
  AppendStat(&payload, "errors", std::to_string(metrics_.errors()));
  AppendStat(&payload, "shed", std::to_string(metrics_.shed()));
  AppendStat(&payload, "qps",
             FormatDouble(uptime > 0
                              ? static_cast<double>(requests) / uptime
                              : 0.0,
                          1));
  AppendStat(&payload, "p50_us",
             std::to_string(metrics_.LatencyPercentileUs(50)));
  AppendStat(&payload, "p99_us",
             std::to_string(metrics_.LatencyPercentileUs(99)));
  AppendStat(&payload, "degraded_p99_us",
             std::to_string(metrics_.degraded_histogram().PercentileUs(99)));
  AppendStat(&payload, "queue_wait_p50_us",
             std::to_string(metrics_.queue_wait_histogram().PercentileUs(50)));
  AppendStat(&payload, "queue_wait_p99_us",
             std::to_string(metrics_.queue_wait_histogram().PercentileUs(99)));
  AppendStat(&payload, "execute_p50_us",
             std::to_string(metrics_.execute_histogram().PercentileUs(50)));
  AppendStat(&payload, "execute_p99_us",
             std::to_string(metrics_.execute_histogram().PercentileUs(99)));
  AppendStat(&payload, "write_p50_us",
             std::to_string(metrics_.write_histogram().PercentileUs(50)));
  AppendStat(&payload, "write_p99_us",
             std::to_string(metrics_.write_histogram().PercentileUs(99)));
  AppendStat(&payload, "slow_queries", std::to_string(metrics_.slow_queries()));
  AppendStat(&payload, "traces_sampled",
             std::to_string(metrics_.traces_sampled()));
  AppendStat(&payload, "dist_queries", std::to_string(metrics_.dist_queries()));
  AppendStat(&payload, "batch_requests",
             std::to_string(metrics_.batch_requests()));
  AppendStat(&payload, "knn_requests",
             std::to_string(metrics_.knn_requests()));
  AppendStat(&payload, "within_requests",
             std::to_string(metrics_.within_requests()));
  AppendStat(&payload, "reach_requests",
             std::to_string(metrics_.reach_requests()));
  AppendStat(&payload, "path_requests",
             std::to_string(metrics_.path_requests()));
  AppendStat(&payload, "micro_batches",
             std::to_string(metrics_.micro_batches()));
  AppendStat(&payload, "micro_batched_queries",
             std::to_string(metrics_.micro_batched_queries()));
  AppendStat(&payload, "cache_hits", std::to_string(cache.hits));
  AppendStat(&payload, "cache_misses", std::to_string(cache.misses));
  AppendStat(&payload, "cache_hit_rate", FormatDouble(cache.HitRate(), 4));
  AppendStat(&payload, "cache_entries", std::to_string(cache.entries));
  AppendStat(&payload, "cache_capacity", std::to_string(cache.capacity));
  AppendStat(&payload, "queue_depth", std::to_string(queue_.size()));
  AppendStat(&payload, "queue_capacity", std::to_string(queue_.capacity()));
  AppendStat(&payload, "workers", std::to_string(workers_.size()));
  AppendStat(&payload, "io_threads", std::to_string(num_io_threads_));
  AppendStat(&payload, "open_connections",
             std::to_string(open_connections()));
  AppendStat(&payload, "kernel", ActiveQueryKernel().name);
  AppendStat(&payload, "hot_hub_k", std::to_string(snapshot.hot_hub().k()));
  AppendStat(&payload, "hot_hub_bytes",
             std::to_string(snapshot.hot_hub().SizeBytes()));
  AppendStat(&payload, "reloads", std::to_string(metrics_.reloads()));
  AppendStat(&payload, "connections", std::to_string(connections_accepted()));
  AppendStat(&payload, "vertices", std::to_string(snapshot.num_vertices()));
  AppendStat(&payload, "directed", snapshot.directed() ? "1" : "0");
  // Per-index section: one group of keys per attached index, so an
  // operator sees every graph's footprint and storage mode in one line.
  const std::vector<std::string> names = registry_.Names();
  AppendStat(&payload, "indexes", std::to_string(names.size()));
  for (const std::string& name : names) {
    const std::shared_ptr<const ServingSnapshot> snap = registry_.Find(name);
    if (snap == nullptr) continue;  // detached between Names() and Find()
    AppendIndexStat(&payload, name, "vertices",
                    std::to_string(snap->num_vertices()));
    AppendIndexStat(&payload, name, "mode", snap->map_mode());
    AppendIndexStat(&payload, name, "resident_bytes",
                    std::to_string(snap->ResidentBytes()));
    const UpdateSessionInfo update = GetUpdateSessionInfo(name);
    AppendIndexStat(&payload, name, "pending_updates",
                    std::to_string(update.pending_updates));
    AppendIndexStat(&payload, name, "last_commit_seconds",
                    FormatDouble(update.last_commit_seconds, 3));
  }
  return WireOk(std::move(payload));
}

WireResponse DistanceServer::MetricsResponse() {
  std::string text;
  text.reserve(32 * 1024);

  PromFamily(&text, "hopdb_build_info", "gauge",
             "Build provenance; value is always 1, the labels carry the "
             "information.");
  PromSample(&text, "hopdb_build_info",
             "git_sha=\"" + PromLabelValue(BuildGitSha()) + "\",version=\"" +
                 PromLabelValue(BuildVersion()) + "\",kernel=\"" +
                 PromLabelValue(ActiveQueryKernel().name) + "\"",
             "1");
  PromFamily(&text, "hopdb_uptime_seconds", "gauge",
             "Seconds since the server started.");
  PromSample(&text, "hopdb_uptime_seconds", "",
             FormatDouble(uptime_.Seconds(), 3));

  PromFamily(&text, "hopdb_requests_total", "counter",
             "Requests completed, including shed and errored ones.");
  PromSample(&text, "hopdb_requests_total", "",
             std::to_string(metrics_.requests()));
  PromFamily(&text, "hopdb_errors_total", "counter",
             "Requests answered with ERR (parse or execution failure).");
  PromSample(&text, "hopdb_errors_total", "",
             std::to_string(metrics_.errors()));
  PromFamily(&text, "hopdb_shed_total", "counter",
             "Requests shed with BUSY by admission control.");
  PromSample(&text, "hopdb_shed_total", "", std::to_string(metrics_.shed()));
  PromFamily(&text, "hopdb_slow_queries_total", "counter",
             "Requests at or above --slow-query-us, emitted to the "
             "slow-query log.");
  PromSample(&text, "hopdb_slow_queries_total", "",
             std::to_string(metrics_.slow_queries()));
  PromFamily(&text, "hopdb_traces_sampled_total", "counter",
             "Requests sampled into the TRACE LAST ring.");
  PromSample(&text, "hopdb_traces_sampled_total", "",
             std::to_string(metrics_.traces_sampled()));
  PromFamily(&text, "hopdb_connections_total", "counter",
             "Client connections accepted since start.");
  PromSample(&text, "hopdb_connections_total", "",
             std::to_string(connections_accepted()));
  PromFamily(&text, "hopdb_reloads_total", "counter",
             "Successful index hot-swaps (RELOAD).");
  PromSample(&text, "hopdb_reloads_total", "",
             std::to_string(metrics_.reloads()));

  PromFamily(&text, "hopdb_open_connections", "gauge",
             "Currently open client connections.");
  PromSample(&text, "hopdb_open_connections", "",
             std::to_string(open_connections()));
  PromFamily(&text, "hopdb_queue_depth", "gauge",
             "Requests waiting in the work queue right now.");
  PromSample(&text, "hopdb_queue_depth", "", std::to_string(queue_.size()));
  PromFamily(&text, "hopdb_queue_capacity", "gauge",
             "Work queue capacity (requests beyond it are shed).");
  PromSample(&text, "hopdb_queue_capacity", "",
             std::to_string(queue_.capacity()));
  PromFamily(&text, "hopdb_workers", "gauge", "Query worker threads.");
  PromSample(&text, "hopdb_workers", "", std::to_string(workers_.size()));
  PromFamily(&text, "hopdb_io_threads", "gauge", "Epoll I/O threads.");
  PromSample(&text, "hopdb_io_threads", "", std::to_string(num_io_threads_));

  PromFamily(&text, "hopdb_dist_queries_total", "counter",
             "Point-to-point distance queries executed (BATCH targets "
             "count individually).");
  PromSample(&text, "hopdb_dist_queries_total", "",
             std::to_string(metrics_.dist_queries()));
  PromFamily(&text, "hopdb_batch_requests_total", "counter",
             "BATCH requests executed.");
  PromSample(&text, "hopdb_batch_requests_total", "",
             std::to_string(metrics_.batch_requests()));
  PromFamily(&text, "hopdb_knn_requests_total", "counter",
             "KNN requests executed.");
  PromSample(&text, "hopdb_knn_requests_total", "",
             std::to_string(metrics_.knn_requests()));
  PromFamily(&text, "hopdb_within_requests_total", "counter",
             "WITHIN (radius) requests executed.");
  PromSample(&text, "hopdb_within_requests_total", "",
             std::to_string(metrics_.within_requests()));
  PromFamily(&text, "hopdb_reach_requests_total", "counter",
             "REACH (bounded reachability) requests executed.");
  PromSample(&text, "hopdb_reach_requests_total", "",
             std::to_string(metrics_.reach_requests()));
  PromFamily(&text, "hopdb_path_requests_total", "counter",
             "PATH (shortest-path unfolding) requests executed.");
  PromSample(&text, "hopdb_path_requests_total", "",
             std::to_string(metrics_.path_requests()));
  PromFamily(&text, "hopdb_micro_batches_total", "counter",
             "Same-source DIST groups answered by one one-to-many scan.");
  PromSample(&text, "hopdb_micro_batches_total", "",
             std::to_string(metrics_.micro_batches()));
  PromFamily(&text, "hopdb_micro_batched_queries_total", "counter",
             "DIST queries answered inside those micro-batches.");
  PromSample(&text, "hopdb_micro_batched_queries_total", "",
             std::to_string(metrics_.micro_batched_queries()));

  // Latency histograms. Buckets are powers of two in microseconds (the
  // le bound is the bucket's inclusive upper edge).
  PromFamily(&text, "hopdb_request_latency_us", "histogram",
             "Accepted-to-written latency of requests answered OK.");
  PromHistogram(&text, "hopdb_request_latency_us", "",
                metrics_.latency_histogram());
  PromFamily(&text, "hopdb_degraded_latency_us", "histogram",
             "Accepted-to-written latency of shed/error answers.");
  PromHistogram(&text, "hopdb_degraded_latency_us", "",
                metrics_.degraded_histogram());
  PromFamily(&text, "hopdb_stage_duration_us", "histogram",
             "Per-stage request time: queue_wait (enqueued->dequeued), "
             "execute (dequeued->executed), write (executed->written).");
  PromHistogram(&text, "hopdb_stage_duration_us", "stage=\"queue_wait\"",
                metrics_.queue_wait_histogram());
  PromHistogram(&text, "hopdb_stage_duration_us", "stage=\"execute\"",
                metrics_.execute_histogram());
  PromHistogram(&text, "hopdb_stage_duration_us", "stage=\"write\"",
                metrics_.write_histogram());
  PromFamily(&text, "hopdb_verb_latency_us", "histogram",
             "Accepted-to-written latency per verb.");
  for (size_t i = 0; i < kNumRequestKinds; ++i) {
    const RequestKind kind = static_cast<RequestKind>(i);
    PromHistogram(&text, "hopdb_verb_latency_us",
                  std::string("verb=\"") + RequestKindName(kind) + "\"",
                  metrics_.verb_histogram(kind));
  }

  // Per-index gauges/counters via the registry.
  PromFamily(&text, "hopdb_index_vertices", "gauge",
             "Vertices served by each attached index.");
  PromFamily(&text, "hopdb_index_resident_bytes", "gauge",
             "Resident memory of each attached index snapshot.");
  PromFamily(&text, "hopdb_index_cache_hits_total", "counter",
             "Result-cache hits per index (current snapshot).");
  PromFamily(&text, "hopdb_index_cache_misses_total", "counter",
             "Result-cache misses per index (current snapshot).");
  PromFamily(&text, "hopdb_index_cache_entries", "gauge",
             "Result-cache entries per index (current snapshot).");
  for (const std::string& name : registry_.Names()) {
    const std::shared_ptr<const ServingSnapshot> snap = registry_.Find(name);
    if (snap == nullptr) continue;  // detached between Names() and Find()
    const std::string label = "index=\"" + PromLabelValue(name) + "\"";
    const ResultCache::Stats cache = snap->cache().GetStats();
    PromSample(&text, "hopdb_index_vertices", label,
               std::to_string(snap->num_vertices()));
    PromSample(&text, "hopdb_index_resident_bytes", label,
               std::to_string(snap->ResidentBytes()));
    PromSample(&text, "hopdb_index_cache_hits_total", label,
               std::to_string(cache.hits));
    PromSample(&text, "hopdb_index_cache_misses_total", label,
               std::to_string(cache.misses));
    PromSample(&text, "hopdb_index_cache_entries", label,
               std::to_string(cache.entries));
  }
  return WireBlobResponse(std::move(text));
}

WireResponse DistanceServer::TraceResponse(uint32_t n) {
  const std::vector<RequestTrace> traces = trace_ring_.Last(n);
  std::string text =
      "trace_id verb status total_us parse_us queue_us execute_us write_us\n";
  if (traces.empty()) {
    text += "(no sampled traces yet; is --trace-sample-rate 0?)\n";
  }
  for (const RequestTrace& trace : traces) {
    text += std::to_string(trace.trace_id);
    text += ' ';
    text += trace.parse_error ? "parse_error" : RequestKindName(trace.kind);
    text += ' ';
    text += WireStatusName(trace.status);
    text += ' ';
    text += std::to_string(trace.total_us());
    text += ' ';
    text += std::to_string(trace.parse_us());
    text += ' ';
    text += std::to_string(trace.queue_wait_us());
    text += ' ';
    text += std::to_string(trace.execute_us());
    text += ' ';
    text += std::to_string(trace.write_us());
    text += '\n';
  }
  return WireBlobResponse(std::move(text));
}

WireResponse DistanceServer::HandleReload(const std::string& name,
                                          const std::string& path) {
  // Format the response from the snapshot this reload itself published,
  // not a re-lookup: a concurrent DETACH right after the publish must
  // not turn a committed reload into an "ERR no index named" answer.
  std::shared_ptr<const ServingSnapshot> snap;
  const Status status = ReloadInternal(name, path, &snap);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("reloaded " + snap->source_path() +
                " vertices=" + std::to_string(snap->num_vertices()) +
                " mode=" + snap->map_mode());
}

WireResponse DistanceServer::HandleAttach(const std::string& name,
                                          const std::string& path) {
  std::shared_ptr<const ServingSnapshot> snap;
  const Status status = AttachInternal(name, path, &snap);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("attached " + name + " " + path +
                " vertices=" + std::to_string(snap->num_vertices()) +
                " mode=" + snap->map_mode());
}

WireResponse DistanceServer::HandleDetach(const std::string& name) {
  const Status status = DetachIndex(name);
  if (!status.ok()) return WireErr(status.ToString());
  return WireOk("detached " + name);
}

WireResponse DistanceServer::HandleEdgeOp(const Request& request,
                                          bool is_delete) {
  const std::string resolved =
      request.index_name.empty() ? kDefaultIndexName : request.index_name;
  Result<std::shared_ptr<UpdateSession>> session_or =
      GetUpdateSession(resolved);
  if (!session_or.ok()) return WireErr(session_or.status().ToString());
  const std::shared_ptr<UpdateSession> session =
      std::move(session_or).value();
  // Repair runs under the session mutex: its cost lands on the updating
  // client while readers keep hitting the published snapshot lock-free.
  std::lock_guard<std::mutex> lock(session->mu);
  const Status loaded = EnsureSessionLoaded(resolved, session.get());
  if (!loaded.ok()) return WireErr(loaded.ToString());
  const RankMapping& ranking = session->index.ranking();
  const VertexId n = ranking.size();
  if (request.src >= n || request.targets[0] >= n) {
    return ErrVertexOutOfRange(n);
  }
  UpdateOp op;
  op.kind = is_delete ? UpdateOp::Kind::kDelEdge : UpdateOp::Kind::kAddEdge;
  op.u = ranking.ToInternal(request.src);
  op.v = ranking.ToInternal(request.targets[0]);
  if (!is_delete) op.weight = static_cast<Distance>(request.k);
  const Result<bool> changed = session->updater->Apply(op);
  if (!changed.ok()) return WireErr(changed.status().ToString());
  if (changed.value()) ++session->pending_updates;
  return WireOk(std::string(changed.value() ? "applied" : "noop") +
                " pending=" + std::to_string(session->pending_updates));
}

WireResponse DistanceServer::HandleCommit(const std::string& name) {
  const std::string resolved =
      name.empty() ? kDefaultIndexName : name;
  std::shared_ptr<UpdateSession> session;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    auto it = update_sessions_.find(resolved);
    if (it != update_sessions_.end()) session = it->second;
  }
  if (session == nullptr) return WireOk("nothing to commit");
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (!session->loaded || session->pending_updates == 0) {
    return WireOk("nothing to commit");
  }
  Stopwatch commit_timer;
  session->updater->Finalize();
  // Deep-copy the repaired working index into the snapshot so later
  // edge ops keep mutating the session copy, never a published one.
  HopDbIndex published = session->index;
  const uint64_t committed = session->pending_updates;
  // Publish under the same per-name lock RELOAD uses, so a commit and a
  // reload of one index serialize. Lock order is session->mu then the
  // reload lock — InvalidateUpdateSession never takes session->mu, so
  // the reverse order cannot arise.
  std::lock_guard<std::mutex> reload_lock(*ReloadLockFor(resolved));
  if (session->invalidated.load(std::memory_order_acquire)) {
    return WireErr("index '" + resolved +
                   "' was reloaded or detached; uncommitted updates were "
                   "discarded");
  }
  const std::shared_ptr<const ServingSnapshot> current =
      registry_.Find(resolved);
  if (current == nullptr) return ErrNoSuchIndex(resolved);
  // PATH must keep answering against the committed adjacency, so the
  // new snapshot's path graph is frozen from the session's (updated)
  // dynamic graph — not re-read from the on-disk file, which still
  // describes the pre-update graph. ToEdgeList is in rank space; remap
  // to the original ids snapshots serve.
  std::shared_ptr<const CsrGraph> path_graph;
  {
    const RankMapping& ranking = session->index.ranking();
    const EdgeList ranked = session->graph.ToEdgeList();
    EdgeList original(ranked.num_vertices(), ranked.directed());
    original.set_weighted(ranked.weighted());
    for (const Edge& e : ranked.edges()) {
      original.Add(ranking.ToOriginal(e.src), ranking.ToOriginal(e.dst),
                   e.weight);
    }
    original.Normalize();
    Result<CsrGraph> frozen = CsrGraph::FromEdgeList(original);
    if (frozen.ok()) {
      path_graph =
          std::make_shared<const CsrGraph>(std::move(frozen).value());
    }
  }
  auto snapshot = std::make_shared<ServingSnapshot>(
      std::move(published), current->source_path(), options_.cache_capacity,
      options_.hot_hub_k, std::move(path_graph));
  // Carry forward result-cache entries this commit cannot have changed:
  // Query(s, t) reads only Lout(s) and Lin(t), so a cached pair is
  // stale iff the repair touched either of those labels. When the
  // repair touched a large fraction of the graph (or fell back to a
  // full rebuild) filtering approaches "drop everything" at full scan
  // cost, so revert to the wholesale drop (the new snapshot's cache
  // simply starts empty, the pre-selective behavior).
  uint64_t cache_carried = 0;
  uint64_t cache_dropped = 0;
  {
    const IncrementalUpdater::TouchedOwners touched =
        session->updater->TakeTouchedOwners();
    const size_t n = session->index.num_vertices();
    const bool wholesale =
        touched.all || !snapshot->cache().enabled() ||
        4 * (touched.out.size() + touched.in.size()) >= n;
    if (!wholesale) {
      const RankMapping& ranking = session->index.ranking();
      std::unordered_set<VertexId> out_orig;
      std::unordered_set<VertexId> in_orig;
      out_orig.reserve(touched.out.size());
      in_orig.reserve(touched.in.size());
      for (const VertexId v : touched.out) {
        out_orig.insert(ranking.ToOriginal(v));
      }
      for (const VertexId v : touched.in) {
        in_orig.insert(ranking.ToOriginal(v));
      }
      current->cache().ForEach([&](VertexId s, VertexId t, Distance d) {
        if (out_orig.count(s) != 0 || in_orig.count(t) != 0) {
          ++cache_dropped;
        } else {
          snapshot->cache().Insert(s, t, d);
          ++cache_carried;
        }
      });
    }
  }
  const VertexId vertices = snapshot->num_vertices();
  const Status status = registry_.Publish(resolved, std::move(snapshot));
  if (!status.ok()) return WireErr(status.ToString());
  session->last_commit_seconds = commit_timer.Seconds();
  session->commits++;
  session->pending_updates = 0;
  JsonLogLine(JsonLogLevel::kInfo, "index_commit")
      .Str("name", resolved)
      .Num("updates", committed)
      .Fixed("seconds", session->last_commit_seconds, 3)
      .Num("vertices", vertices)
      .Num("cache_carried", cache_carried)
      .Num("cache_dropped", cache_dropped);
  return WireOk("committed updates=" + std::to_string(committed) +
                " seconds=" + FormatDouble(session->last_commit_seconds, 3) +
                " vertices=" + std::to_string(vertices) +
                " cache_carried=" + std::to_string(cache_carried) +
                " cache_dropped=" + std::to_string(cache_dropped));
}

Status DistanceServer::AttachInternal(
    const std::string& name, const std::string& path,
    std::shared_ptr<const ServingSnapshot>* published) {
  HOPDB_RETURN_NOT_OK(ValidateIndexName(name));
  if (name == kDefaultIndexName) {
    return Status::InvalidArgument(
        "'default' names the startup index; RELOAD it instead of "
        "attaching over it");
  }
  // Cheap availability pre-check: a duplicate ATTACH must not pay a
  // full index load (seconds + the whole heap footprint for HLI1) just
  // to be told the name is taken. registry_.Attach below remains the
  // authoritative check for the race where another ATTACH lands between
  // here and there.
  if (registry_.Find(name) != nullptr) {
    return Status::InvalidArgument("index '" + name +
                                   "' is already attached (DETACH it or "
                                   "RELOAD it instead)");
  }
  HOPDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingSnapshot> snapshot,
      LoadServingSnapshot(path, options_.cache_capacity, options_.hot_hub_k,
                          RegisteredGraphPath(name)));
  if (published != nullptr) *published = snapshot;
  const Status status = registry_.Attach(name, snapshot);
  if (status.ok()) {
    InvalidateUpdateSession(name);
    JsonLogLine(JsonLogLevel::kInfo, "index_attach")
        .Str("name", name)
        .Str("path", path)
        .Str("mode", snapshot->map_mode())
        .Num("vertices", snapshot->num_vertices());
  }
  return status;
}

Status DistanceServer::DetachIndex(const std::string& name) {
  const Status status = registry_.Detach(name);
  if (status.ok()) {
    InvalidateUpdateSession(name);
    JsonLogLine(JsonLogLevel::kInfo, "index_detach").Str("name", name);
  }
  return status;
}

Status DistanceServer::ReloadInternal(
    const std::string& name, const std::string& path,
    std::shared_ptr<const ServingSnapshot>* published) {
  const std::string resolved = name.empty() ? kDefaultIndexName : name;
  // Serialize reloads PER NAME so two concurrent RELOADs of one index
  // can't interleave their load-then-publish sequences (last publisher
  // would silently win with a torn view of "source_path") — but a slow
  // heap reload of one index never blocks another index's O(1) remap.
  // Queries never take either lock. COMMIT publishes under the same
  // per-name lock, so a reload and a commit of one index cannot race.
  std::lock_guard<std::mutex> lock(*ReloadLockFor(resolved));
  std::string load_path = path;
  if (load_path.empty()) {
    const std::shared_ptr<const ServingSnapshot> current =
        registry_.Find(resolved);
    if (current == nullptr) {
      return Status::NotFound("no index named '" + resolved + "'");
    }
    load_path = current->source_path();
    if (load_path.empty()) {
      return Status::InvalidArgument(
          "RELOAD needs a path: index '" + resolved +
          "' was started from an in-memory index");
    }
  }
  HOPDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingSnapshot> snapshot,
      LoadServingSnapshot(load_path, options_.cache_capacity,
                          options_.hot_hub_k, RegisteredGraphPath(resolved)));
  if (published != nullptr) *published = snapshot;
  const std::string mode = snapshot->map_mode();
  const VertexId vertices = snapshot->num_vertices();
  HOPDB_RETURN_NOT_OK(registry_.Publish(resolved, std::move(snapshot)));
  metrics_.RecordReload();
  // Uncommitted edge updates patched the replaced snapshot; their base
  // is gone, so the update session (if any) is discarded.
  InvalidateUpdateSession(resolved);
  JsonLogLine(JsonLogLevel::kInfo, "index_reload")
      .Str("name", resolved)
      .Str("path", load_path)
      .Str("mode", mode)
      .Num("vertices", vertices);
  return Status::OK();
}

std::shared_ptr<std::mutex> DistanceServer::ReloadLockFor(
    const std::string& resolved) {
  // Lock entries are tiny and reused, so they are simply left in the
  // map after a DETACH.
  std::lock_guard<std::mutex> lock(reload_mu_);
  std::shared_ptr<std::mutex>& slot = reload_locks_[resolved];
  if (slot == nullptr) slot = std::make_shared<std::mutex>();
  return slot;
}

Status DistanceServer::RegisterUpdateGraph(const std::string& name,
                                           const std::string& path) {
  const std::string resolved = name.empty() ? kDefaultIndexName : name;
  HOPDB_RETURN_NOT_OK(ValidateIndexName(resolved));
  std::lock_guard<std::mutex> lock(update_mu_);
  update_graphs_[resolved] = path;
  return Status::OK();
}

std::string DistanceServer::RegisteredGraphPath(
    const std::string& resolved) const {
  std::lock_guard<std::mutex> lock(update_mu_);
  const auto it = update_graphs_.find(resolved);
  return it == update_graphs_.end() ? std::string() : it->second;
}

DistanceServer::UpdateSessionInfo DistanceServer::GetUpdateSessionInfo(
    const std::string& name) const {
  const std::string resolved = name.empty() ? kDefaultIndexName : name;
  std::shared_ptr<UpdateSession> session;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    auto it = update_sessions_.find(resolved);
    if (it == update_sessions_.end()) return {};
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mu);
  UpdateSessionInfo info;
  info.pending_updates = session->pending_updates;
  info.last_commit_seconds = session->last_commit_seconds;
  info.commits = session->commits;
  return info;
}

Result<std::shared_ptr<DistanceServer::UpdateSession>>
DistanceServer::GetUpdateSession(const std::string& resolved) {
  std::lock_guard<std::mutex> lock(update_mu_);
  auto it = update_sessions_.find(resolved);
  if (it != update_sessions_.end()) return it->second;
  auto graph_it = update_graphs_.find(resolved);
  if (graph_it == update_graphs_.end()) {
    return Status::InvalidArgument(
        "no graph registered for index '" + resolved +
        "' (start serve with --graph [name=]path to enable updates)");
  }
  auto session = std::make_shared<UpdateSession>();
  session->graph_path = graph_it->second;
  update_sessions_[resolved] = session;
  return session;
}

Status DistanceServer::EnsureSessionLoaded(const std::string& resolved,
                                           UpdateSession* session) {
  if (session->loaded) return Status::OK();
  const std::shared_ptr<const ServingSnapshot> snap =
      registry_.Find(resolved);
  if (snap == nullptr) {
    return Status::NotFound("no index named '" + resolved + "'");
  }
  if (snap->mapped()) {
    return Status::InvalidArgument(
        "index '" + resolved +
        "' is mmap-served (HLI2) and read-only; serve the HLI1/HLC1 "
        "form to enable online updates");
  }
  // The working copy starts as a deep copy of the published snapshot:
  // readers keep the immutable snapshot, repairs mutate only the copy.
  session->index = snap->index();
  HOPDB_ASSIGN_OR_RETURN(
      EdgeList edges,
      LoadGraphFile(session->graph_path, session->index.directed(),
                    /*read_weights=*/true));
  edges.Normalize();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, CsrGraph::FromEdgeList(edges));
  if (graph.num_vertices() > session->index.num_vertices()) {
    return Status::InvalidArgument(
        "graph file '" + session->graph_path + "' has " +
        std::to_string(graph.num_vertices()) + " vertices but index '" +
        resolved + "' serves " +
        std::to_string(session->index.num_vertices()));
  }
  HOPDB_ASSIGN_OR_RETURN(CsrGraph ranked,
                         RelabelByRank(graph, session->index.ranking()));
  session->graph = DynamicGraph::FromGraph(ranked);
  session->updater = std::make_unique<IncrementalUpdater>(
      &session->graph, &session->index.mutable_label_index());
  session->loaded = true;
  session->invalidated.store(false, std::memory_order_release);
  JsonLogLine(JsonLogLevel::kInfo, "update_session_open")
      .Str("name", resolved)
      .Str("graph", session->graph_path)
      .Num("vertices", session->index.num_vertices());
  return Status::OK();
}

void DistanceServer::InvalidateUpdateSession(const std::string& resolved) {
  std::shared_ptr<UpdateSession> session;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    auto it = update_sessions_.find(resolved);
    if (it == update_sessions_.end()) return;
    session = std::move(it->second);
    update_sessions_.erase(it);
  }
  // Flag only — never session->mu here. COMMIT holds session->mu while
  // taking the reload lock; a reload holding that lock must not wait on
  // session->mu or the two deadlock. An in-flight edge op finishes on
  // the orphaned session and the flag makes its COMMIT refuse.
  session->invalidated.store(true, std::memory_order_release);
}

ResultCache::Stats DistanceServer::cache_stats() const {
  return registry_.Find("")->cache().GetStats();
}

void DistanceServer::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    JsonLogLine(JsonLogLevel::kInfo, "server_stop")
        .Fixed("uptime_seconds", uptime_.Seconds(), 1)
        .Num("requests", metrics_.requests())
        .Num("errors", metrics_.errors())
        .Num("shed", metrics_.shed());
    // 1. Stop accepting: shutdown unblocks accept(), then join.
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    // 2. Stop reading new requests; anything already parsed may still
    // land in the queue behind us.
    io_group_.ShutdownReads();
    // 3. Close the queue (late submissions get "server shutting down"
    // inline) and run the workers dry: every accepted request gets its
    // response completed into its connection.
    queue_.Close();
    workers_.Join();
    // 4. The I/O threads flush those final responses and close every
    // socket, so clients see answer-then-EOF rather than a hang.
    io_group_.Stop();
  });
}

}  // namespace hopdb
