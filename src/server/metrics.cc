#include "server/metrics.h"

namespace hopdb {

uint64_t LatencyHistogram::PercentileUs(double p) const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based ceil so p=100 is the max.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBoundUs(i);
  }
  return BucketUpperBoundUs(kBuckets - 1);
}

void ServerMetrics::RecordTrace(const RequestTrace& trace) {
  const uint64_t total_us = trace.total_us();
  if (trace.status == WireStatus::kOk) {
    latency_.Record(total_us);
  } else {
    degraded_.Record(total_us);
  }
  if (!trace.parse_error) {
    verb_latency_[static_cast<size_t>(trace.kind)].Record(total_us);
    if (!trace.shed) {
      queue_wait_.Record(trace.queue_wait_us());
      execute_.Record(trace.execute_us());
    }
  }
  write_.Record(trace.write_us());
  if (trace.sampled()) {
    traces_sampled_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace hopdb
