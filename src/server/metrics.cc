#include "server/metrics.h"

namespace hopdb {

uint64_t ServerMetrics::LatencyPercentileUs(double p) const {
  std::array<uint64_t, kLatencyBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    counts[i] = latency_histogram_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile request, 1-based ceil so p=100 is the max.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return 2ull << i;  // bucket upper bound
  }
  return 2ull << (kLatencyBuckets - 1);
}

}  // namespace hopdb
