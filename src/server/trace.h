// Per-request tracing primitives.
//
// Every request that enters the server carries a RequestTrace by value.
// The I/O thread stamps accepted/parsed, the sink stamps enqueued, the
// worker stamps dequeued/executed, and the owning I/O thread stamps
// encoded/written as the response bytes leave the socket.  Once the last
// byte of a response has been handed to the kernel the completed trace is
// delivered to RequestSink::HandleTraceDone, which feeds the stage
// histograms, the slow-query log, and (for sampled requests) the in-memory
// trace ring served by `TRACE LAST n`.
//
// All timestamps are steady-clock nanoseconds (never wall clock), so
// differences are meaningful even across NTP slews.  trace_id is nonzero
// only for sampled requests; stage timestamps are stamped unconditionally
// because a steady_clock read is a few nanoseconds and the per-stage
// histograms must cover every request, not a sample.

#ifndef HOPDB_SERVER_TRACE_H_
#define HOPDB_SERVER_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "server/protocol.h"

namespace hopdb {

// Steady-clock now, in nanoseconds.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One request's journey through the pipeline.  Plain value type; copied
// into the work queue and the completion slot alongside the response.
struct RequestTrace {
  uint64_t trace_id = 0;  // nonzero iff sampled into the trace ring
  RequestKind kind = RequestKind::kPing;
  WireStatus status = WireStatus::kOk;
  bool parse_error = false;  // request never parsed; kind is meaningless
  bool shed = false;         // rejected at admission (BUSY); never queued

  // Stage timestamps, steady-clock ns.  Monotonically non-decreasing in
  // declaration order for every delivered trace.
  uint64_t accepted_ns = 0;  // bytes for this request seen on the socket
  uint64_t parsed_ns = 0;    // framing + verb parse finished
  uint64_t enqueued_ns = 0;  // pushed to (or rejected by) the work queue
  uint64_t dequeued_ns = 0;  // popped by a worker
  uint64_t executed_ns = 0;  // response computed
  uint64_t encoded_ns = 0;   // response serialized to the output buffer
  uint64_t written_ns = 0;   // last response byte accepted by the kernel

  bool sampled() const { return trace_id != 0; }
  uint64_t total_us() const { return StageUs(accepted_ns, written_ns); }
  uint64_t parse_us() const { return StageUs(accepted_ns, parsed_ns); }
  uint64_t queue_wait_us() const { return StageUs(enqueued_ns, dequeued_ns); }
  uint64_t execute_us() const { return StageUs(dequeued_ns, executed_ns); }
  uint64_t write_us() const { return StageUs(executed_ns, written_ns); }

  // Saturating stage width in microseconds (0 if the clock stamps are
  // out of order, which only happens for stages a request skipped).
  static uint64_t StageUs(uint64_t begin_ns, uint64_t end_ns) {
    return end_ns > begin_ns ? (end_ns - begin_ns) / 1000 : 0;
  }
};

// Fixed-capacity ring of recently completed sampled traces.  Mutex-guarded:
// it is only touched for sampled requests (default 1-in-100), so contention
// is negligible next to the socket write that precedes each push.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(const RequestTrace& trace);

  // Up to n most recent traces, newest first.
  std::vector<RequestTrace> Last(size_t n) const;

 private:
  mutable std::mutex mu_;
  std::vector<RequestTrace> ring_;
  size_t next_ = 0;  // slot the next push writes
  size_t size_ = 0;  // number of valid entries (<= ring_.size())
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_TRACE_H_
