#include "server/result_cache.h"

namespace hopdb {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  if (capacity_ == 0) return;
  size_t shards = RoundUpPow2(num_shards == 0 ? 1 : num_shards);
  // Never create more shards than capacity: every shard must be able to
  // hold at least one entry (floor division below then yields >= 1).
  while (shards > 1 && shards > capacity_) shards >>= 1;
  shard_mask_ = shards - 1;
  per_shard_capacity_ = capacity_ / shards;
  shards_ = std::vector<Shard>(shards);
}

bool ResultCache::Lookup(VertexId s, VertexId t, Distance* dist) {
  if (!enabled()) return false;
  const uint64_t key = Key(s, t);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *dist = it->second->dist;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResultCache::Insert(VertexId s, VertexId t, Distance dist) {
  if (!enabled()) return;
  const uint64_t key = Key(s, t);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->dist = dist;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, dist});
  shard.map.emplace(key, shard.lru.begin());
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace hopdb
