// Event-driven serving core: a small set of I/O threads own every
// client socket through epoll, so connection count no longer costs one
// OS thread per socket (the pre-epoll design topped out at a few
// thousand connections of stack memory and scheduler load; this one
// holds tens of thousands of idle sockets at a fixed thread count).
//
// Division of labor:
//
//   IoGroup ── round-robins accepted fds over N IoThreads
//      │
//   IoThread ── epoll loop: reads, splits the byte stream into
//      │        requests (v1 lines or v2 frames; the first byte of a
//      │        connection picks the framing), opens one ordered
//      │        response slot per request, and hands the parsed
//      │        request to the RequestSink (the server), which runs it
//      │        on the worker pool
//      │
//   Connection::Complete(seq, response) ── called by any thread when a
//               request finishes; the owning IoThread encodes and
//               writes consecutive completed slots, so responses go out
//               in request order no matter how the workers interleave
//
// Because a reader never waits for a response, N pipelined requests on
// one connection execute concurrently across the worker pool; the slot
// deque re-serializes only the bytes on the wire.
//
// Admission control lives at both ends of an I/O thread: a connection
// with max_inflight_per_conn unanswered requests (or an unread response
// backlog above kMaxBufferedOutBytes) stops being read until it drains,
// and the sink sheds with BUSY when the worker queue is full — an
// overloaded server degrades to fast BUSY answers instead of stalling
// its I/O threads (the old reader blocked inside BoundedQueue::Push).

#ifndef HOPDB_SERVER_EVENT_LOOP_H_
#define HOPDB_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "server/trace.h"
#include "util/status.h"

namespace hopdb {

class IoThread;

/// Wire framing of one connection, decided by its first byte (0x02
/// opens the v2 binary handshake; anything else is a v1 ASCII line).
enum class WireVersion : uint8_t { kUnknown, kV1, kV2 };

/// One client socket, owned by exactly one IoThread. All fields except
/// the completion slots are touched only by the owner; the slot deque
/// and output buffer are mutex-guarded because workers complete into
/// them from arbitrary threads.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(int fd, IoThread* owner) : fd_(fd), owner_(owner) {}

  /// Delivers the response for slot `seq` (exactly once per slot,
  /// from any thread). The owning I/O thread writes slots to the
  /// socket strictly in seq order; completing out of order is fine.
  /// Safe after the connection died — late responses are dropped.
  /// The request's trace rides along; once the response's last byte is
  /// accepted by the kernel the trace (with status and written_ns
  /// filled) is delivered to RequestSink::HandleTraceDone.
  void Complete(uint64_t seq, WireResponse response, RequestTrace trace);
  void Complete(uint64_t seq, WireResponse response) {
    Complete(seq, std::move(response), RequestTrace{});
  }

  int fd() const { return fd_; }

 private:
  friend class IoThread;

  struct Slot {
    WireResponse response;
    RequestTrace trace;
    bool done = false;
  };

  /// A response encoded into out_ but not yet fully written; `end` is
  /// the absolute (connection-lifetime) byte offset one past its last
  /// byte. Writes drain strictly in order, so a FIFO suffices.
  struct PendingWrite {
    uint64_t end = 0;
    RequestTrace trace;
  };

  /// Appends an empty slot and returns its seq (owner thread, while
  /// parsing the request that will fill it).
  uint64_t OpenSlot();

  const int fd_;
  IoThread* const owner_;

  // --- owner-thread-only state ---
  WireVersion version_ = WireVersion::kUnknown;
  std::string in_;            // bytes read, not yet parsed
  uint32_t epoll_events_ = 0; // interest mask currently registered

  // --- shared state, guarded by mu_ ---
  std::mutex mu_;
  std::deque<Slot> slots_;    // front is seq base_seq_
  uint64_t base_seq_ = 0;
  uint64_t next_seq_ = 0;
  std::string out_;           // encoded, not yet written
  size_t out_off_ = 0;
  std::deque<PendingWrite> pending_writes_;  // encoded, awaiting written_ns
  uint64_t total_encoded_ = 0;  // lifetime bytes encoded into out_
  uint64_t total_written_ = 0;  // lifetime bytes accepted by send()
  bool closed_ = false;            // fd closed; drop everything late
  bool close_after_flush_ = false; // EOF/fatal: close once slots drain
  bool read_shutdown_ = false;     // permanent: EOF or fatal error
  bool read_paused_ = false;       // admission: resumes when drained
  bool flush_queued_ = false;      // already in owner's flush queue
};

/// Where parsed requests go. Implemented by DistanceServer; called on
/// I/O threads, so implementations must not block (enqueue or answer
/// inline via Connection::Complete).
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// A well-formed request for slot `seq`. The sink must arrange for
  /// conn->Complete(seq, ...) to be called exactly once. `trace` has
  /// accepted/parsed stamped (and trace_id when sampled); the sink owns
  /// the remaining stages.
  virtual void HandleRequest(const std::shared_ptr<Connection>& conn,
                             uint64_t seq, Request request,
                             RequestTrace trace) = 0;
  /// A malformed request (still owns slot `seq`, so the error answer
  /// stays ordered among its pipelined neighbors).
  virtual void HandleParseError(const std::shared_ptr<Connection>& conn,
                                uint64_t seq, std::string message,
                                RequestTrace trace) = 0;
  /// The response for a traced request was fully handed to the kernel;
  /// `trace` has every stage timestamp and the final status. Called on
  /// the connection's I/O thread outside any lock; must not block.
  virtual void HandleTraceDone(const RequestTrace& trace) { (void)trace; }
};

struct IoGroupOptions {
  /// Number of epoll threads.
  uint32_t num_threads = 1;
  /// Per-connection unanswered-request cap; a connection at the cap is
  /// not read again until responses drain (pipelining backpressure).
  uint32_t max_inflight_per_conn = 128;
  /// Assign a trace id to every Nth parsed request (0 disables
  /// sampling). Stage timestamps are stamped regardless; sampling only
  /// decides which traces enter the in-memory trace ring.
  uint32_t trace_sample_every = 0;
};

/// One epoll loop plus the cross-thread mailboxes feeding it.
class IoThread {
 public:
  IoThread() = default;
  ~IoThread();
  IoThread(const IoThread&) = delete;
  IoThread& operator=(const IoThread&) = delete;

  Status Start(const IoGroupOptions& options, RequestSink* sink);
  /// Transfers ownership of an accepted socket to this thread
  /// (thread-safe; the fd is made non-blocking on adoption).
  void Adopt(int fd);
  /// Asks the owner thread to flush `conn` (thread-safe; used by
  /// Connection::Complete when a response becomes writable).
  void RequestFlush(std::shared_ptr<Connection> conn);
  /// shutdown(SHUT_RD)s every connection: in-flight requests still get
  /// answered and flushed, but no new bytes are read (thread-safe).
  void ShutdownReads();
  /// Final best-effort flush, close everything, join (idempotent).
  void Stop();

  size_t open_connections() const {
    return open_count_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void DrainMailbox();
  void AddConnection(int fd);
  /// Reads and parses until EAGAIN, EOF, a fatal framing error, or the
  /// in-flight cap pauses the connection.
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  /// Splits conn->in_ into requests; returns false on fatal error.
  bool ParseBuffered(const std::shared_ptr<Connection>& conn);
  /// Encodes completed head slots and writes; re-arms EPOLLOUT or
  /// resumes a paused reader as the buffers dictate.
  void FlushConnection(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Opens an error slot, completes it inline through the sink, and
  /// marks the connection to close once everything before it flushed.
  void FatalProtocolError(const std::shared_ptr<Connection>& conn,
                          std::string message, RequestTrace trace);
  void UpdateInterestLocked(Connection* conn);
  /// Starts a trace for the request being parsed right now: stamps
  /// accepted_ns and allocates a trace id on the sampling cadence.
  RequestTrace BeginTrace(uint64_t accepted_ns);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  RequestSink* sink_ = nullptr;
  uint32_t max_inflight_ = 128;
  uint32_t trace_sample_every_ = 0;
  uint64_t trace_counter_ = 0;  // owner-thread-only sampling cadence
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> open_count_{0};

  /// Owner-thread-only: every live connection on this loop.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  /// Cross-thread mailbox, drained on wake_fd_ wakeups.
  std::mutex mailbox_mu_;
  std::vector<int> pending_adds_;
  std::vector<std::shared_ptr<Connection>> pending_flushes_;
  bool pending_shutdown_reads_ = false;
};

/// The serving-side socket owner: N IoThreads behind one Adopt().
class IoGroup {
 public:
  Status Start(const IoGroupOptions& options, RequestSink* sink);
  /// Round-robins the accepted fd onto an I/O thread (thread-safe).
  void Adopt(int fd);
  void ShutdownReads();
  void Stop();
  size_t open_connections() const;

 private:
  std::vector<std::unique_ptr<IoThread>> threads_;
  std::atomic<uint64_t> next_thread_{0};
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_EVENT_LOOP_H_
