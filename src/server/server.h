// DistanceServer: a concurrent TCP query server over a registry of
// immutable index snapshots.
//
// Architecture (README "Serving" has the full sketch):
//
//   accept loop ── hands each socket to the epoll I/O group
//        │
//        ▼
//   IoGroup (few epoll threads, event_loop.h) ── reads, parses v1
//        │    lines / v2 frames, opens an ordered response slot per
//        │    request; pauses reading at the per-connection in-flight
//        │    cap (admission control)
//        ▼
//   BoundedQueue<WorkItem>  ◀── TryPush: full queue sheds with BUSY
//        │                      instead of stalling an I/O thread
//        ▼  PopBatch (micro-batching)
//   worker pool (N threads) ── snapshot = registry lookup (per request)
//        │                       ├─ per-snapshot sharded LRU cache
//        │                       ├─ same-source DIST groups answered via
//        │                       │  OneToManyEngine (one label scan for
//        │                       │  the whole group)
//        │                       └─ KNN via the snapshot's lazy KnnEngine
//        ▼
//   Connection::Complete(seq, WireResponse) ── the owning I/O thread
//        encodes (v1 or v2, whichever the socket negotiated) and writes
//        completed slots in request order; pipelined requests on one
//        connection execute concurrently, only their bytes re-serialize
//
// The registry (index_registry.h) holds one RCU-swappable snapshot per
// index name. Unprefixed requests hit the default index; `USE <name>`
// routes to any attached one; ATTACH/DETACH manage the set at runtime.
// Snapshots are heap (HLI1/HLC1) or mmap (HLI2, zero-copy page-cache
// serving with O(1) RELOAD) — the server never cares which.
//
// The result cache is owned by the snapshot, not the server: a RELOAD
// publishes a fresh snapshot with an empty cache, so a worker still
// finishing on the old snapshot can only fill the old (dying) cache —
// stale answers can never leak across a hot-swap.

#ifndef HOPDB_SERVER_SERVER_H_
#define HOPDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hopdb.h"
#include "labeling/incremental.h"
#include "server/event_loop.h"
#include "server/index_registry.h"
#include "server/index_snapshot.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/request_queue.h"
#include "server/result_cache.h"
#include "server/thread_pool.h"
#include "util/status.h"
#include "util/timer.h"

namespace hopdb {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port().
  uint16_t port = 0;
  /// Query worker threads; 0 = one per hardware thread.
  uint32_t num_workers = 0;
  /// Epoll I/O threads owning the client sockets;
  /// 0 = min(4, hardware threads).
  uint32_t num_io_threads = 0;
  /// Bounded request queue length; requests arriving while it is full
  /// are shed with `ERR BUSY` (counted in the `shed` STATS key).
  size_t queue_capacity = 1024;
  /// listen(2) backlog: pending-connection queue length before the
  /// kernel refuses new SYNs (accept-side admission control).
  int listen_backlog = 1024;
  /// Max unanswered requests per connection before its socket stops
  /// being read (pipelining backpressure; resumes as responses drain).
  uint32_t max_inflight_per_conn = 128;
  /// Result-cache capacity in (s, t) pairs per snapshot; 0 disables.
  size_t cache_capacity = 1 << 16;
  /// Hot-hub cache: every published snapshot materializes a dense
  /// distance table for the top-k ranked pivots (labeling/hot_hub.h),
  /// answering the hub-covered portion of each DIST with one dense fold
  /// and handing only the non-hub label suffixes to the merge-join.
  /// Costs 8k bytes per vertex side of RAM per snapshot; 0 disables.
  uint32_t hot_hub_k = 64;
  /// Max requests one worker drains per wakeup (micro-batch size).
  uint32_t max_micro_batch = 32;
  /// Path RELOAD-without-argument re-reads for the default index;
  /// typically the file the index was loaded from. Empty = bare RELOAD
  /// is refused.
  std::string source_path;
  /// Fraction of requests assigned a trace id and recorded into the
  /// in-memory trace ring (TRACE LAST n). Stage timestamps and the
  /// per-stage histograms cover every request regardless; sampling only
  /// bounds the ring-push cost. 0 disables the ring entirely.
  double trace_sample_rate = 0.01;
  /// Capacity of the sampled-trace ring.
  size_t trace_ring_capacity = 1024;
  /// Requests whose accepted->written latency reaches this many
  /// microseconds are emitted to the structured JSON slow-query log
  /// (util/log.h) and counted in `slow_queries`. 0 disables.
  uint64_t slow_query_us = 0;
  /// Test hook, called by a worker for each request just before it
  /// executes (after dequeue). Lets tests hold one request in place
  /// while its pipelined neighbors proceed — the completion-driven
  /// ordering proof. Must be thread-safe; null in production.
  std::function<void(const Request&)> pre_execute_hook;
};

class DistanceServer : public RequestSink {
 public:
  /// Binds, listens, and starts the accept loop, I/O group, and worker
  /// pool, with `snapshot` serving as the default index. This is the
  /// general entry point (heap or mmap snapshots both work; see
  /// LoadServingSnapshot).
  static Result<std::unique_ptr<DistanceServer>> Start(
      std::shared_ptr<const ServingSnapshot> snapshot,
      const ServerOptions& options = {});

  /// Convenience: wraps an in-memory index into the default snapshot.
  static Result<std::unique_ptr<DistanceServer>> Start(
      HopDbIndex index, const ServerOptions& options = {});

  ~DistanceServer() override;

  DistanceServer(const DistanceServer&) = delete;
  DistanceServer& operator=(const DistanceServer&) = delete;

  /// The bound TCP port (resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, shut down connection reads,
  /// drain the queue through the workers, flush and close every
  /// connection, join everything. Idempotent.
  void Stop();

  /// Loads the file at `path` and attaches it as index `name`
  /// (the ATTACH verb funnels here; also used by `serve --index
  /// name=path` startup attachment). Heap vs mmap is decided by the file
  /// magic. Fails without disturbing serving.
  Status AttachIndex(const std::string& name, const std::string& path) {
    return AttachInternal(name, path, nullptr);
  }

  /// Detaches index `name` (the DETACH verb). In-flight queries on it
  /// finish on their snapshot; the memory is released when the last
  /// reference drops. The default index cannot be detached.
  Status DetachIndex(const std::string& name);

  /// Hot-swaps index `name` ("" = default) from `path` (empty = that
  /// index's source path) and atomically publishes it. In-flight queries
  /// finish on the snapshot they started with. Serialized against
  /// concurrent reloads; O(1) remap when the source is an HLI2 file.
  Status Reload(const std::string& name, const std::string& path) {
    return ReloadInternal(name, path, nullptr);
  }
  /// Back-compat shorthand: reload the default index.
  Status Reload(const std::string& path) { return Reload("", path); }

  /// Registers the graph file index `name` ("" = default) was built
  /// from, enabling ADDEDGE/DELEDGE/COMMIT on that index (`serve
  /// --graph [name=]path` funnels here). Updates without a registered
  /// graph are refused — label repair needs the adjacency. Only
  /// heap-served (HLI1/HLC1) indexes are updatable; the mmap check
  /// happens lazily at the first edge op, after the index is attached.
  Status RegisterUpdateGraph(const std::string& name,
                             const std::string& path);

  /// Uncommitted-transaction state for STATS (zeroes when the index has
  /// no update session).
  struct UpdateSessionInfo {
    uint64_t pending_updates = 0;
    double last_commit_seconds = 0;
    uint64_t commits = 0;
  };
  UpdateSessionInfo GetUpdateSessionInfo(const std::string& name) const;

  const ServerMetrics& metrics() const { return metrics_; }
  /// Cache stats of the currently published default snapshot.
  ResultCache::Stats cache_stats() const;
  /// The current default snapshot.
  std::shared_ptr<const ServingSnapshot> snapshot() const {
    return registry_.Find("");
  }
  /// The index registry (named snapshots; read-mostly).
  const IndexRegistry& registry() const { return registry_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Currently open client connections across the I/O group.
  size_t open_connections() const { return io_group_.open_connections(); }
  uint32_t num_workers() const { return workers_.size(); }
  uint32_t num_io_threads() const { return num_io_threads_; }
  double uptime_seconds() const { return uptime_.Seconds(); }
  /// Up to n most recent sampled traces, newest first (the TRACE LAST
  /// verb renders these; tests assert on them directly).
  std::vector<RequestTrace> RecentTraces(size_t n) const {
    return trace_ring_.Last(n);
  }

  /// Executes one already-parsed request against the current snapshots
  /// and renders the v1 response line, bypassing the socket layer and
  /// the queue (tests and in-worker admin verbs funnel here).
  std::string Execute(const Request& request);

  // RequestSink (called from I/O threads):
  void HandleRequest(const std::shared_ptr<Connection>& conn, uint64_t seq,
                     Request request, RequestTrace trace) override;
  void HandleParseError(const std::shared_ptr<Connection>& conn, uint64_t seq,
                        std::string message, RequestTrace trace) override;
  void HandleTraceDone(const RequestTrace& trace) override;

 private:
  struct WorkItem {
    Request request;
    std::shared_ptr<Connection> conn;
    uint64_t seq = 0;
    RequestTrace trace;
  };

  explicit DistanceServer(const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void WorkerLoop();
  void ExecuteWorkBatch(std::vector<WorkItem>* items);
  void Finish(WorkItem* item, WireResponse response);
  /// Framing-independent execution; Execute() is its v1 rendering.
  WireResponse ExecuteWire(const Request& request);
  WireResponse ExecuteOnWire(const Request& request,
                             const ServingSnapshot& snapshot);
  WireResponse StatsResponse(const ServingSnapshot& snapshot);
  /// Prometheus text exposition of every counter/gauge/histogram the
  /// server owns (the METRICS verb; whole-server scoped).
  WireResponse MetricsResponse();
  /// Span table of the n most recent sampled traces (TRACE LAST n).
  WireResponse TraceResponse(uint32_t n);
  WireResponse HandleReload(const std::string& name, const std::string& path);
  WireResponse HandleAttach(const std::string& name, const std::string& path);
  WireResponse HandleDetach(const std::string& name);
  /// ADDEDGE/DELEDGE: repair the session's working copy eagerly (under
  /// the session mutex, so repair cost lands on the updating client,
  /// not on readers); COMMIT publishes one new snapshot atomically.
  WireResponse HandleEdgeOp(const Request& request, bool is_delete);
  WireResponse HandleCommit(const std::string& name);
  /// The AttachIndex/Reload workhorses; on success `*published` (when
  /// non-null) receives the snapshot this operation installed, so
  /// response formatting reflects the operation's own outcome even if a
  /// concurrent DETACH/RELOAD changes the registry right after.
  Status AttachInternal(const std::string& name, const std::string& path,
                        std::shared_ptr<const ServingSnapshot>* published);
  Status ReloadInternal(const std::string& name, const std::string& path,
                        std::shared_ptr<const ServingSnapshot>* published);
  /// The --graph path registered for `resolved` (already
  /// default-resolved), or "" when none. Freshly loaded heap snapshots
  /// of graph-registered indexes get that graph attached so they can
  /// answer PATH.
  std::string RegisteredGraphPath(const std::string& resolved) const;

  // -------------------------------------------------------------------
  // Online updates (ADDEDGE/DELEDGE/COMMIT).
  //
  // One UpdateSession per index name holds a mutable working copy of
  // the index plus the ranked dynamic graph; edge ops repair the copy
  // in place while readers keep hitting the published (immutable)
  // snapshot. COMMIT deep-copies the repaired index into a fresh
  // ServingSnapshot and publishes it under the same per-name reload
  // lock RELOAD uses, so the two can never interleave. RELOAD / ATTACH
  // / DETACH invalidate the session: uncommitted updates are discarded
  // (the base they patched is gone).
  // -------------------------------------------------------------------
  struct UpdateSession {
    std::mutex mu;
    /// Set (without mu; see Invalidate) when the underlying index was
    /// republished; the session's working copy no longer descends from
    /// the served snapshot and must not be committed.
    std::atomic<bool> invalidated{false};
    std::string graph_path;
    bool loaded = false;
    HopDbIndex index;        // working copy (deep copy of the snapshot)
    DynamicGraph graph;      // rank-relabeled adjacency, kept in sync
    std::unique_ptr<IncrementalUpdater> updater;
    uint64_t pending_updates = 0;  // applied-but-uncommitted ops
    double last_commit_seconds = 0;
    uint64_t commits = 0;
  };

  /// Fetches (creating if absent) the session for `resolved`; fails
  /// when no graph was registered for that name.
  Result<std::shared_ptr<UpdateSession>> GetUpdateSession(
      const std::string& resolved);
  /// Loads the working copy on first use (must hold session->mu).
  Status EnsureSessionLoaded(const std::string& resolved,
                             UpdateSession* session);
  /// Drops the session after a reload/attach/detach of `resolved`.
  void InvalidateUpdateSession(const std::string& resolved);
  std::shared_ptr<std::mutex> ReloadLockFor(const std::string& resolved);

  ServerOptions options_;
  IndexRegistry registry_;
  BoundedQueue<WorkItem> queue_;
  ServerMetrics metrics_;
  TraceRing trace_ring_;
  ThreadPool workers_;
  IoGroup io_group_;
  Stopwatch uptime_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint32_t num_io_threads_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  // Reloads are serialized PER INDEX NAME (two concurrent RELOADs of
  // one name must not interleave their load-then-publish sequences),
  // but never across names — a multi-second heap reload of one index
  // must not stall the O(1) remap of another. reload_mu_ only guards
  // the lock map itself.
  std::mutex reload_mu_;
  std::map<std::string, std::shared_ptr<std::mutex>> reload_locks_;
  std::once_flag stop_once_;

  /// Guards the two update maps (never held while repairing; sessions
  /// serialize on their own mutex).
  mutable std::mutex update_mu_;
  std::map<std::string, std::string> update_graphs_;
  std::map<std::string, std::shared_ptr<UpdateSession>> update_sessions_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_SERVER_H_
