// DistanceServer: a concurrent TCP query server over one immutable
// HopDbIndex snapshot.
//
// Architecture (README "Serving" has the full sketch):
//
//   accept loop ── 1 thread per connection: read line, parse, enqueue
//        │                                   │
//        ▼                                   ▼
//   BoundedQueue<WorkItem>  ◀── backpressure when full
//        │
//        ▼  PopBatch (micro-batching)
//   worker pool (N threads) ── snapshot = handle.Get()
//        │                       ├─ per-snapshot sharded LRU cache
//        │                       ├─ same-source DIST groups answered via
//        │                       │  OneToManyEngine (one label scan for
//        │                       │  the whole group)
//        │                       └─ KNN via the snapshot's lazy KnnEngine
//        ▼
//   promise/future ── connection thread writes the response line
//
// The result cache is owned by the snapshot, not the server: a RELOAD
// publishes a fresh snapshot with an empty cache, so a worker still
// finishing on the old snapshot can only fill the old (dying) cache —
// stale answers can never leak across a hot-swap.

#ifndef HOPDB_SERVER_SERVER_H_
#define HOPDB_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <thread>
#include <vector>

#include "hopdb.h"
#include "server/index_snapshot.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/request_queue.h"
#include "server/result_cache.h"
#include "server/thread_pool.h"
#include "util/status.h"
#include "util/timer.h"

namespace hopdb {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port().
  uint16_t port = 0;
  /// Query worker threads; 0 = one per hardware thread.
  uint32_t num_workers = 0;
  /// Bounded request queue length (producers block when full).
  size_t queue_capacity = 1024;
  /// Result-cache capacity in (s, t) pairs per snapshot; 0 disables.
  size_t cache_capacity = 1 << 16;
  /// Max requests one worker drains per wakeup (micro-batch size).
  uint32_t max_micro_batch = 32;
  /// Path RELOAD-without-argument re-reads; typically the file the index
  /// was loaded from. Empty = bare RELOAD is refused.
  std::string source_path;
};

class DistanceServer {
 public:
  /// Binds, listens, and starts the accept loop and worker pool. The
  /// index is moved into the first serving snapshot.
  static Result<std::unique_ptr<DistanceServer>> Start(
      HopDbIndex index, const ServerOptions& options = {});

  ~DistanceServer();

  DistanceServer(const DistanceServer&) = delete;
  DistanceServer& operator=(const DistanceServer&) = delete;

  /// The bound TCP port (resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, unblock and join connection
  /// threads, drain the queue, join workers. Idempotent.
  void Stop();

  /// Loads a new index from `path` (empty = options.source_path) and
  /// atomically publishes it. In-flight queries finish on the snapshot
  /// they started with. Serialized against concurrent reloads.
  Status Reload(const std::string& path);

  const ServerMetrics& metrics() const { return metrics_; }
  /// Cache stats of the currently published snapshot.
  ResultCache::Stats cache_stats() const;
  std::shared_ptr<const ServingSnapshot> snapshot() const {
    return handle_.Get();
  }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint32_t num_workers() const { return workers_.size(); }
  double uptime_seconds() const { return uptime_.Seconds(); }

  /// Executes one already-parsed request against the current snapshot,
  /// bypassing the socket layer (used by the in-process micro-batch path
  /// and by tests; the TCP path funnels into the same code).
  std::string Execute(const Request& request);

 private:
  struct WorkItem {
    Request request;
    std::promise<std::string> response;
    Stopwatch enqueue_watch;
  };

  explicit DistanceServer(const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void WorkerLoop();
  void ExecuteWorkBatch(std::vector<WorkItem>* items);
  void Finish(WorkItem* item, std::string response);
  std::string ExecuteOn(const Request& request,
                        const ServingSnapshot& snapshot);
  std::string StatsResponse(const ServingSnapshot& snapshot);
  std::string HandleReload(const std::string& path);

  ServerOptions options_;
  IndexHandle handle_;
  BoundedQueue<WorkItem> queue_;
  ServerMetrics metrics_;
  ThreadPool workers_;
  Stopwatch uptime_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  // Connection handler threads run detached so a long-lived server does
  // not accumulate joinable zombies; Stop() instead waits for
  // active_connections_ to drain to zero (signaled via conns_done_).
  std::mutex conns_mu_;
  std::condition_variable conns_done_;
  size_t active_connections_ = 0;
  std::unordered_set<int> open_fds_;

  std::mutex reload_mu_;
  std::once_flag stop_once_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_SERVER_H_
