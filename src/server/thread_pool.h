// A fixed-size worker pool: Start() launches N threads all running the
// same body (taking the worker index), Join() waits for them to return.
// Deliberately loop-agnostic — the server's workers pull from a
// BoundedQueue and exit when it closes, so the pool only owns thread
// lifecycle, not scheduling. Distinct from util/parallel.h, which
// fork-joins one bounded computation; this pool hosts long-running
// service loops.

#ifndef HOPDB_SERVER_THREAD_POOL_H_
#define HOPDB_SERVER_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace hopdb {

class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool() { Join(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Launches `num_threads` (>= 1 enforced) threads running
  /// body(worker_index). Must not be called while threads are running.
  void Start(uint32_t num_threads, std::function<void(uint32_t)> body);

  /// Waits for every worker body to return. Idempotent. The caller is
  /// responsible for making the bodies exit (e.g. closing their queue).
  void Join();

  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_THREAD_POOL_H_
