// Immutable serving snapshot + atomically swappable handle.
//
// The hot-swap design is RCU-style: the whole queryable state (index,
// lazily built KNN engine, provenance) lives in one immutable
// ServingSnapshot published through a shared_ptr. Readers grab a
// shared_ptr copy per request and query without any further
// synchronization — the read path is const end-to-end (see hopdb.h).
// RELOAD builds a fresh snapshot off to the side and swaps the pointer;
// in-flight requests finish on the snapshot they started with, and the
// old index is freed when the last such request drops its reference.
// Zero downtime, no reader-side locks held across a query.

#ifndef HOPDB_SERVER_INDEX_SNAPSHOT_H_
#define HOPDB_SERVER_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "hopdb.h"
#include "query/knn.h"
#include "server/result_cache.h"

namespace hopdb {

class ServingSnapshot {
 public:
  /// `source_path` is the file RELOAD-without-argument re-reads; may be
  /// empty for in-memory indexes (RELOAD then requires an explicit path).
  /// `cache_capacity` sizes this snapshot's result cache (0 disables).
  ServingSnapshot(HopDbIndex index, std::string source_path,
                  size_t cache_capacity)
      : index_(std::move(index)),
        source_path_(std::move(source_path)),
        cache_(cache_capacity) {}

  const HopDbIndex& index() const { return index_; }
  const std::string& source_path() const { return source_path_; }

  /// The snapshot's own (s, t) -> distance cache. Owning the cache here
  /// (rather than in the server) makes hot-swap trivially coherent: a
  /// new snapshot starts with an empty cache, and workers still running
  /// on the old snapshot can only touch the old cache, which dies with
  /// it — no clear/fill race, no stale answers after RELOAD.
  ResultCache& cache() const { return cache_; }

  /// Forward-direction KNN engine over this snapshot's labels, built on
  /// first use (RELOAD stays cheap for DIST-only workloads) and shared by
  /// all subsequent KNN requests. Thread-safe via call_once; the engine
  /// itself is read-only after construction.
  const KnnEngine& knn_engine() const {
    std::call_once(knn_once_, [this] {
      knn_ = std::make_unique<KnnEngine>(index_.label_index(),
                                         KnnEngine::Direction::kForward);
    });
    return *knn_;
  }

 private:
  HopDbIndex index_;
  std::string source_path_;
  mutable ResultCache cache_;
  mutable std::once_flag knn_once_;
  mutable std::unique_ptr<KnnEngine> knn_;
};

/// The swappable pointer. A plain mutex guards the shared_ptr itself
/// (not the data): Get() copies the pointer under the lock — a handful
/// of nanoseconds — and never holds the lock while querying.
class IndexHandle {
 public:
  IndexHandle() = default;
  explicit IndexHandle(std::shared_ptr<const ServingSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const ServingSnapshot> Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  void Set(std::shared_ptr<const ServingSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> snapshot_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_INDEX_SNAPSHOT_H_
