// Immutable serving snapshot + atomically swappable handle.
//
// The hot-swap design is RCU-style: the whole queryable state (index,
// lazily built KNN engine, provenance) lives in one immutable
// ServingSnapshot published through a shared_ptr. Readers grab a
// shared_ptr copy per request and query without any further
// synchronization — the read path is const end-to-end (see hopdb.h).
// RELOAD builds a fresh snapshot off to the side and swaps the pointer;
// in-flight requests finish on the snapshot they started with, and the
// old index is freed when the last such request drops its reference.
// Zero downtime, no reader-side locks held across a query.
//
// A snapshot is backed by exactly one of two index forms:
//   - heap: a HopDbIndex (HLI1/HLC1 deserialized into label vectors +
//     flat mirror) — RELOAD re-reads and re-deserializes the file;
//   - mmap: a MappedIndex over an HLI2 file — the label arenas live in
//     the page cache, resident bytes grow with the touched working set,
//     and RELOAD is an O(1) remap.
// Everything above the snapshot (server, registry, caches) is agnostic:
// the snapshot exposes query entry points that dispatch internally, so
// DIST/BATCH/KNN behave identically over either backing.

#ifndef HOPDB_SERVER_INDEX_SNAPSHOT_H_
#define HOPDB_SERVER_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hopdb.h"
#include "labeling/hot_hub.h"
#include "labeling/mapped_index.h"
#include "query/knn.h"
#include "server/result_cache.h"

namespace hopdb {

class ServingSnapshot {
 public:
  /// Heap-backed snapshot. `source_path` is the file RELOAD-without-
  /// argument re-reads; may be empty for in-memory indexes (RELOAD then
  /// requires an explicit path). `cache_capacity` sizes this snapshot's
  /// result cache (0 disables). `hot_hub_k` sizes the snapshot's dense
  /// top-k pivot table (labeling/hot_hub.h; 0 disables) — built here,
  /// at publish time, so readers never see a partially built cache.
  /// `path_graph` (ORIGINAL ids, the graph the index was built from)
  /// enables PATH queries; the path engine is built lazily on first use.
  ServingSnapshot(HopDbIndex index, std::string source_path,
                  size_t cache_capacity, uint32_t hot_hub_k = 0,
                  std::shared_ptr<const CsrGraph> path_graph = nullptr)
      : index_(std::move(index)),
        path_graph_(std::move(path_graph)),
        source_path_(std::move(source_path)),
        cache_(cache_capacity) {
    InitHotHub(hot_hub_k);
  }

  /// Mmap-backed snapshot over an opened HLI2 index. Same contract;
  /// RELOAD on this snapshot is an O(1) remap of source_path (plus the
  /// one-pass hot-hub build when enabled).
  ServingSnapshot(MappedIndex index, std::string source_path,
                  size_t cache_capacity, uint32_t hot_hub_k = 0)
      : mapped_(std::make_unique<MappedIndex>(std::move(index))),
        source_path_(std::move(source_path)),
        cache_(cache_capacity) {
    InitHotHub(hot_hub_k);
  }

  /// True for mmap-backed snapshots.
  bool mapped() const { return mapped_ != nullptr; }

  /// STATS-facing storage mode: "mmap" or "heap".
  const char* map_mode() const { return mapped() ? "mmap" : "heap"; }

  VertexId num_vertices() const {
    return mapped() ? mapped_->num_vertices() : index_.num_vertices();
  }
  bool directed() const {
    return mapped() ? mapped_->directed() : index_.directed();
  }

  /// Bytes of index data this snapshot holds in RAM. Heap snapshots
  /// report their full in-memory footprint (label vectors + flat
  /// mirror); mmap snapshots report the currently resident page-cache
  /// bytes (an mincore walk — near 0 cold, up to MappedBytes() warm).
  uint64_t ResidentBytes() const;

  /// Exact distance between ORIGINAL vertex ids — the single-pair query
  /// entry point every DIST funnels through. Hub-first when the hot-hub
  /// cache is enabled (dense top-k fold, then only the non-hub label
  /// suffixes through the merge-join); the plain kernel path otherwise.
  /// Bit-identical either way. Const and lock-free for concurrent
  /// callers on either backing.
  Distance Query(VertexId s, VertexId t) const;

  /// The snapshot's hot-hub cache (disabled when hot_hub_k was 0 or the
  /// backing has no flat label view). STATS reads k/SizeBytes off it.
  const HotHubCache& hot_hub() const { return hub_; }

  /// One-to-many distances from s to every target (ORIGINAL ids, all of
  /// which must be < num_vertices()), answered by one pivot-bucket join
  /// (query/batch.h) over this snapshot's labels. Backs BATCH requests
  /// and same-source DIST micro-batches.
  std::vector<Distance> QueryOneToMany(VertexId s,
                                       const std::vector<VertexId>& targets)
      const;

  /// The k nearest reachable vertices from s (ORIGINAL ids) via this
  /// snapshot's lazily built KNN engine.
  std::vector<std::pair<VertexId, Distance>> QueryKnn(VertexId s,
                                                      uint32_t k) const;

  /// Every vertex within distance `radius` of s (ORIGINAL ids, s itself
  /// excluded), in non-decreasing (distance, vertex) order, via the same
  /// lazily built engine. Exact: the cover property certifies every
  /// in-radius vertex at its true distance (query/knn.h).
  std::vector<std::pair<VertexId, Distance>> QueryWithin(
      VertexId s, Distance radius) const;

  /// True iff dist(s, t) <= bound in the index's metric (hops on
  /// unweighted graphs, weight sums otherwise). One label intersection.
  bool QueryReach(VertexId s, VertexId t, Distance bound) const {
    const Distance d = Query(s, t);
    return d != kInfDistance && d <= bound;
  }

  /// True when this snapshot can answer PATH: heap-backed with the
  /// build graph registered (serve --graph, or a COMMIT-republished
  /// update session).
  bool HasPathGraph() const { return !mapped() && path_graph_ != nullptr; }

  /// One shortest-path vertex sequence s -> t (ORIGINAL ids, both
  /// endpoints inclusive; {s} when s == t). NotFound when unreachable;
  /// FailedPrecondition when HasPathGraph() is false. The path engine
  /// (a rank-relabeled copy of the graph + greedy label descent) is
  /// built on first use and shared by subsequent PATH requests.
  Result<std::vector<VertexId>> QueryPath(VertexId s, VertexId t) const;

  /// The heap index. Only valid for !mapped() snapshots (checked);
  /// in-process embedders that need the full HopDbIndex API should gate
  /// on mapped() first.
  const HopDbIndex& index() const;

  const std::string& source_path() const { return source_path_; }

  /// The snapshot's own (s, t) -> distance cache. Owning the cache here
  /// (rather than in the server) makes hot-swap trivially coherent: a
  /// new snapshot starts with an empty cache, and workers still running
  /// on the old snapshot can only touch the old cache, which dies with
  /// it — no clear/fill race, no stale answers after RELOAD.
  ResultCache& cache() const { return cache_; }

 private:
  /// Forward-direction KNN engine over this snapshot's labels, built on
  /// first use (RELOAD stays cheap for DIST-only workloads) and shared
  /// by all subsequent KNN requests. Thread-safe via call_once; the
  /// engine itself is read-only after construction.
  const KnnEngine& knn_engine() const;

  /// Builds hub_ from the backing's label view when k > 0 and the
  /// backing exposes one (mmap always; heap when its flat mirror is
  /// built). Called from the constructors only — hub_ is immutable
  /// afterwards, like everything else in a snapshot.
  void InitHotHub(uint32_t k);

  HopDbIndex index_;                      // heap backing (when !mapped_)
  std::unique_ptr<MappedIndex> mapped_;   // mmap backing (when set)
  HotHubCache hub_;
  /// ORIGINAL-id build graph backing PATH queries (heap snapshots only).
  std::shared_ptr<const CsrGraph> path_graph_;
  std::string source_path_;
  mutable ResultCache cache_;
  mutable std::once_flag knn_once_;
  mutable std::unique_ptr<KnnEngine> knn_;
  mutable std::once_flag path_once_;
  mutable std::unique_ptr<HopDbPathQuerier> path_;
  mutable Status path_status_;
};

/// The swappable pointer. A plain mutex guards the shared_ptr itself
/// (not the data): Get() copies the pointer under the lock — a handful
/// of nanoseconds — and never holds the lock while querying.
class IndexHandle {
 public:
  IndexHandle() = default;
  explicit IndexHandle(std::shared_ptr<const ServingSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const ServingSnapshot> Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  void Set(std::shared_ptr<const ServingSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> snapshot_;
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_INDEX_SNAPSHOT_H_
