#include "server/index_registry.h"

#include <fstream>
#include <string_view>
#include <utility>

#include "graph/graph_io.h"
#include "labeling/mapped_index.h"

namespace hopdb {

Status ValidateIndexName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return Status::InvalidArgument(
        "index name must be 1-64 characters, got '" + name + "'");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "index name may only contain [A-Za-z0-9_.-], got '" + name + "'");
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const ServingSnapshot>> LoadServingSnapshot(
    const std::string& path, size_t cache_capacity, uint32_t hot_hub_k,
    const std::string& graph_path) {
  // Sniff the magic; the mapped path must not pay a whole-file read.
  char magic[4] = {0, 0, 0, 0};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in || !in.read(magic, 4)) {
      return Status::IOError("cannot read index file: " + path);
    }
  }
  if (std::string_view(magic, 4) == "HLI2") {
    HOPDB_ASSIGN_OR_RETURN(MappedIndex mapped, MappedIndex::Open(path));
    return std::make_shared<const ServingSnapshot>(std::move(mapped), path,
                                                   cache_capacity, hot_hub_k);
  }
  HOPDB_ASSIGN_OR_RETURN(HopDbIndex index, HopDbIndex::Load(path));
  std::shared_ptr<const CsrGraph> path_graph;
  if (!graph_path.empty()) {
    // A bad graph file must fail the load loudly, not surface later as
    // a confusing per-request PATH error.
    HOPDB_ASSIGN_OR_RETURN(
        EdgeList edges,
        LoadGraphFile(graph_path, index.directed(), /*read_weights=*/true));
    edges.Normalize();
    HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, CsrGraph::FromEdgeList(edges));
    path_graph = std::make_shared<const CsrGraph>(std::move(graph));
  }
  return std::make_shared<const ServingSnapshot>(std::move(index), path,
                                                 cache_capacity, hot_hub_k,
                                                 std::move(path_graph));
}

Status IndexRegistry::Attach(const std::string& name,
                             std::shared_ptr<const ServingSnapshot> snapshot) {
  HOPDB_RETURN_NOT_OK(ValidateIndexName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = handles_.try_emplace(name);
  if (!inserted) {
    return Status::InvalidArgument("index '" + name +
                                   "' is already attached (DETACH it or "
                                   "RELOAD it instead)");
  }
  it->second = std::make_shared<IndexHandle>(std::move(snapshot));
  return Status::OK();
}

Status IndexRegistry::Detach(const std::string& name) {
  if (name == kDefaultIndexName) {
    return Status::InvalidArgument(
        "the default index cannot be detached (RELOAD it to replace it)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = handles_.find(name);
  if (it == handles_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  // Erasing the handle only drops this registry's reference; workers
  // holding the snapshot (or the handle) keep serving until they finish.
  handles_.erase(it);
  return Status::OK();
}

Status IndexRegistry::Publish(const std::string& name,
                              std::shared_ptr<const ServingSnapshot> snapshot) {
  std::shared_ptr<IndexHandle> handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handles_.find(name);
    if (it == handles_.end()) {
      return Status::NotFound("no index named '" + name + "'");
    }
    handle = it->second;
  }
  handle->Set(std::move(snapshot));
  return Status::OK();
}

std::shared_ptr<const ServingSnapshot> IndexRegistry::Find(
    const std::string& name) const {
  const std::string& key = name.empty() ? kDefaultIndexName : name;
  std::shared_ptr<IndexHandle> handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handles_.find(key);
    if (it == handles_.end()) return nullptr;
    handle = it->second;
  }
  return handle->Get();
}

std::vector<std::string> IndexRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(handles_.size());
  for (const auto& [name, handle] : handles_) names.push_back(name);
  return names;  // std::map iterates in sorted order already
}

size_t IndexRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.size();
}

}  // namespace hopdb
