// Wire protocols of the hopdb distance server. Two framings share one
// request/response model; a connection picks its framing with its very
// first bytes (see kV2Magic) and keeps it for life.
//
// v1 — newline-delimited ASCII, one single-line response per request:
//   DIST <s> <t>             exact distance from s to t
//   BATCH <s> <t1> ... <tk>  distances from s to every listed target
//   KNN <s> <k>              the k nearest vertices reachable from s
//   WITHIN <s> <r>           every vertex within distance r of s
//   REACH <s> <t> <k>        1 iff dist(s, t) <= k, else 0
//   PATH <s> <t>             one shortest-path vertex sequence s -> t
//   STATS                    server counters (key=value pairs)
//   METRICS                  Prometheus text exposition (blob response)
//   TRACE LAST <n>           span breakdowns of recent sampled requests
//   RELOAD [<path>]          hot-swap the index (default: reload source)
//   ATTACH <name> <path>     load <path> and serve it as index <name>
//   DETACH <name>            stop serving index <name>
//   ADDEDGE <u> <v> [<w>]    queue an edge insert/reweight (original ids)
//   DELEDGE <u> <v>          queue an edge delete
//   COMMIT                   repair labels for queued edits, publish a
//                            new serving snapshot atomically
//   USE <name> <request>     route DIST/BATCH/KNN/WITHIN/REACH/PATH/
//                            RELOAD/ADDEDGE/DELEDGE/COMMIT to <name>
//   PING                     liveness probe
// Responses:
//   OK <payload>             success; payload shape depends on the verb
//   OK BLOB <n>              header of a multi-line response: exactly n
//                            bytes of raw text follow, then one blank
//                            line (METRICS / TRACE answers)
//   ERR BUSY <detail>        shed by admission control; retry later
//   ERR <message>            parse or execution failure
// Distances are rendered in decimal; unreachable pairs render as "INF".
// KNN neighbors render as "<vertex>:<distance>" pairs.
//
// v2 — compact little-endian binary frames (docs/PROTOCOL.md has the
// byte-exact grammar): a 16-byte fixed request header that fully
// contains a DIST (the hot path decodes with two loads, no tokenizing),
// plus an optional index-name / payload tail for the other verbs; a
// 12-byte response header that fully contains a DIST answer. The
// response model (WireResponse below) is shared, so both framings are
// encoded from the same execution result and answers are identical.
//
// Both framings answer strictly in request order per connection, so
// pipelining is safe under either.

#ifndef HOPDB_SERVER_PROTOCOL_H_
#define HOPDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

enum class RequestKind : uint8_t {
  kDist,
  kBatch,
  kKnn,
  kStats,
  kReload,
  kAttach,
  kDetach,
  kPing,
  kMetrics,
  kTrace,
  kAddEdge,
  kDelEdge,
  kCommit,
  kWithin,
  kReach,
  kPath,
};

/// Number of RequestKind enumerators (per-verb metrics arrays size).
inline constexpr size_t kNumRequestKinds = 16;

/// Lowercase verb name for metrics labels ("dist", "batch", ...).
const char* RequestKindName(RequestKind kind);

/// One parsed client request.
struct Request {
  RequestKind kind = RequestKind::kPing;
  VertexId src = 0;
  /// BATCH target list (at least one entry); REACH/PATH destination.
  std::vector<VertexId> targets;
  /// KNN neighbor count; TRACE LAST count; ADDEDGE edge weight;
  /// WITHIN radius; REACH distance bound.
  uint32_t k = 0;
  /// RELOAD/ATTACH file path; for RELOAD, empty means "reload the path
  /// the index was loaded from".
  std::string path;
  /// Target index name: the ATTACH/DETACH operand, or the USE prefix of
  /// a routed DIST/BATCH/KNN/RELOAD. Empty means the default index.
  std::string index_name;
};

/// Parses one request line (without the trailing newline). Returns
/// InvalidArgument with a client-safe message on malformed input.
Result<Request> ParseRequest(const std::string& line);

/// Renders a Request back into one v1 protocol line (the inverse of
/// ParseRequest; used by clients and the load generator).
std::string FormatRequestV1(const Request& request);

/// "INF" or the decimal distance.
std::string FormatDistance(Distance d);

/// "OK <payload>" / "OK" when the payload is empty.
std::string OkResponse(const std::string& payload);

/// "ERR <message>" with the message flattened to one line.
std::string ErrResponse(const std::string& message);

/// "ERR BUSY <detail>" — the admission-control shed response. Distinct
/// from other errors so clients can retry instead of alerting; clients
/// match on the "ERR BUSY" prefix (v1) or WireStatus::kBusy (v2).
std::string BusyResponse(const std::string& detail);

/// "OK d1 d2 ... dk" for a BATCH answer.
std::string FormatBatchResponse(const std::vector<Distance>& dists);

/// "OK v1:d1 v2:d2 ..." for a KNN answer (possibly "OK" when empty).
std::string FormatKnnResponse(
    const std::vector<std::pair<VertexId, Distance>>& neighbors);

// ---------------------------------------------------------------------------
// Framing-independent response model. Workers produce a WireResponse;
// the connection encodes it for whichever framing that socket
// negotiated, so v1 and v2 can never drift apart in content.
// ---------------------------------------------------------------------------

enum class WireStatus : uint8_t {
  kOk = 0,
  kErr = 1,
  /// Shed by admission control (work queue full); safe to retry.
  kBusy = 2,
};

/// Shape of the response payload (drives both encoders).
enum class WirePayload : uint8_t {
  kText = 0,       // OK payload text / ERR message
  kDistance = 1,   // one DIST answer
  kDistances = 2,  // BATCH answer vector
  kNeighbors = 3,  // KNN (vertex, distance) pairs
  kBlob = 4,       // multi-line raw text (METRICS / TRACE answers)
};

struct WireResponse {
  WireStatus status = WireStatus::kOk;
  WirePayload payload = WirePayload::kText;
  std::string text;
  Distance distance = 0;
  std::vector<Distance> distances;
  std::vector<std::pair<VertexId, Distance>> neighbors;
};

WireResponse WireOk(std::string payload);
WireResponse WireErr(std::string message);
/// Multi-line raw-text response ("OK BLOB <n>" framing in v1).
WireResponse WireBlobResponse(std::string text);
WireResponse WireBusy();
WireResponse WireDistanceResponse(Distance d);
WireResponse WireDistancesResponse(std::vector<Distance> dists);
WireResponse WireNeighborsResponse(
    std::vector<std::pair<VertexId, Distance>> neighbors);

/// v1 rendering; byte-identical to the OkResponse/ErrResponse/
/// FormatBatchResponse/FormatKnnResponse formatters above (without the
/// trailing newline).
std::string EncodeResponseV1(const WireResponse& response);

// ---------------------------------------------------------------------------
// Binary protocol v2 framing.
//
// Negotiation: a v2 client's first four bytes are kV2Magic. 0x02 (STX)
// can never begin a v1 line, so the server decides the framing from the
// first byte without waiting. The server sends no banner; frames flow
// immediately after the magic.
//
// Request frame: 16-byte header, then name_len bytes of index name
// (USE-style routing; the ATTACH/DETACH operand), then aux_len payload
// bytes (BATCH target ids / RELOAD-ATTACH path / ADDEDGE weight).
//   u8  opcode      V2Opcode below
//   u8  reserved    must be 0
//   u16 name_len
//   u32 aux_len
//   u32 src         DIST/BATCH/KNN/WITHIN/REACH/PATH source vertex;
//                   ADDEDGE/DELEDGE u
//   u32 arg         DIST/PATH: dst; BATCH: target count; KNN: k;
//                   WITHIN: radius; REACH: dst; ADDEDGE/DELEDGE: v
//
// Response frame: 12-byte header, then aux_len payload bytes.
//   u8  status      WireStatus
//   u8  payload     WirePayload
//   u16 reserved    0
//   u32 value       kDistance: the distance; kDistances/kNeighbors:
//                   element count; kText: 0
//   u32 aux_len     bytes that follow (text / u32 distances /
//                   (u32 vertex, u32 distance) pairs)
// ---------------------------------------------------------------------------

/// First bytes of a v2 connection (client -> server, once).
inline constexpr char kV2Magic[4] = {'\x02', 'H', 'B', '2'};

/// v2 request opcodes (values are wire bytes; keep PROTOCOL.md's opcode
/// table in sync — tools/check_docs.py cross-checks).
enum class V2Opcode : uint8_t {
  kDist = 1,
  kBatch = 2,
  kKnn = 3,
  kPing = 4,
  kStats = 5,
  kReload = 6,
  kAttach = 7,
  kDetach = 8,
  kMetrics = 9,
  kTrace = 10,
  kAddEdge = 11,
  kDelEdge = 12,
  kCommit = 13,
  kWithin = 14,
  kReach = 15,
  kPath = 16,
};

inline constexpr size_t kV2RequestHeaderBytes = 16;
inline constexpr size_t kV2ResponseHeaderBytes = 12;
/// Upper bound on name_len + aux_len of a single frame (mirrors the v1
/// 1 MiB line cap; hostile frames above it are rejected, not buffered).
inline constexpr size_t kV2MaxFrameBytes = 1 << 20;

/// v1 line-length cap: a connection streaming a longer "line" is
/// answered with an error and closed instead of buffering unboundedly.
inline constexpr size_t kMaxLineBytes = 1 << 20;

/// Incremental frame-parser verdict over a byte buffer.
enum class FrameParse : uint8_t {
  kNeedMore,  // incomplete frame; read more bytes
  kDone,      // one frame consumed, output filled
  kError,     // malformed frame; connection must close after the error
};

/// Appends one encoded v2 request frame to `out`.
void EncodeRequestV2(const Request& request, std::string* out);

/// Appends one encoded v2 response frame to `out`.
void EncodeResponseV2(const WireResponse& response, std::string* out);

/// Parses one request frame from data[0, size). On kDone sets
/// *consumed and *out; on kError sets *error (client-safe message).
FrameParse ParseRequestFrameV2(const char* data, size_t size,
                               size_t* consumed, Request* out,
                               std::string* error);

/// Parses one response frame (the client side of the above).
FrameParse ParseResponseFrameV2(const char* data, size_t size,
                                size_t* consumed, WireResponse* out,
                                std::string* error);

}  // namespace hopdb

#endif  // HOPDB_SERVER_PROTOCOL_H_
