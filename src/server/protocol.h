// Wire protocol of the hopdb distance server: newline-delimited ASCII
// requests, one single-line response per request.
//
// Requests (tokens separated by spaces/tabs, case-sensitive verbs):
//   DIST <s> <t>             exact distance from s to t
//   BATCH <s> <t1> ... <tk>  distances from s to every listed target
//   KNN <s> <k>              the k nearest vertices reachable from s
//   STATS                    server counters (key=value pairs)
//   RELOAD [<path>]          hot-swap the index (default: reload source)
//   ATTACH <name> <path>     load <path> and serve it as index <name>
//   DETACH <name>            stop serving index <name>
//   USE <name> <request>     route DIST/BATCH/KNN/RELOAD to index <name>
//   PING                     liveness probe
//
// Responses:
//   OK <payload>             success; payload shape depends on the verb
//   ERR <message>            parse or execution failure
//
// Distances are rendered in decimal; unreachable pairs render as "INF".
// KNN neighbors render as "<vertex>:<distance>" pairs. The single-line
// framing keeps client code trivial (one readline per request) and makes
// pipelining safe: responses come back in request order.

#ifndef HOPDB_SERVER_PROTOCOL_H_
#define HOPDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

enum class RequestKind : uint8_t {
  kDist,
  kBatch,
  kKnn,
  kStats,
  kReload,
  kAttach,
  kDetach,
  kPing,
};

/// One parsed client request.
struct Request {
  RequestKind kind = RequestKind::kPing;
  VertexId src = 0;
  /// BATCH target list (at least one entry).
  std::vector<VertexId> targets;
  /// KNN neighbor count.
  uint32_t k = 0;
  /// RELOAD/ATTACH file path; for RELOAD, empty means "reload the path
  /// the index was loaded from".
  std::string path;
  /// Target index name: the ATTACH/DETACH operand, or the USE prefix of
  /// a routed DIST/BATCH/KNN/RELOAD. Empty means the default index.
  std::string index_name;
};

/// Parses one request line (without the trailing newline). Returns
/// InvalidArgument with a client-safe message on malformed input.
Result<Request> ParseRequest(const std::string& line);

/// "INF" or the decimal distance.
std::string FormatDistance(Distance d);

/// "OK <payload>" / "OK" when the payload is empty.
std::string OkResponse(const std::string& payload);

/// "ERR <message>" with the message flattened to one line.
std::string ErrResponse(const std::string& message);

/// "OK d1 d2 ... dk" for a BATCH answer.
std::string FormatBatchResponse(const std::vector<Distance>& dists);

/// "OK v1:d1 v2:d2 ..." for a KNN answer (possibly "OK" when empty).
std::string FormatKnnResponse(
    const std::vector<std::pair<VertexId, Distance>>& neighbors);

}  // namespace hopdb

#endif  // HOPDB_SERVER_PROTOCOL_H_
