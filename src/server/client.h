// Minimal blocking client for the distance server protocol. One TCP
// connection, synchronous request/response (the single-line framing
// means exactly one readline per request). Used by `hopdb_cli client`,
// the serve tests, and the load-generator bench.

#ifndef HOPDB_SERVER_CLIENT_H_
#define HOPDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "graph/types.h"
#include "util/status.h"

namespace hopdb {

class DistanceClient {
 public:
  DistanceClient() = default;
  ~DistanceClient() { Close(); }

  DistanceClient(DistanceClient&& other) noexcept { *this = std::move(other); }
  DistanceClient& operator=(DistanceClient&& other) noexcept;
  DistanceClient(const DistanceClient&) = delete;
  DistanceClient& operator=(const DistanceClient&) = delete;

  /// Connects to a numeric IPv4 host.
  static Result<DistanceClient> Connect(const std::string& host,
                                        uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `line` (newline appended) and returns the one response line.
  Result<std::string> RoundTrip(const std::string& line);

  /// DIST convenience: parses "OK <d>" into a Distance.
  Result<Distance> QueryDistance(VertexId s, VertexId t);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last response line
};

/// Parses a server distance token ("INF" or decimal) — shared with tests
/// and the bench.
Result<Distance> ParseDistanceToken(const std::string& token);

}  // namespace hopdb

#endif  // HOPDB_SERVER_CLIENT_H_
