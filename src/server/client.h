// Minimal blocking client for the distance server protocols. One TCP
// connection, synchronous request/response. Speaks either framing: v1
// (ASCII lines; RoundTrip) or v2 (binary frames; Call) — the protocol
// is picked at Connect time, because a v2 connection opens with the
// magic bytes and keeps the framing for life. Used by `hopdb_cli
// client`, the serve tests, and the load-generator bench.

#ifndef HOPDB_SERVER_CLIENT_H_
#define HOPDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "graph/types.h"
#include "server/protocol.h"
#include "util/status.h"

namespace hopdb {

class DistanceClient {
 public:
  enum class Protocol : uint8_t { kV1, kV2 };

  DistanceClient() = default;
  ~DistanceClient() { Close(); }

  DistanceClient(DistanceClient&& other) noexcept { *this = std::move(other); }
  DistanceClient& operator=(DistanceClient&& other) noexcept;
  DistanceClient(const DistanceClient&) = delete;
  DistanceClient& operator=(const DistanceClient&) = delete;

  /// Connects to a numeric IPv4 host. A kV2 connection sends the
  /// version-negotiation magic immediately.
  static Result<DistanceClient> Connect(const std::string& host, uint16_t port,
                                        Protocol protocol = Protocol::kV1);

  bool connected() const { return fd_ >= 0; }
  Protocol protocol() const { return protocol_; }
  void Close();

  /// v1 only: sends `line` (newline appended), returns the response
  /// line. For blob responses ("OK BLOB <n>" — METRICS, TRACE) the
  /// returned string is the n-byte body itself, not the header line.
  Result<std::string> RoundTrip(const std::string& line);

  /// v2 only: sends one binary frame, returns the decoded response.
  /// A WireStatus::kErr/kBusy answer is a successful Call — the Result
  /// is an error only for transport or framing failures.
  Result<WireResponse> Call(const Request& request);

  /// DIST convenience on either protocol.
  Result<Distance> QueryDistance(VertexId s, VertexId t);

 private:
  Status SendAll(const std::string& data);
  /// Blocks for at least one more byte from the socket into buffer_.
  Status FillBuffer();

  int fd_ = -1;
  Protocol protocol_ = Protocol::kV1;
  std::string buffer_;  // bytes received past the last response
};

/// Parses a server distance token ("INF" or decimal) — shared with tests
/// and the bench.
Result<Distance> ParseDistanceToken(const std::string& token);

}  // namespace hopdb

#endif  // HOPDB_SERVER_CLIENT_H_
