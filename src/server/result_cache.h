// Sharded LRU cache for (source, target) -> distance results.
//
// Scale-free query workloads are heavily skewed toward a small set of hot
// vertex pairs (the same celebrities/hubs get asked about over and over),
// so even a modest cache absorbs a large share of traffic. Sharding by a
// hash of the pair key splits the lock so concurrent workers rarely
// contend: each shard is an independent mutex + hash map + intrusive LRU
// list. Capacity is enforced per shard as floor(capacity/num_shards), so
// resident entries never exceed the requested capacity (up to
// num_shards-1 slots may go unused) and eviction stays O(1).
//
// The cache stores values only for the index snapshot it was filled
// from: each ServingSnapshot owns its own instance, so a RELOAD
// hot-swap starts from an empty cache and stale entries die with the
// old snapshot (see index_snapshot.h). Clear() exists for callers
// managing a standalone cache.

#ifndef HOPDB_SERVER_RESULT_CACHE_H_
#define HOPDB_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace hopdb {

class ResultCache {
 public:
  /// `capacity` = max cached pairs across all shards; 0 disables the
  /// cache (Lookup always misses, Insert is a no-op). `num_shards` is
  /// rounded up to a power of two.
  explicit ResultCache(size_t capacity, size_t num_shards = 16);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  static uint64_t Key(VertexId s, VertexId t) {
    return (static_cast<uint64_t>(s) << 32) | t;
  }

  /// True (and fills *dist, refreshes recency) on a hit.
  bool Lookup(VertexId s, VertexId t, Distance* dist);

  /// Inserts or refreshes; evicts the shard's least-recently-used entry
  /// when the shard is full.
  void Insert(VertexId s, VertexId t, Distance dist);

  /// Drops every entry (hot-swap invalidation). Counters survive.
  void Clear();

  /// Visits every live entry as fn(s, t, dist), shard by shard under
  /// each shard's lock, least-recently-used first within a shard — so
  /// replaying the visit order through Insert on another cache
  /// reproduces the recency order. COMMIT's selective invalidation uses
  /// this to carry unaffected entries into the next snapshot's cache.
  /// `fn` must not call back into this cache (the shard lock is held).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
        fn(static_cast<VertexId>(it->key >> 32),
           static_cast<VertexId>(it->key & 0xffffffffull), it->dist);
      }
    }
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  Stats GetStats() const;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    uint64_t key;
    Distance dist;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Most-recently-used at front.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(uint64_t key) {
    // Multiplicative hash so nearby vertex ids spread across shards.
    const uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return shards_[(h >> 32) & shard_mask_];
  }

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  uint64_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace hopdb

#endif  // HOPDB_SERVER_RESULT_CACHE_H_
