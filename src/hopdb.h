// hopdb public facade.
//
// HopDbIndex wraps the whole pipeline behind one class that speaks the
// caller's original vertex ids:
//
//   hopdb::EdgeList edges = ...;                 // load or generate
//   auto index = hopdb::HopDbIndex::Build(edges).ValueOrDie();
//   hopdb::Distance d = index.Query(src, dst);   // exact distance
//   index.Save("graph.hopdb").CheckOK();
//
// Build() ranks the vertices (degree order for undirected graphs,
// in-degree x out-degree for directed ones, Section 3.1), relabels the
// graph by rank, runs the Hybrid Hop-Stepping/Hop-Doubling construction
// with pruning (Sections 3 and 5), and keeps the rank permutation so
// queries translate ids transparently.

#ifndef HOPDB_HOPDB_H_
#define HOPDB_HOPDB_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct HopDbOptions {
  /// Label construction strategy; the default Hybrid matches the paper.
  BuildOptions build;
  /// Vertex ordering; kDegree and kInOutProduct are chosen automatically
  /// from the graph's directedness when left as kAuto.
  enum class Ranking { kAuto, kDegree, kInOutProduct, kCustom } ranking =
      Ranking::kAuto;
  /// Rank order when ranking == kCustom: custom_order[i] is the original
  /// id of the i-th ranked vertex (Section 7's general-graph pathway).
  std::vector<VertexId> custom_order;
};

class HopDbIndex {
 public:
  HopDbIndex() = default;

  /// Builds an index from an edge list (normalized internally).
  /// Blocking and CPU-bound — runtime is the paper's O(n h d_max log n)
  /// construction (seconds to minutes depending on |E| and
  /// options.build.num_threads); fails with DeadlineExceeded /
  /// ResourceExhausted when the configured budgets are hit.
  static Result<HopDbIndex> Build(const EdgeList& edges,
                                  const HopDbOptions& options = {});

  /// Builds from an already-frozen graph. Same contract as the EdgeList
  /// overload; the graph is not retained after Build returns.
  static Result<HopDbIndex> Build(const CsrGraph& graph,
                                  const HopDbOptions& options = {});

  /// Exact distance between original vertex ids; kInfDistance if
  /// unreachable. O(|Lout(s)| + |Lin(t)|) — microseconds on scale-free
  /// labels — via the active SIMD query kernel over the flat label
  /// store (labeling/query_kernel.h). Distances are hop counts on
  /// unweighted graphs and weight sums otherwise (same units as the
  /// input edge weights).
  ///
  /// Thread safety: safe for any number of concurrent callers on one
  /// index. The whole read path is const end-to-end and touches no
  /// mutable or static state — RankMapping::ToInternal (vector read),
  /// TwoHopIndex::Query / CompressedIndex::Query (label intersection
  /// over immutable arrays). The serving layer (src/server/) relies on
  /// this: worker threads query a shared snapshot with no locking.
  /// The guarantee holds only while nothing mutates the index — callers
  /// using mutable_label_index() or Load-time construction must publish
  /// the index to readers with an appropriate happens-before edge (e.g.
  /// shared_ptr swap, thread creation), as DistanceServer does.
  Distance Query(VertexId src, VertexId dst) const;

  /// Reachability (directed graphs: src ⇝ dst following arc directions).
  /// 2-hop distance labels double as a reachability index: finite
  /// distance ⇔ a path exists. Same cost and thread-safety as Query.
  bool Reachable(VertexId src, VertexId dst) const {
    return Query(src, dst) != kInfDistance;
  }

  VertexId num_vertices() const { return index_.num_vertices(); }
  bool directed() const { return index_.directed(); }

  /// The underlying 2-hop index (internal/ranked ids). Const access is
  /// safe for concurrent readers; mutable_label_index() is exclusive —
  /// see the Query thread-safety note above.
  const TwoHopIndex& label_index() const { return index_; }
  TwoHopIndex& mutable_label_index() { return index_; }

  /// The rank permutation used for this index. Immutable after Build;
  /// O(1) id translations.
  const RankMapping& ranking() const { return mapping_; }

  /// Construction statistics of the build that produced this index.
  /// Empty (zeroed) for indexes that came from Load rather than Build.
  const BuildStats& build_stats() const { return stats_; }

  /// Average non-trivial label entries per vertex (Table 7's "Avg
  /// |label|").
  double AvgLabelSize() const { return index_.AvgLabelSize(); }

  /// Serialized size under the paper's accounting (Table 6 "Index size").
  uint64_t PaperSizeBytes() const { return index_.PaperSizeBytes(); }

  /// Persists index + permutation (path and path + ".perm"); Load
  /// restores both. O(total label entries) I/O; const and safe to call
  /// while other threads query.
  Status Save(const std::string& path) const;
  /// Persists in the delta-varint compressed (HLC1) format instead —
  /// typically 2-3x smaller on scale-free labels. Load() detects the
  /// format from the file magic, so callers need not remember which
  /// Save was used.
  Status SaveCompressed(const std::string& path) const;
  /// Reads either format (HLI1/HLC1, detected by magic) plus the .perm
  /// sidecar and rebuilds the flat query mirror, so a loaded index
  /// serves at full speed. The result is independent of other indexes;
  /// publish it to reader threads with a happens-before edge.
  static Result<HopDbIndex> Load(const std::string& path);

 private:
  TwoHopIndex index_;   // labels over internal (rank) ids
  RankMapping mapping_; // internal <-> original ids
  BuildStats stats_;
};

/// Shortest-path extraction against a HopDbIndex in ORIGINAL vertex ids.
/// Create() relabels the input graph by the index's rank permutation once;
/// each query then runs the greedy label-descent reconstruction
/// (query/path.h) and translates the result back.
///
/// The index must outlive the querier. For advanced batch workloads
/// (one-to-many, k-nearest) use query/batch.h and query/knn.h directly on
/// index.label_index(), translating ids via index.ranking().
class HopDbPathQuerier {
 public:
  /// `original_graph` must be the graph the index was built from (vertex
  /// count is validated; contents are trusted).
  static Result<HopDbPathQuerier> Create(const HopDbIndex& index,
                                         const CsrGraph& original_graph);

  /// One shortest path from src to dst as original vertex ids; NotFound
  /// when unreachable. O(path length x label size) greedy descent;
  /// const and safe for concurrent callers.
  Result<std::vector<VertexId>> ShortestPath(VertexId src,
                                             VertexId dst) const;

  /// The vertex after src on a shortest path to dst; kInvalidVertex when
  /// src == dst or dst is unreachable. One descent step — O(deg(src) x
  /// label intersection); const and safe for concurrent callers.
  VertexId FirstHop(VertexId src, VertexId dst) const;

 private:
  HopDbPathQuerier(const HopDbIndex* index, CsrGraph ranked_graph)
      : index_(index), ranked_graph_(std::move(ranked_graph)) {}

  const HopDbIndex* index_;
  CsrGraph ranked_graph_;
};

}  // namespace hopdb

#endif  // HOPDB_HOPDB_H_
