// Logical I/O accounting.
//
// The paper's I/O complexity is stated in blocks of size B transferred
// between a memory of size M and disk (the Aggarwal–Vitter model its
// Section 4 cites). Physical timings on a page-cached SSD do not reflect
// those costs, so every disk touch in hopdb is ALSO counted logically:
// bytes moved and ceil(bytes/B) block transfers. Benches report both the
// measured wall time and these hardware-independent counts.

#ifndef HOPDB_IO_IO_STATS_H_
#define HOPDB_IO_IO_STATS_H_

#include <cstdint>
#include <string>

namespace hopdb {

struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_calls = 0;
  uint64_t write_calls = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;

  void RecordRead(uint64_t bytes, uint64_t block_size);
  void RecordWrite(uint64_t bytes, uint64_t block_size);

  void Add(const IoStats& other);
  void Reset();

  uint64_t TotalBlocks() const { return blocks_read + blocks_written; }

  std::string ToString() const;
};

/// Default block size B. 64 KiB mirrors a sequential-friendly disk block;
/// configurable throughout.
inline constexpr uint64_t kDefaultBlockSize = 64 * 1024;

}  // namespace hopdb

#endif  // HOPDB_IO_IO_STATS_H_
