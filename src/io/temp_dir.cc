#include "io/temp_dir.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>

namespace hopdb {

namespace {
void RemoveRecursively(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveRecursively(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}
}  // namespace

Result<TempDir> TempDir::Create(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + ".XXXXXX";
  std::string buf = tmpl;
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("mkdtemp failed for " + tmpl + ": " +
                           std::strerror(errno));
  }
  return TempDir(buf);
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) RemoveRecursively(path_);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() {
  if (!path_.empty()) RemoveRecursively(path_);
}

}  // namespace hopdb
