// RecordReader/RecordWriter are header-only templates; this translation
// unit exists to give the module a home for future non-template helpers
// and to keep the build graph uniform.

#include "io/record_stream.h"
