// ExternalSorter is a header-only template; see external_sorter.h.

#include "io/external_sorter.h"
