// BlockFile: positional (pread/pwrite) file access with logical I/O
// accounting. The disk-resident index reads label blocks through this, so
// "disk query" benchmarks can report block transfers per query — the
// quantity the paper's HDD timings are proportional to (2 random label
// reads per query).

#ifndef HOPDB_IO_BLOCK_FILE_H_
#define HOPDB_IO_BLOCK_FILE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "io/io_stats.h"
#include "util/status.h"

namespace hopdb {

class BlockFile {
 public:
  BlockFile() = default;
  ~BlockFile();
  BlockFile(BlockFile&& other) noexcept { *this = std::move(other); }
  BlockFile& operator=(BlockFile&& other) noexcept;
  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// Opens for reading; fails if missing.
  static Result<BlockFile> OpenRead(const std::string& path,
                                    uint64_t block_size = kDefaultBlockSize);
  /// Creates/truncates for writing (and reading back).
  static Result<BlockFile> OpenWrite(const std::string& path,
                                     uint64_t block_size = kDefaultBlockSize);

  Status ReadAt(uint64_t offset, void* buf, size_t n);
  Status WriteAt(uint64_t offset, const void* buf, size_t n);
  Status Append(const void* buf, size_t n);

  uint64_t size() const { return size_; }
  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }
  uint64_t block_size() const { return block_size_; }
  const std::string& path() const { return path_; }

  Status Sync();
  void Close();

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  uint64_t block_size_ = kDefaultBlockSize;
  std::string path_;
  IoStats stats_;
};

}  // namespace hopdb

#endif  // HOPDB_IO_BLOCK_FILE_H_
