#include "io/block_file.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>

namespace hopdb {

BlockFile::~BlockFile() { Close(); }

BlockFile& BlockFile::operator=(BlockFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    block_size_ = other.block_size_;
    path_ = std::move(other.path_);
    stats_ = other.stats_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Result<BlockFile> BlockFile::OpenRead(const std::string& path,
                                      uint64_t block_size) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  BlockFile f;
  f.fd_ = fd;
  f.size_ = static_cast<uint64_t>(st.st_size);
  f.block_size_ = block_size;
  f.path_ = path;
  return f;
}

Result<BlockFile> BlockFile::OpenWrite(const std::string& path,
                                       uint64_t block_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  BlockFile f;
  f.fd_ = fd;
  f.size_ = 0;
  f.block_size_ = block_size;
  f.path_ = path;
  return f;
}

Status BlockFile::ReadAt(uint64_t offset, void* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::pread(fd_, static_cast<char*>(buf) + done, n - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
    }
    if (got == 0) {
      return Status::OutOfRange("pread past EOF in " + path_);
    }
    done += static_cast<size_t>(got);
  }
  stats_.RecordRead(n, block_size_);
  return Status::OK();
}

Status BlockFile::WriteAt(uint64_t offset, const void* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::pwrite(fd_, static_cast<const char*>(buf) + done,
                           n - done, static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  stats_.RecordWrite(n, block_size_);
  size_ = std::max(size_, offset + n);
  return Status::OK();
}

Status BlockFile::Append(const void* buf, size_t n) {
  return WriteAt(size_, buf, n);
}

Status BlockFile::Sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

void BlockFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hopdb
