// Buffered sequential streams of fixed-size POD records over BlockFile.
// All external-memory label processing (Section 4) is built from these:
// candidate spills, sorted runs, merge joins.

#ifndef HOPDB_IO_RECORD_STREAM_H_
#define HOPDB_IO_RECORD_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/block_file.h"
#include "util/status.h"

namespace hopdb {

/// Buffered appender of fixed-size records.
template <typename T>
class RecordWriter {
  static_assert(std::is_trivially_copyable_v<T>,
                "records must be trivially copyable");

 public:
  static Result<RecordWriter<T>> Open(
      const std::string& path, uint64_t block_size = kDefaultBlockSize,
      size_t buffer_records = 8192) {
    HOPDB_ASSIGN_OR_RETURN(BlockFile file,
                           BlockFile::OpenWrite(path, block_size));
    RecordWriter<T> w;
    w.file_ = std::move(file);
    w.buffer_.reserve(buffer_records);
    w.buffer_capacity_ = buffer_records;
    return w;
  }

  Status Append(const T& rec) {
    buffer_.push_back(rec);
    if (buffer_.size() >= buffer_capacity_) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (!buffer_.empty()) {
      HOPDB_RETURN_NOT_OK(
          file_.Append(buffer_.data(), buffer_.size() * sizeof(T)));
      buffer_.clear();
    }
    return Status::OK();
  }

  Status Close() {
    HOPDB_RETURN_NOT_OK(Flush());
    file_.Close();
    return Status::OK();
  }

  uint64_t records_written() const {
    return file_.size() / sizeof(T) + buffer_.size();
  }
  const IoStats& stats() const { return file_.stats(); }

 private:
  BlockFile file_;
  std::vector<T> buffer_;
  size_t buffer_capacity_ = 8192;
};

/// Buffered sequential reader of fixed-size records.
template <typename T>
class RecordReader {
  static_assert(std::is_trivially_copyable_v<T>,
                "records must be trivially copyable");

 public:
  static Result<RecordReader<T>> Open(
      const std::string& path, uint64_t block_size = kDefaultBlockSize,
      size_t buffer_records = 8192) {
    HOPDB_ASSIGN_OR_RETURN(BlockFile file,
                           BlockFile::OpenRead(path, block_size));
    RecordReader<T> r;
    r.num_records_ = file.size() / sizeof(T);
    r.file_ = std::move(file);
    r.buffer_.resize(buffer_records);
    return r;
  }

  /// Reads the next record; returns false at end of stream.
  bool Next(T* out) {
    if (buf_pos_ >= buf_len_) {
      if (!Refill()) return false;
    }
    *out = buffer_[buf_pos_++];
    return true;
  }

  /// Next record without consuming it.
  bool Peek(T* out) {
    if (buf_pos_ >= buf_len_) {
      if (!Refill()) return false;
    }
    *out = buffer_[buf_pos_];
    return true;
  }

  uint64_t num_records() const { return num_records_; }
  const IoStats& stats() const { return file_.stats(); }

 private:
  bool Refill() {
    uint64_t remaining = num_records_ - consumed_;
    if (remaining == 0) return false;
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(remaining, buffer_.size()));
    Status st = file_.ReadAt(consumed_ * sizeof(T), buffer_.data(),
                             take * sizeof(T));
    st.CheckOK();  // sequential read within known size; failure is a bug
    consumed_ += take;
    buf_len_ = take;
    buf_pos_ = 0;
    return true;
  }

  BlockFile file_;
  std::vector<T> buffer_;
  uint64_t num_records_ = 0;
  uint64_t consumed_ = 0;
  size_t buf_len_ = 0;
  size_t buf_pos_ = 0;
};

/// Reads a whole record file into memory (small files / tests).
template <typename T>
Result<std::vector<T>> ReadAllRecords(const std::string& path) {
  HOPDB_ASSIGN_OR_RETURN(RecordReader<T> reader, RecordReader<T>::Open(path));
  std::vector<T> out;
  out.reserve(reader.num_records());
  T rec;
  while (reader.Next(&rec)) out.push_back(rec);
  return out;
}

/// Writes a vector of records to a file.
template <typename T>
Status WriteAllRecords(const std::string& path, const std::vector<T>& recs,
                       uint64_t block_size = kDefaultBlockSize) {
  HOPDB_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                         RecordWriter<T>::Open(path, block_size));
  for (const T& r : recs) HOPDB_RETURN_NOT_OK(writer.Append(r));
  return writer.Close();
}

}  // namespace hopdb

#endif  // HOPDB_IO_RECORD_STREAM_H_
