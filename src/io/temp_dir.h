// Scoped temporary directory for external-memory scratch files.

#ifndef HOPDB_IO_TEMP_DIR_H_
#define HOPDB_IO_TEMP_DIR_H_

#include <string>
#include <utility>

#include "util/status.h"

namespace hopdb {

/// Creates a unique directory on construction (under $TMPDIR or /tmp, or
/// an explicit base) and removes it with its contents on destruction.
class TempDir {
 public:
  static Result<TempDir> Create(const std::string& prefix = "hopdb");

  TempDir() = default;
  TempDir(TempDir&& other) noexcept { *this = std::move(other); }
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::string& path() const { return path_; }

  /// Joins a file name onto the directory path.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}
  std::string path_;
};

}  // namespace hopdb

#endif  // HOPDB_IO_TEMP_DIR_H_
