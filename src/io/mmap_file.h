// Read-only memory-mapped file. The zero-copy load path of the HLI2
// index format (labeling/mapped_index.h) maps the whole file once and
// serves queries directly out of the page cache: no deserialization, no
// heap arenas, and an O(1) "reload" that is just a fresh mmap of the
// (possibly replaced) file.
//
// The mapping is PROT_READ/MAP_PRIVATE, so the kernel shares clean pages
// with every other mapper of the same file and a process can never write
// through it — mutation attempts fault, which is exactly the contract a
// serving snapshot wants. The descriptor is closed right after mmap
// succeeds (the mapping keeps the file alive), so an open MmapFile holds
// no fd and replacing the file on disk (rename-over) never disturbs an
// existing mapping.

#ifndef HOPDB_IO_MMAP_FILE_H_
#define HOPDB_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace hopdb {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Unmap(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        path_(std::move(other.path_)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Unmap();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      path_ = std::move(other.path_);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only in its entirety. O(1) in the file size: no
  /// bytes are read eagerly; pages fault in on first access (or are
  /// already resident in the page cache from a previous mapping, which is
  /// what makes warm re-opens effectively free). Fails with IOError on
  /// open/stat/mmap failure and InvalidArgument on an empty file (an
  /// empty mapping is never a valid hopdb artifact). Works on files the
  /// process can only read (0444): no write permission is required.
  static Result<MmapFile> Open(const std::string& path);

  /// True between a successful Open and destruction/move-out.
  bool mapped() const { return data_ != nullptr; }

  /// Start of the mapping; valid for size() bytes. Never nullptr on a
  /// mapped() file.
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Bytes of this mapping currently resident in physical memory
  /// (mincore page walk, O(pages)). An operator-facing gauge: right
  /// after Open it is near 0 for a cold file and near size() for a warm
  /// one; it grows as queries touch label pages. Returns 0 when the
  /// platform query fails or nothing is mapped.
  uint64_t ResidentBytes() const;

  /// Advises the kernel to start readahead for the whole mapping
  /// (madvise WILLNEED). Optional warm-up for servers that want the
  /// first queries fast at the cost of eager I/O; never affects
  /// correctness and errors are deliberately ignored.
  void AdviseWillNeed() const;

 private:
  void Unmap();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace hopdb

#endif  // HOPDB_IO_MMAP_FILE_H_
