// External merge sort over fixed-size POD records with a memory budget —
// the workhorse behind the I/O-efficient candidate processing of
// Section 4 (cited there via Aggarwal & Vitter's sort bound).
//
// Records are Add()ed; whenever the in-memory buffer reaches the budget it
// is sorted and spilled as a run. Finish() turns the sorter into a k-way
// merge iterator over all runs. When everything fits in memory no file is
// ever written.

#ifndef HOPDB_IO_EXTERNAL_SORTER_H_
#define HOPDB_IO_EXTERNAL_SORTER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "io/record_stream.h"
#include "util/serde.h"
#include "util/status.h"

namespace hopdb {

template <typename T, typename Less>
class ExternalSorter {
 public:
  /// `scratch_prefix` names spill files ("<prefix>.run<N>"); the caller
  /// owns the directory lifetime. `memory_budget_bytes` bounds the
  /// in-memory buffer (>= one record).
  ExternalSorter(std::string scratch_prefix, size_t memory_budget_bytes,
                 Less less = Less(),
                 uint64_t block_size = kDefaultBlockSize)
      : scratch_prefix_(std::move(scratch_prefix)),
        capacity_(std::max<size_t>(memory_budget_bytes / sizeof(T), 1)),
        less_(less),
        block_size_(block_size) {
    buffer_.reserve(std::min<size_t>(capacity_, 1 << 20));
  }

  /// Replaces the in-memory run sort (std::sort with the sorter's
  /// comparator) used by Spill/Finish. The hook MUST produce exactly
  /// std::sort's output — callers use it to plug in a parallel sort
  /// (labeling/candidate_partition.h) without changing merge semantics.
  /// Not called concurrently; cold per run, so the std::function
  /// indirection is off the per-record path.
  void SetSortFn(std::function<void(std::vector<T>*)> fn) {
    sort_fn_ = std::move(fn);
  }

  Status Add(const T& rec) {
    buffer_.push_back(rec);
    ++total_records_;
    if (buffer_.size() >= capacity_) return Spill();
    return Status::OK();
  }

  /// Seals the input and prepares iteration.
  Status Finish() {
    if (runs_.empty()) {
      // Pure in-memory sort.
      SortBuffer();
      mem_pos_ = 0;
      finished_ = true;
      return Status::OK();
    }
    if (!buffer_.empty()) HOPDB_RETURN_NOT_OK(Spill());
    // Open all runs and seed the merge heap.
    for (const std::string& path : runs_) {
      HOPDB_ASSIGN_OR_RETURN(RecordReader<T> reader,
                             RecordReader<T>::Open(path, block_size_));
      readers_.push_back(
          std::make_unique<RecordReader<T>>(std::move(reader)));
    }
    for (size_t i = 0; i < readers_.size(); ++i) {
      T rec;
      if (readers_[i]->Next(&rec)) heap_.push_back({rec, i});
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    finished_ = true;
    return Status::OK();
  }

  /// Emits records in sorted order; false at end. Requires Finish().
  bool Next(T* out) {
    if (runs_.empty()) {
      if (mem_pos_ >= buffer_.size()) return false;
      *out = buffer_[mem_pos_++];
      return true;
    }
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    HeapItem item = heap_.back();
    heap_.pop_back();
    *out = item.rec;
    T next;
    if (readers_[item.run]->Next(&next)) {
      heap_.push_back({next, item.run});
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    }
    return true;
  }

  uint64_t total_records() const { return total_records_; }
  size_t num_runs() const { return runs_.size(); }

  /// Aggregated spill/merge I/O (zero for in-memory sorts).
  IoStats TotalIoStats() const {
    IoStats total = spill_stats_;
    for (const auto& r : readers_) total.Add(r->stats());
    return total;
  }

  /// Removes spill files (safe to call after iteration).
  void Cleanup() {
    readers_.clear();
    for (const std::string& path : runs_) {
      RemoveFileIfExists(path).CheckOK();
    }
    runs_.clear();
  }

 private:
  struct HeapItem {
    T rec;
    size_t run;
  };
  /// std::*_heap builds a max-heap; invert the comparison for a min-heap
  /// (ties broken by run index for determinism).
  struct HeapGreater {
    Less less;
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (less(a.rec, b.rec)) return false;
      if (less(b.rec, a.rec)) return true;
      return a.run > b.run;
    }
  };

  void SortBuffer() {
    if (sort_fn_) {
      sort_fn_(&buffer_);
    } else {
      std::sort(buffer_.begin(), buffer_.end(), less_);
    }
  }

  Status Spill() {
    SortBuffer();
    std::string path = scratch_prefix_ + ".run" + std::to_string(runs_.size());
    HOPDB_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                           RecordWriter<T>::Open(path, block_size_));
    for (const T& r : buffer_) HOPDB_RETURN_NOT_OK(writer.Append(r));
    HOPDB_RETURN_NOT_OK(writer.Close());
    spill_stats_.Add(writer.stats());
    runs_.push_back(path);
    buffer_.clear();
    return Status::OK();
  }

  std::string scratch_prefix_;
  size_t capacity_;
  Less less_;
  std::function<void(std::vector<T>*)> sort_fn_;
  uint64_t block_size_;
  std::vector<T> buffer_;
  size_t mem_pos_ = 0;
  std::vector<std::string> runs_;
  std::vector<std::unique_ptr<RecordReader<T>>> readers_;
  std::vector<HeapItem> heap_;
  IoStats spill_stats_;
  uint64_t total_records_ = 0;
  bool finished_ = false;
};

}  // namespace hopdb

#endif  // HOPDB_IO_EXTERNAL_SORTER_H_
