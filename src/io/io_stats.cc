#include "io/io_stats.h"

#include <cstdint>
#include <string>

#include "util/string_util.h"

namespace hopdb {

namespace {
uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

void IoStats::RecordRead(uint64_t bytes, uint64_t block_size) {
  bytes_read += bytes;
  read_calls += 1;
  blocks_read += CeilDiv(bytes, block_size == 0 ? 1 : block_size);
}

void IoStats::RecordWrite(uint64_t bytes, uint64_t block_size) {
  bytes_written += bytes;
  write_calls += 1;
  blocks_written += CeilDiv(bytes, block_size == 0 ? 1 : block_size);
}

void IoStats::Add(const IoStats& other) {
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  read_calls += other.read_calls;
  write_calls += other.write_calls;
  blocks_read += other.blocks_read;
  blocks_written += other.blocks_written;
}

void IoStats::Reset() { *this = IoStats(); }

std::string IoStats::ToString() const {
  return "read " + HumanBytes(bytes_read) + " in " +
         std::to_string(blocks_read) + " blocks, wrote " +
         HumanBytes(bytes_written) + " in " + std::to_string(blocks_written) +
         " blocks";
}

}  // namespace hopdb
