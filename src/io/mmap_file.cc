#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace hopdb {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + err);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot map empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed either
  // way.
  const int mmap_errno = addr == MAP_FAILED ? errno : 0;
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(mmap_errno));
  }
  MmapFile file;
  file.data_ = static_cast<const uint8_t*>(addr);
  file.size_ = size;
  file.path_ = path;
  return file;
}

uint64_t MmapFile::ResidentBytes() const {
  if (data_ == nullptr) return 0;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> resident(pages);
  if (::mincore(const_cast<uint8_t*>(data_), size_, resident.data()) != 0) {
    return 0;
  }
  uint64_t count = 0;
  for (size_t i = 0; i < pages; ++i) count += resident[i] & 1u;
  // The last page may extend past EOF; counting it whole keeps the gauge
  // monotone and is at most one page of overstatement.
  return count * page;
}

void MmapFile::AdviseWillNeed() const {
  if (data_ == nullptr) return;
  (void)::madvise(const_cast<uint8_t*>(data_), size_, MADV_WILLNEED);
}

void MmapFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace hopdb
