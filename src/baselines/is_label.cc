#include "baselines/is_label.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/timer.h"

namespace hopdb {

namespace {

using AdjMap = std::unordered_map<VertexId, Distance>;

struct NeighborSnapshot {
  VertexId to;
  Distance weight;
};

class IsLabelBuilder {
 public:
  IsLabelBuilder(const CsrGraph& g, const IsLabelOptions& opts,
                 uint32_t max_levels = 0)
      : g_(g),
        opts_(opts),
        max_levels_(max_levels),
        directed_(g.directed()),
        deadline_(opts.time_budget_seconds) {}

  Result<IsLabelOutput> Run() {
    Stopwatch watch;
    HOPDB_RETURN_NOT_OK(BuildHierarchy());
    HOPDB_RETURN_NOT_OK(AssembleLabels());
    IsLabelOutput out{
        TwoHopIndex(std::move(lout_), std::move(lin_), directed_),
        watch.Seconds(), num_levels_, peak_edges_};
    return out;
  }

  Result<IsLabelPartialOutput> RunPartial() {
    Stopwatch watch;
    HOPDB_RETURN_NOT_OK(BuildHierarchy());
    HOPDB_RETURN_NOT_OK(AssembleLabels());

    // Snapshot the augmented residual graph Gk over the survivors. Each
    // undirected edge lives in both endpoint maps; emit it once.
    EdgeList residual(g_.num_vertices(), directed_);
    residual.set_weighted(true);  // augmented arcs carry path lengths
    for (VertexId u = 0; u < g_.num_vertices(); ++u) {
      if (level_[u] != 0) continue;
      for (const auto& [w, d] : adj_out_[u]) {
        if (directed_ || u < w) residual.Add(u, w, d);
      }
    }
    residual.Normalize();

    IsLabelPartialOutput out;
    out.index = TwoHopIndex(std::move(lout_), std::move(lin_), directed_);
    out.residual = std::move(residual);
    out.level = std::move(level_);
    out.seconds = watch.Seconds();
    out.num_levels = num_levels_;
    out.peak_intermediate_edges = peak_edges_;
    return out;
  }

 private:
  uint64_t CurrentEdges() const { return current_edges_; }

  void AddOrImprove(VertexId x, VertexId y, Distance d) {
    auto [it, inserted] = adj_out_[x].try_emplace(y, d);
    if (inserted) {
      ++current_edges_;
    } else if (d < it->second) {
      it->second = d;
    } else {
      return;  // existing edge already at least as short
    }
    // Mirror: reverse adjacency for directed graphs, the symmetric arc for
    // undirected ones (each undirected edge is stored in both maps).
    if (directed_) {
      adj_in_[y][x] = d;
    } else {
      auto [it2, inserted2] = adj_out_[y].try_emplace(x, d);
      if (inserted2) {
        ++current_edges_;
      } else {
        it2->second = d;
      }
    }
  }

  Status BuildHierarchy() {
    const VertexId n = g_.num_vertices();
    adj_out_.assign(n, {});
    if (directed_) adj_in_.assign(n, {});
    level_.assign(n, 0);
    removed_out_.assign(n, {});
    if (directed_) removed_in_.assign(n, {});

    for (VertexId u = 0; u < n; ++u) {
      for (const Arc& a : g_.OutArcs(u)) {
        AddOrImprove(u, a.to, a.weight);
      }
    }
    const uint64_t initial_edges = std::max<uint64_t>(current_edges_, 1);
    peak_edges_ = current_edges_;

    std::vector<VertexId> alive(n);
    for (VertexId v = 0; v < n; ++v) alive[v] = v;
    std::vector<uint8_t> blocked(n, 0);
    std::vector<VertexId> selected;

    while (!alive.empty() &&
           (max_levels_ == 0 || num_levels_ < max_levels_)) {
      if (deadline_.Exceeded()) {
        return Status::DeadlineExceeded("IS-Label hierarchy over budget");
      }
      if (opts_.max_edge_growth_factor > 0 &&
          static_cast<double>(current_edges_) >
              opts_.max_edge_growth_factor *
                  static_cast<double>(initial_edges)) {
        return Status::ResourceExhausted(
            "IS-Label intermediate graph grew past the growth cap (level " +
            std::to_string(num_levels_) + ")");
      }
      ++num_levels_;

      // Greedy independent set favoring low current degree. Selection is
      // restricted to below-2x-average-degree vertices: removing a hub of
      // degree D adds up to D^2 augmentation edges, so hubs must stay
      // until the graph around them has collapsed (this is also why
      // IS-Label ranks low-degree vertices lowest).
      std::sort(alive.begin(), alive.end(), [&](VertexId a, VertexId b) {
        size_t da = DegreeOf(a), db = DegreeOf(b);
        if (da != db) return da < db;
        return a < b;
      });
      size_t degree_sum = 0;
      for (VertexId v : alive) degree_sum += DegreeOf(v);
      const size_t degree_cap = std::max<size_t>(
          4, 2 * degree_sum / std::max<size_t>(alive.size(), 1));
      selected.clear();
      for (VertexId v : alive) blocked[v] = 0;
      for (VertexId v : alive) {
        if (blocked[v]) continue;
        if (DegreeOf(v) > degree_cap && !selected.empty()) break;
        selected.push_back(v);
        blocked[v] = 1;
        for (const auto& [w, d] : adj_out_[v]) blocked[w] = 1;
        if (directed_) {
          for (const auto& [w, d] : adj_in_[v]) blocked[w] = 1;
        }
      }
      HOPDB_CHECK(!selected.empty());

      for (VertexId v : selected) {
        level_[v] = num_levels_;
        // Snapshot removal-time adjacency (sorted for determinism).
        auto snapshot = [](const AdjMap& m) {
          std::vector<NeighborSnapshot> out;
          out.reserve(m.size());
          for (const auto& [w, d] : m) out.push_back({w, d});
          std::sort(out.begin(), out.end(),
                    [](const NeighborSnapshot& a, const NeighborSnapshot& b) {
                      return a.to < b.to;
                    });
          return out;
        };
        removed_out_[v] = snapshot(adj_out_[v]);
        if (directed_) removed_in_[v] = snapshot(adj_in_[v]);

        // Distance-preserving augmentation between in- and out-neighbors.
        const auto& ins = directed_ ? removed_in_[v] : removed_out_[v];
        const auto& outs = removed_out_[v];
        for (const NeighborSnapshot& x : ins) {
          for (const NeighborSnapshot& y : outs) {
            if (x.to == y.to) continue;
            AddOrImprove(x.to, y.to, SaturatingAdd(x.weight, y.weight));
            if (!directed_) {
              // AddOrImprove mirrors the edge for undirected graphs; the
              // double loop visits (x,y) and (y,x) anyway, which is fine.
            }
          }
        }

        // Detach v.
        for (const auto& [w, d] : adj_out_[v]) {
          if (directed_) {
            adj_in_[w].erase(v);
          } else {
            adj_out_[w].erase(v);
            --current_edges_;
          }
        }
        if (directed_) {
          for (const auto& [w, d] : adj_in_[v]) {
            adj_out_[w].erase(v);
            --current_edges_;
          }
        }
        current_edges_ -= adj_out_[v].size();
        adj_out_[v].clear();
        if (directed_) adj_in_[v].clear();
      }
      peak_edges_ = std::max(peak_edges_, current_edges_);

      // Drop the removed vertices from the alive list.
      alive.erase(std::remove_if(alive.begin(), alive.end(),
                                 [&](VertexId v) { return level_[v] != 0; }),
                  alive.end());
    }
    return Status::OK();
  }

  size_t DegreeOf(VertexId v) const {
    return adj_out_[v].size() + (directed_ ? adj_in_[v].size() : 0);
  }

  Status AssembleLabels() {
    const VertexId n = g_.num_vertices();
    lout_.assign(n, {});
    if (directed_) lin_.assign(n, {});

    // Top-down: all removal-time neighbors live at strictly higher levels,
    // so processing by descending level sees finished neighbor labels.
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      if (level_[a] != level_[b]) return level_[a] > level_[b];
      return a < b;
    });

    // Min-plus union of the neighbors' labels.
    std::unordered_map<VertexId, Distance> merged;
    auto assemble = [&](VertexId v,
                        const std::vector<NeighborSnapshot>& up_neighbors,
                        const std::vector<LabelVector>& neighbor_side,
                        LabelVector* out) {
      merged.clear();
      for (const NeighborSnapshot& nb : up_neighbors) {
        auto improve = [&](VertexId pivot, Distance d) {
          auto [it, inserted] = merged.try_emplace(pivot, d);
          if (!inserted && d < it->second) it->second = d;
        };
        improve(nb.to, nb.weight);  // the neighbor's implicit (nb, 0)
        for (const LabelEntry& e : neighbor_side[nb.to]) {
          improve(e.pivot, SaturatingAdd(nb.weight, e.dist));
        }
      }
      merged.erase(v);
      out->reserve(merged.size());
      for (const auto& [pivot, d] : merged) out->push_back({pivot, d});
      std::sort(out->begin(), out->end(),
                [](const LabelEntry& a, const LabelEntry& b) {
                  return a.pivot < b.pivot;
                });
    };

    for (VertexId v : order) {
      if (deadline_.Exceeded()) {
        return Status::DeadlineExceeded("IS-Label assembly over budget");
      }
      assemble(v, removed_out_[v], lout_, &lout_[v]);
      if (directed_) assemble(v, removed_in_[v], lin_, &lin_[v]);
    }
    return Status::OK();
  }

  const CsrGraph& g_;
  IsLabelOptions opts_;
  uint32_t max_levels_;  // 0 = collapse the hierarchy fully
  bool directed_;
  Deadline deadline_;

  std::vector<AdjMap> adj_out_;
  std::vector<AdjMap> adj_in_;  // directed only
  std::vector<uint32_t> level_;
  std::vector<std::vector<NeighborSnapshot>> removed_out_;
  std::vector<std::vector<NeighborSnapshot>> removed_in_;
  std::vector<LabelVector> lout_;
  std::vector<LabelVector> lin_;
  uint64_t current_edges_ = 0;
  uint64_t peak_edges_ = 0;
  uint32_t num_levels_ = 0;
};

}  // namespace

Result<IsLabelOutput> BuildIsLabel(const CsrGraph& graph,
                                   const IsLabelOptions& options) {
  IsLabelBuilder builder(graph, options);
  return builder.Run();
}

Result<IsLabelPartialOutput> BuildIsLabelPartial(
    const CsrGraph& graph, uint32_t num_levels,
    const IsLabelOptions& options) {
  IsLabelBuilder builder(graph, options, num_levels);
  return builder.RunPartial();
}

Result<IsLabelPartialIndex> IsLabelPartialIndex::Create(
    IsLabelPartialOutput output) {
  IsLabelPartialIndex engine;
  engine.labels_ = std::move(output.index);
  engine.level_ = std::move(output.level);
  engine.num_levels_ = output.num_levels;

  // Compact the survivors to dense Gk ids.
  const VertexId n = static_cast<VertexId>(engine.level_.size());
  engine.orig_to_gk_.assign(n, kInvalidVertex);
  std::vector<VertexId> gk_to_orig;
  for (VertexId v = 0; v < n; ++v) {
    if (engine.level_[v] == 0) {
      engine.orig_to_gk_[v] = static_cast<VertexId>(gk_to_orig.size());
      gk_to_orig.push_back(v);
    }
  }
  EdgeList compact(static_cast<VertexId>(gk_to_orig.size()),
                   output.residual.directed());
  compact.set_weighted(true);
  for (const Edge& e : output.residual.edges()) {
    const VertexId a = engine.orig_to_gk_[e.src];
    const VertexId b = engine.orig_to_gk_[e.dst];
    if (a == kInvalidVertex || b == kInvalidVertex) {
      return Status::Internal("residual edge touches a removed vertex");
    }
    compact.Add(a, b, e.weight);
  }
  compact.Normalize();
  HOPDB_ASSIGN_OR_RETURN(engine.gk_, CsrGraph::FromEdgeList(compact));

  const VertexId gk_n = engine.gk_.num_vertices();
  engine.fwd_dist_.assign(gk_n, kInfDistance);
  engine.bwd_dist_.assign(gk_n, kInfDistance);
  engine.fwd_epoch_.assign(gk_n, 0);
  engine.bwd_epoch_.assign(gk_n, 0);
  return engine;
}

Distance IsLabelPartialIndex::Query(VertexId s, VertexId t) const {
  const VertexId n = static_cast<VertexId>(level_.size());
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) return 0;

  // Leg 1 — both endpoints reach a common removed pivot: plain label join
  // (also catches t ∈ Lout(s) / s ∈ Lin(t) directly), served by the flat
  // query mirror.
  Distance best = labels_.Query(s, t);

  // Leg 2 — the path crosses the residual graph: seeded bidirectional
  // Dijkstra over Gk. Forward seeds are s's survivor label entries (or s
  // itself if it survived); backward seeds mirror from t's in-label.
  ++epoch_;
  using HeapItem = std::pair<Distance, VertexId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  auto seed = [&](std::vector<Distance>& dist, std::vector<uint32_t>& ep,
                  VertexId gk, Distance d) {
    if (ep[gk] != epoch_ || d < dist[gk]) {
      ep[gk] = epoch_;
      dist[gk] = d;
      heap.push({d, gk});
    }
  };

  // Forward pass.
  fwd_settled_.clear();
  if (level_[s] == 0) {
    seed(fwd_dist_, fwd_epoch_, orig_to_gk_[s], 0);
  } else {
    for (const LabelEntry& e : labels_.OutLabel(s)) {
      if (level_[e.pivot] == 0) {
        seed(fwd_dist_, fwd_epoch_, orig_to_gk_[e.pivot], e.dist);
      }
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d >= best) break;  // no Gk path can improve the answer anymore
    if (d > fwd_dist_[v] || fwd_epoch_[v] != epoch_) continue;  // stale
    fwd_settled_.push_back(v);
    for (const Arc& a : gk_.OutArcs(v)) {
      seed(fwd_dist_, fwd_epoch_, a.to, SaturatingAdd(d, a.weight));
    }
  }

  // Backward pass (over in-arcs).
  while (!heap.empty()) heap.pop();
  if (level_[t] == 0) {
    seed(bwd_dist_, bwd_epoch_, orig_to_gk_[t], 0);
  } else {
    for (const LabelEntry& e : labels_.InLabel(t)) {
      if (level_[e.pivot] == 0) {
        seed(bwd_dist_, bwd_epoch_, orig_to_gk_[e.pivot], e.dist);
      }
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d >= best) break;
    if (d > bwd_dist_[v] || bwd_epoch_[v] != epoch_) continue;
    for (const Arc& a : gk_.InArcs(v)) {
      seed(bwd_dist_, bwd_epoch_, a.to, SaturatingAdd(d, a.weight));
    }
  }

  // Combine: the meeting survivor minimizes fwd + bwd. The early-stop
  // above is safe because any unsettled vertex already costs >= best on
  // that side.
  for (const VertexId v : fwd_settled_) {
    if (bwd_epoch_[v] == epoch_) {
      const Distance d = SaturatingAdd(fwd_dist_[v], bwd_dist_[v]);
      if (d < best) best = d;
    }
  }
  return best;
}

uint64_t IsLabelPartialIndex::ResidentBytes() const {
  return labels_.SizeBytes() + gk_.SizeBytes() +
         level_.size() * sizeof(uint32_t) +
         orig_to_gk_.size() * sizeof(VertexId);
}

}  // namespace hopdb
