// HCL — Highway-Centric Labeling (Jin, Ruan, Xiang, Lee, SIGMOD 2012),
// *simplified reimplementation*.
//
// The original HCL sources are not available; the paper compared against
// the authors' binary and reported that HCL finished only its smallest
// dataset (Enron) and was "3 orders of magnitude" behind HopDb on it. We
// reimplement the highway-centric design as an exact two-level scheme
// that keeps HCL's structure — a distinguished highway plus per-vertex
// access labels — while remaining provably exact:
//
//   * highway core C: the top-K ranked vertices, with an exact K x K
//     pairwise distance table (K graph searches);
//   * access labels: for every vertex, the core vertices reachable by
//     core-free paths, found by searches that do not expand through C
//     (forward set A_out(v) and, for directed graphs, backward A_in(v));
//   * local index: a PLL index over the core-removed subgraph, covering
//     pairs whose shortest path avoids the highway entirely.
//
// Query: d(s,t) = min( local(s,t),
//                      min_{a in A_out(s), b in A_in(t)} d(s,a) + D[a][b]
//                      + d(b,t) ).
// Exactness: a shortest path either avoids C (then it survives in the
// core-removed subgraph and the local PLL index returns its exact length)
// or passes through C — split it at the first and last core vertices a, b:
// the prefix and suffix are core-free, so they appear in A_out(s)/A_in(t)
// with exact lengths, and D[a][b] is exact. Every combined value is a real
// path length, so the minimum never undershoots.
//
// Like the original, this trades enormous preprocessing (per-vertex
// graph searches + a quadratic core table) for modest query speed — the
// behaviour Table 6 reports.

#ifndef HOPDB_BASELINES_HCL_H_
#define HOPDB_BASELINES_HCL_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct HclOptions {
  /// Highway core size; 0 picks max(1, min(256, |V|/16)).
  uint32_t core_size = 0;
  double time_budget_seconds = 0;
};

class HclIndex;
struct HclOutput;
Result<HclOutput> BuildHcl(const CsrGraph& ranked_graph,
                           const HclOptions& options);

class HclIndex {
 public:
  /// Exact distance (internal/ranked ids).
  Distance Query(VertexId s, VertexId t) const;

  VertexId num_vertices() const { return static_cast<VertexId>(aout_.size()); }
  uint32_t core_size() const { return core_size_; }

  /// Bytes under the paper's on-disk accounting (core table + access
  /// labels + local index).
  uint64_t PaperSizeBytes() const;

 private:
  friend Result<HclOutput> BuildHcl(const CsrGraph& ranked_graph,
                                    const HclOptions& options);

  Distance CoreDistance(VertexId a, VertexId b) const {
    return core_table_[static_cast<size_t>(a) * core_size_ + b];
  }

  uint32_t core_size_ = 0;
  /// Core vertices are internal ids 0..core_size_-1 (the top-ranked
  /// vertices); core_table_ is row-major K x K.
  std::vector<Distance> core_table_;
  /// Access labels: (core vertex, distance) via core-free paths; a core
  /// vertex v has the single entry (v, 0).
  std::vector<LabelVector> aout_;
  std::vector<LabelVector> ain_;  // == aout_ for undirected graphs
  bool directed_ = false;
  /// PLL index over the core-removed subgraph; vertex v maps to local id
  /// v - core_size_.
  TwoHopIndex local_;
};

struct HclOutput {
  HclIndex index;
  double seconds = 0;
};

/// Builds the HCL index for `ranked_graph` (internal id == rank; the
/// top-K ids become the highway core).
Result<HclOutput> BuildHcl(const CsrGraph& ranked_graph,
                           const HclOptions& options = {});

}  // namespace hopdb

#endif  // HOPDB_BASELINES_HCL_H_
