// Pruned Landmark Labeling (Akiba, Iwata, Yoshida, SIGMOD 2013) — the
// paper's main in-memory competitor (Table 6).
//
// Vertices are processed in rank order (internal id order on a
// rank-relabeled graph). For each vertex vk a pruned BFS (Dijkstra when
// weighted) runs forward and backward; a reached vertex u at distance d
// is labeled with pivot vk unless the current index already certifies
// dist <= d, in which case the search is cut at u. This produces the
// canonical labeling for the given order. PLL's limitation — the reason
// the paper's HopDb exists — is that the whole index must live in RAM
// during construction and every vertex runs a full graph search.
//
// The output is the same TwoHopIndex type HopDb produces, so Table 6's
// query-time comparison isolates label quality.

#ifndef HOPDB_BASELINES_PLL_H_
#define HOPDB_BASELINES_PLL_H_

#include <cstdint>

#include "graph/csr_graph.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct PllOptions {
  /// Wall-clock budget; 0 disables (DNF -> Status::DeadlineExceeded).
  double time_budget_seconds = 0;
};

struct PllOutput {
  TwoHopIndex index;
  double seconds = 0;
  uint64_t searches = 0;  // BFS/Dijkstra runs performed
};

/// Builds the canonical PLL index for `ranked_graph` (internal id ==
/// rank; see RelabelByRank).
Result<PllOutput> BuildPll(const CsrGraph& ranked_graph,
                           const PllOptions& options = {});

}  // namespace hopdb

#endif  // HOPDB_BASELINES_PLL_H_
