// IS-Label (Fu, Wu, Cheng, Wong, PVLDB 2013) — the paper's external
// competitor, reimplemented in its full-index mode ("we measured the
// performance of IS-Label when building the complete 2-hop index").
//
// Construction builds a vertex hierarchy: every level extracts an
// independent set of (preferably low-degree) vertices, removes it, and
// adds augmenting edges between each removed vertex's in/out neighbors so
// distances among the survivors are preserved. When the graph is empty,
// labels are assembled top-down: a vertex's label is the min-plus merge
// of its (higher-level) removal-time neighbors' labels plus itself.
//
// The known weakness — and the reason the paper's Table 6 shows IS-Label
// DNF on denser graphs — is that the augmentation can densify the
// remaining graph quadratically around hubs (the paper observed exactly
// this on Flickr: "the intermediate graph Gi has grown to become bigger
// than the original graph in the second iteration"). The implementation
// is faithful to that behaviour and exposes deadline / growth caps so
// benches can report DNF instead of hanging.

#ifndef HOPDB_BASELINES_IS_LABEL_H_
#define HOPDB_BASELINES_IS_LABEL_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/edge_list.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

struct IsLabelOptions {
  double time_budget_seconds = 0;
  /// Abort with ResourceExhausted when the augmented edge multiset grows
  /// beyond this multiple of the input size (0 disables). Mirrors the
  /// paper's observation of unbounded intermediate-graph growth.
  double max_edge_growth_factor = 64.0;
};

struct IsLabelOutput {
  TwoHopIndex index;
  double seconds = 0;
  uint32_t num_levels = 0;
  /// Peak number of edges in any intermediate graph Gi.
  uint64_t peak_intermediate_edges = 0;
};

/// Builds the complete IS-Label 2-hop index. Works on any graph
/// (directed/undirected, weighted/unweighted); does not require rank
/// relabeling (the hierarchy defines its own order).
Result<IsLabelOutput> BuildIsLabel(const CsrGraph& graph,
                                   const IsLabelOptions& options = {});

// ---------------------------------------------------------------------------
// Partial (k-level) mode — IS-Label as actually deployed.
// ---------------------------------------------------------------------------
// The HopDb paper, Section 1: "to limit the number of iterations, k,
// during the label construction, instead of building a full index, a
// residual graph Gk is kept in main memory... this is not a pure indexing
// method since it requires loading Gk before querying, and the size of Gk
// can be large." This mode reproduces that deployment: the hierarchy
// stops after k levels, removed vertices get labels, the augmented
// residual graph Gk answers the survivor-to-survivor legs by a seeded
// bidirectional Dijkstra.

struct IsLabelPartialOutput {
  /// Labels for removed vertices; Gk survivors have empty labels.
  TwoHopIndex index;
  /// The augmented residual graph Gk in ORIGINAL vertex ids (only
  /// survivor endpoints appear).
  EdgeList residual;
  /// level[v] > 0 = hierarchy level at which v was removed; 0 = survivor.
  std::vector<uint32_t> level;
  double seconds = 0;
  uint32_t num_levels = 0;
  uint64_t peak_intermediate_edges = 0;
};

/// Runs `num_levels` rounds of independent-set extraction, then stops and
/// snapshots the residual graph. num_levels == 0 collapses fully (the
/// residual comes out empty; prefer BuildIsLabel for that).
Result<IsLabelPartialOutput> BuildIsLabelPartial(
    const CsrGraph& graph, uint32_t num_levels,
    const IsLabelOptions& options = {});

/// Query engine over a partial build: label-to-label join plus
/// bidirectional Dijkstra on Gk seeded from the labels' survivor entries.
/// Queries mutate per-instance scratch state — NOT thread-safe; clone one
/// engine per thread.
class IsLabelPartialIndex {
 public:
  /// Compacts the residual graph and freezes the query structures.
  static Result<IsLabelPartialIndex> Create(IsLabelPartialOutput output);

  /// Exact distance between original vertex ids.
  Distance Query(VertexId s, VertexId t) const;

  const TwoHopIndex& labels() const { return labels_; }
  VertexId residual_vertices() const { return gk_.num_vertices(); }
  uint64_t residual_edges() const { return gk_.num_edges(); }
  uint32_t num_levels() const { return num_levels_; }

  /// Combined memory footprint: what must stay loaded to answer queries
  /// (the paper's criticism of the scheme).
  uint64_t ResidentBytes() const;

 private:
  IsLabelPartialIndex() = default;

  TwoHopIndex labels_;
  std::vector<uint32_t> level_;
  std::vector<VertexId> orig_to_gk_;  // kInvalidVertex for removed
  CsrGraph gk_;
  uint32_t num_levels_ = 0;

  // Epoch-reset Dijkstra scratch (per-query, no O(|Gk|) clears).
  mutable std::vector<Distance> fwd_dist_, bwd_dist_;
  mutable std::vector<uint32_t> fwd_epoch_, bwd_epoch_;
  mutable std::vector<VertexId> fwd_settled_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace hopdb

#endif  // HOPDB_BASELINES_IS_LABEL_H_
