#include "baselines/pll.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/timer.h"

namespace hopdb {

namespace {

/// Shared state for the pruned searches. Labels grow in pivot order, so
/// appending keeps every label vector sorted — the canonical-order trick
/// that makes PLL queries cheap during construction.
class PllBuilder {
 public:
  PllBuilder(const CsrGraph& g, const PllOptions& opts)
      : g_(g),
        opts_(opts),
        directed_(g.directed()),
        deadline_(opts.time_budget_seconds),
        out_(g.num_vertices()),
        in_(directed_ ? g.num_vertices() : 0),
        dist_(g.num_vertices(), kInfDistance) {}

  Result<PllOutput> Run() {
    Stopwatch watch;
    const VertexId n = g_.num_vertices();
    for (VertexId k = 0; k < n; ++k) {
      if (deadline_.Exceeded()) {
        return Status::DeadlineExceeded("PLL over time budget at vertex " +
                                        std::to_string(k));
      }
      // Forward search from k labels Lin of reached vertices; backward
      // search labels Lout. Undirected graphs need one search only.
      PrunedSearch(k, /*forward=*/true);
      ++searches_;
      if (directed_) {
        PrunedSearch(k, /*forward=*/false);
        ++searches_;
      }
    }
    PllOutput out{TwoHopIndex(std::move(out_), std::move(in_), directed_),
                  watch.Seconds(), searches_};
    return out;
  }

 private:
  /// Query with the current (partial) index: dist(k ⇝ u) for forward
  /// searches, dist(u ⇝ k) for backward ones.
  Distance IndexQuery(VertexId k, VertexId u, bool forward) {
    if (!directed_) {
      return QueryLabelHalves(out_[k], out_[u], k, u);
    }
    return forward ? QueryLabelHalves(out_[k], in_[u], k, u)
                   : QueryLabelHalves(out_[u], in_[k], u, k);
  }

  void AddLabel(VertexId k, VertexId u, Distance d, bool forward) {
    if (u == k) return;  // trivial entries are implicit
    // Pivot ids only grow, so push_back keeps the vector sorted.
    if (!directed_) {
      out_[u].push_back({k, d});
    } else if (forward) {
      in_[u].push_back({k, d});
    } else {
      out_[u].push_back({k, d});
    }
  }

  void PrunedSearch(VertexId k, bool forward) {
    if (g_.weighted()) {
      PrunedDijkstra(k, forward);
    } else {
      PrunedBfs(k, forward);
    }
  }

  void PrunedBfs(VertexId k, bool forward) {
    queue_.clear();
    queue_.push_back(k);
    dist_[k] = 0;
    touched_.clear();
    touched_.push_back(k);
    size_t head = 0;
    while (head < queue_.size()) {
      VertexId u = queue_[head++];
      Distance d = dist_[u];
      // Prune: the current index already certifies a path of length <= d
      // through an earlier (higher-ranked) pivot.
      if (u != k && IndexQuery(k, u, forward) <= d) continue;
      AddLabel(k, u, d, forward);
      auto arcs = forward ? g_.OutArcs(u) : g_.InArcs(u);
      for (const Arc& a : arcs) {
        if (dist_[a.to] != kInfDistance) continue;
        dist_[a.to] = d + 1;
        queue_.push_back(a.to);
        touched_.push_back(a.to);
      }
    }
    for (VertexId v : touched_) dist_[v] = kInfDistance;
  }

  void PrunedDijkstra(VertexId k, bool forward) {
    struct Item {
      Distance dist;
      VertexId vertex;
      bool operator>(const Item& o) const { return dist > o.dist; }
    };
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist_[k] = 0;
    touched_.clear();
    touched_.push_back(k);
    heap.push({0, k});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d != dist_[u]) continue;  // stale
      if (u != k && IndexQuery(k, u, forward) <= d) continue;  // pruned
      AddLabel(k, u, d, forward);
      auto arcs = forward ? g_.OutArcs(u) : g_.InArcs(u);
      for (const Arc& a : arcs) {
        Distance nd = SaturatingAdd(d, a.weight);
        if (nd < dist_[a.to]) {
          if (dist_[a.to] == kInfDistance) touched_.push_back(a.to);
          dist_[a.to] = nd;
          heap.push({nd, a.to});
        }
      }
    }
    for (VertexId v : touched_) dist_[v] = kInfDistance;
  }

  const CsrGraph& g_;
  PllOptions opts_;
  bool directed_;
  Deadline deadline_;
  std::vector<LabelVector> out_;
  std::vector<LabelVector> in_;
  std::vector<Distance> dist_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> touched_;
  uint64_t searches_ = 0;
};

}  // namespace

Result<PllOutput> BuildPll(const CsrGraph& ranked_graph,
                           const PllOptions& options) {
  PllBuilder builder(ranked_graph, options);
  return builder.Run();
}

}  // namespace hopdb
