#include "baselines/hcl.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "baselines/pll.h"
#include "graph/transform.h"
#include "search/dijkstra.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hopdb {

namespace {

/// Search from `source` that records distances to core vertices but never
/// expands through them ("core-free" access search). With forward=false
/// arcs are traversed backwards. Appends (core, dist) pairs to `out`.
void CoreFreeSearch(const CsrGraph& g, VertexId source, uint32_t core_size,
                    bool forward, std::vector<Distance>* dist,
                    std::vector<VertexId>* touched, LabelVector* out) {
  touched->clear();
  (*dist)[source] = 0;
  touched->push_back(source);

  auto expand = [&](VertexId u) {
    // Core vertices are frontier terminals: record, do not expand
    // (unless the core vertex is the source itself).
    return u == source || u >= core_size;
  };

  if (!g.weighted()) {
    std::vector<VertexId> queue{source};
    size_t head = 0;
    while (head < queue.size()) {
      VertexId u = queue[head++];
      if (!expand(u)) continue;
      Distance d = (*dist)[u];
      auto arcs = forward ? g.OutArcs(u) : g.InArcs(u);
      for (const Arc& a : arcs) {
        if ((*dist)[a.to] != kInfDistance) continue;
        (*dist)[a.to] = d + 1;
        touched->push_back(a.to);
        queue.push_back(a.to);
      }
    }
  } else {
    struct Item {
      Distance dist;
      VertexId vertex;
      bool operator>(const Item& o) const { return dist > o.dist; }
    };
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.push({0, source});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d != (*dist)[u]) continue;
      if (!expand(u)) continue;
      auto arcs = forward ? g.OutArcs(u) : g.InArcs(u);
      for (const Arc& a : arcs) {
        Distance nd = SaturatingAdd(d, a.weight);
        if (nd < (*dist)[a.to]) {
          if ((*dist)[a.to] == kInfDistance) touched->push_back(a.to);
          (*dist)[a.to] = nd;
          heap.push({nd, a.to});
        }
      }
    }
  }

  out->clear();
  for (VertexId v : *touched) {
    if (v < core_size && v != source) out->push_back({v, (*dist)[v]});
  }
  std::sort(out->begin(), out->end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              return a.pivot < b.pivot;
            });
  for (VertexId v : *touched) (*dist)[v] = kInfDistance;
}

}  // namespace

Distance HclIndex::Query(VertexId s, VertexId t) const {
  if (s == t) return 0;
  Distance best = kInfDistance;

  // Local (highway-avoiding) part.
  if (s >= core_size_ && t >= core_size_) {
    best = local_.Query(s - core_size_, t - core_size_);
  }

  // Highway part: d(s,a) + D[a][b] + d(b,t) with implicit (v,0) access
  // entries for core endpoints.
  const LabelEntry self_s{s, 0};
  const LabelEntry self_t{t, 0};
  std::span<const LabelEntry> as =
      s < core_size_ ? std::span<const LabelEntry>(&self_s, 1)
                     : std::span<const LabelEntry>(aout_[s]);
  std::span<const LabelEntry> bt =
      t < core_size_ ? std::span<const LabelEntry>(&self_t, 1)
                     : std::span<const LabelEntry>(
                           directed_ ? ain_[t] : aout_[t]);
  for (const LabelEntry& ea : as) {
    for (const LabelEntry& eb : bt) {
      Distance mid = CoreDistance(ea.pivot, eb.pivot);
      Distance total =
          SaturatingAdd(SaturatingAdd(ea.dist, mid), eb.dist);
      if (total < best) best = total;
    }
  }
  return best;
}

uint64_t HclIndex::PaperSizeBytes() const {
  uint64_t bytes = static_cast<uint64_t>(core_size_) * core_size_ * 1ull;
  for (const auto& l : aout_) bytes += l.size() * 5ull;
  for (const auto& l : ain_) bytes += l.size() * 5ull;
  bytes += local_.PaperSizeBytes();
  return bytes;
}

Result<HclOutput> BuildHcl(const CsrGraph& ranked_graph,
                           const HclOptions& options) {
  Stopwatch watch;
  Deadline deadline(options.time_budget_seconds);
  const CsrGraph& g = ranked_graph;
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");

  HclIndex index;
  index.directed_ = g.directed();
  uint32_t k = options.core_size;
  if (k == 0) k = std::max<uint32_t>(1, std::min<uint32_t>(256, n / 16));
  k = std::min<uint32_t>(k, n);
  index.core_size_ = k;

  // --- K x K exact core distance table (full-graph searches).
  index.core_table_.assign(static_cast<size_t>(k) * k, kInfDistance);
  {
    std::vector<Distance> dist;
    for (VertexId a = 0; a < k; ++a) {
      if (deadline.Exceeded()) {
        return Status::DeadlineExceeded("HCL core table over budget");
      }
      dist = ExactDistances(g, a);
      for (VertexId b = 0; b < k; ++b) {
        index.core_table_[static_cast<size_t>(a) * k + b] = dist[b];
      }
    }
  }

  // --- Access labels by core-free searches.
  index.aout_.assign(n, {});
  if (g.directed()) index.ain_.assign(n, {});
  {
    std::vector<Distance> dist(n, kInfDistance);
    std::vector<VertexId> touched;
    for (VertexId v = k; v < n; ++v) {
      if (deadline.Exceeded()) {
        return Status::DeadlineExceeded("HCL access labels over budget");
      }
      CoreFreeSearch(g, v, k, /*forward=*/true, &dist, &touched,
                     &index.aout_[v]);
      if (g.directed()) {
        CoreFreeSearch(g, v, k, /*forward=*/false, &dist, &touched,
                       &index.ain_[v]);
      }
    }
  }

  // --- Local PLL index over the core-removed subgraph. Vertex v >= k
  // maps to local id v - k; the id order (== rank order) is preserved, so
  // the subgraph is already rank-relabeled for PLL.
  {
    EdgeList all = g.ToEdgeList();
    std::vector<bool> keep(n, false);
    for (VertexId v = k; v < n; ++v) keep[v] = true;
    EdgeList local_edges = InducedSubgraph(all, keep);
    HOPDB_ASSIGN_OR_RETURN(CsrGraph local_graph,
                           CsrGraph::FromEdgeList(local_edges));
    PllOptions pll_opts;
    pll_opts.time_budget_seconds = deadline.RemainingSeconds() > 1e17
                                       ? 0
                                       : deadline.RemainingSeconds();
    HOPDB_ASSIGN_OR_RETURN(PllOutput pll, BuildPll(local_graph, pll_opts));
    index.local_ = std::move(pll.index);
  }

  HclOutput out{std::move(index), watch.Seconds()};
  return out;
}

}  // namespace hopdb
