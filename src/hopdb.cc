#include "hopdb.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "labeling/compressed_index.h"
#include "query/path.h"
#include "util/logging.h"
#include "util/serde.h"

namespace hopdb {

Result<HopDbIndex> HopDbIndex::Build(const EdgeList& edges,
                                     const HopDbOptions& options) {
  EdgeList normalized = edges;
  normalized.Normalize();
  HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, CsrGraph::FromEdgeList(normalized));
  return Build(graph, options);
}

Result<HopDbIndex> HopDbIndex::Build(const CsrGraph& graph,
                                     const HopDbOptions& options) {
  RankMapping mapping;
  switch (options.ranking) {
    case HopDbOptions::Ranking::kAuto:
      mapping = ComputeRanking(graph, graph.directed()
                                          ? RankingPolicy::kInOutProduct
                                          : RankingPolicy::kDegree);
      break;
    case HopDbOptions::Ranking::kDegree:
      mapping = ComputeRanking(graph, RankingPolicy::kDegree);
      break;
    case HopDbOptions::Ranking::kInOutProduct:
      mapping = ComputeRanking(graph, RankingPolicy::kInOutProduct);
      break;
    case HopDbOptions::Ranking::kCustom: {
      if (options.custom_order.size() != graph.num_vertices()) {
        return Status::InvalidArgument(
            "custom_order must list every vertex exactly once");
      }
      mapping = RankingFromOrder(options.custom_order);
      break;
    }
  }

  HOPDB_ASSIGN_OR_RETURN(CsrGraph ranked, RelabelByRank(graph, mapping));
  HOPDB_ASSIGN_OR_RETURN(BuildOutput out,
                         BuildHopLabeling(ranked, options.build));

  HopDbIndex index;
  index.index_ = std::move(out.index);
  index.mapping_ = std::move(mapping);
  index.stats_ = std::move(out.stats);
  return index;
}

Distance HopDbIndex::Query(VertexId src, VertexId dst) const {
  HOPDB_CHECK_LT(src, mapping_.orig_to_rank.size()) << "query id out of range";
  HOPDB_CHECK_LT(dst, mapping_.orig_to_rank.size()) << "query id out of range";
  return index_.Query(mapping_.ToInternal(src), mapping_.ToInternal(dst));
}

namespace {

/// Writes the rank permutation sidecar shared by both save formats.
Status SavePermutation(const RankMapping& mapping, const std::string& path) {
  std::string perm;
  perm.reserve(8 + 4ull * mapping.rank_to_orig.size());
  PutU64(&perm, mapping.rank_to_orig.size());
  for (VertexId v : mapping.rank_to_orig) PutU32(&perm, v);
  return WriteStringToFile(path + ".perm", perm);
}

}  // namespace

Status HopDbIndex::Save(const std::string& path) const {
  HOPDB_RETURN_NOT_OK(index_.Save(path));
  return SavePermutation(mapping_, path);
}

Status HopDbIndex::SaveCompressed(const std::string& path) const {
  HOPDB_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         CompressedIndex::FromIndex(index_));
  HOPDB_RETURN_NOT_OK(compressed.Save(path));
  return SavePermutation(mapping_, path);
}

Result<HopDbIndex> HopDbIndex::Load(const std::string& path) {
  HopDbIndex out;
  // Dispatch on the file magic: "HLC1" (compressed) or "HLI1" (plain).
  {
    std::string head;
    Status read = ReadFileToString(path, &head);
    HOPDB_RETURN_NOT_OK(read);
    if (head.size() >= 4 && head.compare(0, 4, "HLC1") == 0) {
      HOPDB_ASSIGN_OR_RETURN(CompressedIndex compressed,
                             CompressedIndex::Load(path));
      HOPDB_ASSIGN_OR_RETURN(out.index_, compressed.Decompress());
    } else {
      HOPDB_ASSIGN_OR_RETURN(out.index_, TwoHopIndex::Load(path));
    }
  }
  std::string perm;
  HOPDB_RETURN_NOT_OK(ReadFileToString(path + ".perm", &perm));
  ByteReader reader(perm);
  uint64_t n = 0;
  HOPDB_RETURN_NOT_OK(reader.ReadU64(&n));
  std::vector<VertexId> order(n);
  for (auto& v : order) HOPDB_RETURN_NOT_OK(reader.ReadU32(&v));
  out.mapping_ = RankingFromOrder(std::move(order));
  if (out.mapping_.size() != out.index_.num_vertices()) {
    return Status::InvalidArgument("permutation/index size mismatch");
  }
  return out;
}

Result<HopDbPathQuerier> HopDbPathQuerier::Create(
    const HopDbIndex& index, const CsrGraph& original_graph) {
  if (original_graph.num_vertices() != index.num_vertices()) {
    return Status::InvalidArgument(
        "graph has " + std::to_string(original_graph.num_vertices()) +
        " vertices but the index was built over " +
        std::to_string(index.num_vertices()));
  }
  HOPDB_ASSIGN_OR_RETURN(CsrGraph ranked,
                         RelabelByRank(original_graph, index.ranking()));
  return HopDbPathQuerier(&index, std::move(ranked));
}

Result<std::vector<VertexId>> HopDbPathQuerier::ShortestPath(
    VertexId src, VertexId dst) const {
  if (src >= index_->num_vertices() || dst >= index_->num_vertices()) {
    return Status::InvalidArgument("vertex id out of range");
  }
  const RankMapping& mapping = index_->ranking();
  PathReconstructor recon(ranked_graph_, index_->label_index());
  HOPDB_ASSIGN_OR_RETURN(
      std::vector<VertexId> path,
      recon.ShortestPath(mapping.ToInternal(src), mapping.ToInternal(dst)));
  for (VertexId& v : path) v = mapping.ToOriginal(v);
  return path;
}

VertexId HopDbPathQuerier::FirstHop(VertexId src, VertexId dst) const {
  if (src >= index_->num_vertices() || dst >= index_->num_vertices()) {
    return kInvalidVertex;
  }
  const RankMapping& mapping = index_->ranking();
  PathReconstructor recon(ranked_graph_, index_->label_index());
  const VertexId hop =
      recon.FirstHop(mapping.ToInternal(src), mapping.ToInternal(dst));
  return hop == kInvalidVertex ? kInvalidVertex : mapping.ToOriginal(hop);
}

}  // namespace hopdb
