#include "gen/weights.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace hopdb {

void AssignUniformWeights(EdgeList* edges, Distance min_w, Distance max_w,
                          uint64_t seed) {
  HOPDB_CHECK_GE(min_w, 1u);
  HOPDB_CHECK_GE(max_w, min_w);
  Rng rng(seed);
  for (Edge& e : edges->mutable_edges()) {
    e.weight = static_cast<Distance>(rng.Uniform(min_w, max_w));
  }
  edges->set_weighted(max_w > 1);
}

void AssignRatingWeights(EdgeList* edges, Distance max_w, uint64_t seed) {
  HOPDB_CHECK_GE(max_w, 1u);
  Rng rng(seed);
  // Cumulative distribution of P(w) ∝ 1/w.
  std::vector<double> cdf(max_w);
  double total = 0;
  for (Distance w = 1; w <= max_w; ++w) {
    total += 1.0 / w;
    cdf[w - 1] = total;
  }
  for (Edge& e : edges->mutable_edges()) {
    double x = rng.NextDouble() * total;
    Distance w = 1;
    while (w < max_w && cdf[w - 1] < x) ++w;
    e.weight = w;
  }
  edges->set_weighted(max_w > 1);
}

}  // namespace hopdb
