// Deterministic fixture graphs: the paper's worked examples (Figures 1-3)
// plus standard shapes (path, cycle, star, grid, complete) used across the
// test suite and the "general graphs" example.

#ifndef HOPDB_GEN_SMALL_GRAPHS_H_
#define HOPDB_GEN_SMALL_GRAPHS_H_

#include "graph/edge_list.h"

namespace hopdb {

/// Figure 1's road graph GR: undirected; a-b-c / a-d / a-e / e-d path
/// structure. Vertex ids: a=0, b=1, c=2, d=3, e=4.
/// Edges: a-b, b-c, a-d, a-e, e-d.
EdgeList RoadGraphGR();

/// Figure 2's star graph GS: center a=0 with leaves b..f = 1..5.
EdgeList StarGraphGS();

/// Figure 3(a)'s 8-vertex example graph G, already labeled by rank
/// (vertex 0 = highest degree), directed. Edge set reconstructed from
/// Example 1 and the label tables of Figure 5:
///   0->1, 1->0, 2->0, 0->6, 2->6, 2->3 (wait: 3 has in-label (2,1)),
/// see small_graphs.cc for the derivation.
EdgeList PaperExampleGraph();

/// Path 0-1-2-...-(n-1).
EdgeList PathGraph(VertexId n, bool directed = false);

/// Cycle over n vertices.
EdgeList CycleGraph(VertexId n, bool directed = false);

/// Star with `leaves` leaves; center is vertex 0.
EdgeList StarGraph(VertexId leaves);

/// rows x cols grid, 4-neighbor connectivity — a road-network-like
/// general graph with no high-degree hubs (Section 7's hard case).
EdgeList GridGraph(VertexId rows, VertexId cols);

/// Complete graph K_n.
EdgeList CompleteGraph(VertexId n);

/// Two disconnected triangles (0,1,2) and (3,4,5): unreachable pairs.
EdgeList TwoTriangles();

}  // namespace hopdb

#endif  // HOPDB_GEN_SMALL_GRAPHS_H_
