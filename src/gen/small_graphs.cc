#include "gen/small_graphs.h"

namespace hopdb {

EdgeList RoadGraphGR() {
  // Figure 1: a road system. a=0, b=1, c=2, d=3, e=4.
  // Edge set reconstructed from Table 1's distances: (c,2) in L(a) means
  // dist(a,c)=2 (so c hangs off b) and (d,2) in L(e) means dist(e,d)=2
  // (so d and e are both leaves of the hub a, with no d-e edge).
  EdgeList g(5, /*directed=*/false);
  g.Add(0, 1);  // a-b
  g.Add(1, 2);  // b-c
  g.Add(0, 3);  // a-d
  g.Add(0, 4);  // a-e
  g.Normalize();
  return g;
}

EdgeList StarGraphGS() {
  // Figure 2: star with center a=0 and leaves b..f = 1..5.
  return StarGraph(5);
}

EdgeList PaperExampleGraph() {
  // Figure 3(a), reconstructed from the initialization entries of Figure 5
  // (every distance-1 label entry is an edge) and verified against
  // Examples 1-3:
  //   * iteration 1 derives (2->1,2) from (2->3,1)+(3->1,1),
  //     (4->3,2) from 4->5->3, (3->2,2) from 3->7->2, (5->1,2) from
  //     5->3->1, (3->0,2) from 3->1->0, (2->7,2) from 2->3->7;
  //   * iteration 2 derives (4->2,4), (5->2,3), (5->0,3);
  //   * total degrees 5,4,4,4,3,2,2,2 are non-increasing, matching the
  //     paper's rank-labeled ids.
  EdgeList g(8, /*directed=*/true);
  g.Add(0, 1);
  g.Add(1, 0);
  g.Add(2, 0);
  g.Add(2, 3);
  g.Add(2, 6);
  g.Add(0, 6);
  g.Add(3, 1);
  g.Add(3, 7);
  g.Add(4, 0);
  g.Add(4, 1);
  g.Add(4, 5);
  g.Add(5, 3);
  g.Add(7, 2);
  g.Normalize();
  return g;
}

EdgeList PathGraph(VertexId n, bool directed) {
  EdgeList g(n, directed);
  for (VertexId v = 0; v + 1 < n; ++v) g.Add(v, v + 1);
  g.Normalize();
  return g;
}

EdgeList CycleGraph(VertexId n, bool directed) {
  EdgeList g(n, directed);
  for (VertexId v = 0; v < n; ++v) g.Add(v, (v + 1) % n);
  g.Normalize();
  return g;
}

EdgeList StarGraph(VertexId leaves) {
  EdgeList g(leaves + 1, /*directed=*/false);
  for (VertexId v = 1; v <= leaves; ++v) g.Add(0, v);
  g.Normalize();
  return g;
}

EdgeList GridGraph(VertexId rows, VertexId cols) {
  EdgeList g(rows * cols, /*directed=*/false);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.Add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.Add(id(r, c), id(r + 1, c));
    }
  }
  g.Normalize();
  return g;
}

EdgeList CompleteGraph(VertexId n) {
  EdgeList g(n, /*directed=*/false);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) g.Add(a, b);
  }
  g.Normalize();
  return g;
}

EdgeList TwoTriangles() {
  EdgeList g(6, /*directed=*/false);
  g.Add(0, 1);
  g.Add(1, 2);
  g.Add(2, 0);
  g.Add(3, 4);
  g.Add(4, 5);
  g.Add(5, 3);
  g.Normalize();
  return g;
}

}  // namespace hopdb
