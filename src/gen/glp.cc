#include "gen/glp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace hopdb {

namespace {

/// Preferential sampler: maintains an endpoint array where vertex v
/// appears deg(v) times; sampling uniformly from it is sampling ∝ deg(v).
/// The GLP shift P(v) ∝ (deg(v) - beta) is realized by rejection:
/// accept a degree-proportional draw v with probability
/// (deg(v) - beta)/deg(v) = 1 - beta/deg(v) >= 1 - beta > 0.
class PreferentialSampler {
 public:
  explicit PreferentialSampler(double beta) : beta_(beta) {}

  void AddEndpoint(VertexId v, std::vector<uint32_t>* degree) {
    endpoints_.push_back(v);
    (*degree)[v]++;
  }

  VertexId Sample(const std::vector<uint32_t>& degree, Rng* rng) const {
    HOPDB_DCHECK(!endpoints_.empty());
    for (;;) {
      VertexId v = endpoints_[rng->Below(endpoints_.size())];
      double d = static_cast<double>(degree[v]);
      if (beta_ <= 0 || rng->NextDouble() < 1.0 - beta_ / d) return v;
    }
  }

 private:
  double beta_;
  std::vector<VertexId> endpoints_;
};

}  // namespace

Result<EdgeList> GenerateGlp(const GlpOptions& options) {
  if (options.m0 < 2) {
    return Status::InvalidArgument("GLP requires m0 >= 2");
  }
  if (options.num_vertices < options.m0) {
    return Status::InvalidArgument("GLP requires |V| >= m0");
  }
  if (options.beta >= 1.0) {
    return Status::InvalidArgument("GLP requires beta < 1");
  }
  if (options.p < 0.0 || options.p >= 1.0) {
    return Status::InvalidArgument("GLP requires 0 <= p < 1");
  }

  double m = options.m;
  if (options.target_avg_degree > 0) {
    // |E| ≈ m0-1 + m*T where T ≈ (|V|-m0)/(1-p) steps total, so
    // |E|/|V| ≈ m/(1-p) for large graphs.
    m = options.target_avg_degree * (1.0 - options.p);
  }
  if (m < 1.0) m = 1.0;

  Rng rng(options.seed);
  EdgeList edges(options.num_vertices, /*directed=*/false);
  std::vector<uint32_t> degree(options.num_vertices, 0);
  PreferentialSampler sampler(options.beta);

  // Seed: a chain of m0 vertices (connected, every degree >= 1).
  VertexId next_vertex = options.m0;
  for (VertexId v = 0; v + 1 < options.m0; ++v) {
    edges.Add(v, v + 1);
    sampler.AddEndpoint(v, &degree);
    sampler.AddEndpoint(v + 1, &degree);
  }

  auto draw_m = [&]() -> uint32_t {
    double frac = m - std::floor(m);
    uint32_t base = static_cast<uint32_t>(std::floor(m));
    return base + (rng.NextDouble() < frac ? 1 : 0);
  };

  while (next_vertex < options.num_vertices) {
    if (rng.NextDouble() < options.p) {
      // Add edges between existing vertices.
      uint32_t batch = draw_m();
      for (uint32_t i = 0; i < batch; ++i) {
        VertexId a = sampler.Sample(degree, &rng);
        VertexId b = sampler.Sample(degree, &rng);
        if (a == b) continue;  // skip; Normalize() also drops any dups
        edges.Add(a, b);
        sampler.AddEndpoint(a, &degree);
        sampler.AddEndpoint(b, &degree);
      }
    } else {
      // Add one new vertex with m edges to existing vertices.
      VertexId v = next_vertex++;
      uint32_t batch = std::max<uint32_t>(1, draw_m());
      for (uint32_t i = 0; i < batch; ++i) {
        VertexId b = sampler.Sample(degree, &rng);
        if (b == v) continue;
        edges.Add(v, b);
        sampler.AddEndpoint(v, &degree);
        sampler.AddEndpoint(b, &degree);
      }
    }
  }

  edges.set_num_vertices(options.num_vertices);
  edges.Normalize();
  return edges;
}

Result<EdgeList> GenerateDirectedGlp(const GlpOptions& options,
                                     double reciprocal) {
  HOPDB_ASSIGN_OR_RETURN(EdgeList undirected, GenerateGlp(options));
  Rng rng(DeriveSeed(options.seed, /*stream=*/77));
  EdgeList out(undirected.num_vertices(), /*directed=*/true);
  for (const Edge& e : undirected.edges()) {
    VertexId a = e.src, b = e.dst;
    if (rng.Chance(0.5)) std::swap(a, b);
    out.Add(a, b, e.weight);
    if (rng.Chance(reciprocal)) out.Add(b, a, e.weight);
  }
  out.set_num_vertices(undirected.num_vertices());
  out.Normalize();
  return out;
}

}  // namespace hopdb
