#include "gen/barabasi_albert.h"

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace hopdb {

Result<EdgeList> GenerateBarabasiAlbert(const BaOptions& options) {
  const uint32_t m = options.edges_per_vertex;
  if (m < 1) return Status::InvalidArgument("BA requires m >= 1");
  if (options.num_vertices < m + 1) {
    return Status::InvalidArgument("BA requires |V| > m");
  }
  Rng rng(options.seed);
  EdgeList edges(options.num_vertices, /*directed=*/false);
  // Endpoint array: uniform draws are degree-proportional draws.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ull * m * options.num_vertices);

  // Seed: star over the first m+1 vertices.
  for (VertexId v = 1; v <= m; ++v) {
    edges.Add(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  for (VertexId v = m + 1; v < options.num_vertices; ++v) {
    for (uint32_t i = 0; i < m; ++i) {
      VertexId target = endpoints[rng.Below(endpoints.size())];
      if (target == v) continue;
      edges.Add(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  edges.set_num_vertices(options.num_vertices);
  edges.Normalize();
  return edges;
}

}  // namespace hopdb
