#include "gen/erdos_renyi.h"

#include <cstdint>

#include "util/random.h"

namespace hopdb {

Result<EdgeList> GenerateErdosRenyi(const ErOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("ER requires |V| >= 2");
  }
  Rng rng(options.seed);
  EdgeList edges(options.num_vertices, options.directed);
  edges.mutable_edges().reserve(options.num_edges);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    VertexId a = static_cast<VertexId>(rng.Below(options.num_vertices));
    VertexId b = static_cast<VertexId>(rng.Below(options.num_vertices));
    if (a == b) continue;
    edges.Add(a, b);
  }
  edges.set_num_vertices(options.num_vertices);
  edges.Normalize();
  return edges;
}

}  // namespace hopdb
