// Edge-weight assignment for weighted-graph experiments (the paper's
// amaRating/epinRating/movRating/bookRating rows use weighted graphs).

#ifndef HOPDB_GEN_WEIGHTS_H_
#define HOPDB_GEN_WEIGHTS_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace hopdb {

/// Overwrites every edge weight with a uniform draw from [min_w, max_w].
void AssignUniformWeights(EdgeList* edges, Distance min_w, Distance max_w,
                          uint64_t seed);

/// Rating-like weights: small integers skewed toward the low end
/// (P(w) ∝ 1/w over [1, max_w]), echoing rating-scale networks.
void AssignRatingWeights(EdgeList* edges, Distance max_w, uint64_t seed);

}  // namespace hopdb

#endif  // HOPDB_GEN_WEIGHTS_H_
