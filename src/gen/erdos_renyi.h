// Erdős–Rényi G(n, M) random graphs. Not scale-free — used by tests and
// the "general graphs" pathway (Section 7) to exercise the algorithms
// outside their assumption envelope.

#ifndef HOPDB_GEN_ERDOS_RENYI_H_
#define HOPDB_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/edge_list.h"
#include "util/status.h"

namespace hopdb {

struct ErOptions {
  VertexId num_vertices = 1000;
  uint64_t num_edges = 3000;
  bool directed = false;
  uint64_t seed = 1;
};

/// Samples edges uniformly at random (with replacement, then dedup — the
/// realized edge count can be slightly below num_edges on dense settings).
Result<EdgeList> GenerateErdosRenyi(const ErOptions& options);

}  // namespace hopdb

#endif  // HOPDB_GEN_ERDOS_RENYI_H_
