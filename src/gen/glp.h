// GLP (Generalized Linear Preference) scale-free graph generator,
// Bu & Towsley, INFOCOM 2002 — the generator the paper uses for its
// synthetic experiments (Section 8: "m and m0 are set to 1.13 and 10,
// respectively, as in [11], which gives a power law exponent of 2.155").
//
// Model: start from m0 vertices connected in a chain. At every step,
//   * with probability p   : add m new edges between existing vertices,
//   * with probability 1-p : add one new vertex with m edges to existing
//                            vertices,
// where every endpoint choice is linear-preferential with shift beta:
// P(v) ∝ (deg(v) - beta). A fractional m (e.g. 1.13) is honored in
// expectation by drawing ⌈m⌉ with probability frac(m) and ⌊m⌋ otherwise.
// The resulting power-law exponent is 1 + (2 - p(1+p)... — in practice we
// expose (p, beta, m) directly and default them to the Bu–Towsley Internet
// fit used by the paper.

#ifndef HOPDB_GEN_GLP_H_
#define HOPDB_GEN_GLP_H_

#include <cstdint>

#include "graph/edge_list.h"
#include "util/status.h"

namespace hopdb {

struct GlpOptions {
  /// Target number of vertices (>= m0).
  VertexId num_vertices = 10000;
  /// Average #edges contributed per step; |E| ≈ m/(1-p) * |V|. When
  /// target_avg_degree > 0 it overrides m to hit |E|/|V| ≈ target.
  double m = 1.13;
  /// Seed size.
  uint32_t m0 = 10;
  /// Probability of an "add edges between existing vertices" step.
  double p = 0.4695;
  /// Linear shift of the preference function; must be < 1.
  double beta = 0.6447;
  /// If > 0, choose m so that |E|/|V| ≈ target_avg_degree (used by the
  /// Figure 9 density sweeps).
  double target_avg_degree = 0;
  uint64_t seed = 1;
};

/// Generates an undirected, unweighted GLP graph.
Result<EdgeList> GenerateGlp(const GlpOptions& options);

/// Generates a directed scale-free graph by orienting a GLP graph:
/// each undirected edge becomes an arc in a random direction, and with
/// probability `reciprocal` the reverse arc is added too (web/social
/// graphs have substantial reciprocity). In/out degrees both inherit the
/// power law, matching Section 2.2's observation for directed graphs.
Result<EdgeList> GenerateDirectedGlp(const GlpOptions& options,
                                     double reciprocal = 0.3);

}  // namespace hopdb

#endif  // HOPDB_GEN_GLP_H_
