// Barabási–Albert preferential attachment (the BA model the paper's
// scale-free analysis builds on; GLP generalizes it). Used in tests and
// as an alternative synthetic source.

#ifndef HOPDB_GEN_BARABASI_ALBERT_H_
#define HOPDB_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/edge_list.h"
#include "util/status.h"

namespace hopdb {

struct BaOptions {
  VertexId num_vertices = 10000;
  /// Edges attached by each arriving vertex.
  uint32_t edges_per_vertex = 2;
  uint64_t seed = 1;
};

/// Generates an undirected, unweighted BA graph (exponent α = 3).
Result<EdgeList> GenerateBarabasiAlbert(const BaOptions& options);

}  // namespace hopdb

#endif  // HOPDB_GEN_BARABASI_ALBERT_H_
