// Batch distance evaluation over a 2-hop index: one-to-many and
// many-to-many by pivot bucketing.
//
// A naive S x T evaluation performs |S| * |T| label intersections. The
// bucket join instead groups the targets' in-label entries by pivot once
// (cost: sum of |Lin(t)|), after which each source is answered by scanning
// the buckets of its own out-label pivots — every (source entry, target
// entry) pair sharing a pivot is touched exactly once. With the paper's
// O(h) label sizes a one-to-many over |T| targets costs O(h^2 + |T|)
// instead of |T| label merges, which is what makes index-backed centrality
// and distance-matrix workloads (Section 1's motivating applications)
// practical.

#ifndef HOPDB_QUERY_BATCH_H_
#define HOPDB_QUERY_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

/// Repeated one-to-many queries against a fixed target set. Construction
/// buckets the targets' in-labels by pivot; each Query(s) is then a scan
/// of the buckets named by Lout(s).
class OneToManyEngine {
 public:
  /// The index reference is not owned and must outlive the engine.
  /// Duplicate targets are allowed (each position is answered).
  OneToManyEngine(const TwoHopIndex& index, std::vector<VertexId> targets);

  /// result[j] = dist(s, targets()[j]); kInfDistance when unreachable.
  std::vector<Distance> Query(VertexId s) const;

  const std::vector<VertexId>& targets() const { return targets_; }

  /// Total bucketed entries (memory/working-set accounting).
  uint64_t TotalBucketEntries() const;

 private:
  struct TargetEntry {
    uint32_t target_index;
    Distance dist;
  };

  const TwoHopIndex& index_;
  std::vector<VertexId> targets_;
  /// buckets_[p] = {(j, d2)} with (p, d2) in Lin(targets_[j]), plus the
  /// trivial (targets_[j], 0) entry under pivot targets_[j].
  std::vector<std::vector<TargetEntry>> buckets_;
};

/// matrix[i][j] = dist(sources[i], targets[j]). One bucket pass over the
/// targets, then one engine query per source.
std::vector<std::vector<Distance>> ManyToManyDistances(
    const TwoHopIndex& index, std::span<const VertexId> sources,
    std::span<const VertexId> targets);

}  // namespace hopdb

#endif  // HOPDB_QUERY_BATCH_H_
