// Batch distance evaluation over a 2-hop index: one-to-many and
// many-to-many by pivot bucketing.
//
// A naive S x T evaluation performs |S| * |T| label intersections. The
// bucket join instead groups the targets' in-label entries by pivot once
// (cost: sum of |Lin(t)|), after which each source is answered by scanning
// the buckets of its own out-label pivots — every (source entry, target
// entry) pair sharing a pivot is touched exactly once. With the paper's
// O(h) label sizes a one-to-many over |T| targets costs O(h^2 + |T|)
// instead of |T| label merges, which is what makes index-backed centrality
// and distance-matrix workloads (Section 1's motivating applications)
// practical.
//
// The buckets live in one flat structure-of-arrays arena (all bucketed
// entries contiguous, one offset per pivot) mirroring the FlatLabelStore
// layout, so a Query(s) is a handful of contiguous range scans instead of
// |Lout(s)| separate heap vectors.

#ifndef HOPDB_QUERY_BATCH_H_
#define HOPDB_QUERY_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

/// Repeated one-to-many queries against a fixed target set. Construction
/// buckets the targets' in-labels by pivot; each Query(s) is then a scan
/// of the buckets named by Lout(s).
///
/// Thread safety: construction is exclusive; after that Query is const
/// over immutable arenas and safe for concurrent callers (the serving
/// micro-batch path relies on this).
class OneToManyEngine {
 public:
  /// The index reference is not owned and must outlive the engine.
  /// Duplicate targets are allowed (each position is answered).
  /// Construction is O(sum |Lin(t)| + |V|). When the index's flat
  /// mirror is built, the engine snapshots pointers into it — the
  /// engine must not be used across a mutable_out()/mutable_in()/
  /// RebuildFlatStore() cycle on the index (rebuild frees the arenas
  /// the engine reads); construct a fresh engine after label edits.
  OneToManyEngine(const TwoHopIndex& index, std::vector<VertexId> targets);

  /// Same engine over a bare flat label set — the form shared by heap
  /// flat stores and memory-mapped HLI2 indexes
  /// (MappedIndex::labels()). The arrays behind the view must outlive
  /// the engine. Vertex ids are the view's (internal/rank) ids.
  OneToManyEngine(const LabelSetView& labels, std::vector<VertexId> targets);

  /// result[j] = dist(s, targets()[j]); kInfDistance when unreachable.
  /// O(|Lout(s)| + touched bucket entries + |T|) per call.
  std::vector<Distance> Query(VertexId s) const;

  const std::vector<VertexId>& targets() const { return targets_; }

  /// Total bucketed entries (memory/working-set accounting).
  uint64_t TotalBucketEntries() const {
    return static_cast<uint64_t>(bucket_target_.size());
  }

 private:
  /// Scans the bucket of `pivot` relaxing every (target, d2) entry with
  /// source-side distance d1.
  void Relax(VertexId pivot, Distance d1, std::vector<Distance>* result) const;

  /// Fills the bucket arena from whichever label representation this
  /// engine was constructed over.
  void BuildBuckets();

  /// Non-null only for indexes whose flat mirror is stale (the vector
  /// fallback); engines over a built flat store or a mapped index use
  /// view_ exclusively.
  const TwoHopIndex* index_ = nullptr;
  LabelSetView view_{};
  VertexId num_vertices_ = 0;
  std::vector<VertexId> targets_;
  /// Flat bucket arena: entries of pivot p occupy
  /// [bucket_offsets_[p], bucket_offsets_[p+1]) in the two parallel
  /// arrays. Entry k covers target position bucket_target_[k] at in-label
  /// distance bucket_dist_[k]; the trivial (t, 0) self-entry of each
  /// target is bucketed under pivot t.
  std::vector<uint64_t> bucket_offsets_;  // |V| + 1
  std::vector<uint32_t> bucket_target_;
  std::vector<uint32_t> bucket_dist_;
};

/// matrix[i][j] = dist(sources[i], targets[j]). One bucket pass over the
/// targets, then one engine query per source.
std::vector<std::vector<Distance>> ManyToManyDistances(
    const TwoHopIndex& index, std::span<const VertexId> sources,
    std::span<const VertexId> targets);

}  // namespace hopdb

#endif  // HOPDB_QUERY_BATCH_H_
