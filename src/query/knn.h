// Exact k-nearest-neighbor queries over a 2-hop index.
//
// The engine inverts the index once: for every pivot p, the list of label
// owners v with (p, d2) in Lin(v), sorted by d2 (plus the trivial
// (p, 0, p) entry). A query from s lazily merges the lists named by
// Lout(s) with a priority queue, emitting (vertex, d1 + d2) pairs in
// globally non-decreasing total order. The 2-hop cover property makes the
// first emission of each vertex exact: min over common pivots equals the
// true distance, and the global merge order reaches that minimum first.
// Cost: O((k + dup) log |Lout(s)|) pops, independent of |V|.
//
// Applications: "locate influential users near a vertex" (Section 1's
// motivation), candidate generation for community detection, and top-k
// keyword search over RDF graphs.

#ifndef HOPDB_QUERY_KNN_H_
#define HOPDB_QUERY_KNN_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"

namespace hopdb {

class KnnEngine {
 public:
  enum class Direction {
    /// Nearest vertices reachable FROM the query source (dist(s, v)).
    kForward,
    /// Nearest vertices that REACH the query source (dist(v, s)).
    kBackward,
  };

  struct Neighbor {
    VertexId vertex;
    Distance dist;

    bool operator==(const Neighbor& o) const {
      return vertex == o.vertex && dist == o.dist;
    }
  };

  /// Builds the inverted pivot lists (one pass over the index). The index
  /// reference is not owned and must outlive the engine. For undirected
  /// indexes both directions coincide.
  KnnEngine(const TwoHopIndex& index, Direction direction);

  /// The (up to) k nearest vertices from/to s in non-decreasing distance
  /// order. Ties are broken arbitrarily. `s` itself (distance 0) is
  /// excluded unless include_source is set. Fewer than k results means
  /// fewer than k vertices are reachable.
  std::vector<Neighbor> Query(VertexId s, uint32_t k,
                              bool include_source = false) const;

  Direction direction() const { return direction_; }

  /// Total inverted entries (equals index entries + |V| trivial entries).
  uint64_t TotalInvertedEntries() const;

 private:
  struct InvEntry {
    Distance dist;
    VertexId owner;
  };

  const TwoHopIndex& index_;
  Direction direction_;
  /// inv_[p] = owners whose relevant label names pivot p, sorted by dist.
  std::vector<std::vector<InvEntry>> inv_;
};

}  // namespace hopdb

#endif  // HOPDB_QUERY_KNN_H_
