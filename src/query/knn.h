// Exact k-nearest-neighbor queries over a 2-hop index.
//
// The engine inverts the index once: for every pivot p, the list of label
// owners v with (p, d2) in Lin(v), sorted by d2 (plus the trivial
// (p, 0, p) entry). A query from s lazily merges the lists named by
// Lout(s) with a priority queue, emitting (vertex, d1 + d2) pairs in
// globally non-decreasing total order. The 2-hop cover property makes the
// first emission of each vertex exact: min over common pivots equals the
// true distance, and the global merge order reaches that minimum first.
// Cost: O((k + dup) log |Lout(s)|) pops, independent of |V|.
//
// Applications: "locate influential users near a vertex" (Section 1's
// motivation), candidate generation for community detection, and top-k
// keyword search over RDF graphs.

#ifndef HOPDB_QUERY_KNN_H_
#define HOPDB_QUERY_KNN_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "labeling/two_hop_index.h"

namespace hopdb {

class KnnEngine {
 public:
  enum class Direction {
    /// Nearest vertices reachable FROM the query source (dist(s, v)).
    kForward,
    /// Nearest vertices that REACH the query source (dist(v, s)).
    kBackward,
  };

  struct Neighbor {
    VertexId vertex;
    Distance dist;

    bool operator==(const Neighbor& o) const {
      return vertex == o.vertex && dist == o.dist;
    }
  };

  /// Builds the inverted pivot lists (one pass over the index). The index
  /// reference is not owned and must outlive the engine. For undirected
  /// indexes both directions coincide. When the index's flat mirror is
  /// built, the engine snapshots pointers into it — the engine must not
  /// be used across a mutable_out()/mutable_in()/RebuildFlatStore()
  /// cycle on the index (rebuild frees the arenas the engine reads);
  /// construct a fresh engine after label edits.
  KnnEngine(const TwoHopIndex& index, Direction direction);

  /// Same engine over a bare flat label set — the form shared by heap
  /// flat stores and memory-mapped HLI2 indexes (MappedIndex::labels()).
  /// The arrays behind the view must outlive the engine; vertex ids are
  /// the view's (internal/rank) ids.
  KnnEngine(const LabelSetView& labels, Direction direction);

  /// The (up to) k nearest vertices from/to s in non-decreasing distance
  /// order. Ties are broken arbitrarily. `s` itself (distance 0) is
  /// excluded unless include_source is set. Fewer than k results means
  /// fewer than k vertices are reachable.
  std::vector<Neighbor> Query(VertexId s, uint32_t k,
                              bool include_source = false) const;

  /// Every vertex v with dist(s, v) <= radius (dist(v, s) for backward
  /// engines), in non-decreasing (distance, vertex) order; `s` itself is
  /// excluded unless include_source is set. Exact by the cover property:
  /// the certifying pivot pair of any in-radius vertex sums to its true
  /// distance, so the radius-bounded prefix scan of each seed pivot's
  /// sorted inverted list reaches it, and no label sum ever
  /// underestimates. Cost: the in-radius prefixes of |Lout(s)| + 1
  /// inverted lists plus an O(|V|) collect pass.
  std::vector<Neighbor> QueryWithin(VertexId s, Distance radius,
                                    bool include_source = false) const;

  Direction direction() const { return direction_; }

  /// Total inverted entries (equals index entries + |V| trivial entries).
  uint64_t TotalInvertedEntries() const;

 private:
  struct InvEntry {
    Distance dist;
    VertexId owner;
  };

  /// Fills inv_ from whichever label representation this engine was
  /// constructed over.
  void BuildInverted();
  /// Appends the seed entries for a query from s (the relevant label of
  /// s plus the trivial (s, 0) pivot).
  void CollectSeeds(VertexId s, std::vector<LabelEntry>* seeds) const;

  /// Non-null only for indexes whose flat mirror is stale (the vector
  /// fallback); engines over a built flat store or a mapped index use
  /// view_ exclusively.
  const TwoHopIndex* index_ = nullptr;
  LabelSetView view_{};
  VertexId num_vertices_ = 0;
  Direction direction_;
  /// inv_[p] = owners whose relevant label names pivot p, sorted by dist.
  std::vector<std::vector<InvEntry>> inv_;
};

}  // namespace hopdb

#endif  // HOPDB_QUERY_KNN_H_
