#include "query/path.h"

#include <string>
#include <vector>

namespace hopdb {

PathReconstructor::PathReconstructor(const CsrGraph& graph,
                                     const TwoHopIndex& index)
    : graph_(graph), index_(index) {}

Result<std::vector<VertexId>> PathReconstructor::ShortestPath(
    VertexId s, VertexId t) const {
  if (s >= graph_.num_vertices() || t >= graph_.num_vertices()) {
    return Status::InvalidArgument("vertex id out of range");
  }
  Distance remaining = index_.Query(s, t);
  if (remaining == kInfDistance) {
    return Status::NotFound("no path " + std::to_string(s) + " -> " +
                            std::to_string(t));
  }

  std::vector<VertexId> path{s};
  VertexId cur = s;
  while (cur != t) {
    // Any out-neighbor n with w(cur, n) + dist(n, t) == dist(cur, t) lies
    // on a shortest path. Positive arc weights guarantee `remaining`
    // strictly decreases, so the walk terminates in at most dist(s, t)
    // steps.
    VertexId next = kInvalidVertex;
    Distance next_remaining = kInfDistance;
    for (const Arc& a : graph_.OutArcs(cur)) {
      if (a.weight > remaining) continue;
      const Distance via = index_.Query(a.to, t);
      if (SaturatingAdd(via, a.weight) == remaining) {
        next = a.to;
        next_remaining = via;
        break;
      }
    }
    if (next == kInvalidVertex) {
      // The index certified dist(cur, t) == remaining but no neighbor
      // continues the path: the index and graph disagree (corrupted or
      // mismatched inputs).
      return Status::Internal(
          "path reconstruction stuck at vertex " + std::to_string(cur) +
          " (index does not match graph)");
    }
    if (next_remaining >= remaining) {
      return Status::Internal(
          "non-decreasing remaining distance at vertex " +
          std::to_string(cur) + " (zero-weight arc or corrupt index)");
    }
    path.push_back(next);
    cur = next;
    remaining = next_remaining;
  }
  return path;
}

VertexId PathReconstructor::FirstHop(VertexId s, VertexId t) const {
  if (s >= graph_.num_vertices() || t >= graph_.num_vertices() || s == t) {
    return kInvalidVertex;
  }
  const Distance total = index_.Query(s, t);
  if (total == kInfDistance) return kInvalidVertex;
  for (const Arc& a : graph_.OutArcs(s)) {
    if (a.weight > total) continue;
    if (SaturatingAdd(index_.Query(a.to, t), a.weight) == total) return a.to;
  }
  return kInvalidVertex;
}

VertexId PathReconstructor::MeetingPivot(VertexId s, VertexId t) const {
  if (s >= graph_.num_vertices() || t >= graph_.num_vertices()) {
    return kInvalidVertex;
  }
  if (s == t) return s;
  const std::span<const LabelEntry> out_s = index_.OutLabel(s);
  const std::span<const LabelEntry> in_t = index_.InLabel(t);

  Distance best = kInfDistance;
  VertexId pivot = kInvalidVertex;
  // Sorted-merge intersection, tracking the argmin. Ties prefer the
  // smaller pivot id, which the increasing merge order gives for free.
  size_t i = 0, j = 0;
  while (i < out_s.size() && j < in_t.size()) {
    if (out_s[i].pivot == in_t[j].pivot) {
      const Distance d = SaturatingAdd(out_s[i].dist, in_t[j].dist);
      if (d < best) {
        best = d;
        pivot = out_s[i].pivot;
      }
      ++i;
      ++j;
    } else if (out_s[i].pivot < in_t[j].pivot) {
      ++i;
    } else {
      ++j;
    }
  }
  // The trivial pivots: t itself in Lout(s), s itself in Lin(t). Either
  // endpoint may be the highest-ranked vertex of the path (Theorem 1's
  // "w can be u or v").
  const Distance via_t = LookupPivot(out_s, t);
  if (via_t < best || (via_t == best && t < pivot)) {
    best = via_t;
    pivot = t;
  }
  const Distance via_s = LookupPivot(in_t, s);
  if (via_s < best || (via_s == best && s < pivot)) {
    best = via_s;
    pivot = s;
  }
  return best == kInfDistance ? kInvalidVertex : pivot;
}

Distance PathLength(const CsrGraph& graph, std::span<const VertexId> path) {
  if (path.empty()) return kInfDistance;
  Distance total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Distance w = graph.ArcWeight(path[i], path[i + 1]);
    if (w == kInfDistance) return kInfDistance;
    total = SaturatingAdd(total, w);
  }
  return total;
}

}  // namespace hopdb
