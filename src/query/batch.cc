#include "query/batch.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace hopdb {

OneToManyEngine::OneToManyEngine(const TwoHopIndex& index,
                                 std::vector<VertexId> targets)
    : index_(index), targets_(std::move(targets)) {
  buckets_.resize(index_.num_vertices());
  for (uint32_t j = 0; j < targets_.size(); ++j) {
    const VertexId t = targets_[j];
    HOPDB_CHECK_LT(t, index_.num_vertices()) << "target id out of range";
    // Trivial self-pivot: dist(s, t) may be certified by pivot t itself
    // (the entry (t, d1) in Lout(s)).
    buckets_[t].push_back({j, 0});
    for (const LabelEntry& e : index_.InLabel(t)) {
      buckets_[e.pivot].push_back({j, e.dist});
    }
  }
}

std::vector<Distance> OneToManyEngine::Query(VertexId s) const {
  std::vector<Distance> result(targets_.size(), kInfDistance);
  if (s >= index_.num_vertices()) return result;  // nothing reachable
  auto relax = [&](const std::vector<TargetEntry>& bucket, Distance d1) {
    for (const TargetEntry& te : bucket) {
      const Distance d = SaturatingAdd(d1, te.dist);
      if (d < result[te.target_index]) result[te.target_index] = d;
    }
  };
  // Trivial source pivot: (s, 0) pairs with every in-entry naming s —
  // including the self-bucket entry, so dist(s, s) == 0 falls out.
  relax(buckets_[s], 0);
  for (const LabelEntry& e : index_.OutLabel(s)) {
    relax(buckets_[e.pivot], e.dist);
  }
  return result;
}

uint64_t OneToManyEngine::TotalBucketEntries() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.size();
  return total;
}

std::vector<std::vector<Distance>> ManyToManyDistances(
    const TwoHopIndex& index, std::span<const VertexId> sources,
    std::span<const VertexId> targets) {
  OneToManyEngine engine(index,
                         std::vector<VertexId>(targets.begin(), targets.end()));
  std::vector<std::vector<Distance>> matrix;
  matrix.reserve(sources.size());
  for (const VertexId s : sources) matrix.push_back(engine.Query(s));
  return matrix;
}

}  // namespace hopdb
