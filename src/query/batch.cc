#include "query/batch.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "labeling/flat_label_store.h"
#include "util/logging.h"

namespace hopdb {

OneToManyEngine::OneToManyEngine(const TwoHopIndex& index,
                                 std::vector<VertexId> targets)
    : num_vertices_(index.num_vertices()), targets_(std::move(targets)) {
  if (index.flat_store().built()) {
    view_ = index.flat_store().view();
  } else {
    index_ = &index;
  }
  BuildBuckets();
}

OneToManyEngine::OneToManyEngine(const LabelSetView& labels,
                                 std::vector<VertexId> targets)
    : view_(labels),
      num_vertices_(labels.num_vertices),
      targets_(std::move(targets)) {
  BuildBuckets();
}

void OneToManyEngine::BuildBuckets() {
  const VertexId n = num_vertices_;
  // Pass 1: bucket sizes, counted into slot p+1 so the in-place prefix
  // sum below turns the same array into the arena offsets. Each target
  // contributes its in-label entries plus one trivial self-pivot entry
  // (dist(s, t) may be certified by pivot t itself — the entry (t, d1)
  // in Lout(s)).
  bucket_offsets_.assign(n + 1, 0);
  for (uint32_t j = 0; j < targets_.size(); ++j) {
    const VertexId t = targets_[j];
    HOPDB_CHECK_LT(t, n) << "target id out of range";
    bucket_offsets_[t + 1]++;
    ForEachLabelEntry(index_, view_, /*in_side=*/true, t,
                      [&](uint32_t pivot, uint32_t) {
                        bucket_offsets_[pivot + 1]++;
                      });
  }
  for (VertexId p = 0; p < n; ++p) bucket_offsets_[p + 1] += bucket_offsets_[p];
  bucket_target_.resize(bucket_offsets_[n]);
  bucket_dist_.resize(bucket_offsets_[n]);
  // Pass 2: fill through per-pivot write cursors (one scratch array —
  // the offsets stay pristine for Relax).
  std::vector<uint64_t> cursor(bucket_offsets_.begin(),
                               bucket_offsets_.end() - 1);
  for (uint32_t j = 0; j < targets_.size(); ++j) {
    const VertexId t = targets_[j];
    const uint64_t self = cursor[t]++;
    bucket_target_[self] = j;
    bucket_dist_[self] = 0;
    ForEachLabelEntry(index_, view_, /*in_side=*/true, t,
                      [&](uint32_t pivot, uint32_t dist) {
                        const uint64_t k = cursor[pivot]++;
                        bucket_target_[k] = j;
                        bucket_dist_[k] = dist;
                      });
  }
}

void OneToManyEngine::Relax(VertexId pivot, Distance d1,
                            std::vector<Distance>* result) const {
  const uint64_t begin = bucket_offsets_[pivot];
  const uint64_t end = bucket_offsets_[pivot + 1];
  std::vector<Distance>& out = *result;
  for (uint64_t k = begin; k < end; ++k) {
    const Distance d = SaturatingAdd(d1, bucket_dist_[k]);
    if (d < out[bucket_target_[k]]) out[bucket_target_[k]] = d;
  }
}

std::vector<Distance> OneToManyEngine::Query(VertexId s) const {
  std::vector<Distance> result(targets_.size(), kInfDistance);
  if (s >= num_vertices_) return result;  // nothing reachable
  // Trivial source pivot: (s, 0) pairs with every in-entry naming s —
  // including the self-bucket entry, so dist(s, s) == 0 falls out.
  Relax(s, 0, &result);
  ForEachLabelEntry(index_, view_, /*in_side=*/false, s,
                    [&](uint32_t pivot, uint32_t dist) {
                      Relax(pivot, dist, &result);
                    });
  return result;
}

std::vector<std::vector<Distance>> ManyToManyDistances(
    const TwoHopIndex& index, std::span<const VertexId> sources,
    std::span<const VertexId> targets) {
  OneToManyEngine engine(index,
                         std::vector<VertexId>(targets.begin(), targets.end()));
  std::vector<std::vector<Distance>> matrix;
  matrix.reserve(sources.size());
  for (const VertexId s : sources) matrix.push_back(engine.Query(s));
  return matrix;
}

}  // namespace hopdb
