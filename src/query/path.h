// Shortest-path reconstruction on top of a 2-hop label index.
//
// The paper's index answers distance queries only, but its introduction
// motivates them as a building block for path problems (page similarity,
// keyword search, centrality). A 2-hop distance index supports full path
// extraction with no extra label storage: from the query distance, walk
// greedily from the source, at each step moving to any out-neighbor whose
// remaining indexed distance accounts exactly for the arc just taken.
// Every step costs one label intersection per scanned neighbor, so a path
// of hop length L costs O(L * avg_degree) queries — microseconds each on
// the small labels the paper's construction produces.

#ifndef HOPDB_QUERY_PATH_H_
#define HOPDB_QUERY_PATH_H_

#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/types.h"
#include "labeling/two_hop_index.h"
#include "util/status.h"

namespace hopdb {

/// Reconstructs shortest paths from a TwoHopIndex plus the graph it
/// indexes. Both must speak the same (internal / rank-relabeled) vertex
/// ids; HopDbIndex users should translate via its RankMapping.
class PathReconstructor {
 public:
  /// Neither reference is owned; both must outlive the reconstructor.
  PathReconstructor(const CsrGraph& graph, const TwoHopIndex& index);

  /// The vertex sequence of one shortest path from s to t, inclusive of
  /// both endpoints ({s} when s == t). When several shortest paths exist
  /// an arbitrary one is returned. NotFound when t is unreachable from s.
  Result<std::vector<VertexId>> ShortestPath(VertexId s, VertexId t) const;

  /// The vertex after s on a shortest path from s to t; kInvalidVertex
  /// when s == t or t is unreachable. Repeated FirstHop calls are how
  /// routing applications consume the index without materializing paths.
  VertexId FirstHop(VertexId s, VertexId t) const;

  /// The pivot certifying dist(s, t): the common pivot of Lout(s) and
  /// Lin(t) with the smallest d1 + d2, ties broken toward the
  /// higher-ranked (smaller id) pivot. This is the highest-ranked vertex
  /// on some shortest path (Theorem 1). kInvalidVertex when unreachable.
  VertexId MeetingPivot(VertexId s, VertexId t) const;

 private:
  const CsrGraph& graph_;
  const TwoHopIndex& index_;
};

/// Sum of arc weights along `path`; kInfDistance when consecutive vertices
/// are not joined by an arc (or the path is empty). Validation helper for
/// tests and examples. A single-vertex path has length 0.
Distance PathLength(const CsrGraph& graph, std::span<const VertexId> path);

}  // namespace hopdb

#endif  // HOPDB_QUERY_PATH_H_
