#include "query/knn.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

namespace hopdb {

KnnEngine::KnnEngine(const TwoHopIndex& index, Direction direction)
    : num_vertices_(index.num_vertices()), direction_(direction) {
  if (index.flat_store().built()) {
    view_ = index.flat_store().view();
  } else {
    index_ = &index;
  }
  BuildInverted();
}

KnnEngine::KnnEngine(const LabelSetView& labels, Direction direction)
    : view_(labels),
      num_vertices_(labels.num_vertices),
      direction_(direction) {
  BuildInverted();
}

void KnnEngine::BuildInverted() {
  const VertexId n = num_vertices_;
  inv_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    // Forward kNN intersects Lout(s) with Lin(v), so the inverted side is
    // the in-labels; backward swaps the roles.
    const bool in_side = direction_ == Direction::kForward;
    inv_[v].push_back({0, v});  // trivial (v, 0) self-entry
    ForEachLabelEntry(index_, view_, in_side, v,
                      [&](uint32_t pivot, uint32_t dist) {
                        inv_[pivot].push_back({dist, v});
                      });
  }
  for (auto& list : inv_) {
    std::sort(list.begin(), list.end(),
              [](const InvEntry& a, const InvEntry& b) {
                return a.dist != b.dist ? a.dist < b.dist
                                        : a.owner < b.owner;
              });
  }
}

void KnnEngine::CollectSeeds(VertexId s,
                             std::vector<LabelEntry>* seeds) const {
  const bool out_side = direction_ == Direction::kForward;
  ForEachLabelEntry(index_, view_, /*in_side=*/!out_side, s,
                    [&](uint32_t pivot, uint32_t dist) {
                      seeds->push_back({pivot, dist});
                    });
  seeds->push_back({s, 0});  // trivial (s, 0) source pivot
}

std::vector<KnnEngine::Neighbor> KnnEngine::Query(VertexId s, uint32_t k,
                                                  bool include_source) const {
  std::vector<Neighbor> result;
  if (s >= num_vertices_ || k == 0) return result;
  // k is client-controlled on the serving path; at most n vertices can
  // ever be emitted, so clamp the reservation (a bare reserve(k) would
  // let one "KNN 0 4294967295" request attempt a ~34 GB allocation).
  result.reserve(std::min<uint64_t>(k, num_vertices_));

  // Frontier of (total distance, seed index, position in the seed's
  // inverted list); the pop order enumerates all (source entry, inverted
  // entry) pairs by non-decreasing d1 + d2.
  struct Frontier {
    Distance total;
    uint32_t seed_idx;
    uint32_t pos;
    bool operator>(const Frontier& o) const { return total > o.total; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> pq;

  // d1_of_pivot is needed when advancing a cursor; store alongside the
  // seed list (sorted by pivot — Lout(s) order — for lookup by index).
  std::vector<LabelEntry> seeds;
  CollectSeeds(s, &seeds);

  for (uint32_t i = 0; i < seeds.size(); ++i) {
    const auto& list = inv_[seeds[i].pivot];
    if (!list.empty()) {
      pq.push({SaturatingAdd(seeds[i].dist, list[0].dist), i, 0});
    }
  }

  std::vector<bool> emitted(num_vertices_, false);
  while (!pq.empty() && result.size() < k) {
    const Frontier f = pq.top();
    pq.pop();
    if (f.total == kInfDistance) break;
    const LabelEntry& seed = seeds[f.seed_idx];
    const auto& list = inv_[seed.pivot];
    const VertexId v = list[f.pos].owner;
    if (f.pos + 1 < list.size()) {
      pq.push({SaturatingAdd(seed.dist, list[f.pos + 1].dist), f.seed_idx,
               f.pos + 1});
    }
    if (!emitted[v]) {
      emitted[v] = true;
      if (v != s || include_source) result.push_back({v, f.total});
    }
  }
  return result;
}

std::vector<KnnEngine::Neighbor> KnnEngine::QueryWithin(
    VertexId s, Distance radius, bool include_source) const {
  std::vector<Neighbor> result;
  if (s >= num_vertices_) return result;

  std::vector<LabelEntry> seeds;
  CollectSeeds(s, &seeds);

  // Min label sum per vertex over the in-radius prefix of every seed
  // pivot's inverted list. Sums never undershoot the true distance, so
  // the per-vertex minimum filtered at <= radius is exact.
  std::vector<Distance> best(num_vertices_, kInfDistance);
  for (const LabelEntry& seed : seeds) {
    if (seed.dist > radius) continue;
    for (const InvEntry& entry : inv_[seed.pivot]) {
      const Distance total = SaturatingAdd(seed.dist, entry.dist);
      if (total > radius) break;  // sorted by dist: prefix is complete
      if (total < best[entry.owner]) best[entry.owner] = total;
    }
  }

  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (best[v] == kInfDistance) continue;
    if (v == s && !include_source) continue;
    result.push_back({v, best[v]});
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.dist != b.dist ? a.dist < b.dist
                                      : a.vertex < b.vertex;
            });
  return result;
}

uint64_t KnnEngine::TotalInvertedEntries() const {
  uint64_t total = 0;
  for (const auto& list : inv_) total += list.size();
  return total;
}

}  // namespace hopdb
