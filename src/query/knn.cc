#include "query/knn.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

namespace hopdb {

KnnEngine::KnnEngine(const TwoHopIndex& index, Direction direction)
    : index_(index), direction_(direction) {
  const VertexId n = index_.num_vertices();
  inv_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    // Forward kNN intersects Lout(s) with Lin(v), so the inverted side is
    // the in-labels; backward swaps the roles.
    const auto label = direction_ == Direction::kForward ? index_.InLabel(v)
                                                         : index_.OutLabel(v);
    inv_[v].push_back({0, v});  // trivial (v, 0) self-entry
    for (const LabelEntry& e : label) {
      inv_[e.pivot].push_back({e.dist, v});
    }
  }
  for (auto& list : inv_) {
    std::sort(list.begin(), list.end(),
              [](const InvEntry& a, const InvEntry& b) {
                return a.dist != b.dist ? a.dist < b.dist
                                        : a.owner < b.owner;
              });
  }
}

std::vector<KnnEngine::Neighbor> KnnEngine::Query(VertexId s, uint32_t k,
                                                  bool include_source) const {
  std::vector<Neighbor> result;
  if (s >= index_.num_vertices() || k == 0) return result;
  result.reserve(k);

  // Frontier of (total distance, seed index, position in the seed's
  // inverted list); the pop order enumerates all (source entry, inverted
  // entry) pairs by non-decreasing d1 + d2.
  struct Frontier {
    Distance total;
    uint32_t seed_idx;
    uint32_t pos;
    bool operator>(const Frontier& o) const { return total > o.total; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> pq;

  // d1_of_pivot is needed when advancing a cursor; store alongside the
  // seed list (sorted by pivot — Lout(s) order — for lookup by index).
  std::vector<LabelEntry> seeds;
  const auto label = direction_ == Direction::kForward ? index_.OutLabel(s)
                                                       : index_.InLabel(s);
  seeds.assign(label.begin(), label.end());
  seeds.push_back({s, 0});  // trivial (s, 0) source pivot

  for (uint32_t i = 0; i < seeds.size(); ++i) {
    const auto& list = inv_[seeds[i].pivot];
    if (!list.empty()) {
      pq.push({SaturatingAdd(seeds[i].dist, list[0].dist), i, 0});
    }
  }

  std::vector<bool> emitted(index_.num_vertices(), false);
  while (!pq.empty() && result.size() < k) {
    const Frontier f = pq.top();
    pq.pop();
    if (f.total == kInfDistance) break;
    const LabelEntry& seed = seeds[f.seed_idx];
    const auto& list = inv_[seed.pivot];
    const VertexId v = list[f.pos].owner;
    if (f.pos + 1 < list.size()) {
      pq.push({SaturatingAdd(seed.dist, list[f.pos + 1].dist), f.seed_idx,
               f.pos + 1});
    }
    if (!emitted[v]) {
      emitted[v] = true;
      if (v != s || include_source) result.push_back({v, f.total});
    }
  }
  return result;
}

uint64_t KnnEngine::TotalInvertedEntries() const {
  uint64_t total = 0;
  for (const auto& list : inv_) total += list.size();
  return total;
}

}  // namespace hopdb
