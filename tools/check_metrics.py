#!/usr/bin/env python3
"""Prometheus exposition linter for the METRICS verb (the CI scrape check).

Validates the text exposition format the server emits, either from a
saved file (--file) or scraped live from a running server (--host /
--port: sends "METRICS\\n" on a fresh v1 connection and decodes the
"OK BLOB <n>" framing).

Checks:
  1. Every line is a comment, blank, or a well-formed sample
     `name{labels} value` (metric/label name charset, quoted label
     values, finite float value).
  2. Every sample belongs to a family announced by # HELP and # TYPE
     (in that order, immediately adjacent), with a known type.
  3. Counter families end in _total; counter and histogram samples are
     non-negative.
  4. No duplicate series (same name + label set twice).
  5. Histograms: every label-set has _bucket series with cumulative
     non-decreasing values over increasing `le`, a closing le="+Inf"
     bucket, and _sum/_count series with _count equal to the +Inf
     bucket.
  6. The exposition is non-empty and contains the hopdb_build_info and
     hopdb_requests_total families (the minimum useful scrape).

Exit status 0 = clean, 1 = at least one failure (each printed).
"""

import argparse
import math
import re
import socket
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels optional; value is the last token.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")
KNOWN_TYPES = {"counter", "gauge", "histogram"}
REQUIRED_FAMILIES = {"hopdb_build_info", "hopdb_requests_total"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def scrape(host: str, port: int, timeout: float) -> str:
    """Fetches one METRICS exposition over the v1 line protocol."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"METRICS\n")
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed before the header line")
            buf += chunk
        header, _, buf = buf.partition(b"\n")
        m = re.match(rb"^OK BLOB (\d+)$", header.strip())
        if m is None:
            raise ValueError(f"expected 'OK BLOB <n>', got {header!r}")
        want = int(m.group(1)) + 1  # body plus the closing newline
        while len(buf) < want:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-blob")
            buf += chunk
        return buf[: want - 1].decode("utf-8")


def family_of(name: str, types: dict[str, str]) -> str:
    """Maps a sample name to its announced family (histogram suffixes)."""
    for suffix in HISTOGRAM_SUFFIXES:
        base = name.removesuffix(suffix)
        if base != name and types.get(base) == "histogram":
            return base
    return name


def lint(text: str) -> list[str]:
    failures: list[str] = []
    if not text.strip():
        return ["exposition is empty"]

    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    # First pass: families, so suffix resolution works on any line order.
    for lineno, line in enumerate(text.splitlines(), start=1):
        if m := HELP_RE.match(line):
            if m.group(1) in helps:
                failures.append(f"line {lineno}: duplicate # HELP {m.group(1)}")
            helps[m.group(1)] = m.group(2)
        elif m := TYPE_RE.match(line):
            name, kind = m.groups()
            if name in types:
                failures.append(f"line {lineno}: duplicate # TYPE {name}")
            if kind not in KNOWN_TYPES:
                failures.append(
                    f"line {lineno}: # TYPE {name} has unknown type '{kind}'"
                )
            types[name] = kind

    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    # family -> label-set (minus le) -> [(le, value)] / sums / counts
    buckets: dict[str, dict[tuple, list[tuple[float, float]]]] = {}
    sums: dict[str, dict[tuple, float]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            if line.startswith("#") and not (
                HELP_RE.match(line) or TYPE_RE.match(line)
            ):
                failures.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            failures.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, label_blob, value_str = m.groups()
        labels: list[tuple[str, str]] = []
        if label_blob:
            inner = label_blob[1:-1].rstrip(",")
            pairs = LABEL_PAIR_RE.findall(inner)
            # Reassembling the pairs must consume the whole blob, else
            # something in it did not parse as label="value".
            reassembled = ",".join(f'{k}="{v}"' for k, v in pairs)
            if reassembled != inner:
                failures.append(
                    f"line {lineno}: malformed label set: {label_blob!r}"
                )
                continue
            for key, _ in pairs:
                if not LABEL_NAME_RE.match(key):
                    failures.append(f"line {lineno}: bad label name '{key}'")
            labels = pairs
        try:
            value = float(value_str)
        except ValueError:
            failures.append(f"line {lineno}: bad sample value '{value_str}'")
            continue
        if not METRIC_NAME_RE.match(name):
            failures.append(f"line {lineno}: bad metric name '{name}'")
            continue

        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            failures.append(
                f"line {lineno}: duplicate series {name}{label_blob or ''}"
            )
        seen_series.add(series)

        family = family_of(name, types)
        if family not in types:
            failures.append(f"line {lineno}: sample '{name}' has no # TYPE")
            continue
        if family not in helps:
            failures.append(f"line {lineno}: sample '{name}' has no # HELP")
        kind = types[family]
        if kind == "counter" and not family.endswith("_total"):
            failures.append(
                f"line {lineno}: counter '{family}' does not end in _total"
            )
        if kind in ("counter", "histogram") and value < 0:
            failures.append(f"line {lineno}: negative {kind} sample: {line!r}")
        if math.isnan(value) or math.isinf(value):
            failures.append(f"line {lineno}: non-finite value: {line!r}")

        if kind == "histogram":
            non_le = tuple(sorted(p for p in labels if p[0] != "le"))
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    failures.append(f"line {lineno}: _bucket without le label")
                    continue
                le_value = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(family, {}).setdefault(non_le, []).append(
                    (le_value, value)
                )
            elif name.endswith("_sum"):
                sums.setdefault(family, {})[non_le] = value
            elif name.endswith("_count"):
                counts.setdefault(family, {})[non_le] = value
            else:
                failures.append(
                    f"line {lineno}: histogram family '{family}' has a bare "
                    f"sample '{name}' (expected _bucket/_sum/_count)"
                )

    for family, kind in types.items():
        if kind != "histogram":
            continue
        label_sets = buckets.get(family, {})
        if not label_sets:
            failures.append(f"histogram '{family}' has no _bucket samples")
        for non_le, series in label_sets.items():
            where = f"{family}{{{', '.join(f'{k}={v}' for k, v in non_le)}}}"
            series.sort()
            les = [le for le, _ in series]
            values = [v for _, v in series]
            if not les or les[-1] != math.inf:
                failures.append(f"{where}: missing le=\"+Inf\" bucket")
                continue
            if any(b > a for a, b in zip(values[1:], values)):
                failures.append(f"{where}: bucket values are not cumulative")
            if non_le not in sums.get(family, {}):
                failures.append(f"{where}: missing _sum")
            count = counts.get(family, {}).get(non_le)
            if count is None:
                failures.append(f"{where}: missing _count")
            elif count != values[-1]:
                failures.append(
                    f"{where}: _count {count} != +Inf bucket {values[-1]}"
                )

    for family in sorted(REQUIRED_FAMILIES - set(types)):
        failures.append(f"required family '{family}' is missing")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="lint a saved exposition file")
    source.add_argument("--host", help="scrape a live server at this address")
    parser.add_argument("--port", type=int, default=0,
                        help="server port (with --host)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="scrape timeout in seconds")
    args = parser.parse_args()

    if args.file:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()
        origin = args.file
    else:
        if args.port <= 0:
            parser.error("--host requires --port")
        try:
            text = scrape(args.host, args.port, args.timeout)
        except (OSError, ValueError, ConnectionError) as e:
            print(f"FAIL: scrape {args.host}:{args.port}: {e}",
                  file=sys.stderr)
            return 1
        origin = f"{args.host}:{args.port}"

    failures = lint(text)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        families = len(re.findall(r"^# TYPE ", text, re.MULTILINE))
        samples = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print(f"metrics OK: {origin}: {families} families, "
              f"{samples} samples, histograms consistent")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
