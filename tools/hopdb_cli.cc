// hopdb_cli: generate graphs, build hop-doubling indexes, query and
// inspect them from the command line. See src/tools/commands.cc.

#include <iostream>

#include "tools/commands.h"

int main(int argc, char** argv) {
  return hopdb::RunCli(argc, argv, std::cout, std::cerr);
}
