#!/usr/bin/env bash
# Deflake loop runner: repeat the ctest suite (or a -R subset) until a
# failure or the iteration budget runs out, keeping every failing log.
#
#   tools/stress_tests.sh                      # 20x full suite, build/
#   tools/stress_tests.sh -n 100 -R 'server|concurrent'
#   tools/stress_tests.sh -b build-tsan -n 50 -j 4
#
# Exit status: 0 = every iteration green, 1 = at least one failure (the
# failing iteration's ctest log is left under $BUILD/Testing/stress/).
# Use it to qualify timing-sensitive suites (server, concurrency,
# update-stream) on loaded or few-core machines, where a single ctest
# pass proves little.

set -u

iterations=20
build_dir="build"
test_regex=""
jobs=""
stop_on_fail=1

while getopts "n:b:R:j:kh" opt; do
  case "$opt" in
    n) iterations="$OPTARG" ;;
    b) build_dir="$OPTARG" ;;
    R) test_regex="$OPTARG" ;;
    j) jobs="$OPTARG" ;;
    k) stop_on_fail=0 ;;  # keep looping after failures, count them all
    h)
      sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

if [ ! -f "$build_dir/CTestTestfile.cmake" ]; then
  echo "error: '$build_dir' is not a configured build tree" \
       "(run: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 2
fi

log_dir="$build_dir/Testing/stress"
mkdir -p "$log_dir"

ctest_args=(--output-on-failure --timeout 600)
[ -n "$test_regex" ] && ctest_args+=(-R "$test_regex")
[ -n "$jobs" ] && ctest_args+=(-j "$jobs")

failures=0
for i in $(seq 1 "$iterations"); do
  log="$log_dir/iter$i.log"
  if (cd "$build_dir" && ctest "${ctest_args[@]}") >"$log" 2>&1; then
    echo "iter $i/$iterations: ok"
    rm -f "$log"
  else
    failures=$((failures + 1))
    echo "iter $i/$iterations: FAILED (log: $log)"
    grep -E '\*\*\*|The following tests FAILED' "$log" | head -20
    [ "$stop_on_fail" = 1 ] && break
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "stress: $failures failing iteration(s) out of $i"
  exit 1
fi
echo "stress: $iterations/$iterations iterations green"
