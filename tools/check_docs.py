#!/usr/bin/env python3
"""Documentation consistency checks (the CI docs job).

1. Intra-repo markdown links: every relative [text](target) in a *.md
   file must point at an existing file or directory. External links
   (http/https/mailto) and pure anchors are ignored, as is anything
   inside fenced code blocks.
2. CLI help drift (with --cli-bin): the block between
   "<!-- BEGIN hopdb_cli help -->" and "<!-- END hopdb_cli help -->" in
   README.md must byte-match the live output of `hopdb_cli help`
   (modulo trailing whitespace). Regenerate the block from the binary
   when the usage text changes.
3. Format magic/version drift: every on-disk format magic defined in
   src/ (the kMagic constants) must be documented in docs/FORMATS.md
   and vice versa, and the HLI2 version constant must match the doc.
4. STATS key drift: every key the server emits (the AppendStat /
   AppendIndexStat call sites in src/server/server.cc) must appear in
   the key-reference table of docs/OPERATIONS.md and vice versa.
5. v2 opcode drift: the V2Opcode enum in src/server/protocol.h and the
   opcode table in docs/PROTOCOL.md must agree on every value <-> verb
   pair.
6. Metric family drift: every Prometheus family the METRICS verb emits
   (the PromFamily call sites in src/server/server.cc) must appear in
   the metric-family table of docs/OPERATIONS.md and vice versa.
7. Eval report section drift: every section header the eval harness
   renders (kEvalReportSections in src/eval/harness.h) must be listed —
   backticked — in the eval runbook of docs/OPERATIONS.md, so the
   runbook's description of the report cannot silently go stale.

Exit status 0 = clean, 1 = at least one failure (each printed).
"""

import argparse
import difflib
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"build", ".git", ".claude"}
BEGIN_MARK = "<!-- BEGIN hopdb_cli help -->"
END_MARK = "<!-- END hopdb_cli help -->"

# constexpr char kMagic[4] = {'H', 'L', 'I', '1'};
CHAR_MAGIC_RE = re.compile(
    r"constexpr\s+char\s+kMagic\[4\]\s*=\s*\{\s*'(.)',\s*'(.)',\s*'(.)',"
    r"\s*'(.)'\s*\}"
)
# constexpr uint32_t kMagic = 0x...;  // "HLC1" little-endian
U32_MAGIC_RE = re.compile(
    r'constexpr\s+uint32_t\s+kMagic\s*=\s*0x[0-9a-fA-F]+;\s*//\s*"([A-Z0-9]{4})"'
)
HLI2_VERSION_RE = re.compile(r"constexpr\s+uint32_t\s+kHli2Version\s*=\s*(\d+)")
HLI2_MIN_READ_RE = re.compile(
    r"constexpr\s+uint32_t\s+kHli2MinReadVersion\s*=\s*(\d+)"
)
# FORMATS.md table row: | `HLI1` | ... (the magic inventory table)
DOC_MAGIC_ROW_RE = re.compile(r"^\|\s*`([A-Z0-9]{4})`\s*\|")
# server.cc:  AppendStat(&payload, "key", ...) / AppendIndexStat(..., "key", ...)
APPEND_STAT_RE = re.compile(r'AppendStat\(&payload,\s*"([a-z0-9_]+)"')
APPEND_INDEX_STAT_RE = re.compile(r'AppendIndexStat\(&payload,[^,]+,\s*"([a-z0-9_]+)"')
# OPERATIONS.md table rows: | `key` | ... |  (hopdb_* rows belong to the
# Prometheus metric-family table, not the STATS key table)
DOC_STAT_ROW_RE = re.compile(
    r"^\|\s*`((?!hopdb_)(?:index\.<name>\.)?[a-z0-9_]+)`\s*\|"
)
# server.cc: PromFamily(&text, "hopdb_requests_total", ...)
PROM_FAMILY_RE = re.compile(r'PromFamily\(&\w+,\s*"(hopdb_[a-z0-9_]+)"')
# OPERATIONS.md metric table rows: | `hopdb_requests_total` | ... |
DOC_METRIC_ROW_RE = re.compile(r"^\|\s*`(hopdb_[a-z0-9_]+)`")
# protocol.h: enum class V2Opcode : uint8_t { kDist = 1, ... };
V2_ENUM_RE = re.compile(
    r"enum\s+class\s+V2Opcode\s*:\s*uint8_t\s*\{([^}]*)\}", re.DOTALL
)
V2_ENUMERATOR_RE = re.compile(r"k([A-Za-z]+)\s*=\s*(\d+)")
# PROTOCOL.md opcode table rows: | 1 | DIST | ... |
DOC_OPCODE_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*([A-Z]+)\s*\|")
# harness.h: constexpr const char* kEvalReportSections[] = {"## ...", ...};
EVAL_SECTIONS_RE = re.compile(
    r"kEvalReportSections\[\]\s*=\s*\{([^}]*)\}", re.DOTALL
)
EVAL_SECTION_LITERAL_RE = re.compile(r'"(## [^"]+)"')


def iter_markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        yield path


def check_links(root: pathlib.Path) -> list[str]:
    failures = []
    for md in iter_markdown_files(root):
        in_fence = False
        for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                plain = target.split("#", 1)[0]
                if not plain:
                    continue
                resolved = (md.parent / plain).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{md.relative_to(root)}:{lineno}: broken link "
                        f"'{target}'"
                    )
    return failures


def extract_readme_block(readme: pathlib.Path) -> list[str] | None:
    lines = readme.read_text(encoding="utf-8").splitlines()
    try:
        begin = lines.index(BEGIN_MARK)
        end = lines.index(END_MARK)
    except ValueError:
        return None
    block = lines[begin + 1 : end]
    # Strip the surrounding code fence.
    if block and block[0].startswith("```"):
        block = block[1:]
    if block and block[-1].startswith("```"):
        block = block[:-1]
    return [l.rstrip() for l in block]


def check_cli_help(root: pathlib.Path, cli_bin: str) -> list[str]:
    readme = root / "README.md"
    documented = extract_readme_block(readme)
    if documented is None:
        return [
            f"README.md: missing '{BEGIN_MARK}' / '{END_MARK}' markers "
            "around the CLI help block"
        ]
    proc = subprocess.run(
        [cli_bin, "help"], capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        return [f"'{cli_bin} help' exited with {proc.returncode}"]
    live = [l.rstrip() for l in proc.stdout.splitlines()]
    # Trim leading/trailing blank lines on both sides.
    while documented and not documented[0]:
        documented = documented[1:]
    while documented and not documented[-1]:
        documented = documented[:-1]
    while live and not live[0]:
        live = live[1:]
    while live and not live[-1]:
        live = live[:-1]
    if documented == live:
        return []
    diff = "\n".join(
        difflib.unified_diff(
            documented, live, fromfile="README.md block",
            tofile=f"{cli_bin} help", lineterm=""
        )
    )
    return [
        "README.md CLI help block drifted from the binary — regenerate "
        "the block between the BEGIN/END markers:\n" + diff
    ]


def iter_source_files(root: pathlib.Path):
    for pattern in ("*.h", "*.cc"):
        yield from sorted((root / "src").rglob(pattern))


def check_format_magics(root: pathlib.Path) -> list[str]:
    """The magic constants in src/ and the table in FORMATS.md must agree."""
    failures = []
    code_magics: dict[str, str] = {}  # magic -> defining file
    hli2_version = None
    hli2_min_read = None
    for path in iter_source_files(root):
        text = path.read_text(encoding="utf-8")
        rel = str(path.relative_to(root))
        for m in CHAR_MAGIC_RE.finditer(text):
            code_magics["".join(m.groups())] = rel
        for m in U32_MAGIC_RE.finditer(text):
            code_magics[m.group(1)] = rel
        for m in HLI2_VERSION_RE.finditer(text):
            hli2_version = int(m.group(1))
        for m in HLI2_MIN_READ_RE.finditer(text):
            hli2_min_read = int(m.group(1))

    formats_md = root / "docs" / "FORMATS.md"
    if not formats_md.exists():
        return ["docs/FORMATS.md is missing (format reference is required)"]
    doc_text = formats_md.read_text(encoding="utf-8")
    doc_magics = {
        m.group(1)
        for line in doc_text.splitlines()
        if (m := DOC_MAGIC_ROW_RE.match(line.strip()))
    }

    for magic, where in sorted(code_magics.items()):
        if magic not in doc_magics:
            failures.append(
                f"format magic '{magic}' (defined in {where}) is not in the "
                "docs/FORMATS.md magic table"
            )
    for magic in sorted(doc_magics - set(code_magics)):
        failures.append(
            f"docs/FORMATS.md documents magic '{magic}' but no kMagic "
            "constant in src/ defines it"
        )
    if hli2_version is None:
        failures.append("kHli2Version constant not found in src/")
    elif f"u32 version = {hli2_version}" not in doc_text:
        failures.append(
            f"docs/FORMATS.md does not document 'u32 version = "
            f"{hli2_version}' for HLI2 (code has kHli2Version = "
            f"{hli2_version})"
        )
    if hli2_min_read is None:
        failures.append("kHli2MinReadVersion constant not found in src/")
    elif f"`kHli2MinReadVersion` (= {hli2_min_read})" not in doc_text:
        failures.append(
            f"docs/FORMATS.md does not document the read-compatibility "
            f"floor '`kHli2MinReadVersion` (= {hli2_min_read})' for HLI2 "
            f"(code accepts versions {hli2_min_read}..{hli2_version})"
        )
    return failures


def check_stats_keys(root: pathlib.Path) -> list[str]:
    """Every STATS key the server emits must be documented, and vice versa."""
    server_cc = root / "src" / "server" / "server.cc"
    operations_md = root / "docs" / "OPERATIONS.md"
    if not operations_md.exists():
        return ["docs/OPERATIONS.md is missing (STATS reference is required)"]
    code = server_cc.read_text(encoding="utf-8")
    code_keys = set(APPEND_STAT_RE.findall(code))
    code_keys |= {
        f"index.<name>.{k}" for k in APPEND_INDEX_STAT_RE.findall(code)
    }
    doc_keys = {
        m.group(1)
        for line in operations_md.read_text(encoding="utf-8").splitlines()
        if (m := DOC_STAT_ROW_RE.match(line.strip()))
    }
    # Drop table rows that are not STATS keys (e.g. the incident table
    # has no backticked single-word first column, so no filtering needed
    # beyond the regex shape).
    failures = []
    for key in sorted(code_keys - doc_keys):
        failures.append(
            f"server.cc emits STATS key '{key}' but docs/OPERATIONS.md does "
            "not document it"
        )
    for key in sorted(doc_keys - code_keys):
        failures.append(
            f"docs/OPERATIONS.md documents STATS key '{key}' but server.cc "
            "does not emit it"
        )
    if not code_keys:
        failures.append("no AppendStat call sites found in server.cc "
                        "(parser drifted?)")
    return failures


def check_metric_families(root: pathlib.Path) -> list[str]:
    """Every Prometheus family METRICS emits must be documented, and
    vice versa."""
    server_cc = root / "src" / "server" / "server.cc"
    operations_md = root / "docs" / "OPERATIONS.md"
    if not operations_md.exists():
        return ["docs/OPERATIONS.md is missing (metrics reference is "
                "required)"]
    code_families = set(
        PROM_FAMILY_RE.findall(server_cc.read_text(encoding="utf-8"))
    )
    doc_families = {
        m.group(1)
        for line in operations_md.read_text(encoding="utf-8").splitlines()
        if (m := DOC_METRIC_ROW_RE.match(line.strip()))
    }
    failures = []
    for family in sorted(code_families - doc_families):
        failures.append(
            f"server.cc emits metric family '{family}' but "
            "docs/OPERATIONS.md does not document it"
        )
    for family in sorted(doc_families - code_families):
        failures.append(
            f"docs/OPERATIONS.md documents metric family '{family}' but "
            "server.cc does not emit it"
        )
    if not code_families:
        failures.append("no PromFamily call sites found in server.cc "
                        "(parser drifted?)")
    return failures


def check_v2_opcodes(root: pathlib.Path) -> list[str]:
    """The V2Opcode enum and the PROTOCOL.md opcode table must agree."""
    protocol_h = root / "src" / "server" / "protocol.h"
    protocol_md = root / "docs" / "PROTOCOL.md"
    if not protocol_md.exists():
        return ["docs/PROTOCOL.md is missing (wire reference is required)"]
    enum_match = V2_ENUM_RE.search(protocol_h.read_text(encoding="utf-8"))
    if enum_match is None:
        return ["enum class V2Opcode not found in src/server/protocol.h "
                "(parser drifted?)"]
    code_opcodes = {
        int(value): name.upper()
        for name, value in V2_ENUMERATOR_RE.findall(enum_match.group(1))
    }
    doc_opcodes = {
        int(m.group(1)): m.group(2)
        for line in protocol_md.read_text(encoding="utf-8").splitlines()
        if (m := DOC_OPCODE_ROW_RE.match(line.strip()))
    }
    failures = []
    for value, verb in sorted(code_opcodes.items()):
        if value not in doc_opcodes:
            failures.append(
                f"v2 opcode {value} ({verb}) is not in the docs/PROTOCOL.md "
                "opcode table"
            )
        elif doc_opcodes[value] != verb:
            failures.append(
                f"v2 opcode {value} is {verb} in protocol.h but "
                f"{doc_opcodes[value]} in docs/PROTOCOL.md"
            )
    for value in sorted(set(doc_opcodes) - set(code_opcodes)):
        failures.append(
            f"docs/PROTOCOL.md documents v2 opcode {value} "
            f"({doc_opcodes[value]}) but V2Opcode does not define it"
        )
    return failures


def check_eval_sections(root: pathlib.Path) -> list[str]:
    """Every eval report section header must be listed in OPERATIONS.md."""
    harness_h = root / "src" / "eval" / "harness.h"
    operations_md = root / "docs" / "OPERATIONS.md"
    if not operations_md.exists():
        return ["docs/OPERATIONS.md is missing (eval runbook is required)"]
    block = EVAL_SECTIONS_RE.search(harness_h.read_text(encoding="utf-8"))
    if block is None:
        return ["kEvalReportSections not found in src/eval/harness.h "
                "(parser drifted?)"]
    headers = EVAL_SECTION_LITERAL_RE.findall(block.group(1))
    if not headers:
        return ["kEvalReportSections in src/eval/harness.h is empty "
                "(parser drifted?)"]
    doc_text = operations_md.read_text(encoding="utf-8")
    failures = []
    for header in headers:
        if f"`{header}`" not in doc_text:
            failures.append(
                f"eval report section '{header}' (kEvalReportSections in "
                "src/eval/harness.h) is not listed in the "
                "docs/OPERATIONS.md eval runbook"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: this script's parent's parent)"
    )
    parser.add_argument(
        "--cli-bin", default=None,
        help="path to a built hopdb_cli; enables the help-drift check"
    )
    args = parser.parse_args()
    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else pathlib.Path(__file__).resolve().parent.parent
    )

    failures = check_links(root)
    failures += check_format_magics(root)
    failures += check_stats_keys(root)
    failures += check_metric_families(root)
    failures += check_v2_opcodes(root)
    failures += check_eval_sections(root)
    if args.cli_bin:
        failures += check_cli_help(root, args.cli_bin)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        checked = sum(1 for _ in iter_markdown_files(root))
        print(
            f"docs OK: {checked} markdown files, links resolve, format "
            "magics + STATS keys + metric families + v2 opcodes + eval "
            "report sections in sync"
            + (", CLI help in sync" if args.cli_bin else "")
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
