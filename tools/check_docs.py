#!/usr/bin/env python3
"""Documentation consistency checks (the CI docs job).

1. Intra-repo markdown links: every relative [text](target) in a *.md
   file must point at an existing file or directory. External links
   (http/https/mailto) and pure anchors are ignored, as is anything
   inside fenced code blocks.
2. CLI help drift (with --cli-bin): the block between
   "<!-- BEGIN hopdb_cli help -->" and "<!-- END hopdb_cli help -->" in
   README.md must byte-match the live output of `hopdb_cli help`
   (modulo trailing whitespace). Regenerate the block from the binary
   when the usage text changes.

Exit status 0 = clean, 1 = at least one failure (each printed).
"""

import argparse
import difflib
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"build", ".git", ".claude"}
BEGIN_MARK = "<!-- BEGIN hopdb_cli help -->"
END_MARK = "<!-- END hopdb_cli help -->"


def iter_markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        yield path


def check_links(root: pathlib.Path) -> list[str]:
    failures = []
    for md in iter_markdown_files(root):
        in_fence = False
        for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                plain = target.split("#", 1)[0]
                if not plain:
                    continue
                resolved = (md.parent / plain).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{md.relative_to(root)}:{lineno}: broken link "
                        f"'{target}'"
                    )
    return failures


def extract_readme_block(readme: pathlib.Path) -> list[str] | None:
    lines = readme.read_text(encoding="utf-8").splitlines()
    try:
        begin = lines.index(BEGIN_MARK)
        end = lines.index(END_MARK)
    except ValueError:
        return None
    block = lines[begin + 1 : end]
    # Strip the surrounding code fence.
    if block and block[0].startswith("```"):
        block = block[1:]
    if block and block[-1].startswith("```"):
        block = block[:-1]
    return [l.rstrip() for l in block]


def check_cli_help(root: pathlib.Path, cli_bin: str) -> list[str]:
    readme = root / "README.md"
    documented = extract_readme_block(readme)
    if documented is None:
        return [
            f"README.md: missing '{BEGIN_MARK}' / '{END_MARK}' markers "
            "around the CLI help block"
        ]
    proc = subprocess.run(
        [cli_bin, "help"], capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        return [f"'{cli_bin} help' exited with {proc.returncode}"]
    live = [l.rstrip() for l in proc.stdout.splitlines()]
    # Trim leading/trailing blank lines on both sides.
    while documented and not documented[0]:
        documented = documented[1:]
    while documented and not documented[-1]:
        documented = documented[:-1]
    while live and not live[0]:
        live = live[1:]
    while live and not live[-1]:
        live = live[:-1]
    if documented == live:
        return []
    diff = "\n".join(
        difflib.unified_diff(
            documented, live, fromfile="README.md block",
            tofile=f"{cli_bin} help", lineterm=""
        )
    )
    return [
        "README.md CLI help block drifted from the binary — regenerate "
        "the block between the BEGIN/END markers:\n" + diff
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: this script's parent's parent)"
    )
    parser.add_argument(
        "--cli-bin", default=None,
        help="path to a built hopdb_cli; enables the help-drift check"
    )
    args = parser.parse_args()
    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else pathlib.Path(__file__).resolve().parent.parent
    )

    failures = check_links(root)
    if args.cli_bin:
        failures += check_cli_help(root, args.cli_bin)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        checked = sum(1 for _ in iter_markdown_files(root))
        print(
            f"docs OK: {checked} markdown files, links resolve"
            + (", CLI help in sync" if args.cli_bin else "")
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
