#!/usr/bin/env python3
"""Independent gate over the eval harness JSON report (the CI eval job).

`hopdb_cli eval --ci` already exits nonzero when an expectation fails;
this script re-derives the verdict from the archived JSON so a gate
regression in the harness itself (an expectation silently dropped, a
band silently widened past the paper's order of magnitude) is caught by
a second, trivially auditable implementation.

Checks:
1. Every expectation named in REQUIRED_EXPECTATIONS is present, its
   band has not widened beyond the ceiling hard-coded here, and its
   measured value passes its band.
2. The report's own "pass" flags and "all_pass" agree with the bands
   (no harness/report disagreement).
3. Every dataset was verified ("pass", never "failed:..." or an
   unexpected skip) and every supported workload row ran queries and
   agrees on the per-workload checksum across variants.

Usage: tools/eval_gate.py eval.json
Exit status 0 = clean, 1 = at least one failure (each printed).
"""

import json
import sys

# name -> (min_floor, max_ceiling): the harness may tighten its band
# inside these, never widen past them. The ceilings are the
# order-of-magnitude expectations from the paper's experiments: point
# queries in microseconds (band generous to 2 ms for slow CI), average
# label sizes in the tens-to-hundreds, builds in seconds at harness
# scale.
REQUIRED_EXPECTATIONS = {
    "dist_avg_us_max": (0.0, 2000.0),
    "avg_label_size_max": (1.0, 1024.0),
    "build_seconds_max": (0.0, 300.0),
    "variant_checksums_agree": (1.0, 1.0),
    "oracle_verified": (1.0, 1.0),
}


def gate(doc: dict) -> list[str]:
    failures = []

    expectations = {e["name"]: e for e in doc.get("expectations", [])}
    for name, (floor, ceiling) in REQUIRED_EXPECTATIONS.items():
        exp = expectations.get(name)
        if exp is None:
            failures.append(f"expectation '{name}' missing from the report")
            continue
        if exp["min"] < floor or exp["max"] > ceiling:
            failures.append(
                f"expectation '{name}' band [{exp['min']}, "
                f"{exp['max']}] widened past the gate's "
                f"[{floor}, {ceiling}]"
            )
        in_band = exp["min"] <= exp["value"] <= exp["max"]
        if not in_band:
            failures.append(
                f"expectation '{name}' out of band: value {exp['value']} "
                f"not in [{exp['min']}, {exp['max']}]"
            )
        if bool(exp["pass"]) != in_band:
            failures.append(
                f"expectation '{name}': report says pass={exp['pass']} but "
                f"the band says {in_band}"
            )
    if bool(doc.get("all_pass")) != all(
        bool(e["pass"]) for e in doc.get("expectations", [])
    ):
        failures.append("report all_pass disagrees with its expectations")

    datasets = doc.get("datasets", [])
    if not datasets:
        failures.append("report contains no datasets")
    for ds in datasets:
        name = ds.get("name", "?")
        if ds.get("verify") != "pass":
            failures.append(
                f"dataset '{name}': verify is '{ds.get('verify')}', "
                "expected 'pass'"
            )
        checksums: dict[str, set] = {}
        for row in ds.get("workloads", []):
            wl, variant = row.get("workload", "?"), row.get("variant", "?")
            if not row.get("supported", False):
                continue
            if row.get("queries", 0) <= 0:
                failures.append(
                    f"dataset '{name}' {wl}/{variant}: supported but ran "
                    "no queries"
                )
            checksums.setdefault(wl, set()).add(row.get("checksum"))
        for wl, sums in checksums.items():
            if len(sums) != 1:
                failures.append(
                    f"dataset '{name}' workload '{wl}': variants disagree "
                    f"on checksum ({sorted(sums)})"
                )
    return failures


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    with open(sys.argv[1], encoding="utf-8") as f:
        doc = json.load(f)
    failures = gate(doc)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        n_ds = len(doc.get("datasets", []))
        n_rows = sum(len(d.get("workloads", [])) for d in doc.get("datasets", []))
        print(
            f"eval gate OK: {n_ds} datasets, {n_rows} workload rows, "
            f"{len(REQUIRED_EXPECTATIONS)} expectations in band"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
